//! Criterion benchmarks: one benchmark per paper figure (at `Quick` scale) plus
//! substrate micro-benchmarks. Each figure benchmark runs the same harness code that
//! regenerates the corresponding table, so `cargo bench` doubles as a smoke test that
//! every experiment stays runnable and as a record of how long each costs.

use criterion::{criterion_group, criterion_main, Criterion};
use pdq_experiments::{run_experiment, Scale};

fn bench_figure(c: &mut Criterion, name: &'static str) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function(name, |b| {
        b.iter(|| {
            let tables = run_experiment(name, Scale::Quick).expect(name);
            assert!(!tables.is_empty());
            criterion::black_box(tables)
        })
    });
    group.finish();
}

fn figure3(c: &mut Criterion) {
    for name in ["fig3a", "fig3b", "fig3d", "fig3e"] {
        bench_figure(c, name);
    }
}

fn figure_search(c: &mut Criterion) {
    // The binary-search experiments are the most expensive; keep them separate.
    for name in ["fig3c", "fig4a", "fig9a", "fig11c"] {
        bench_figure(c, name);
    }
}

fn figure_patterns_and_workloads(c: &mut Criterion) {
    for name in ["fig4b", "fig5a", "fig5b", "fig5c"] {
        bench_figure(c, name);
    }
}

fn figure_dynamics(c: &mut Criterion) {
    for name in ["fig6", "fig7"] {
        bench_figure(c, name);
    }
}

fn figure_scale(c: &mut Criterion) {
    for name in ["fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig12"] {
        bench_figure(c, name);
    }
}

fn figure_resilience_and_multipath(c: &mut Criterion) {
    for name in ["fig9b", "fig10", "fig11a", "fig11b", "headline"] {
        bench_figure(c, name);
    }
}

fn ablations(c: &mut Criterion) {
    // Parameter ablations of the design choices called out in DESIGN.md (Early Start K,
    // dampening window, Suppressed Probing X, sliver threshold).
    bench_figure(c, "ablation");
}

fn engine_scale(c: &mut Criterion) {
    // The engine hot-path scenario (dense slabs / zero-clone forwarding) at its
    // Quick size; run `pdq-experiments engine_scale --large` for the >=10k-flow
    // configuration.
    bench_figure(c, "engine_scale");
}

fn wan(c: &mut Criterion) {
    // The inter-datacenter WAN comparison (paced vs unpaced senders on lossy
    // long-haul links) at its Quick size.
    bench_figure(c, "wan");
}

fn substrate(c: &mut Criterion) {
    use pdq::{install_pdq, Discipline, PdqParams};
    use pdq_netsim::{FlowSpec, SimConfig, Simulator};
    use pdq_topology::single_bottleneck;

    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    group.bench_function("packet_level_pdq_10_flows_bottleneck", |b| {
        b.iter(|| {
            let topo = single_bottleneck(10, Default::default());
            let recv = *topo.hosts.last().unwrap();
            let mut sim = Simulator::new(topo.net.clone(), SimConfig::default());
            install_pdq(&mut sim, &PdqParams::full(), &Discipline::Exact);
            for i in 0..10u64 {
                sim.add_flow(FlowSpec::new(i + 1, topo.hosts[i as usize], recv, 100_000));
            }
            criterion::black_box(sim.run().completed_count())
        })
    });
    group.bench_function("flow_level_pdq_fat_tree_128", |b| {
        use pdq_flowsim::{run_flow_level, FlowLevelConfig, FlowProtocol};
        use pdq_topology::fattree::fat_tree_with_at_least;
        use pdq_workloads::{pattern_flows, Pattern, SizeDist, WorkloadConfig};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let topo = fat_tree_with_at_least(128, Default::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = WorkloadConfig {
            pattern: Pattern::RandomPermutation,
            sizes: SizeDist::UniformMean(200_000),
            flows_per_pair: 3,
            ..Default::default()
        };
        let flows = pattern_flows(&topo, &cfg, 1, &mut rng);
        b.iter(|| {
            let res = run_flow_level(
                &topo,
                &flows,
                &FlowLevelConfig::for_protocol(FlowProtocol::Pdq),
                1,
            );
            criterion::black_box(res.completed_count())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    figure3,
    figure_search,
    figure_patterns_and_workloads,
    figure_dynamics,
    figure_scale,
    figure_resilience_and_multipath,
    ablations,
    engine_scale,
    wan,
    substrate
);
criterion_main!(benches);
