//! Micro-benchmark of the calendar/ladder [`EventQueue`] in isolation: steady-state
//! hold cycles (pop the minimum, push a replacement) and burst push-then-drain, at
//! 1k / 100k / 1M pending events.
//!
//! The hold span scales with the population (mean spacing ~2.5 µs, matching the
//! engine's per-hop latency quantum), so the small size lives entirely in the bucket
//! wheel while the large sizes keep most events in the far-future overflow tier —
//! both tiers are on the measured path. `crates/bench/tests/smoke.rs` runs a scaled-
//! down mirror of the same loops as a correctness smoke test.

use criterion::{criterion_group, criterion_main, Criterion};

use pdq_netsim::event::{EventKind, EventQueue, TimerKind};
use pdq_netsim::{FlowId, NodeId, SimTime};

/// Deterministic 64-bit LCG (the bench must not depend on ambient randomness).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn timer(token: u64) -> EventKind {
    EventKind::Timer {
        node: NodeId((token % 64) as u32),
        flow: FlowId(token),
        kind: TimerKind::Rto,
        token,
        gen: 0,
    }
}

/// A queue prefilled with `pending` events spread over `span_ns` of future time.
fn prefill(pending: usize, span_ns: u64, seed: &mut u64) -> EventQueue {
    let mut q = EventQueue::new();
    for i in 0..pending {
        let at = SimTime::from_nanos(lcg(seed) % span_ns);
        q.schedule(at, timer(i as u64));
    }
    q
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(10);
    for &pending in &[1_000usize, 100_000, 1_000_000] {
        // Mean spacing ~2.5 µs: one wheel bucket holds roughly a hop's worth of
        // events, and the tail of the population sits in the overflow tier.
        let span_ns = pending as u64 * 2_500;
        let cycles = 10_000usize;

        // Steady state: pop the earliest event, schedule a replacement a
        // pseudo-random span ahead — the queue holds `pending` events throughout.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut q = prefill(pending, span_ns, &mut seed);
        group.bench_function(&format!("hold/{pending}"), |b| {
            b.iter(|| {
                for _ in 0..cycles {
                    let ev = q.pop().expect("queue is never empty in hold");
                    q.set_now(ev.at);
                    let at = ev.at + SimTime::from_nanos(1 + lcg(&mut seed) % span_ns);
                    q.schedule(at, ev.kind);
                }
                q.len()
            })
        });

        // Burst: push `pending` events, then drain them all.
        group.bench_function(&format!("burst/{pending}"), |b| {
            let mut seed = 0x51afb00d5eedu64;
            b.iter(|| {
                let mut q = prefill(pending, span_ns, &mut seed);
                let mut last = SimTime::ZERO;
                while let Some(ev) = q.pop() {
                    last = ev.at;
                }
                last
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
