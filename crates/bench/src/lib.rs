//! # pdq-bench
//!
//! Criterion benchmark harness for the PDQ reproduction. The actual benchmarks live in
//! `benches/figures.rs`; each benchmark regenerates one of the paper's figures at the
//! `Quick` scale so the whole suite stays runnable in minutes. This library crate only
//! re-exports the experiment entry points the benches drive.

pub use pdq_experiments::{all_experiments, run_experiment, Scale};
