//! Smoke test keeping the `cargo bench` targets runnable without invoking criterion
//! in CI: the figure experiments the benches drive must produce non-empty tables at
//! `Scale::Quick`.

use pdq_bench::{all_experiments, run_experiment, Scale};

#[test]
fn quick_scale_experiments_produce_tables() {
    for name in ["fig3a", "fig5a", "fig9a"] {
        let tables = run_experiment(name, Scale::Quick).expect(name);
        assert!(!tables.is_empty(), "{name} returned no tables");
        for table in &tables {
            assert!(!table.columns.is_empty(), "{name} table has no columns");
            assert!(!table.rows.is_empty(), "{name} table has no rows");
            for row in &table.rows {
                assert_eq!(
                    row.len(),
                    table.columns.len(),
                    "{name} row width mismatch in `{}`",
                    table.title
                );
            }
        }
    }
}

/// The engine-scale perf scenario must stay runnable: `Scale::Large` must exist and
/// compile (it is the ≥10k-flow configuration used for engine benchmarking), and one
/// Quick-sized iteration must produce a sane table without the full cost.
#[test]
fn engine_scale_scenario_smoke() {
    // Compile-time check that the Large configuration is still wired up.
    let large = Scale::Large;
    assert_ne!(large, Scale::Quick);
    let tables = run_experiment("engine_scale", Scale::Quick).expect("engine_scale");
    assert_eq!(tables.len(), 1);
    let table = &tables[0];
    assert_eq!(table.rows.len(), 1);
    let flows: usize = table.rows[0][0].parse().expect("flow count cell");
    let completed: usize = table.rows[0][2].parse().expect("completed cell");
    assert!(flows >= 100, "quick scenario too small: {flows} flows");
    assert!(completed > 0, "no flow completed");
}

/// The WAN pacing scenario must stay runnable: one Quick-sized iteration runs
/// every protocol with pacing off and on, and each row must report a sane,
/// fully-parsed outcome.
#[test]
fn wan_pacing_scenario_smoke() {
    let tables = run_experiment("wan", Scale::Quick).expect("wan");
    assert_eq!(tables.len(), 1);
    let table = &tables[0];
    assert!(table.rows.len() >= 4, "expected >= 2 protocols x off/on");
    for row in &table.rows {
        assert!(row[1] == "on" || row[1] == "off", "bad pacing cell {row:?}");
        let flows: usize = row[2].parse().expect("flow count cell");
        let completed: usize = row[3].parse().expect("completed cell");
        assert!(flows > 0 && completed > 0, "empty WAN run: {row:?}");
    }
}

/// Scaled-down mirror of `benches/event_queue.rs`: the hold loop (pop the minimum,
/// push a replacement) and the burst drain must keep the queue consistent — pops in
/// nondecreasing time order, events conserved, telemetry balanced. This keeps the
/// micro-bench's harness logic exercised in CI without criterion.
#[test]
fn event_queue_bench_harness_smoke() {
    use pdq_netsim::event::{EventKind, EventQueue, TimerKind};
    use pdq_netsim::{FlowId, NodeId, SimTime};

    let mut state = 0x9E3779B97F4A7C15u64;
    let mut lcg = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let pending = 1_000usize;
    let span_ns = pending as u64 * 2_500;
    let mut q = EventQueue::new();
    for i in 0..pending {
        q.schedule(
            SimTime::from_nanos(lcg() % span_ns),
            EventKind::Timer {
                node: NodeId((i % 64) as u32),
                flow: FlowId(i as u64),
                kind: TimerKind::Rto,
                token: i as u64,
                gen: 0,
            },
        );
    }
    // Hold phase.
    let mut last = SimTime::ZERO;
    for _ in 0..5_000 {
        let ev = q.pop().expect("hold queue never empties");
        assert!(ev.at >= last, "pops went backwards in time");
        last = ev.at;
        q.set_now(ev.at);
        q.schedule(ev.at + SimTime::from_nanos(1 + lcg() % span_ns), ev.kind);
        assert_eq!(q.len(), pending);
    }
    // Burst drain.
    let mut drained = 0usize;
    while let Some(ev) = q.pop() {
        assert!(ev.at >= last, "drain went backwards in time");
        last = ev.at;
        drained += 1;
    }
    assert_eq!(drained, pending);
    let stats = q.stats();
    assert_eq!(stats.pushes, stats.pops);
    assert_eq!(stats.peak_pending, pending as u64);
}

#[test]
fn bench_covers_only_known_experiments() {
    // The names baked into benches/figures.rs must stay valid experiment names;
    // run_experiment returns None for unknown ones.
    let known = all_experiments();
    let benched = [
        "fig3a",
        "fig3b",
        "fig3c",
        "fig3d",
        "fig3e",
        "fig4a",
        "fig4b",
        "fig5a",
        "fig5b",
        "fig5c",
        "fig6",
        "fig7",
        "fig8a",
        "fig8b",
        "fig8c",
        "fig8d",
        "fig8e",
        "fig9a",
        "fig9b",
        "fig10",
        "fig11a",
        "fig11b",
        "fig11c",
        "fig12",
        "headline",
        "ablation",
        "engine_scale",
        "wan",
    ];
    for name in benched {
        assert!(
            known.contains(&name),
            "bench references unknown experiment {name}"
        );
    }
}
