//! Smoke test keeping the `cargo bench` targets runnable without invoking criterion
//! in CI: the figure experiments the benches drive must produce non-empty tables at
//! `Scale::Quick`.

use pdq_bench::{all_experiments, run_experiment, Scale};

#[test]
fn quick_scale_experiments_produce_tables() {
    for name in ["fig3a", "fig5a", "fig9a"] {
        let tables = run_experiment(name, Scale::Quick);
        assert!(!tables.is_empty(), "{name} returned no tables");
        for table in &tables {
            assert!(!table.columns.is_empty(), "{name} table has no columns");
            assert!(!table.rows.is_empty(), "{name} table has no rows");
            for row in &table.rows {
                assert_eq!(
                    row.len(),
                    table.columns.len(),
                    "{name} row width mismatch in `{}`",
                    table.title
                );
            }
        }
    }
}

#[test]
fn bench_covers_only_known_experiments() {
    // The names baked into benches/figures.rs must stay valid experiment names;
    // run_experiment returns an empty vector for unknown ones.
    let known = all_experiments();
    let benched = [
        "fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig4a", "fig4b", "fig5a", "fig5b", "fig5c",
        "fig6", "fig7", "fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig9a", "fig9b", "fig10",
        "fig11a", "fig11b", "fig11c", "fig12", "headline", "ablation",
    ];
    for name in benched {
        assert!(
            known.contains(&name),
            "bench references unknown experiment {name}"
        );
    }
}
