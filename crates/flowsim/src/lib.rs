//! # pdq-flowsim
//!
//! Flow-level and fluid models for the PDQ (SIGCOMM 2012) reproduction:
//!
//! * [`fluid`] — the §2.1 motivating example (Figure 1): fair sharing vs SJF/EDF vs D3
//!   on a single bottleneck under a fluid traffic model;
//! * [`optimal`] — the centralized reference schedulers used as the "Optimal" curve in
//!   Figure 3: EDF + Moore–Hodgson for deadline flows, SJF for mean completion time;
//! * [`level`] — the flow-level simulator of §5.5: equilibrium rate allocations for
//!   PDQ (criticality waterfilling), RCP (max-min fair sharing) and D3 (arrival-order
//!   reservation), recomputed on a 1 ms time scale with flow-initialization latency and
//!   header overhead, used for the large-scale, multipath-load and aging experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fluid;
pub mod level;
pub mod optimal;

pub use fluid::{
    coflow_cct_lower_bounds, d3_completion, deadlines_met, edf_completion, fair_sharing_completion,
    figure1_flows, run_fluid, sjf_completion, FluidFlow, FluidFlowRecord, FluidModel, FluidResults,
};
pub use level::{run_flow_level, FlowLevelConfig, FlowLevelRecord, FlowLevelResults, FlowProtocol};
pub use optimal::{
    fair_sharing_mean_fct, max_on_time_jobs, optimal_application_throughput, optimal_mean_fct, Job,
};
