//! Centralized reference schedulers used as the "Optimal" curves in Figure 3.
//!
//! For the query-aggregation scenario every flow shares the single receiver access
//! link, so the classic single-machine results apply:
//!
//! * the number of deadline-missing flows is minimized by EDF plus the
//!   **Moore–Hodgson** algorithm (drop the largest job of the first EDF prefix that is
//!   late, repeat) — this is Algorithm 3.3.1 of Pinedo, the procedure the paper cites;
//! * the mean completion time of deadline-less flows is minimized by running the flows
//!   one by one in **Shortest Job First** order.

/// A job for the single-bottleneck schedulers: `size_bytes` to transfer and an optional
/// relative deadline in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Job {
    /// Bytes to transfer.
    pub size_bytes: u64,
    /// Relative deadline in seconds (from time zero), if any.
    pub deadline_secs: Option<f64>,
}

impl Job {
    /// Processing time of this job on a link of `rate_bps`.
    pub fn processing_time(&self, rate_bps: f64) -> f64 {
        self.size_bytes as f64 * 8.0 / rate_bps
    }
}

/// The maximum number of jobs that can meet their deadlines on a single link of
/// `rate_bps`, using EDF + Moore–Hodgson. Jobs without a deadline are ignored (they can
/// always be scheduled last).
pub fn max_on_time_jobs(jobs: &[Job], rate_bps: f64) -> usize {
    let mut constrained: Vec<(f64, f64)> = jobs
        .iter()
        .filter_map(|j| j.deadline_secs.map(|d| (d, j.processing_time(rate_bps))))
        .collect();
    constrained.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    // Moore–Hodgson: walk jobs in EDF order keeping a running completion time; whenever
    // the current job would be late, evict the largest job scheduled so far.
    let mut scheduled: Vec<f64> = Vec::new(); // processing times of kept jobs
    let mut completion = 0.0f64;
    for (deadline, p) in constrained {
        scheduled.push(p);
        completion += p;
        if completion > deadline + 1e-12 {
            // Drop the longest job accepted so far.
            let (idx, &longest) = scheduled
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            completion -= longest;
            scheduled.remove(idx);
        }
    }
    scheduled.len()
}

/// The application throughput an omniscient scheduler achieves: on-time jobs divided by
/// the number of deadline-constrained jobs. Returns `None` when no job has a deadline.
pub fn optimal_application_throughput(jobs: &[Job], rate_bps: f64) -> Option<f64> {
    let total = jobs.iter().filter(|j| j.deadline_secs.is_some()).count();
    if total == 0 {
        return None;
    }
    Some(max_on_time_jobs(jobs, rate_bps) as f64 / total as f64)
}

/// The minimum achievable mean flow completion time on a single link of `rate_bps` when
/// all jobs arrive simultaneously: serve them one by one in SJF order.
pub fn optimal_mean_fct(jobs: &[Job], rate_bps: f64) -> f64 {
    if jobs.is_empty() {
        return 0.0;
    }
    let mut times: Vec<f64> = jobs.iter().map(|j| j.processing_time(rate_bps)).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut completion = 0.0;
    let mut sum = 0.0;
    for t in times {
        completion += t;
        sum += completion;
    }
    sum / jobs.len() as f64
}

/// The mean flow completion time under idealized fair sharing (processor sharing) on a
/// single link when all jobs arrive simultaneously. Used by the motivating-example
/// reproduction and as a sanity baseline in tests.
pub fn fair_sharing_mean_fct(jobs: &[Job], rate_bps: f64) -> f64 {
    if jobs.is_empty() {
        return 0.0;
    }
    // Under processor sharing with simultaneous arrivals, jobs finish in size order;
    // when the i-th smallest job finishes, each remaining job has received the same
    // service. Completion time of the i-th smallest of n jobs:
    //   C_i = C_{i-1} + (p_i - p_{i-1}) * (n - i + 1)
    let mut times: Vec<f64> = jobs.iter().map(|j| j.processing_time(rate_bps)).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = times.len();
    let mut sum = 0.0;
    let mut completion = 0.0;
    let mut prev = 0.0;
    for (i, p) in times.iter().enumerate() {
        completion += (p - prev) * (n - i) as f64;
        prev = *p;
        sum += completion;
    }
    sum / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(size: u64, deadline: Option<f64>) -> Job {
        Job {
            size_bytes: size,
            deadline_secs: deadline,
        }
    }

    /// Figure 1 of the paper, with sizes 1/2/3 units and deadlines 1/4/6 on a unit-rate
    /// link (we scale to bytes and 8 bits/byte so "1 unit of size per 1 unit of time").
    fn figure1_jobs() -> Vec<Job> {
        vec![
            job(1_000_000, Some(1.0)),
            job(2_000_000, Some(4.0)),
            job(3_000_000, Some(6.0)),
        ]
    }

    const UNIT_RATE: f64 = 8e6; // 1 "size unit" (1 MB) per second

    #[test]
    fn figure1_sjf_vs_fair_sharing() {
        let jobs = figure1_jobs();
        let sjf = optimal_mean_fct(&jobs, UNIT_RATE);
        let fair = fair_sharing_mean_fct(&jobs, UNIT_RATE);
        // Paper: SJF gives (1+3+6)/3 = 3.33, fair sharing gives (3+5+6)/3 = 4.67.
        assert!((sjf - 10.0 / 3.0).abs() < 1e-6, "sjf = {sjf}");
        assert!((fair - 14.0 / 3.0).abs() < 1e-6, "fair = {fair}");
        // ~29% saving, as stated in §2.1.
        let saving = 1.0 - sjf / fair;
        assert!((saving - 0.2857).abs() < 0.01);
    }

    #[test]
    fn figure1_edf_meets_all_deadlines() {
        let jobs = figure1_jobs();
        assert_eq!(max_on_time_jobs(&jobs, UNIT_RATE), 3);
        assert_eq!(optimal_application_throughput(&jobs, UNIT_RATE), Some(1.0));
    }

    #[test]
    fn moore_hodgson_drops_minimum_number() {
        // Three jobs of 1s each, all with deadline 2s: only two can make it.
        let jobs = vec![
            job(1_000_000, Some(2.0)),
            job(1_000_000, Some(2.0)),
            job(1_000_000, Some(2.0)),
        ];
        assert_eq!(max_on_time_jobs(&jobs, UNIT_RATE), 2);
    }

    #[test]
    fn moore_hodgson_prefers_dropping_long_jobs() {
        // One huge job with a tight deadline plus many small ones: dropping the huge
        // job saves everything else.
        let mut jobs = vec![job(10_000_000, Some(1.0))];
        for _ in 0..5 {
            jobs.push(job(500_000, Some(4.0)));
        }
        assert_eq!(max_on_time_jobs(&jobs, UNIT_RATE), 5);
    }

    #[test]
    fn moore_hodgson_matches_brute_force_on_small_instances() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..200 {
            let n = rng.gen_range(1..=7);
            let jobs: Vec<Job> = (0..n)
                .map(|_| {
                    job(
                        rng.gen_range(100_000..3_000_000),
                        Some(rng.gen_range(0.2..4.0)),
                    )
                })
                .collect();
            let fast = max_on_time_jobs(&jobs, UNIT_RATE);
            // Brute force: try every subset, check EDF feasibility of the subset.
            let mut best = 0usize;
            for mask in 0u32..(1 << n) {
                let mut subset: Vec<(f64, f64)> = jobs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, j)| (j.deadline_secs.unwrap(), j.processing_time(UNIT_RATE)))
                    .collect();
                subset.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                let mut t = 0.0;
                let mut ok = true;
                for (d, p) in &subset {
                    t += p;
                    if t > d + 1e-12 {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    best = best.max(subset.len());
                }
            }
            assert_eq!(fast, best, "jobs = {jobs:?}");
        }
    }

    #[test]
    fn empty_and_undeadlined_inputs() {
        assert_eq!(optimal_mean_fct(&[], UNIT_RATE), 0.0);
        assert_eq!(fair_sharing_mean_fct(&[], UNIT_RATE), 0.0);
        assert_eq!(
            optimal_application_throughput(&[job(1000, None)], UNIT_RATE),
            None
        );
        assert_eq!(max_on_time_jobs(&[job(1000, None)], UNIT_RATE), 0);
    }
}
