//! The flow-level simulator (§5.5).
//!
//! The paper's packet-level simulator does not scale to thousands of servers, so the
//! authors complement it with a flow-level simulator that iteratively computes the
//! equilibrium sending rates on a 1 ms time scale, while still modelling protocol
//! inefficiencies (flow-initialization latency and header overhead). This module
//! provides that simulator for PDQ, RCP and D3, and is used for the Figure 8
//! (scale), Figure 11 (load) and Figure 12 (aging) experiments.

use std::collections::HashMap;

use pdq_netsim::{FlowId, FlowSpec, SimTime};
use pdq_topology::{EcmpRouter, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Which protocol's equilibrium allocation to compute each step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowProtocol {
    /// PDQ: criticality-ordered waterfilling (the paper's centralized algorithm, which
    /// the distributed protocol converges to — Appendix B).
    Pdq,
    /// RCP: per-link max-min fair sharing.
    Rcp,
    /// D3: deadline flows reserve `remaining/time_to_deadline` in arrival order, the
    /// leftover is shared max-min.
    D3,
}

/// Flow-level simulator configuration.
#[derive(Clone, Debug)]
pub struct FlowLevelConfig {
    /// Protocol model.
    pub protocol: FlowProtocol,
    /// Rate-recomputation time step (the paper uses 1 ms).
    pub step: SimTime,
    /// Flow initialization latency added before a flow starts transferring
    /// (SYN + first-data feedback, about two RTTs).
    pub init_delay: SimTime,
    /// Fraction of the wire rate usable for payload (TCP/IP + scheduling header
    /// overhead, ≈ 0.96).
    pub efficiency: f64,
    /// Hard stop.
    pub max_time: SimTime,
    /// PDQ flow-aging rate α (Figure 12). `None` disables aging.
    pub aging_alpha: Option<f64>,
    /// Enable PDQ Early Termination / D3 quenching of hopeless deadline flows.
    pub early_termination: bool,
}

impl Default for FlowLevelConfig {
    fn default() -> Self {
        FlowLevelConfig {
            protocol: FlowProtocol::Pdq,
            step: SimTime::from_millis(1),
            init_delay: SimTime::from_micros(300),
            efficiency: 1444.0 / 1500.0,
            max_time: SimTime::from_secs(60),
            aging_alpha: None,
            early_termination: true,
        }
    }
}

impl FlowLevelConfig {
    /// A config for the given protocol with paper defaults otherwise.
    pub fn for_protocol(protocol: FlowProtocol) -> Self {
        FlowLevelConfig {
            protocol,
            ..Default::default()
        }
    }
}

/// Per-flow outcome of a flow-level run.
#[derive(Clone, Debug)]
pub struct FlowLevelRecord {
    /// Flow id.
    pub id: FlowId,
    /// Size in bytes.
    pub size_bytes: u64,
    /// Arrival time.
    pub arrival: SimTime,
    /// Absolute deadline, if any.
    pub deadline: Option<SimTime>,
    /// Completion time, if the flow finished.
    pub completed_at: Option<SimTime>,
    /// True if the flow was terminated/quenched before finishing.
    pub terminated: bool,
}

impl FlowLevelRecord {
    /// Flow completion time.
    pub fn fct(&self) -> Option<SimTime> {
        self.completed_at.map(|t| t.saturating_sub(self.arrival))
    }

    /// True if the flow completed before its deadline.
    pub fn met_deadline(&self) -> bool {
        match (self.completed_at, self.deadline) {
            (Some(c), Some(d)) => c <= d,
            (Some(_), None) => true,
            _ => false,
        }
    }
}

/// Results of a flow-level run.
#[derive(Clone, Debug, Default)]
pub struct FlowLevelResults {
    /// Per-flow records.
    pub flows: HashMap<FlowId, FlowLevelRecord>,
}

impl FlowLevelResults {
    /// Mean FCT in seconds over completed flows matching `filter`.
    pub fn mean_fct_secs<F: Fn(&FlowLevelRecord) -> bool>(&self, filter: F) -> Option<f64> {
        let mut fcts: Vec<f64> = self
            .flows
            .values()
            .filter(|r| filter(r))
            .filter_map(|r| r.fct().map(|t| t.as_secs_f64()))
            .collect();
        if fcts.is_empty() {
            return None;
        }
        // f64 addition is order-sensitive at the last ulp and `flows` is a
        // HashMap with per-process iteration order: sum in sorted order so the
        // mean is bit-identical across runs (and matches cached records).
        fcts.sort_by(f64::total_cmp);
        Some(fcts.iter().sum::<f64>() / fcts.len() as f64)
    }

    /// Mean FCT over all completed flows.
    pub fn mean_fct_all_secs(&self) -> Option<f64> {
        self.mean_fct_secs(|_| true)
    }

    /// FCT percentile in seconds over completed flows — the same index convention
    /// as the packet-level `SimResults::fct_percentile_secs`, so flow- and
    /// packet-level percentile columns stay comparable in one table.
    pub fn fct_percentile_secs(&self, percentile: f64) -> Option<f64> {
        let mut fcts: Vec<f64> = self
            .flows
            .values()
            .filter_map(|r| r.fct().map(|t| t.as_secs_f64()))
            .collect();
        if fcts.is_empty() {
            return None;
        }
        fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((percentile / 100.0) * (fcts.len() as f64 - 1.0)).round() as usize;
        Some(fcts[idx.min(fcts.len() - 1)])
    }

    /// Maximum FCT in seconds over completed flows.
    pub fn max_fct_secs(&self) -> Option<f64> {
        self.flows
            .values()
            .filter_map(|r| r.fct().map(|t| t.as_secs_f64()))
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// Fraction of deadline-constrained flows that met their deadline.
    pub fn application_throughput(&self) -> Option<f64> {
        let with_deadline: Vec<&FlowLevelRecord> = self
            .flows
            .values()
            .filter(|r| r.deadline.is_some())
            .collect();
        if with_deadline.is_empty() {
            return None;
        }
        let met = with_deadline.iter().filter(|r| r.met_deadline()).count();
        Some(met as f64 / with_deadline.len() as f64)
    }

    /// FCT of a particular flow in seconds.
    pub fn fct_of(&self, id: FlowId) -> Option<f64> {
        self.flows
            .get(&id)
            .and_then(|r| r.fct())
            .map(|t| t.as_secs_f64())
    }

    /// Number of completed flows.
    pub fn completed_count(&self) -> usize {
        self.flows
            .values()
            .filter(|r| r.completed_at.is_some())
            .count()
    }
}

struct ActiveFlow {
    id: FlowId,
    path: Vec<usize>,
    remaining_bits: f64,
    size_bytes: u64,
    arrival: SimTime,
    start: SimTime,
    deadline: Option<SimTime>,
    max_rate: f64,
    arrival_order: usize,
}

/// Run the flow-level simulator over `topo` for the given flows.
pub fn run_flow_level(
    topo: &Topology,
    flows: &[FlowSpec],
    cfg: &FlowLevelConfig,
    seed: u64,
) -> FlowLevelResults {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut router = EcmpRouter::new();
    let capacities: Vec<f64> = topo
        .net
        .links
        .iter()
        .map(|l| l.rate_bps * cfg.efficiency)
        .collect();

    // Route every flow once (flow-level ECMP), set up its record.
    let mut pending: Vec<ActiveFlow> = Vec::with_capacity(flows.len());
    let mut results = FlowLevelResults::default();
    for (order, spec) in flows.iter().enumerate() {
        let path = router.random_shortest_path(&topo.net, spec.src, spec.dst, &mut rng);
        let links: Vec<usize> = path.links.iter().map(|l| l.index()).collect();
        let max_rate = links
            .iter()
            .map(|&l| capacities[l])
            .fold(f64::INFINITY, f64::min);
        pending.push(ActiveFlow {
            id: spec.id,
            path: links,
            remaining_bits: spec.size_bytes as f64 * 8.0,
            size_bytes: spec.size_bytes,
            arrival: spec.arrival,
            start: spec.arrival + cfg.init_delay,
            deadline: spec.deadline,
            max_rate,
            arrival_order: order,
        });
        results.flows.insert(
            spec.id,
            FlowLevelRecord {
                id: spec.id,
                size_bytes: spec.size_bytes,
                arrival: spec.arrival,
                deadline: spec.deadline,
                completed_at: None,
                terminated: false,
            },
        );
    }
    pending.sort_by_key(|f| f.start);

    let dt = cfg.step.as_secs_f64();
    let mut now = SimTime::ZERO;
    let mut active: Vec<ActiveFlow> = Vec::new();
    let mut next_pending = 0usize;

    while now < cfg.max_time && (next_pending < pending.len() || !active.is_empty()) {
        // Admit flows whose start time has come.
        while next_pending < pending.len() && pending[next_pending].start <= now {
            let f = &pending[next_pending];
            active.push(ActiveFlow {
                id: f.id,
                path: f.path.clone(),
                remaining_bits: f.remaining_bits,
                size_bytes: f.size_bytes,
                arrival: f.arrival,
                start: f.start,
                deadline: f.deadline,
                max_rate: f.max_rate,
                arrival_order: f.arrival_order,
            });
            next_pending += 1;
        }

        // Early termination / quenching.
        if cfg.early_termination {
            active.retain(|f| {
                let Some(dl) = f.deadline else { return true };
                let hopeless = match cfg.protocol {
                    FlowProtocol::Pdq => {
                        let min_finish = now.as_secs_f64() + f.remaining_bits / f.max_rate;
                        now > dl || min_finish > dl.as_secs_f64()
                    }
                    FlowProtocol::D3 => now > dl,
                    FlowProtocol::Rcp => false,
                };
                if hopeless {
                    if let Some(rec) = results.flows.get_mut(&f.id) {
                        rec.terminated = true;
                    }
                }
                !hopeless
            });
        }

        if active.is_empty() {
            // Jump to the next arrival to avoid spinning through idle time.
            if next_pending < pending.len() {
                now = now.max(pending[next_pending].start);
                // Align to the step grid.
                continue;
            }
            break;
        }

        let rates = allocate_rates(&active, &capacities, cfg, now);

        // Advance the transfers; finish flows mid-step for accuracy.
        let mut finished: Vec<usize> = Vec::new();
        for (i, f) in active.iter_mut().enumerate() {
            let r = rates[i];
            if r <= 0.0 {
                continue;
            }
            let delivered = r * dt;
            if delivered >= f.remaining_bits {
                let frac = f.remaining_bits / r;
                let done_at = now + SimTime::from_secs_f64(frac);
                if let Some(rec) = results.flows.get_mut(&f.id) {
                    rec.completed_at = Some(done_at);
                }
                f.remaining_bits = 0.0;
                finished.push(i);
            } else {
                f.remaining_bits -= delivered;
            }
        }
        for &i in finished.iter().rev() {
            active.swap_remove(i);
        }
        now += cfg.step;
    }

    results
}

/// Compute the per-flow rate allocation for one step.
fn allocate_rates(
    active: &[ActiveFlow],
    capacities: &[f64],
    cfg: &FlowLevelConfig,
    now: SimTime,
) -> Vec<f64> {
    match cfg.protocol {
        FlowProtocol::Pdq => pdq_waterfill(active, capacities, cfg, now),
        FlowProtocol::Rcp => max_min_fair(active, capacities, &vec![0.0; active.len()]),
        FlowProtocol::D3 => {
            // Phase 1: deadline flows reserve their desired rate in arrival order.
            let mut residual = capacities.to_vec();
            let mut reserved = vec![0.0f64; active.len()];
            let mut order: Vec<usize> = (0..active.len()).collect();
            order.sort_by_key(|&i| active[i].arrival_order);
            for i in order {
                let f = &active[i];
                let Some(dl) = f.deadline else { continue };
                if dl <= now {
                    continue;
                }
                let desired = f.remaining_bits / (dl - now).as_secs_f64();
                let avail = f
                    .path
                    .iter()
                    .map(|&l| residual[l])
                    .fold(f64::INFINITY, f64::min);
                let got = desired.min(avail).min(f.max_rate);
                if got > 0.0 {
                    reserved[i] = got;
                    for &l in &f.path {
                        residual[l] -= got;
                    }
                }
            }
            // Phase 2: the leftover is shared max-min among everyone.
            let extra = max_min_fair_with_capacity(active, &residual, &reserved);
            reserved.iter().zip(extra).map(|(r, e)| r + e).collect()
        }
    }
}

/// PDQ's centralized allocation: flows in criticality order grab everything left on
/// their path.
fn pdq_waterfill(
    active: &[ActiveFlow],
    capacities: &[f64],
    cfg: &FlowLevelConfig,
    now: SimTime,
) -> Vec<f64> {
    let mut order: Vec<usize> = (0..active.len()).collect();
    let criticality = |f: &ActiveFlow| {
        let mut t = f.remaining_bits / f.max_rate;
        if let Some(alpha) = cfg.aging_alpha {
            let wait_units = now.saturating_sub(f.arrival).as_secs_f64() / 0.1;
            t /= 2f64.powf(alpha * wait_units);
        }
        (f.deadline.unwrap_or(SimTime::MAX), t, f.id)
    };
    order.sort_by(|&a, &b| {
        let (da, ta, ia) = criticality(&active[a]);
        let (db, tb, ib) = criticality(&active[b]);
        da.cmp(&db)
            .then(ta.partial_cmp(&tb).unwrap_or(std::cmp::Ordering::Equal))
            .then(ia.cmp(&ib))
    });
    let mut residual = capacities.to_vec();
    let mut rates = vec![0.0f64; active.len()];
    for i in order {
        let f = &active[i];
        let avail = f
            .path
            .iter()
            .map(|&l| residual[l])
            .fold(f64::INFINITY, f64::min)
            .min(f.max_rate)
            .max(0.0);
        rates[i] = avail;
        for &l in &f.path {
            residual[l] -= avail;
        }
    }
    rates
}

/// Standard link-constrained max-min fair allocation (progressive filling).
fn max_min_fair(active: &[ActiveFlow], capacities: &[f64], already: &[f64]) -> Vec<f64> {
    max_min_fair_with_capacity(active, capacities, already)
}

fn max_min_fair_with_capacity(
    active: &[ActiveFlow],
    capacities: &[f64],
    _already: &[f64],
) -> Vec<f64> {
    let n = active.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 {
        return rates;
    }
    let mut residual = capacities.to_vec();
    let mut frozen = vec![false; n];
    let mut remaining = n;
    // Progressive filling: repeatedly find the tightest link, freeze its flows.
    for _ in 0..n {
        if remaining == 0 {
            break;
        }
        // Count unfrozen flows per link.
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for (i, f) in active.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            for &l in &f.path {
                *counts.entry(l).or_default() += 1;
            }
        }
        // The bottleneck link is the one with the smallest residual share.
        let mut best: Option<(usize, f64)> = None;
        for (&l, &c) in &counts {
            let share = (residual[l].max(0.0)) / c as f64;
            if best.map(|(_, s)| share < s).unwrap_or(true) {
                best = Some((l, share));
            }
        }
        let Some((bottleneck, share)) = best else {
            break;
        };
        // Freeze every unfrozen flow crossing the bottleneck at that share.
        for (i, f) in active.iter().enumerate() {
            if frozen[i] || !f.path.contains(&bottleneck) {
                continue;
            }
            let r = share.min(f.max_rate);
            rates[i] = r;
            frozen[i] = true;
            remaining -= 1;
            for &l in &f.path {
                residual[l] -= r;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::LinkParams;
    use pdq_topology::{single_bottleneck, single_rooted_tree};

    fn bottleneck_flows(sizes: &[u64], deadlines_ms: &[Option<u64>]) -> (Topology, Vec<FlowSpec>) {
        let topo = single_bottleneck(sizes.len(), LinkParams::default());
        let recv = *topo.hosts.last().unwrap();
        let flows = sizes
            .iter()
            .zip(deadlines_ms)
            .enumerate()
            .map(|(i, (&s, d))| {
                let mut spec = FlowSpec::new(i as u64 + 1, topo.hosts[i], recv, s);
                if let Some(ms) = d {
                    spec = spec.with_deadline(SimTime::from_millis(*ms));
                }
                spec
            })
            .collect();
        (topo, flows)
    }

    #[test]
    fn pdq_serves_flows_in_sjf_order() {
        let (topo, flows) =
            bottleneck_flows(&[1_000_000, 2_000_000, 3_000_000], &[None, None, None]);
        let cfg = FlowLevelConfig::for_protocol(FlowProtocol::Pdq);
        let res = run_flow_level(&topo, &flows, &cfg, 1);
        assert_eq!(res.completed_count(), 3);
        let f1 = res.fct_of(FlowId(1)).unwrap();
        let f2 = res.fct_of(FlowId(2)).unwrap();
        let f3 = res.fct_of(FlowId(3)).unwrap();
        assert!(f1 < f2 && f2 < f3);
        // The shortest flow finishes in about its raw serialization time (~8.3 ms),
        // because under PDQ it is never preempted.
        assert!(f1 < 0.012, "f1 = {f1}");
        // The longest finishes around the sum of all three (~50 ms).
        assert!(f3 > 0.040 && f3 < 0.070, "f3 = {f3}");
    }

    #[test]
    fn rcp_fair_sharing_gives_larger_mean_fct_than_pdq() {
        let (topo, flows) = bottleneck_flows(
            &[500_000, 1_000_000, 1_500_000, 2_000_000],
            &[None, None, None, None],
        );
        let pdq = run_flow_level(
            &topo,
            &flows,
            &FlowLevelConfig::for_protocol(FlowProtocol::Pdq),
            1,
        );
        let rcp = run_flow_level(
            &topo,
            &flows,
            &FlowLevelConfig::for_protocol(FlowProtocol::Rcp),
            1,
        );
        let pdq_mean = pdq.mean_fct_all_secs().unwrap();
        let rcp_mean = rcp.mean_fct_all_secs().unwrap();
        assert!(
            pdq_mean < rcp_mean * 0.85,
            "PDQ should clearly beat fair sharing: pdq={pdq_mean} rcp={rcp_mean}"
        );
    }

    #[test]
    fn pdq_meets_more_deadlines_than_d3_on_adversarial_order() {
        // Recreate the Figure 1 situation: the far-deadline flow arrives first, so D3
        // reserves for it and the tight-deadline flow starves; PDQ preempts.
        let topo = single_bottleneck(3, LinkParams::default());
        let recv = *topo.hosts.last().unwrap();
        let mk = |id: u64, host: usize, size: u64, dl_ms: u64, arrival_us: u64| {
            FlowSpec::new(id, topo.hosts[host], recv, size)
                .with_deadline(SimTime::from_millis(dl_ms))
                .with_arrival(SimTime::from_micros(arrival_us))
        };
        // f_B (2 MB, 30 ms) arrives first, f_A (1 MB, 12 ms) second, f_C (3 MB, 60 ms).
        // All three are feasible under EDF/SJF scheduling, but the arrival order lets
        // D3's first-come reservation for f_B squeeze f_A past its deadline.
        let flows = vec![
            mk(2, 1, 2_000_000, 30, 0),
            mk(1, 0, 1_000_000, 12, 10),
            mk(3, 2, 3_000_000, 60, 20),
        ];
        let pdq = run_flow_level(
            &topo,
            &flows,
            &FlowLevelConfig::for_protocol(FlowProtocol::Pdq),
            1,
        );
        let d3 = run_flow_level(
            &topo,
            &flows,
            &FlowLevelConfig::for_protocol(FlowProtocol::D3),
            1,
        );
        assert_eq!(pdq.application_throughput(), Some(1.0), "{:?}", pdq.flows);
        assert!(d3.application_throughput().unwrap() < 1.0);
    }

    #[test]
    fn aging_reduces_worst_case_fct() {
        let topo = single_rooted_tree(4, 3, LinkParams::default(), LinkParams::default());
        // Many short flows keep arriving on the same bottleneck as one long flow.
        let recv = topo.hosts[11];
        let mut flows = vec![FlowSpec::new(1, topo.hosts[0], recv, 5_000_000)];
        for i in 0..40u64 {
            flows.push(
                FlowSpec::new(i + 2, topo.hosts[(i % 10 + 1) as usize], recv, 300_000)
                    .with_arrival(SimTime::from_millis(i)),
            );
        }
        let plain = run_flow_level(
            &topo,
            &flows,
            &FlowLevelConfig::for_protocol(FlowProtocol::Pdq),
            1,
        );
        let mut aged_cfg = FlowLevelConfig::for_protocol(FlowProtocol::Pdq);
        aged_cfg.aging_alpha = Some(4.0);
        let aged = run_flow_level(&topo, &flows, &aged_cfg, 1);
        let plain_max = plain.max_fct_secs().unwrap();
        let aged_max = aged.max_fct_secs().unwrap();
        assert!(
            aged_max <= plain_max,
            "aging must not make the worst flow worse: {aged_max} vs {plain_max}"
        );
    }

    #[test]
    fn deadline_throughput_degrades_with_load_for_all_protocols() {
        for proto in [FlowProtocol::Pdq, FlowProtocol::Rcp, FlowProtocol::D3] {
            let few = bottleneck_flows(&[100_000; 3], &[Some(20); 3]);
            let many = bottleneck_flows(&[100_000; 40], &[Some(20); 40]);
            let cfg = FlowLevelConfig::for_protocol(proto);
            let light = run_flow_level(&few.0, &few.1, &cfg, 1)
                .application_throughput()
                .unwrap();
            let heavy = run_flow_level(&many.0, &many.1, &cfg, 1)
                .application_throughput()
                .unwrap();
            assert!(light >= heavy, "{proto:?}: light {light} heavy {heavy}");
            assert!(
                light > 0.9,
                "{proto:?} should satisfy a light load: {light}"
            );
        }
    }

    #[test]
    fn max_min_respects_link_capacities() {
        let (topo, flows) = bottleneck_flows(&[1_000_000; 5], &[None; 5]);
        let cfg = FlowLevelConfig::for_protocol(FlowProtocol::Rcp);
        let res = run_flow_level(&topo, &flows, &cfg, 1);
        // Five equal flows share a 1 Gbps bottleneck fairly: each takes ~5x the solo time.
        let fcts: Vec<f64> = (1..=5).map(|i| res.fct_of(FlowId(i)).unwrap()).collect();
        let min = fcts.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = fcts.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min < 1.1,
            "fair sharing finishes everyone together: {fcts:?}"
        );
        assert!(min > 0.035, "five 1 MB flows on 1 Gbps need > 40 ms: {min}");
    }
}
