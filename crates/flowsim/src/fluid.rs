//! The fluid-model motivating example (§2.1, Figure 1).
//!
//! Three flows share one bottleneck; the paper compares fair sharing, SJF/EDF and D3
//! under an idealized fluid traffic model. This module reproduces that comparison for
//! arbitrary flow sets so the example (and its numbers) can be regenerated exactly.

/// A fluid flow: size in abstract units, optional deadline, and arrival order position
/// (used by the D3 model, which serves requests first-come first-reserve).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FluidFlow {
    /// Size in the same units as time × rate (rate is 1 unit/second).
    pub size: f64,
    /// Deadline in seconds, if any.
    pub deadline: Option<f64>,
}

/// Completion times under idealized fair sharing (processor sharing at unit rate).
pub fn fair_sharing_completion(flows: &[FluidFlow]) -> Vec<f64> {
    let n = flows.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| flows[a].size.partial_cmp(&flows[b].size).unwrap());
    let mut completion = vec![0.0; n];
    let mut t = 0.0;
    let mut served = 0.0;
    for (rank, &i) in order.iter().enumerate() {
        let remaining_flows = (n - rank) as f64;
        t += (flows[i].size - served) * remaining_flows;
        served = flows[i].size;
        completion[i] = t;
    }
    completion
}

/// Completion times when flows are served one by one in SJF order (no deadlines) —
/// which is also the EDF order whenever deadlines are agreeable with sizes.
pub fn sjf_completion(flows: &[FluidFlow]) -> Vec<f64> {
    serial_completion(flows, |a, b| a.size.partial_cmp(&b.size).unwrap())
}

/// Completion times when flows are served one by one in EDF order (flows without a
/// deadline go last, in size order).
pub fn edf_completion(flows: &[FluidFlow]) -> Vec<f64> {
    serial_completion(flows, |a, b| {
        let da = a.deadline.unwrap_or(f64::INFINITY);
        let db = b.deadline.unwrap_or(f64::INFINITY);
        da.partial_cmp(&db)
            .unwrap()
            .then(a.size.partial_cmp(&b.size).unwrap())
    })
}

fn serial_completion<F>(flows: &[FluidFlow], mut cmp: F) -> Vec<f64>
where
    F: FnMut(&FluidFlow, &FluidFlow) -> std::cmp::Ordering,
{
    let n = flows.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| cmp(&flows[a], &flows[b]));
    let mut completion = vec![0.0; n];
    let mut t = 0.0;
    for &i in &order {
        t += flows[i].size;
        completion[i] = t;
    }
    completion
}

/// Completion times under the paper's D3 fluid model for a given arrival order
/// (`order[k]` is the index of the k-th arriving flow).
///
/// Every RTT (here: every fluid step) each unfinished deadline flow requests
/// `remaining / time_to_deadline` and the link grants requests greedily **in arrival
/// order** as long as capacity remains; whatever is left over is shared equally among
/// all unfinished flows. Flows whose deadline has already passed keep transmitting with
/// the leftover share only. This reproduces Figure 1d, where the arrival order
/// `f_B, f_A, f_C` makes `f_A` miss its deadline, while `f_A, f_B, f_C` (the EDF order)
/// is the single permutation for which every deadline is met.
pub fn d3_completion(flows: &[FluidFlow], order: &[usize]) -> Vec<f64> {
    assert_eq!(flows.len(), order.len());
    let n = flows.len();
    let mut remaining: Vec<f64> = flows.iter().map(|f| f.size).collect();
    let mut completion = vec![f64::NAN; n];
    let dt = 1e-3;
    let mut t = 0.0;
    let mut active = n;
    while active > 0 && t < 1e4 {
        // Re-reserve each step, in arrival order (first-come first-reserve).
        let mut reserved = vec![0.0f64; n];
        let mut capacity_left = 1.0f64;
        for &i in order {
            if !completion[i].is_nan() {
                continue;
            }
            if let Some(d) = flows[i].deadline {
                if d > t {
                    let want = remaining[i] / (d - t);
                    let got = want.min(capacity_left);
                    reserved[i] = got;
                    capacity_left -= got;
                }
            }
        }
        let n_active = (0..n).filter(|&i| completion[i].is_nan()).count() as f64;
        let extra = (capacity_left / n_active).max(0.0);
        for i in 0..n {
            if completion[i].is_nan() {
                remaining[i] -= (reserved[i] + extra) * dt;
                if remaining[i] <= 1e-9 {
                    completion[i] = t + dt;
                    active -= 1;
                }
            }
        }
        t += dt;
    }
    completion
}

/// Mean of a completion-time vector.
pub fn mean(times: &[f64]) -> f64 {
    times.iter().sum::<f64>() / times.len() as f64
}

/// How many flows met their deadline under the given completion times.
pub fn deadlines_met(flows: &[FluidFlow], completion: &[f64]) -> usize {
    flows
        .iter()
        .zip(completion)
        .filter(|(f, c)| match f.deadline {
            Some(d) => **c <= d + 1e-6,
            None => false,
        })
        .count()
}

/// The paper's Figure 1 flows: sizes 1/2/3, deadlines 1/4/6.
pub fn figure1_flows() -> Vec<FluidFlow> {
    vec![
        FluidFlow {
            size: 1.0,
            deadline: Some(1.0),
        },
        FluidFlow {
            size: 2.0,
            deadline: Some(4.0),
        },
        FluidFlow {
            size: 3.0,
            deadline: Some(6.0),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_fair_sharing_numbers() {
        let flows = figure1_flows();
        let c = fair_sharing_completion(&flows);
        assert!((c[0] - 3.0).abs() < 1e-9);
        assert!((c[1] - 5.0).abs() < 1e-9);
        assert!((c[2] - 6.0).abs() < 1e-9);
        assert!((mean(&c) - 14.0 / 3.0).abs() < 1e-9);
        // Only f_C meets its deadline under fair sharing.
        assert_eq!(deadlines_met(&flows, &c), 1);
    }

    #[test]
    fn figure1_sjf_and_edf_numbers() {
        let flows = figure1_flows();
        let sjf = sjf_completion(&flows);
        assert_eq!(sjf, vec![1.0, 3.0, 6.0]);
        assert!((mean(&sjf) - 10.0 / 3.0).abs() < 1e-9);
        let edf = edf_completion(&flows);
        assert_eq!(edf, sjf, "EDF and SJF agree on this instance");
        assert_eq!(deadlines_met(&flows, &edf), 3);
        // Every flow individually does at least as well as under fair sharing.
        let fair = fair_sharing_completion(&flows);
        for (s, f) in sjf.iter().zip(&fair) {
            assert!(s <= f);
        }
    }

    #[test]
    fn figure1_d3_with_bad_arrival_order_misses_a_deadline() {
        let flows = figure1_flows();
        // Arrival order f_B, f_A, f_C (indices 1, 0, 2): f_B reserves 0.5, f_A misses.
        let c = d3_completion(&flows, &[1, 0, 2]);
        assert!(c[1] <= 4.0 + 1e-3, "f_B finishes right at its deadline");
        assert!(c[0] > 1.0 + 1e-3, "f_A misses its 1s deadline: {}", c[0]);
        assert!(deadlines_met(&flows, &c) < 3);
    }

    #[test]
    fn figure1_d3_with_edf_order_meets_all_deadlines() {
        let flows = figure1_flows();
        // Arrival order f_A, f_B, f_C is the one case where D3 succeeds.
        let c = d3_completion(&flows, &[0, 1, 2]);
        assert_eq!(deadlines_met(&flows, &c), 3, "completions = {c:?}");
    }

    #[test]
    fn d3_misses_deadlines_for_most_arrival_orders() {
        // §2.1: out of the 3! = 6 permutations, D3 fails for 5.
        let flows = figure1_flows();
        let orders = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let failing = orders
            .iter()
            .filter(|o| deadlines_met(&flows, &d3_completion(&flows, *o)) < 3)
            .count();
        assert_eq!(failing, 5);
    }
}
