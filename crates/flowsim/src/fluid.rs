//! The fluid-model motivating example (§2.1, Figure 1).
//!
//! Three flows share one bottleneck; the paper compares fair sharing, SJF/EDF and D3
//! under an idealized fluid traffic model. This module reproduces that comparison for
//! arbitrary flow sets so the example (and its numbers) can be regenerated exactly.

/// A fluid flow: size in abstract units, optional deadline, and arrival order position
/// (used by the D3 model, which serves requests first-come first-reserve).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FluidFlow {
    /// Size in the same units as time × rate (rate is 1 unit/second).
    pub size: f64,
    /// Deadline in seconds, if any.
    pub deadline: Option<f64>,
}

/// Completion times under idealized fair sharing (processor sharing at unit rate).
pub fn fair_sharing_completion(flows: &[FluidFlow]) -> Vec<f64> {
    let n = flows.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| flows[a].size.partial_cmp(&flows[b].size).unwrap());
    let mut completion = vec![0.0; n];
    let mut t = 0.0;
    let mut served = 0.0;
    for (rank, &i) in order.iter().enumerate() {
        let remaining_flows = (n - rank) as f64;
        t += (flows[i].size - served) * remaining_flows;
        served = flows[i].size;
        completion[i] = t;
    }
    completion
}

/// Completion times when flows are served one by one in SJF order (no deadlines) —
/// which is also the EDF order whenever deadlines are agreeable with sizes.
pub fn sjf_completion(flows: &[FluidFlow]) -> Vec<f64> {
    serial_completion(flows, |a, b| a.size.partial_cmp(&b.size).unwrap())
}

/// Completion times when flows are served one by one in EDF order (flows without a
/// deadline go last, in size order).
pub fn edf_completion(flows: &[FluidFlow]) -> Vec<f64> {
    serial_completion(flows, |a, b| {
        let da = a.deadline.unwrap_or(f64::INFINITY);
        let db = b.deadline.unwrap_or(f64::INFINITY);
        da.partial_cmp(&db)
            .unwrap()
            .then(a.size.partial_cmp(&b.size).unwrap())
    })
}

fn serial_completion<F>(flows: &[FluidFlow], mut cmp: F) -> Vec<f64>
where
    F: FnMut(&FluidFlow, &FluidFlow) -> std::cmp::Ordering,
{
    let n = flows.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| cmp(&flows[a], &flows[b]));
    let mut completion = vec![0.0; n];
    let mut t = 0.0;
    for &i in &order {
        t += flows[i].size;
        completion[i] = t;
    }
    completion
}

/// Completion times under the paper's D3 fluid model for a given arrival order
/// (`order[k]` is the index of the k-th arriving flow).
///
/// Every RTT (here: every fluid step) each unfinished deadline flow requests
/// `remaining / time_to_deadline` and the link grants requests greedily **in arrival
/// order** as long as capacity remains; whatever is left over is shared equally among
/// all unfinished flows. Flows whose deadline has already passed keep transmitting with
/// the leftover share only. This reproduces Figure 1d, where the arrival order
/// `f_B, f_A, f_C` makes `f_A` miss its deadline, while `f_A, f_B, f_C` (the EDF order)
/// is the single permutation for which every deadline is met.
pub fn d3_completion(flows: &[FluidFlow], order: &[usize]) -> Vec<f64> {
    assert_eq!(flows.len(), order.len());
    let n = flows.len();
    let mut remaining: Vec<f64> = flows.iter().map(|f| f.size).collect();
    let mut completion = vec![f64::NAN; n];
    let dt = 1e-3;
    let mut t = 0.0;
    let mut active = n;
    while active > 0 && t < 1e4 {
        // Re-reserve each step, in arrival order (first-come first-reserve).
        let mut reserved = vec![0.0f64; n];
        let mut capacity_left = 1.0f64;
        for &i in order {
            if !completion[i].is_nan() {
                continue;
            }
            if let Some(d) = flows[i].deadline {
                if d > t {
                    let want = remaining[i] / (d - t);
                    let got = want.min(capacity_left);
                    reserved[i] = got;
                    capacity_left -= got;
                }
            }
        }
        let n_active = (0..n).filter(|&i| completion[i].is_nan()).count() as f64;
        let extra = (capacity_left / n_active).max(0.0);
        for i in 0..n {
            if completion[i].is_nan() {
                remaining[i] -= (reserved[i] + extra) * dt;
                if remaining[i] <= 1e-9 {
                    completion[i] = t + dt;
                    active -= 1;
                }
            }
        }
        t += dt;
    }
    completion
}

/// Which §2.1 scheduling discipline a fluid run uses — the three columns of the
/// paper's Figure 1 comparison, as one dispatchable value so the Scenario API's
/// `fluid` backend can select a model through the protocol registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FluidModel {
    /// Processor sharing at unit rate (the TCP/RCP/DCTCP idealization, Figure 1b).
    FairSharing,
    /// Serial SJF/EDF service — flows with deadlines go in EDF order, deadline-free
    /// flows afterwards in size order (the PDQ idealization, Figure 1c).
    SjfEdf,
    /// D3 first-come-first-reserve (Figure 1d). The *input order* of the flows is
    /// the arrival order the reservations are granted in.
    D3,
}

impl FluidModel {
    /// The table label the §2.1 comparison prints for this model.
    pub fn label(&self) -> &'static str {
        match self {
            FluidModel::FairSharing => "Fair sharing",
            FluidModel::SjfEdf => "SJF/EDF",
            FluidModel::D3 => "D3",
        }
    }
}

/// One flow's outcome in a fluid run: its identity, the fluid flow it was lowered
/// to, and the completion time (`None` when the D3 integrator's time cap expired
/// before the flow finished).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FluidFlowRecord {
    /// Caller-assigned flow id (scenario runs use the `FlowSpec` id).
    pub id: u64,
    /// The fluid flow that was scheduled.
    pub flow: FluidFlow,
    /// Completion time in seconds, if the flow finished.
    pub completion: Option<f64>,
}

impl FluidFlowRecord {
    /// Whether the flow carried a deadline and completed within it.
    pub fn met_deadline(&self) -> bool {
        match (self.flow.deadline, self.completion) {
            (Some(d), Some(c)) => c <= d + 1e-6,
            _ => false,
        }
    }
}

/// The outcome of one fluid-model run: per-flow records in input (arrival) order,
/// with the same headline metrics the flow-level simulator reports so the two
/// backends summarize identically.
#[derive(Clone, Debug, PartialEq)]
pub struct FluidResults {
    /// The scheduling discipline that produced these completions.
    pub model: FluidModel,
    /// Per-flow records, in the input (arrival) order of the run.
    pub flows: Vec<FluidFlowRecord>,
}

impl FluidResults {
    /// The record of flow `id`, if it was part of the run.
    pub fn flow(&self, id: u64) -> Option<&FluidFlowRecord> {
        self.flows.iter().find(|r| r.id == id)
    }

    /// Completed flows' FCTs in seconds, unsorted.
    fn fcts(&self) -> Vec<f64> {
        self.flows.iter().filter_map(|r| r.completion).collect()
    }

    /// Mean FCT in seconds over completed flows.
    pub fn mean_fct_secs(&self) -> Option<f64> {
        let fcts = self.fcts();
        if fcts.is_empty() {
            None
        } else {
            Some(fcts.iter().sum::<f64>() / fcts.len() as f64)
        }
    }

    /// FCT percentile in seconds over completed flows — the same index convention
    /// as the flow- and packet-level simulators.
    pub fn fct_percentile_secs(&self, percentile: f64) -> Option<f64> {
        let mut fcts = self.fcts();
        if fcts.is_empty() {
            return None;
        }
        fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((percentile / 100.0) * (fcts.len() as f64 - 1.0)).round() as usize;
        Some(fcts[idx.min(fcts.len() - 1)])
    }

    /// Maximum FCT in seconds over completed flows.
    pub fn max_fct_secs(&self) -> Option<f64> {
        self.fcts()
            .into_iter()
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// Number of flows that completed.
    pub fn completed(&self) -> usize {
        self.flows.iter().filter(|r| r.completion.is_some()).count()
    }

    /// Number of deadline-constrained flows.
    pub fn deadline_flows(&self) -> usize {
        self.flows
            .iter()
            .filter(|r| r.flow.deadline.is_some())
            .count()
    }

    /// Number of deadline-constrained flows that completed in time.
    pub fn deadlines_met(&self) -> usize {
        self.flows.iter().filter(|r| r.met_deadline()).count()
    }

    /// Number of deadline-constrained flows that missed their deadline (including
    /// ones that never completed).
    pub fn deadline_misses(&self) -> usize {
        self.deadline_flows() - self.deadlines_met()
    }

    /// The last completion time in seconds (0 when nothing completed).
    pub fn end_time_secs(&self) -> f64 {
        self.max_fct_secs().unwrap_or(0.0)
    }
}

/// Run one fluid model over `flows`, given as `(id, flow)` pairs whose slice order
/// is the arrival order (only the [`FluidModel::D3`] reservation loop is sensitive
/// to it — fair sharing and SJF/EDF schedule on sizes and deadlines alone).
///
/// The §2.1 model assumes every flow is present from time zero on one unit-rate
/// bottleneck; sizes are in units of rate × seconds.
pub fn run_fluid(model: FluidModel, flows: &[(u64, FluidFlow)]) -> FluidResults {
    let fluid: Vec<FluidFlow> = flows.iter().map(|(_, f)| *f).collect();
    let completion = match model {
        FluidModel::FairSharing => fair_sharing_completion(&fluid),
        FluidModel::SjfEdf => edf_completion(&fluid),
        FluidModel::D3 => {
            let order: Vec<usize> = (0..fluid.len()).collect();
            d3_completion(&fluid, &order)
        }
    };
    FluidResults {
        model,
        flows: flows
            .iter()
            .zip(&completion)
            .map(|(&(id, flow), &c)| FluidFlowRecord {
                id,
                flow,
                completion: if c.is_nan() { None } else { Some(c) },
            })
            .collect(),
    }
}

/// Mean of a completion-time vector.
pub fn mean(times: &[f64]) -> f64 {
    times.iter().sum::<f64>() / times.len() as f64
}

/// How many flows met their deadline under the given completion times.
pub fn deadlines_met(flows: &[FluidFlow], completion: &[f64]) -> usize {
    flows
        .iter()
        .zip(completion)
        .filter(|(f, c)| match f.deadline {
            Some(d) => **c <= d + 1e-6,
            None => false,
        })
        .count()
}

/// Fluid-model lower bounds on coflow completion times over one shared unit-rate
/// bottleneck, usable as a differential-test oracle against the discrete engines.
///
/// `coflow_work` holds each coflow's total work (sum of member sizes, in units of
/// rate × seconds). With every flow present from time zero, serving any `i`
/// coflows to completion requires pushing at least the `i` smallest coflows'
/// combined work through the single link, so the `i`-th smallest CCT of *any*
/// schedule — preemptive or not, coflow-aware or not — is at least the `i`-th
/// prefix sum of the sorted works. The returned vector is sorted ascending;
/// compare it elementwise against the schedule's sorted CCTs. (Later arrivals or
/// extra hops only delay completions, so the bound survives both.)
pub fn coflow_cct_lower_bounds(coflow_work: &[f64]) -> Vec<f64> {
    let mut work: Vec<f64> = coflow_work.to_vec();
    work.sort_by(|a, b| a.partial_cmp(b).expect("coflow work is comparable"));
    let mut acc = 0.0;
    work.iter()
        .map(|w| {
            acc += w;
            acc
        })
        .collect()
}

/// The paper's Figure 1 flows: sizes 1/2/3, deadlines 1/4/6.
pub fn figure1_flows() -> Vec<FluidFlow> {
    vec![
        FluidFlow {
            size: 1.0,
            deadline: Some(1.0),
        },
        FluidFlow {
            size: 2.0,
            deadline: Some(4.0),
        },
        FluidFlow {
            size: 3.0,
            deadline: Some(6.0),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coflow_cct_bound_holds_for_fluid_schedules() {
        // Three coflows on the shared bottleneck: A = {1, 2}, B = {3}, C = {1.5, 0.5}.
        let members = [(0usize, 1.0), (0, 2.0), (1, 3.0), (2, 1.5), (2, 0.5)];
        let work = vec![3.0, 3.0, 2.0];
        let bounds = coflow_cct_lower_bounds(&work);
        assert_eq!(bounds, vec![2.0, 5.0, 8.0]);

        let flows: Vec<FluidFlow> = members
            .iter()
            .map(|&(_, size)| FluidFlow {
                size,
                deadline: None,
            })
            .collect();
        for completion in [sjf_completion(&flows), fair_sharing_completion(&flows)] {
            let mut ccts = vec![0.0f64; work.len()];
            for (&(coflow, _), &c) in members.iter().zip(&completion) {
                ccts[coflow] = ccts[coflow].max(c);
            }
            ccts.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (cct, bound) in ccts.iter().zip(&bounds) {
                assert!(cct + 1e-9 >= *bound, "{ccts:?} vs {bounds:?}");
            }
            // Work conservation: the last coflow finishes exactly at the total work.
            assert!((ccts[2] - 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn figure1_fair_sharing_numbers() {
        let flows = figure1_flows();
        let c = fair_sharing_completion(&flows);
        assert!((c[0] - 3.0).abs() < 1e-9);
        assert!((c[1] - 5.0).abs() < 1e-9);
        assert!((c[2] - 6.0).abs() < 1e-9);
        assert!((mean(&c) - 14.0 / 3.0).abs() < 1e-9);
        // Only f_C meets its deadline under fair sharing.
        assert_eq!(deadlines_met(&flows, &c), 1);
    }

    #[test]
    fn figure1_sjf_and_edf_numbers() {
        let flows = figure1_flows();
        let sjf = sjf_completion(&flows);
        assert_eq!(sjf, vec![1.0, 3.0, 6.0]);
        assert!((mean(&sjf) - 10.0 / 3.0).abs() < 1e-9);
        let edf = edf_completion(&flows);
        assert_eq!(edf, sjf, "EDF and SJF agree on this instance");
        assert_eq!(deadlines_met(&flows, &edf), 3);
        // Every flow individually does at least as well as under fair sharing.
        let fair = fair_sharing_completion(&flows);
        for (s, f) in sjf.iter().zip(&fair) {
            assert!(s <= f);
        }
    }

    #[test]
    fn figure1_d3_with_bad_arrival_order_misses_a_deadline() {
        let flows = figure1_flows();
        // Arrival order f_B, f_A, f_C (indices 1, 0, 2): f_B reserves 0.5, f_A misses.
        let c = d3_completion(&flows, &[1, 0, 2]);
        assert!(c[1] <= 4.0 + 1e-3, "f_B finishes right at its deadline");
        assert!(c[0] > 1.0 + 1e-3, "f_A misses its 1s deadline: {}", c[0]);
        assert!(deadlines_met(&flows, &c) < 3);
    }

    #[test]
    fn figure1_d3_with_edf_order_meets_all_deadlines() {
        let flows = figure1_flows();
        // Arrival order f_A, f_B, f_C is the one case where D3 succeeds.
        let c = d3_completion(&flows, &[0, 1, 2]);
        assert_eq!(deadlines_met(&flows, &c), 3, "completions = {c:?}");
    }

    #[test]
    fn run_fluid_matches_the_direct_functions() {
        let flows = figure1_flows();
        let pairs: Vec<(u64, FluidFlow)> = flows
            .iter()
            .enumerate()
            .map(|(i, &f)| (i as u64 + 1, f))
            .collect();

        let fair = run_fluid(FluidModel::FairSharing, &pairs);
        assert_eq!(
            fair.flows
                .iter()
                .map(|r| r.completion.unwrap())
                .collect::<Vec<_>>(),
            fair_sharing_completion(&flows)
        );
        assert_eq!(fair.deadlines_met(), 1);
        assert_eq!(fair.deadline_misses(), 2);
        assert_eq!(fair.completed(), 3);
        assert!((fair.mean_fct_secs().unwrap() - 14.0 / 3.0).abs() < 1e-9);
        assert_eq!(fair.max_fct_secs(), Some(6.0));
        assert_eq!(fair.fct_percentile_secs(99.0), Some(6.0));
        assert_eq!(fair.flow(1).unwrap().completion, Some(3.0));
        assert!(fair.flow(9).is_none());

        let sjf = run_fluid(FluidModel::SjfEdf, &pairs);
        assert_eq!(
            sjf.flows
                .iter()
                .map(|r| r.completion.unwrap())
                .collect::<Vec<_>>(),
            edf_completion(&flows)
        );
        assert_eq!(sjf.deadlines_met(), 3);

        // D3's arrival order is the input slice order: B, A, C reproduces Fig. 1d.
        let bad: Vec<(u64, FluidFlow)> = vec![pairs[1], pairs[0], pairs[2]];
        let d3 = run_fluid(FluidModel::D3, &bad);
        let direct = d3_completion(&flows, &[1, 0, 2]);
        assert_eq!(d3.flow(1).unwrap().completion, Some(direct[0]));
        assert_eq!(d3.flow(2).unwrap().completion, Some(direct[1]));
        assert_eq!(d3.flow(3).unwrap().completion, Some(direct[2]));
        assert!(d3.deadline_misses() >= 1);
    }

    #[test]
    fn run_fluid_records_unfinished_flows_as_none() {
        // A deadline-free flow under D3 with a competing endless deadline stream
        // would finish eventually; the integrator's 1e4 s cap turns an absurdly
        // large flow into an unfinished record instead of a bogus completion.
        let huge = vec![(
            7u64,
            FluidFlow {
                size: 1e6,
                deadline: None,
            },
        )];
        let res = run_fluid(FluidModel::D3, &huge);
        assert_eq!(res.flows[0].completion, None);
        assert_eq!(res.completed(), 0);
        assert_eq!(res.mean_fct_secs(), None);
        assert_eq!(res.max_fct_secs(), None);
        assert_eq!(res.fct_percentile_secs(99.0), None);
        assert_eq!(res.end_time_secs(), 0.0);
        assert!(!res.flows[0].met_deadline());
        // An empty run is well-formed too.
        assert_eq!(run_fluid(FluidModel::FairSharing, &[]).flows.len(), 0);
    }

    #[test]
    fn model_labels_are_the_figure1_columns() {
        assert_eq!(FluidModel::FairSharing.label(), "Fair sharing");
        assert_eq!(FluidModel::SjfEdf.label(), "SJF/EDF");
        assert_eq!(FluidModel::D3.label(), "D3");
    }

    #[test]
    fn d3_misses_deadlines_for_most_arrival_orders() {
        // §2.1: out of the 3! = 6 permutations, D3 fails for 5.
        let flows = figure1_flows();
        let orders = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let failing = orders
            .iter()
            .filter(|o| deadlines_met(&flows, &d3_completion(&flows, *o)) < 3)
            .count();
        assert_eq!(failing, 5);
    }
}
