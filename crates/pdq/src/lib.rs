//! # pdq
//!
//! A from-scratch implementation of **PDQ — Preemptive Distributed Quick flow
//! scheduling** (Hong, Caesar, Godfrey, SIGCOMM 2012) on top of the
//! [`pdq_netsim`] packet-level simulator.
//!
//! PDQ completes data-center flows quickly and meets flow deadlines by letting switches
//! collaboratively emulate preemptive scheduling disciplines (Earliest Deadline First
//! and Shortest Job First): the most critical flows are allowed to send at the highest
//! possible rate while contending flows are explicitly *paused* at their senders, so
//! switches only need plain FIFO tail-drop queues.
//!
//! The crate implements every mechanism described in §3 and §6 of the paper:
//!
//! * [`sender::PdqSender`] — rate-paced sending, probing while paused, retransmission,
//!   Early Termination of hopeless deadline flows;
//! * [`receiver::PdqReceiver`] — scheduling-header echo and receiver rate capping;
//! * [`switch::PdqSwitchController`] — the per-egress-link flow controller
//!   (Algorithms 1–3: flow list of the most critical `2κ` flows, pause/accept
//!   consensus, Early Start, Dampening, Suppressed Probing) and the aggregate rate
//!   controller;
//! * [`comparator`] — the EDF-then-SJF criticality order plus the alternative sender
//!   disciplines evaluated in the paper (random criticality, flow-size estimation,
//!   aging to prevent starvation);
//! * [`host::PdqHostAgent`] — the per-host agent wiring senders and receivers
//!   together, including **Multipath PDQ** (flow striping over ECMP subflows with
//!   periodic re-balancing).
//!
//! ## Quick start
//!
//! ```
//! use pdq_netsim::{SimConfig, Simulator, FlowSpec, SimTime};
//! use pdq_topology::single_bottleneck;
//! use pdq::{install_pdq, PdqParams, Discipline};
//!
//! // Three senders share one 1 Gbps bottleneck towards a single receiver.
//! let topo = single_bottleneck(3, Default::default());
//! let hosts = topo.hosts.clone();
//! let receiver = *hosts.last().unwrap();
//! let mut sim = Simulator::new(topo.net, SimConfig::default());
//! install_pdq(&mut sim, &PdqParams::full(), &Discipline::Exact);
//! for (i, &h) in hosts[..3].iter().enumerate() {
//!     sim.add_flow(FlowSpec::new(i as u64 + 1, h, receiver, 100_000 * (i as u64 + 1)));
//! }
//! let results = sim.run();
//! assert_eq!(results.completed_count(), 3);
//! // SJF ordering: the smallest flow finishes first.
//! let fct = |id: u64| results.flow(pdq_netsim::FlowId(id)).unwrap().fct().unwrap();
//! assert!(fct(1) < fct(2) && fct(2) < fct(3));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod comparator;
pub mod host;
pub mod install;
pub mod params;
pub mod receiver;
pub mod sender;
pub mod switch;

pub use comparator::{Criticality, Discipline};
pub use host::{subflow_id, PdqHostAgent};
pub use install::{register_pdq, PdqInstaller};
pub use params::{PdqParams, PdqVariant};
pub use receiver::PdqReceiver;
pub use sender::{PdqSender, SenderStatus};
pub use switch::PdqSwitchController;

use pdq_netsim::Simulator;

/// Install PDQ on an entire simulator: a [`PdqHostAgent`] on every host and a
/// [`PdqSwitchController`] on every switch egress link.
///
/// This is the one-call setup used by the examples, the experiment harness and the
/// integration tests; for finer control install agents and controllers directly.
pub fn install_pdq(sim: &mut Simulator, params: &PdqParams, discipline: &Discipline) {
    let p = params.clone();
    let d = discipline.clone();
    sim.install_agents(move |_, node| {
        Box::new(PdqHostAgent::new(p.clone(), d.clone(), node.0 as u64 + 1))
    });
    let p = params.clone();
    sim.install_switch_controllers(move |_, _| Box::new(PdqSwitchController::new(p.clone())));
}
