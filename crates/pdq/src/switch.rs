//! The PDQ switch: per-egress-link flow controller and rate controller (§3.3).
//!
//! Each switch output link runs one [`PdqSwitchController`]. It keeps a small list of
//! the most critical flows traversing the link (§3.3.1), decides on every forward
//! packet whether the flow may send and at what rate (Algorithm 1 / 2, including Early
//! Start and Dampening), commits the global accept/pause decision when the ACK passes
//! back through the switch (Algorithm 3, including Suppressed Probing), and runs the
//! aggregate rate controller that keeps the queue drained (§3.3.3).

use std::collections::HashSet;

use pdq_netsim::{FlowId, Link, LinkController, LinkId, Packet, PacketKind, SimTime};

use crate::comparator::Criticality;
use crate::params::PdqParams;

/// Per-flow state kept by the switch (the `<R_i, P_i, D_i, T_i, RTT_i>` tuple of §3.3.1).
#[derive(Clone, Debug)]
struct FlowEntry {
    flow: FlowId,
    crit: Criticality,
    /// Most recent RTT estimate reported by the sender (seconds).
    rtt: f64,
    /// Rate allocated to the flow (`R_i`, bits/s), committed on the reverse path.
    rate: f64,
    /// Which link has paused the flow (`P_i`), committed on the reverse path.
    paused_by: Option<LinkId>,
}

/// The PDQ per-link switch controller.
pub struct PdqSwitchController {
    params: PdqParams,
    /// This controller's identity (the egress link id), used as the `pauseby` tag.
    my_id: LinkId,
    /// Flow list, sorted most critical first.
    flows: Vec<FlowEntry>,
    /// Aggregate rate budget `C` maintained by the rate controller (bits/s).
    c_rate: f64,
    /// `r_PDQ`: the share of the line rate given to PDQ traffic (bits/s).
    r_pdq: f64,
    /// EWMA of the RTTs reported in scheduling headers (seconds).
    rtt_avg: f64,
    /// The last time the switch accepted a flow that was not sending, with the flow id
    /// and the criticality it advertised (used by Dampening).
    last_nonsending_accept: Option<(FlowId, SimTime, Criticality)>,
    /// Flows seen since the last rate-controller tick that did not fit in the list
    /// (served by the RCP fallback).
    unlisted_seen: HashSet<FlowId>,
}

impl PdqSwitchController {
    /// Create a controller with the given parameters. The link identity and rate are
    /// learned in [`LinkController::init`].
    pub fn new(params: PdqParams) -> Self {
        let rtt = params.default_rtt.as_secs_f64();
        PdqSwitchController {
            params,
            my_id: LinkId(u32::MAX),
            flows: Vec::new(),
            c_rate: 0.0,
            r_pdq: 0.0,
            rtt_avg: rtt,
            last_nonsending_accept: None,
            unlisted_seen: HashSet::new(),
        }
    }

    /// Number of flows currently remembered (for tests and diagnostics).
    pub fn tracked_flows(&self) -> usize {
        self.flows.len()
    }

    /// The current aggregate rate budget `C` in bits/s (for tests and diagnostics).
    pub fn current_budget(&self) -> f64 {
        self.c_rate
    }

    fn remove_flow(&mut self, flow: FlowId) {
        self.flows.retain(|e| e.flow != flow);
    }

    fn position(&self, flow: FlowId) -> Option<usize> {
        self.flows.iter().position(|e| e.flow == flow)
    }

    fn sort_flows(&mut self) {
        self.flows.sort_by(|a, b| a.crit.cmp_priority(&b.crit));
    }

    /// κ: the number of flows currently sending on this link.
    fn kappa(&self) -> usize {
        self.flows.iter().filter(|e| e.rate > 0.0).count().max(1)
    }

    /// The maximum list size: `list_factor × κ`, at least `min_list_size`, at most `M`.
    fn list_limit(&self) -> usize {
        (self.params.list_factor * self.kappa())
            .max(self.params.min_list_size)
            .min(self.params.max_switch_flows)
    }

    fn trim_list(&mut self) {
        let limit = self.list_limit();
        if self.flows.len() > limit {
            self.flows.truncate(limit);
        }
    }

    /// Algorithm 2: the bandwidth available to the flow at list index `j`, accounting
    /// for Early Start (nearly-completed more-critical flows do not consume budget).
    fn avail_bw(&self, j: usize) -> f64 {
        let k = self.params.effective_k();
        let mut x = 0.0f64;
        let mut a = 0.0f64;
        for e in self.flows.iter().take(j) {
            let trtt = e.crit.expected_trans_time / e.rtt.max(1e-9);
            if trtt < k && x < k {
                x += trtt;
            } else {
                a += e.rate.max(0.0);
            }
            if a >= self.c_rate {
                return 0.0;
            }
        }
        (self.c_rate - a).max(0.0)
    }

    /// RCP-style fair share for flows that do not fit in the flow list (§3.3.1).
    fn rcp_fallback_rate(&self) -> f64 {
        let allocated: f64 = self.flows.iter().map(|e| e.rate.max(0.0)).sum();
        let leftover = (self.c_rate - allocated).max(0.0);
        leftover / self.unlisted_seen.len().max(1) as f64
    }

    /// Handle a flow that could not be admitted to the flow list. While the list is
    /// below the hard memory cap `M` the flow is simply paused — it keeps probing and
    /// is reconsidered as κ and the criticality ordering evolve. Only once the memory
    /// cap binds does PDQ fall back to RCP-style fair sharing of the leftover bandwidth
    /// (§3.3.1), trading optimality for not requiring per-flow state.
    fn reject_unlisted(&mut self, flow: FlowId, h: &mut pdq_netsim::SchedulingHeader) {
        if self.flows.len() >= self.params.max_switch_flows {
            self.unlisted_seen.insert(flow);
            let fair = self.rcp_fallback_rate();
            h.rate = h.rate.min(fair);
            if h.rate <= 0.0 {
                h.pause_by = Some(self.my_id);
            }
        } else {
            h.pause_by = Some(self.my_id);
        }
    }

    fn rate_controller_interval(&self) -> SimTime {
        // Two (average) RTTs, clamped to a sane data-center range: transient queueing
        // can inflate sender RTT reports, and an unbounded interval would leave a
        // depressed budget C in place long after the queue has drained.
        let secs = (self.params.rate_controller_interval_rtts * self.rtt_avg).clamp(50e-6, 1e-3);
        SimTime::from_secs_f64(secs)
    }

    /// Algorithm 1: process a forward-direction packet (SYN / DATA / probe).
    fn algorithm_receive_data(&mut self, pkt: &mut Packet, now: SimTime) {
        let flow = pkt.flow;
        let h = &mut pkt.sched;

        // Track the average RTT reported by senders (used by the rate controller and
        // Suppressed Probing).
        if h.rtt > 0.0 {
            self.rtt_avg = 0.875 * self.rtt_avg + 0.125 * h.rtt;
        }

        // "if P_H = other switch then remove the flow and return".
        if let Some(p) = h.pause_by {
            if p != self.my_id {
                self.remove_flow(flow);
                return;
            }
        }

        let crit = Criticality::new(h.deadline, h.expected_trans_time, flow);
        let rtt = if h.rtt > 0.0 {
            h.rtt
        } else {
            self.params.default_rtt.as_secs_f64()
        };

        // Locate or admit the flow in the list.
        let idx = match self.position(flow) {
            Some(i) => {
                self.flows[i].crit = crit;
                self.flows[i].rtt = rtt;
                self.sort_flows();
                self.position(flow).expect("entry still present after sort")
            }
            None => {
                let full = self.flows.len() >= self.list_limit();
                let more_critical_than_tail = self
                    .flows
                    .last()
                    .map(|tail| crit.more_critical_than(&tail.crit))
                    .unwrap_or(true);
                if !full || more_critical_than_tail {
                    self.flows.push(FlowEntry {
                        flow,
                        crit,
                        rtt,
                        rate: 0.0,
                        paused_by: None,
                    });
                    self.sort_flows();
                    self.trim_list();
                    match self.position(flow) {
                        Some(i) => i,
                        None => {
                            // Admitted but trimmed right back out: the working set (2κ)
                            // or the memory cap is full of more critical flows.
                            self.reject_unlisted(flow, h);
                            return;
                        }
                    }
                } else {
                    // List full and the flow is not critical enough.
                    self.reject_unlisted(flow, h);
                    return;
                }
            }
        };

        // W = min(Availbw(i), R_H). Leftover slivers below `min_accept_fraction` of the
        // PDQ budget are treated as "no bandwidth": granting them would let paused flows
        // trickle data out of criticality order without finishing meaningfully sooner.
        let avail = self.avail_bw(idx);
        let w = if avail < self.params.min_accept_fraction * self.r_pdq {
            0.0
        } else {
            avail.min(h.rate)
        };
        if w > 0.0 {
            let entry = &self.flows[idx];
            let not_sending = entry.paused_by.is_some() || entry.rate <= 0.0;
            // Dampening (§3.3.2) suppresses rapid flow switching when a burst of flows
            // arrives: after un-pausing one flow, further *equally or less* critical
            // paused flows must wait a short window (their acceptance would transiently
            // overcommit the link because the first flow's rate is not yet committed).
            // A strictly more critical flow is never delayed — preemption must stay
            // fast, and the transient overcommit resolves within an RTT once its rate
            // is committed and the less critical flow is paused again.
            let dampened = not_sending
                && self
                    .last_nonsending_accept
                    .map(|(f, t, c)| {
                        f != flow && now < t + self.params.damping && !crit.more_critical_than(&c)
                    })
                    .unwrap_or(false);
            // §3.3.2: flows are accepted *according to their criticality*. A paused flow
            // is therefore not un-paused while a more critical flow is also waiting to
            // send — otherwise whichever paused flow happens to probe first at a
            // switchover would grab the freed bandwidth out of order.
            let more_critical_waiting =
                not_sending && self.flows[..idx].iter().any(|e| e.rate <= 0.0);
            if dampened || more_critical_waiting {
                // Dampening: the switch very recently accepted another non-sending
                // flow; pause this one for now.
                h.pause_by = Some(self.my_id);
                self.flows[idx].paused_by = Some(self.my_id);
            } else {
                h.pause_by = None;
                h.rate = w;
                if not_sending {
                    self.last_nonsending_accept = Some((flow, now, crit));
                }
            }
        } else {
            h.pause_by = Some(self.my_id);
            self.flows[idx].paused_by = Some(self.my_id);
        }
    }

    /// Algorithm 3: process a reverse-direction packet (SYN-ACK / ACK).
    fn algorithm_receive_ack(&mut self, pkt: &mut Packet) {
        let flow = pkt.flow;
        let h = &mut pkt.sched;
        if let Some(p) = h.pause_by {
            if p != self.my_id {
                self.remove_flow(flow);
            }
        }
        if h.pause_by.is_some() {
            h.rate = 0.0;
        }
        if let Some(i) = self.position(flow) {
            self.flows[i].paused_by = h.pause_by;
            if self.params.suppressed_probing {
                h.inter_probe_rtts = h.inter_probe_rtts.max(self.params.probing_x * i as f64);
            }
            self.flows[i].rate = h.rate;
        }
    }
}

impl LinkController for PdqSwitchController {
    fn init(&mut self, now: SimTime, link: &Link) -> Option<SimTime> {
        self.my_id = link.id;
        self.r_pdq = link.rate_bps * self.params.r_pdq_fraction;
        self.c_rate = self.r_pdq;
        Some(now + self.rate_controller_interval())
    }

    fn on_forward(&mut self, packet: &mut Packet, now: SimTime, _link: &Link) {
        match packet.kind {
            PacketKind::Term => {
                // The flow is finishing (or giving up): forget it immediately so the
                // next most critical flow can be unpaused.
                self.remove_flow(packet.flow);
            }
            k if k.carries_forward_header() => self.algorithm_receive_data(packet, now),
            _ => {}
        }
    }

    fn on_reverse(&mut self, packet: &mut Packet, _now: SimTime, _link: &Link) {
        match packet.kind {
            PacketKind::Ack | PacketKind::SynAck => self.algorithm_receive_ack(packet),
            PacketKind::TermAck => self.remove_flow(packet.flow),
            _ => {}
        }
    }

    fn on_tick(&mut self, now: SimTime, link: &Link) -> Option<SimTime> {
        // Rate controller (§3.3.3): C = max(0, r_PDQ − q / (2 RTT)).
        let q_bits = link.queue_bytes() as f64 * 8.0;
        let window = self.rate_controller_interval().as_secs_f64();
        self.c_rate = (self.r_pdq - q_bits / window.max(1e-9)).max(0.0);
        self.unlisted_seen.clear();
        Some(now + self.rate_controller_interval())
    }

    fn name(&self) -> &'static str {
        "pdq-switch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::{LinkParams, Network, NodeId, SchedulingHeader};

    const GBPS: f64 = 1e9;

    fn make_link() -> (Network, LinkId) {
        let mut net = Network::new();
        let s = net.add_switch("s");
        let h = net.add_host("h");
        let (l, _) = net.add_duplex_link(s, h, LinkParams::default());
        (net, l)
    }

    fn controller(params: PdqParams) -> (Network, LinkId, PdqSwitchController) {
        let (net, l) = make_link();
        let mut ctl = PdqSwitchController::new(params);
        let first_tick = ctl.init(SimTime::ZERO, net.link(l));
        assert!(first_tick.is_some());
        (net, l, ctl)
    }

    fn fwd_packet(flow: u64, deadline: Option<SimTime>, t: f64, rtt: f64) -> Packet {
        let mut p = Packet::control(PacketKind::Syn, FlowId(flow), NodeId(1), NodeId(0));
        p.sched = SchedulingHeader::new(GBPS);
        p.sched.deadline = deadline;
        p.sched.expected_trans_time = t;
        p.sched.rtt = rtt;
        p
    }

    fn ack_of(p: &Packet) -> Packet {
        p.make_echo(PacketKind::Ack, 0)
    }

    #[test]
    fn single_flow_accepted_at_full_rate() {
        let (net, l, mut ctl) = controller(PdqParams::full());
        let mut p = fwd_packet(1, None, 0.001, 150e-6);
        ctl.on_forward(&mut p, SimTime::ZERO, net.link(l));
        assert_eq!(p.sched.pause_by, None);
        assert!((p.sched.rate - GBPS).abs() < 1.0);
        assert_eq!(ctl.tracked_flows(), 1);
    }

    #[test]
    fn less_critical_flow_is_paused_once_first_flow_sends() {
        let (net, l, mut ctl) = controller(PdqParams::full());
        let t0 = SimTime::ZERO;
        // Flow 1 (more critical: smaller T) accepted and committed via its ACK.
        let mut p1 = fwd_packet(1, None, 0.001, 150e-6);
        ctl.on_forward(&mut p1, t0, net.link(l));
        let mut a1 = ack_of(&p1);
        ctl.on_reverse(&mut a1, t0, net.link(l));
        // Flow 2 (less critical) now finds no available bandwidth.
        let mut p2 = fwd_packet(2, None, 0.010, 150e-6);
        ctl.on_forward(&mut p2, t0 + SimTime::from_millis(1), net.link(l));
        assert_eq!(p2.sched.pause_by, Some(l));
        assert_eq!(p2.sched.rate, GBPS); // rate untouched on the pause branch...
        let mut a2 = ack_of(&p2);
        ctl.on_reverse(&mut a2, t0, net.link(l));
        // ...but the reverse path zeroes the rate for paused flows.
        assert_eq!(a2.sched.rate, 0.0);
        assert_eq!(ctl.tracked_flows(), 2);
    }

    #[test]
    fn more_critical_flow_preempts() {
        let (net, l, mut ctl) = controller(PdqParams::full());
        let t0 = SimTime::ZERO;
        // Long flow accepted first.
        let mut p1 = fwd_packet(1, None, 0.010, 150e-6);
        ctl.on_forward(&mut p1, t0, net.link(l));
        let mut a1 = ack_of(&p1);
        ctl.on_reverse(&mut a1, t0, net.link(l));
        assert!(a1.sched.rate > 0.0);
        // A new, shorter flow arrives: it is more critical, and the long flow's full
        // allocation does not block it because Availbw only counts flows *above* it.
        // Wait past the dampening window so the burst-suppression logic does not bite.
        let later = t0 + SimTime::from_millis(1);
        let mut p2 = fwd_packet(2, None, 0.001, 150e-6);
        ctl.on_forward(&mut p2, later, net.link(l));
        assert_eq!(p2.sched.pause_by, None, "short flow must be accepted");
        // The long flow's next data packet now sees zero available bandwidth once the
        // short flow's rate is committed.
        let mut a2 = ack_of(&p2);
        ctl.on_reverse(&mut a2, later, net.link(l));
        let mut p1b = fwd_packet(1, None, 0.010, 150e-6);
        p1b.kind = PacketKind::Data;
        ctl.on_forward(&mut p1b, later + SimTime::from_micros(10), net.link(l));
        assert_eq!(p1b.sched.pause_by, Some(l), "long flow must be preempted");
    }

    #[test]
    fn deadline_flow_beats_shorter_no_deadline_flow() {
        let (net, l, mut ctl) = controller(PdqParams::full());
        let t0 = SimTime::ZERO;
        let mut p1 = fwd_packet(1, None, 0.0001, 150e-6); // tiny, no deadline
        ctl.on_forward(&mut p1, t0, net.link(l));
        let mut a1 = ack_of(&p1);
        ctl.on_reverse(&mut a1, t0, net.link(l));
        let later = t0 + SimTime::from_millis(1);
        let mut p2 = fwd_packet(2, Some(SimTime::from_millis(30)), 0.005, 150e-6);
        ctl.on_forward(&mut p2, later, net.link(l));
        assert_eq!(
            p2.sched.pause_by, None,
            "EDF: deadline flow outranks SJF tie-break"
        );
    }

    #[test]
    fn early_start_admits_next_flow_when_current_is_nearly_done() {
        let mut params = PdqParams::full();
        params.damping = SimTime::ZERO;
        let (net, l, mut ctl) = controller(params);
        let t0 = SimTime::ZERO;
        // Flow 1 is nearly completed: T = 0.1 RTT < K = 2 RTTs.
        let rtt = 150e-6;
        let mut p1 = fwd_packet(1, None, 0.1 * rtt, rtt);
        ctl.on_forward(&mut p1, t0, net.link(l));
        let mut a1 = ack_of(&p1);
        ctl.on_reverse(&mut a1, t0, net.link(l));
        assert!(a1.sched.rate > 0.0);
        // Flow 2 should be admitted as well thanks to Early Start.
        let mut p2 = fwd_packet(2, None, 0.010, rtt);
        ctl.on_forward(&mut p2, t0 + SimTime::from_micros(10), net.link(l));
        assert_eq!(
            p2.sched.pause_by, None,
            "Early Start should admit the next flow"
        );
        assert!(p2.sched.rate > 0.0);
    }

    #[test]
    fn without_early_start_next_flow_waits() {
        let mut params = PdqParams::variant(crate::params::PdqVariant::Basic);
        params.damping = SimTime::ZERO;
        let (net, l, mut ctl) = controller(params);
        let t0 = SimTime::ZERO;
        let rtt = 150e-6;
        let mut p1 = fwd_packet(1, None, 0.1 * rtt, rtt);
        ctl.on_forward(&mut p1, t0, net.link(l));
        let mut a1 = ack_of(&p1);
        ctl.on_reverse(&mut a1, t0, net.link(l));
        let mut p2 = fwd_packet(2, None, 0.010, rtt);
        ctl.on_forward(&mut p2, t0 + SimTime::from_micros(10), net.link(l));
        assert_eq!(
            p2.sched.pause_by,
            Some(l),
            "PDQ(Basic) must not early-start"
        );
    }

    #[test]
    fn dampening_pauses_second_new_flow_in_a_burst() {
        let (net, l, mut ctl) = controller(PdqParams::full()); // damping = 150 us (1 RTT)
        let t0 = SimTime::ZERO;
        let mut p1 = fwd_packet(1, None, 0.005, 150e-6);
        ctl.on_forward(&mut p1, t0, net.link(l));
        assert_eq!(p1.sched.pause_by, None);
        // Second flow arrives 10 µs later — within the dampening window. Even though
        // flow 1's rate is not yet committed (so Availbw still looks free), dampening
        // pauses it.
        let mut p2 = fwd_packet(2, None, 0.006, 150e-6);
        ctl.on_forward(&mut p2, t0 + SimTime::from_micros(10), net.link(l));
        assert_eq!(p2.sched.pause_by, Some(l));
    }

    #[test]
    fn suppressed_probing_sets_inter_probe_time() {
        let (net, l, mut ctl) = controller(PdqParams::full());
        let t0 = SimTime::ZERO;
        // Three flows, committed in criticality order 1, 2, 3.
        for (i, t) in [(1u64, 0.001), (2, 0.002), (3, 0.003)] {
            let mut p = fwd_packet(i, None, t, 150e-6);
            ctl.on_forward(&mut p, t0, net.link(l));
            let mut a = ack_of(&p);
            ctl.on_reverse(&mut a, t0, net.link(l));
        }
        // The least critical flow (index 2) gets I_H >= X * 2 = 0.4 RTTs.
        let mut p3 = fwd_packet(3, None, 0.003, 150e-6);
        ctl.on_forward(&mut p3, t0 + SimTime::from_millis(1), net.link(l));
        let mut a3 = ack_of(&p3);
        ctl.on_reverse(&mut a3, t0 + SimTime::from_millis(1), net.link(l));
        assert!(a3.sched.inter_probe_rtts >= 0.4 - 1e-9);
        // The most critical flow keeps whatever the sender asked for (zero here).
        let mut p1 = fwd_packet(1, None, 0.001, 150e-6);
        ctl.on_forward(&mut p1, t0 + SimTime::from_millis(1), net.link(l));
        let mut a1 = ack_of(&p1);
        ctl.on_reverse(&mut a1, t0 + SimTime::from_millis(1), net.link(l));
        assert_eq!(a1.sched.inter_probe_rtts, 0.0);
    }

    #[test]
    fn term_removes_flow_state() {
        let (net, l, mut ctl) = controller(PdqParams::full());
        let mut p = fwd_packet(7, None, 0.001, 150e-6);
        ctl.on_forward(&mut p, SimTime::ZERO, net.link(l));
        assert_eq!(ctl.tracked_flows(), 1);
        let mut term = Packet::control(PacketKind::Term, FlowId(7), NodeId(1), NodeId(0));
        ctl.on_forward(&mut term, SimTime::ZERO, net.link(l));
        assert_eq!(ctl.tracked_flows(), 0);
    }

    #[test]
    fn flow_paused_elsewhere_is_forgotten() {
        let (net, l, mut ctl) = controller(PdqParams::full());
        let mut p = fwd_packet(9, None, 0.001, 150e-6);
        ctl.on_forward(&mut p, SimTime::ZERO, net.link(l));
        assert_eq!(ctl.tracked_flows(), 1);
        // The same flow shows up paused by a different switch.
        let mut p2 = fwd_packet(9, None, 0.001, 150e-6);
        p2.sched.pause_by = Some(LinkId(999));
        ctl.on_forward(&mut p2, SimTime::ZERO, net.link(l));
        assert_eq!(ctl.tracked_flows(), 0);
        // And its header must not be modified by this switch.
        assert_eq!(p2.sched.pause_by, Some(LinkId(999)));
    }

    #[test]
    fn rcp_fallback_when_hard_cap_reached() {
        let mut params = PdqParams::full();
        params.max_switch_flows = 2;
        params.min_list_size = 1;
        params.damping = SimTime::ZERO;
        let (net, l, mut ctl) = controller(params);
        let t0 = SimTime::ZERO;
        // Two critical flows fill the list.
        for (i, t) in [(1u64, 0.001), (2, 0.002)] {
            let mut p = fwd_packet(i, None, t, 150e-6);
            ctl.on_forward(&mut p, t0, net.link(l));
            let mut a = ack_of(&p);
            ctl.on_reverse(&mut a, t0, net.link(l));
        }
        assert_eq!(ctl.tracked_flows(), 2);
        // A third, less critical flow does not fit: it gets an RCP fair-share rate
        // (here: zero leftover, so it is paused) rather than list admission.
        let mut p3 = fwd_packet(3, None, 0.005, 150e-6);
        ctl.on_forward(&mut p3, t0 + SimTime::from_millis(1), net.link(l));
        assert_eq!(ctl.tracked_flows(), 2);
        assert_eq!(p3.sched.pause_by, Some(l));
    }

    #[test]
    fn rate_controller_shrinks_budget_when_queue_builds() {
        let (mut net, l, mut ctl) = controller(PdqParams::full());
        assert!((ctl.current_budget() - GBPS).abs() < 1.0);
        // Put 100 KB in the queue and tick: C must drop below the line rate.
        net.link_mut(l).queue_bytes = 100_000;
        let next = ctl.on_tick(SimTime::from_millis(1), net.link(l));
        assert!(next.unwrap() > SimTime::from_millis(1));
        assert!(ctl.current_budget() < GBPS);
        // Empty queue restores the full budget.
        net.link_mut(l).queue_bytes = 0;
        ctl.on_tick(SimTime::from_millis(2), net.link(l));
        assert!((ctl.current_budget() - GBPS).abs() < 1.0);
    }

    /// The full pause/resume state machine of one contended link: a less critical
    /// flow is paused while the critical flow holds the link, keeps probing (and
    /// stays paused), and is resumed at the full rate as soon as the critical flow
    /// terminates.
    #[test]
    fn paused_flow_resumes_after_critical_flow_terminates() {
        let (net, l, mut ctl) = controller(PdqParams::full());
        let t0 = SimTime::ZERO;
        // Flow 1 (critical) is accepted and its rate committed on the reverse path.
        let mut p1 = fwd_packet(1, None, 0.001, 150e-6);
        ctl.on_forward(&mut p1, t0, net.link(l));
        let mut a1 = ack_of(&p1);
        ctl.on_reverse(&mut a1, t0, net.link(l));
        assert!(a1.sched.rate > 0.0);

        // Flow 2 (less critical) arrives: paused, and its ACK zeroes the rate.
        let t1 = t0 + SimTime::from_millis(1);
        let mut p2 = fwd_packet(2, None, 0.010, 150e-6);
        ctl.on_forward(&mut p2, t1, net.link(l));
        assert_eq!(p2.sched.pause_by, Some(l));
        let mut a2 = ack_of(&p2);
        ctl.on_reverse(&mut a2, t1, net.link(l));
        assert_eq!(a2.sched.rate, 0.0);

        // While flow 1 still holds the link, flow 2's probes keep being paused.
        let t2 = t1 + SimTime::from_millis(1);
        let mut probe = fwd_packet(2, None, 0.010, 150e-6);
        ctl.on_forward(&mut probe, t2, net.link(l));
        assert_eq!(probe.sched.pause_by, Some(l), "probe must stay paused");
        let mut pa = ack_of(&probe);
        ctl.on_reverse(&mut pa, t2, net.link(l));

        // Flow 1 finishes: its TERM removes the switch state...
        let mut term = Packet::control(PacketKind::Term, FlowId(1), NodeId(1), NodeId(0));
        ctl.on_forward(&mut term, t2 + SimTime::from_micros(10), net.link(l));
        assert_eq!(ctl.tracked_flows(), 1);

        // ...and flow 2's next probe (past the dampening window) is resumed at the
        // full PDQ rate.
        let t3 = t2 + SimTime::from_millis(1);
        let mut resume = fwd_packet(2, None, 0.010, 150e-6);
        ctl.on_forward(&mut resume, t3, net.link(l));
        assert_eq!(resume.sched.pause_by, None, "flow must resume after TERM");
        assert!((resume.sched.rate - GBPS).abs() < 1.0);
        let mut ra = ack_of(&resume);
        ctl.on_reverse(&mut ra, t3, net.link(l));
        assert!(ra.sched.rate > 0.0);
    }

    #[test]
    fn receiver_capped_rate_is_respected() {
        // If a prior hop (or the receiver) lowered R_H, the switch can only lower it
        // further, never raise it.
        let (net, l, mut ctl) = controller(PdqParams::full());
        let mut p = fwd_packet(1, None, 0.001, 150e-6);
        p.sched.rate = 3e8; // someone upstream capped the flow at 300 Mbps
        ctl.on_forward(&mut p, SimTime::ZERO, net.link(l));
        assert_eq!(p.sched.pause_by, None);
        assert!(p.sched.rate <= 3e8 + 1.0);
    }
}
