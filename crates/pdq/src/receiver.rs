//! The PDQ receiver (§3.2).
//!
//! The receiver's job is deliberately small: echo the scheduling header of every
//! forward packet back to the sender on the corresponding ACK, cap the granted rate at
//! what the receiver can absorb, and track how many in-order bytes have arrived so the
//! flow can be declared complete.

use pdq_netsim::{Ctx, FlowId, Packet, PacketKind};

/// Per-flow PDQ receiver state.
#[derive(Debug)]
pub struct PdqReceiver {
    flow: FlowId,
    /// Total application bytes expected.
    size: u64,
    /// Contiguous bytes received so far (cumulative ACK value).
    received_upto: u64,
    /// The maximum rate the receiver can absorb (bits/s); the echoed header's rate is
    /// capped at this value so the sender never overruns the receiver (§3.2).
    max_rate: f64,
    /// True for M-PDQ subflows: completion is reported by the sender side instead
    /// (subflow sizes change during re-balancing, so only the sender knows when a
    /// subflow is done).
    is_subflow: bool,
    completed: bool,
}

impl PdqReceiver {
    /// Create receiver state for a flow of `size` bytes.
    pub fn new(flow: FlowId, size: u64, max_rate: f64, is_subflow: bool) -> Self {
        PdqReceiver {
            flow,
            size,
            received_upto: 0,
            max_rate,
            is_subflow,
            completed: false,
        }
    }

    /// Contiguous bytes received.
    pub fn received(&self) -> u64 {
        self.received_upto
    }

    /// True once all expected bytes have arrived.
    pub fn is_complete(&self) -> bool {
        self.received_upto >= self.size
    }

    /// Handle a forward-direction packet addressed to this receiver, emitting the echo.
    pub fn on_packet(&mut self, pkt: &Packet, ctx: &mut Ctx) {
        match pkt.kind {
            PacketKind::Syn => {
                let mut echo = pkt.make_echo(PacketKind::SynAck, self.received_upto);
                self.cap_rate(&mut echo);
                ctx.send(echo);
            }
            PacketKind::Data => {
                if pkt.seq == self.received_upto {
                    self.received_upto += pkt.payload as u64;
                }
                // Out-of-order or duplicate data is ignored (go-back-N); the cumulative
                // ACK tells the sender where to resume.
                let mut echo = pkt.make_echo(PacketKind::Ack, self.received_upto);
                self.cap_rate(&mut echo);
                ctx.send(echo);
                if self.is_complete() && !self.completed && !self.is_subflow {
                    self.completed = true;
                    ctx.flow_completed(self.flow);
                }
            }
            PacketKind::Probe => {
                let mut echo = pkt.make_echo(PacketKind::Ack, self.received_upto);
                self.cap_rate(&mut echo);
                ctx.send(echo);
            }
            PacketKind::Term => {
                let echo = pkt.make_echo(PacketKind::TermAck, self.received_upto);
                ctx.send(echo);
            }
            _ => {}
        }
    }

    fn cap_rate(&self, echo: &mut Packet) {
        if echo.sched.rate > self.max_rate {
            echo.sched.rate = self.max_rate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::{Action, FlowInfo, NodeId, SimTime};
    use std::collections::HashMap;

    fn ctx_map() -> HashMap<FlowId, FlowInfo> {
        HashMap::new()
    }

    fn data(seq: u64, payload: u32) -> Packet {
        let mut p = Packet::data(FlowId(1), NodeId(0), NodeId(1), seq, payload);
        p.sched.rate = 1e9;
        p.sched.expected_trans_time = 0.5;
        p
    }

    fn sent(actions: &[Action]) -> Vec<&Packet> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(p) => Some(p),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn syn_gets_synack_echoing_header() {
        let map = ctx_map();
        let mut r = PdqReceiver::new(FlowId(1), 10_000, 1e9, false);
        let mut ctx = Ctx::new(SimTime::ZERO, &map);
        let mut syn = Packet::control(PacketKind::Syn, FlowId(1), NodeId(0), NodeId(1));
        syn.sched.expected_trans_time = 0.123;
        r.on_packet(&syn, &mut ctx);
        let actions = ctx.take_actions();
        let pkts = sent(&actions);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].kind, PacketKind::SynAck);
        assert!(pkts[0].reverse);
        assert_eq!(pkts[0].sched.expected_trans_time, 0.123);
    }

    #[test]
    fn in_order_data_advances_cumulative_ack_and_completes() {
        let map = ctx_map();
        let mut r = PdqReceiver::new(FlowId(1), 3_000, 1e9, false);
        let mut ctx = Ctx::new(SimTime::ZERO, &map);
        r.on_packet(&data(0, 1_500), &mut ctx);
        r.on_packet(&data(1_500, 1_500), &mut ctx);
        let actions = ctx.take_actions();
        let pkts = sent(&actions);
        assert_eq!(pkts[0].ack, 1_500);
        assert_eq!(pkts[1].ack, 3_000);
        assert!(r.is_complete());
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::FlowCompleted(f) if *f == FlowId(1))));
    }

    #[test]
    fn out_of_order_data_repeats_cumulative_ack() {
        let map = ctx_map();
        let mut r = PdqReceiver::new(FlowId(1), 6_000, 1e9, false);
        let mut ctx = Ctx::new(SimTime::ZERO, &map);
        r.on_packet(&data(0, 1_500), &mut ctx);
        // A gap: packet at 3000 arrives before 1500.
        r.on_packet(&data(3_000, 1_500), &mut ctx);
        let actions = ctx.take_actions();
        let pkts = sent(&actions);
        assert_eq!(
            pkts[1].ack, 1_500,
            "gap must not advance the cumulative ACK"
        );
        assert_eq!(r.received(), 1_500);
    }

    #[test]
    fn receiver_caps_granted_rate() {
        let map = ctx_map();
        let mut r = PdqReceiver::new(FlowId(1), 10_000, 1e8, false); // 100 Mbps receiver
        let mut ctx = Ctx::new(SimTime::ZERO, &map);
        r.on_packet(&data(0, 1_000), &mut ctx);
        let actions = ctx.take_actions();
        assert_eq!(sent(&actions)[0].sched.rate, 1e8);
    }

    #[test]
    fn subflow_completion_is_left_to_the_sender() {
        let map = ctx_map();
        let mut r = PdqReceiver::new(FlowId(1), 1_000, 1e9, true);
        let mut ctx = Ctx::new(SimTime::ZERO, &map);
        r.on_packet(&data(0, 1_000), &mut ctx);
        let actions = ctx.take_actions();
        assert!(r.is_complete());
        assert!(!actions
            .iter()
            .any(|a| matches!(a, Action::FlowCompleted(_))));
    }

    #[test]
    fn probe_and_term_are_echoed() {
        let map = ctx_map();
        let mut r = PdqReceiver::new(FlowId(1), 1_000, 1e9, false);
        let mut ctx = Ctx::new(SimTime::ZERO, &map);
        let probe = Packet::control(PacketKind::Probe, FlowId(1), NodeId(0), NodeId(1));
        r.on_packet(&probe, &mut ctx);
        let term = Packet::control(PacketKind::Term, FlowId(1), NodeId(0), NodeId(1));
        r.on_packet(&term, &mut ctx);
        let actions = ctx.take_actions();
        let pkts = sent(&actions);
        assert_eq!(pkts[0].kind, PacketKind::Ack);
        assert_eq!(pkts[1].kind, PacketKind::TermAck);
    }
}
