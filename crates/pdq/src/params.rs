//! PDQ protocol parameters and feature variants.

use pdq_netsim::SimTime;

/// Which optional PDQ mechanisms are enabled. The paper evaluates four variants
/// (Figure 3): `Basic`, `ES` (Early Start), `ES+ET` (plus Early Termination) and
/// `Full` (plus Suppressed Probing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PdqVariant {
    /// No Early Start, no Early Termination, no Suppressed Probing.
    Basic,
    /// Early Start only.
    EarlyStart,
    /// Early Start + Early Termination.
    EarlyStartEarlyTermination,
    /// Early Start + Early Termination + Suppressed Probing (the complete protocol).
    Full,
}

impl PdqVariant {
    /// Human-readable label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            PdqVariant::Basic => "PDQ(Basic)",
            PdqVariant::EarlyStart => "PDQ(ES)",
            PdqVariant::EarlyStartEarlyTermination => "PDQ(ES+ET)",
            PdqVariant::Full => "PDQ(Full)",
        }
    }
}

/// All tunable PDQ parameters, with defaults from the paper.
#[derive(Clone, Debug)]
pub struct PdqParams {
    /// Enable Early Start (§3.3.2). Default true.
    pub early_start: bool,
    /// Enable Early Termination (§3.1). Default true.
    pub early_termination: bool,
    /// Enable Suppressed Probing (§3.3.2). Default true.
    pub suppressed_probing: bool,
    /// Early Start threshold `K` (in RTTs of remaining transmission time). The paper
    /// recommends 1–2 and uses 2.
    pub early_start_k: f64,
    /// Suppressed Probing constant `X` (in RTTs per queued flow). The paper uses 0.2.
    pub probing_x: f64,
    /// Dampening window: after accepting a non-sending flow, a switch pauses further
    /// non-sending flows for this long (§3.3.2 "Dampening").
    pub damping: SimTime,
    /// Rate-controller update period, in multiples of the average RTT (§3.3.3 uses 2).
    pub rate_controller_interval_rtts: f64,
    /// Fallback RTT used before any measurement exists (data-center scale, ~150 µs).
    pub default_rtt: SimTime,
    /// Fraction of the link rate given to PDQ traffic (`r_PDQ`); 1.0 when PDQ is the
    /// only protocol on the network.
    pub r_pdq_fraction: f64,
    /// Hard upper bound `M` on the number of flows a switch stores per link; beyond it
    /// the least-critical flows fall back to RCP-style fair sharing (§3.3.1).
    pub max_switch_flows: usize,
    /// The switch keeps the `list_factor × κ` most critical flows (the paper stores 2κ).
    pub list_factor: usize,
    /// Never trim the flow list below this many entries (keeps enough state to unpause
    /// promptly even when κ is tiny).
    pub min_list_size: usize,
    /// Sender retransmission timeout floor.
    pub min_rto: SimTime,
    /// Upper bound on the sender's pacing gap. A switch can grant an arbitrarily small
    /// sliver of bandwidth (e.g. the RCP fallback share); without a cap the pacing
    /// timer of such a flow could be parked tens of milliseconds in the future and the
    /// flow would be unable to react to newly freed capacity.
    pub max_pace_gap: SimTime,
    /// A switch pauses a flow outright instead of granting it less than this fraction
    /// of the link rate. Transient slivers of leftover bandwidth (caused by the rate
    /// controller wobbling around the committed allocations) otherwise leak to paused
    /// flows and disturb the preemptive schedule.
    pub min_accept_fraction: f64,
    /// How many bytes an M-PDQ flow is split into per subflow boundary / how many
    /// subflows a multipath sender creates (1 = plain single-path PDQ).
    pub subflows: usize,
    /// M-PDQ re-balancing period in RTTs.
    pub rebalance_interval_rtts: f64,
    /// Coflow-aware criticality: a sender whose flow carries a
    /// [`pdq_netsim::CoflowTag`] advertises its *group's* bottleneck transmission
    /// time (never less than its own) and inherits the group deadline, so switches
    /// schedule whole coflows smallest-bottleneck-first / earliest-group-deadline-
    /// first. Untagged flows behave exactly as plain PDQ. Default false.
    pub coflow_aware: bool,
    /// RFC 9002-style token-bucket pacing: the sender drains token-bounded
    /// bursts at the granted rate instead of the fixed one-packet-per-gap
    /// schedule (better long-haul pipe utilization at WAN BDPs). `None` (the
    /// default) keeps the historical schedule byte for byte.
    pub pacer: Option<pdq_netsim::PacerConfig>,
}

impl Default for PdqParams {
    fn default() -> Self {
        PdqParams {
            early_start: true,
            early_termination: true,
            suppressed_probing: true,
            early_start_k: 2.0,
            probing_x: 0.2,
            // One RTT: long enough to cover the reverse-path delay before a freshly
            // un-paused flow's rate is committed (the overcommit window dampening is
            // meant to close), short enough not to leave the link idle between
            // consecutive sub-RTT flows (Figure 7).
            damping: SimTime::from_micros(150),
            rate_controller_interval_rtts: 2.0,
            default_rtt: SimTime::from_micros(150),
            r_pdq_fraction: 1.0,
            max_switch_flows: 10_000,
            list_factor: 2,
            min_list_size: 8,
            min_rto: SimTime::from_millis(2),
            max_pace_gap: SimTime::from_millis(20),
            min_accept_fraction: 0.01,
            subflows: 1,
            rebalance_interval_rtts: 2.0,
            coflow_aware: false,
            pacer: None,
        }
    }
}

impl PdqParams {
    /// Parameters for one of the paper's four variants.
    pub fn variant(v: PdqVariant) -> Self {
        let mut p = PdqParams::default();
        match v {
            PdqVariant::Basic => {
                p.early_start = false;
                p.early_termination = false;
                p.suppressed_probing = false;
            }
            PdqVariant::EarlyStart => {
                p.early_termination = false;
                p.suppressed_probing = false;
            }
            PdqVariant::EarlyStartEarlyTermination => {
                p.suppressed_probing = false;
            }
            PdqVariant::Full => {}
        }
        p
    }

    /// The complete protocol (PDQ(Full)).
    pub fn full() -> Self {
        Self::variant(PdqVariant::Full)
    }

    /// The complete protocol with coflow-aware criticality (C-PDQ).
    pub fn coflow() -> Self {
        let mut p = Self::full();
        p.coflow_aware = true;
        p
    }

    /// The effective Early Start threshold: 0 when Early Start is disabled.
    pub fn effective_k(&self) -> f64 {
        if self.early_start {
            self.early_start_k
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = PdqParams::default();
        assert_eq!(p.early_start_k, 2.0);
        assert_eq!(p.probing_x, 0.2);
        assert_eq!(p.rate_controller_interval_rtts, 2.0);
        assert_eq!(p.list_factor, 2);
        assert!(p.early_start && p.early_termination && p.suppressed_probing);
    }

    #[test]
    fn variants_toggle_features() {
        let b = PdqParams::variant(PdqVariant::Basic);
        assert!(!b.early_start && !b.early_termination && !b.suppressed_probing);
        assert_eq!(b.effective_k(), 0.0);

        let es = PdqParams::variant(PdqVariant::EarlyStart);
        assert!(es.early_start && !es.early_termination && !es.suppressed_probing);
        assert_eq!(es.effective_k(), 2.0);

        let eset = PdqParams::variant(PdqVariant::EarlyStartEarlyTermination);
        assert!(eset.early_start && eset.early_termination && !eset.suppressed_probing);

        let full = PdqParams::full();
        assert!(full.early_start && full.early_termination && full.suppressed_probing);
    }

    #[test]
    fn labels() {
        assert_eq!(PdqVariant::Full.label(), "PDQ(Full)");
        assert_eq!(PdqVariant::Basic.label(), "PDQ(Basic)");
    }
}
