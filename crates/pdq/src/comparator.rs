//! Flow criticality: the common comparator shared by all PDQ switches, and the
//! sender-side disciplines that decide what criticality a flow advertises.
//!
//! Switches compare flows by the fields carried in the scheduling header
//! (§3.3): smaller deadline first (EDF, to minimize deadline misses), then smaller
//! expected transmission time (SJF, to minimize mean completion time), then flow id as
//! a final tie-break. The operator can change what senders *advertise* — the paper's
//! Figure 10 uses random criticality and estimated flow size, and Figure 12 ages
//! criticality to prevent starvation — without touching the switch comparator.

use std::cmp::Ordering;

use pdq_netsim::{FlowId, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;

/// The criticality of a flow as seen by a switch: the totally ordered key PDQ uses to
/// decide which flows may send. Smaller keys are more critical.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Criticality {
    /// Deadline (absolute time); `None` means no deadline and sorts after any deadline.
    pub deadline: Option<SimTime>,
    /// Expected remaining transmission time in seconds (`T_H`).
    pub expected_trans_time: f64,
    /// Flow id (final tie-break, makes the order total).
    pub flow: FlowId,
}

impl Criticality {
    /// Build a criticality key.
    pub fn new(deadline: Option<SimTime>, expected_trans_time: f64, flow: FlowId) -> Self {
        Criticality {
            deadline,
            expected_trans_time,
            flow,
        }
    }

    /// Compare two criticalities: `Less` means `self` is **more critical**.
    pub fn cmp_priority(&self, other: &Criticality) -> Ordering {
        let d_self = self.deadline.unwrap_or(SimTime::MAX);
        let d_other = other.deadline.unwrap_or(SimTime::MAX);
        d_self
            .cmp(&d_other)
            .then_with(|| {
                self.expected_trans_time
                    .partial_cmp(&other.expected_trans_time)
                    .unwrap_or(Ordering::Equal)
            })
            .then_with(|| self.flow.cmp(&other.flow))
    }

    /// True if `self` is strictly more critical than `other`.
    pub fn more_critical_than(&self, other: &Criticality) -> bool {
        self.cmp_priority(other) == Ordering::Less
    }
}

/// How a PDQ **sender** computes the expected-transmission-time it advertises.
/// (The deadline, when present, is always advertised as-is.)
#[derive(Clone, Debug, PartialEq)]
pub enum Discipline {
    /// The flow size is known exactly (the paper's default assumption):
    /// `T = remaining_bytes × 8 / R_max`.
    Exact,
    /// The sender does not know the flow size and picks a random but fixed criticality
    /// at flow start (Figure 10, "Random").
    RandomCriticality,
    /// The sender estimates the flow size from the bytes sent so far, updating the
    /// estimate every `update_bytes` bytes (Figure 10, "Flow Size Estimation";
    /// the paper updates every 50 KB).
    EstimatedSize {
        /// Granularity of criticality updates, in bytes.
        update_bytes: u64,
    },
    /// Exact size plus aging (Figure 12): the advertised `T` is divided by
    /// `2^(alpha × t)` where `t` is the flow's waiting time in units of 100 ms, so
    /// long-waiting flows become steadily more critical and cannot starve.
    Aging {
        /// Aging rate α.
        alpha: f64,
    },
}

impl Discipline {
    /// The expected-transmission-time a sender advertises.
    ///
    /// * `remaining_bytes` — bytes not yet acknowledged;
    /// * `sent_bytes` — bytes handed to the network so far (for estimation);
    /// * `max_rate_bps` — the flow's maximal sending rate `R_max`;
    /// * `waiting` — time since the flow arrived;
    /// * `random_t` — the fixed random criticality drawn at flow start (seconds).
    pub fn advertised_trans_time(
        &self,
        remaining_bytes: u64,
        sent_bytes: u64,
        max_rate_bps: f64,
        waiting: SimTime,
        random_t: f64,
    ) -> f64 {
        let exact = remaining_bytes as f64 * 8.0 / max_rate_bps;
        match self {
            Discipline::Exact => exact,
            Discipline::RandomCriticality => random_t,
            Discipline::EstimatedSize { update_bytes } => {
                // Estimated size grows with the bytes already sent, in steps of
                // `update_bytes`; flows that have sent less look shorter (more critical).
                let step = (*update_bytes).max(1);
                let est = (sent_bytes / step + 1) * step;
                est as f64 * 8.0 / max_rate_bps
            }
            Discipline::Aging { alpha } => {
                let t_units = waiting.as_secs_f64() / 0.1; // waiting time in 100 ms units
                exact / 2f64.powf(alpha * t_units)
            }
        }
    }

    /// Draw the fixed random criticality used by [`Discipline::RandomCriticality`]
    /// (uniform in \[0, 1\] seconds, consistent for the flow's lifetime).
    pub fn draw_random_criticality(rng: &mut SmallRng) -> f64 {
        rng.gen_range(0.0..1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn c(deadline_ms: Option<u64>, t: f64, id: u64) -> Criticality {
        Criticality::new(deadline_ms.map(SimTime::from_millis), t, FlowId(id))
    }

    #[test]
    fn edf_beats_sjf() {
        // A flow with any deadline is more critical than a flow with none.
        assert!(c(Some(50), 10.0, 1).more_critical_than(&c(None, 0.001, 2)));
        // Earlier deadline wins regardless of size.
        assert!(c(Some(10), 10.0, 1).more_critical_than(&c(Some(20), 0.001, 2)));
    }

    #[test]
    fn sjf_breaks_ties() {
        assert!(c(None, 0.001, 1).more_critical_than(&c(None, 0.002, 2)));
        assert!(c(Some(10), 0.001, 1).more_critical_than(&c(Some(10), 0.002, 2)));
    }

    #[test]
    fn flow_id_makes_order_total() {
        assert!(c(None, 0.5, 1).more_critical_than(&c(None, 0.5, 2)));
        assert!(!c(None, 0.5, 2).more_critical_than(&c(None, 0.5, 2)));
        assert_eq!(
            c(None, 0.5, 2).cmp_priority(&c(None, 0.5, 2)),
            Ordering::Equal
        );
    }

    #[test]
    fn exact_discipline_tracks_remaining() {
        let d = Discipline::Exact;
        let t = d.advertised_trans_time(1_000_000, 0, 1e9, SimTime::ZERO, 0.0);
        assert!((t - 0.008).abs() < 1e-9);
        let t2 = d.advertised_trans_time(500_000, 500_000, 1e9, SimTime::ZERO, 0.0);
        assert!(t2 < t);
    }

    #[test]
    fn random_criticality_is_fixed_value() {
        let d = Discipline::RandomCriticality;
        assert_eq!(
            d.advertised_trans_time(123, 456, 1e9, SimTime::ZERO, 0.77),
            0.77
        );
        let mut rng = SmallRng::seed_from_u64(9);
        let r = Discipline::draw_random_criticality(&mut rng);
        assert!((0.0..1.0).contains(&r));
    }

    #[test]
    fn estimated_size_grows_with_bytes_sent() {
        let d = Discipline::EstimatedSize {
            update_bytes: 50_000,
        };
        let t0 = d.advertised_trans_time(1_000_000, 0, 1e9, SimTime::ZERO, 0.0);
        let t1 = d.advertised_trans_time(900_000, 100_000, 1e9, SimTime::ZERO, 0.0);
        let t2 = d.advertised_trans_time(500_000, 500_000, 1e9, SimTime::ZERO, 0.0);
        assert!(t0 < t1 && t1 < t2, "{t0} {t1} {t2}");
        // Within one 50 KB step the estimate does not change.
        let a = d.advertised_trans_time(990_000, 10_000, 1e9, SimTime::ZERO, 0.0);
        let b = d.advertised_trans_time(960_000, 40_000, 1e9, SimTime::ZERO, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn aging_reduces_advertised_time() {
        let d = Discipline::Aging { alpha: 2.0 };
        let fresh = d.advertised_trans_time(1_000_000, 0, 1e9, SimTime::ZERO, 0.0);
        let waited = d.advertised_trans_time(1_000_000, 0, 1e9, SimTime::from_millis(200), 0.0);
        // After 200 ms (2 aging units) at alpha = 2, T is divided by 2^4 = 16.
        assert!((fresh / waited - 16.0).abs() < 1e-6);
    }
}
