//! PDQ as a pluggable protocol: [`PdqInstaller`] implements
//! [`pdq_scenario::ProtocolInstaller`], and [`register_pdq`] adds the `pdq` and
//! `mpdq` families to a [`pdq_scenario::ProtocolRegistry`].
//!
//! Spec grammar:
//!
//! * `pdq(<variant>)` — variant ∈ `full`, `es+et`, `es`, `basic`; Exact discipline.
//! * `pdq(<variant>;<discipline>)` — discipline ∈ `exact`, `random`,
//!   `estimate=<bytes>`, `aging=<alpha>`. Naming a discipline (even `exact`)
//!   switches the table label to the paper's Figure 10/12 information-model form,
//!   e.g. `PDQ(Full); Perfect Flow Information`.
//! * `mpdq(<k>)` — Multipath PDQ with `k` subflows.
//!
//! The `pdq` family supports all three simulation backends: on `backend = flow`
//! scenarios it lowers to the §5.5 flow-level model (criticality waterfilling,
//! Early Termination iff the variant has ET, aging iff the discipline is
//! `aging=<alpha>`), and on `backend = fluid` scenarios perfect-information
//! single-path PDQ idealizes to the §2.1 serial SJF/EDF schedule. `mpdq` and the
//! imperfect-information disciplines are packet-level only on the fluid backend
//! (and, aging aside, on the flow backend too).

use std::sync::Arc;

use pdq_flowsim::{FlowLevelConfig, FlowProtocol, FluidModel};
use pdq_scenario::{InstallerHandle, ProtocolInstaller, ProtocolRegistry, SimBackend};

use crate::comparator::Discipline;
use crate::install_pdq;
use crate::params::{PdqParams, PdqVariant};

/// Installs PDQ — a feature variant, an optional non-default sender discipline, or
/// Multipath PDQ — on every host and switch of a simulator.
#[derive(Clone, Debug)]
pub struct PdqInstaller {
    params: PdqParams,
    discipline: Discipline,
    name: String,
    label: String,
}

impl PdqInstaller {
    /// One of the paper's four feature variants with the Exact (perfect-information)
    /// discipline — `pdq(full)`, labelled `PDQ(Full)`.
    pub fn variant(v: PdqVariant) -> Self {
        PdqInstaller {
            params: PdqParams::variant(v),
            discipline: Discipline::Exact,
            name: format!("pdq({})", variant_token(v)),
            label: v.label().to_string(),
        }
    }

    /// A variant with an explicit sender discipline (the Figure 10/12 information
    /// models) — `pdq(full;random)`, labelled `PDQ(Full); Random Criticality`.
    pub fn with_discipline(v: PdqVariant, discipline: Discipline) -> Self {
        let label = match &discipline {
            Discipline::Exact => format!("{}; Perfect Flow Information", v.label()),
            Discipline::RandomCriticality => format!("{}; Random Criticality", v.label()),
            Discipline::EstimatedSize { .. } => format!("{}; Flow Size Estimation", v.label()),
            Discipline::Aging { alpha } => format!("{}; Aging(alpha={alpha})", v.label()),
        };
        PdqInstaller {
            params: PdqParams::variant(v),
            discipline: discipline.clone(),
            name: format!(
                "pdq({};{})",
                variant_token(v),
                discipline_token(&discipline)
            ),
            label,
        }
    }

    /// Coflow-aware PDQ — `cpdq`, labelled `C-PDQ(Full)`: the complete protocol
    /// with senders advertising their coflow's bottleneck criticality, so switches
    /// preempt whole coflows smallest-bottleneck-first / earliest-group-deadline-
    /// first. Untagged flows degrade gracefully to plain PDQ(Full).
    pub fn coflow() -> Self {
        PdqInstaller {
            params: PdqParams::coflow(),
            discipline: Discipline::Exact,
            name: "cpdq".into(),
            label: "C-PDQ(Full)".into(),
        }
    }

    /// Multipath PDQ with `k` subflows — `mpdq(3)`, labelled `M-PDQ(3 subflows)`.
    pub fn multipath(k: usize) -> Self {
        let mut params = PdqParams::full();
        params.subflows = k;
        PdqInstaller {
            params,
            discipline: Discipline::Exact,
            name: format!("mpdq({k})"),
            label: format!("M-PDQ({k} subflows)"),
        }
    }

    /// Fully custom parameters under a caller-chosen name and label (for parameter
    /// studies that still want to go through the registry).
    pub fn custom(
        name: impl Into<String>,
        label: impl Into<String>,
        params: PdqParams,
        discipline: Discipline,
    ) -> Self {
        PdqInstaller {
            params,
            discipline,
            name: name.into(),
            label: label.into(),
        }
    }
}

impl ProtocolInstaller for PdqInstaller {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn install(&self, sim: &mut pdq_netsim::Simulator) {
        install_pdq(sim, &self.params, &self.discipline);
    }

    fn with_pacing(&self, config: pdq_netsim::PacerConfig) -> Option<InstallerHandle> {
        let mut paced = self.clone();
        paced.params.pacer = Some(config);
        Some(Arc::new(paced) as InstallerHandle)
    }

    fn flow_config(&self) -> Option<FlowLevelConfig> {
        // The flow-level model covers single-path PDQ with perfect flow
        // information (optionally aged); M-PDQ striping and the imperfect
        // information disciplines exist only in the packet-level engine.
        // Coflow-aware criticality is a packet-level mechanism: the flow-level
        // waterfilling model has no notion of group-bottleneck advertisement.
        if self.params.subflows > 1 || self.params.coflow_aware {
            return None;
        }
        let aging_alpha = match self.discipline {
            Discipline::Exact => None,
            Discipline::Aging { alpha } => Some(alpha),
            Discipline::RandomCriticality | Discipline::EstimatedSize { .. } => return None,
        };
        Some(FlowLevelConfig {
            early_termination: self.params.early_termination,
            aging_alpha,
            ..FlowLevelConfig::for_protocol(FlowProtocol::Pdq)
        })
    }

    fn fluid_model(&self) -> Option<FluidModel> {
        // Under the §2.1 fluid model every PDQ feature variant collapses to the
        // same ideal: serve one flow at a time in EDF order (SJF when deadline
        // free) — Early Start / Early Termination are mechanisms for approaching
        // that ideal, not departures from it. M-PDQ striping and the imperfect
        // information disciplines have no fluid counterpart.
        if self.params.subflows > 1
            || self.params.coflow_aware
            || self.discipline != Discipline::Exact
        {
            return None;
        }
        Some(FluidModel::SjfEdf)
    }
}

fn variant_token(v: PdqVariant) -> &'static str {
    match v {
        PdqVariant::Basic => "basic",
        PdqVariant::EarlyStart => "es",
        PdqVariant::EarlyStartEarlyTermination => "es+et",
        PdqVariant::Full => "full",
    }
}

fn parse_variant(s: &str) -> Result<PdqVariant, String> {
    match s {
        "basic" => Ok(PdqVariant::Basic),
        "es" => Ok(PdqVariant::EarlyStart),
        "es+et" => Ok(PdqVariant::EarlyStartEarlyTermination),
        "full" => Ok(PdqVariant::Full),
        _ => Err(format!(
            "unknown PDQ variant {s:?} (want full, es+et, es or basic)"
        )),
    }
}

fn discipline_token(d: &Discipline) -> String {
    match d {
        Discipline::Exact => "exact".into(),
        Discipline::RandomCriticality => "random".into(),
        Discipline::EstimatedSize { update_bytes } => format!("estimate={update_bytes}"),
        Discipline::Aging { alpha } => format!("aging={alpha}"),
    }
}

fn parse_discipline(s: &str) -> Result<Discipline, String> {
    match s {
        "exact" => return Ok(Discipline::Exact),
        "random" => return Ok(Discipline::RandomCriticality),
        _ => {}
    }
    if let Some(v) = s.strip_prefix("estimate=") {
        let update_bytes = v
            .parse()
            .map_err(|_| format!("bad estimate granularity {v:?}"))?;
        return Ok(Discipline::EstimatedSize { update_bytes });
    }
    if let Some(v) = s.strip_prefix("aging=") {
        let alpha = v.parse().map_err(|_| format!("bad aging rate {v:?}"))?;
        return Ok(Discipline::Aging { alpha });
    }
    Err(format!(
        "unknown discipline {s:?} (want exact, random, estimate=<bytes> or aging=<alpha>)"
    ))
}

/// Register the `pdq` and `mpdq` protocol families.
pub fn register_pdq(registry: &mut ProtocolRegistry) {
    registry.register_family_with_backends(
        "pdq",
        "PDQ: pdq(<full|es+et|es|basic>[;exact|random|estimate=<bytes>|aging=<alpha>])",
        &[SimBackend::Packet, SimBackend::Flow, SimBackend::Fluid],
        Box::new(|args| {
            let args = args.ok_or("pdq needs a variant, e.g. pdq(full)")?;
            let installer = match args.split_once(';') {
                None => PdqInstaller::variant(parse_variant(args)?),
                Some((variant, discipline)) => PdqInstaller::with_discipline(
                    parse_variant(variant)?,
                    parse_discipline(discipline)?,
                ),
            };
            Ok(Arc::new(installer) as InstallerHandle)
        }),
    );
    registry.register_family_with_backends(
        "cpdq",
        "Coflow-aware PDQ: cpdq (PDQ(Full) with group-bottleneck criticality)",
        &[SimBackend::Packet],
        Box::new(|args| {
            if args.is_some() {
                return Err("cpdq takes no arguments".into());
            }
            Ok(Arc::new(PdqInstaller::coflow()) as InstallerHandle)
        }),
    );
    registry.register_family(
        "mpdq",
        "Multipath PDQ: mpdq(<subflows>)",
        Box::new(|args| {
            let args = args.ok_or("mpdq needs a subflow count, e.g. mpdq(3)")?;
            let k: usize = args
                .parse()
                .map_err(|_| format!("bad subflow count {args:?}"))?;
            if k == 0 {
                return Err("subflow count must be at least 1".into());
            }
            Ok(Arc::new(PdqInstaller::multipath(k)) as InstallerHandle)
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_labels_match_the_paper() {
        let reg = &mut ProtocolRegistry::new();
        register_pdq(reg);
        for (spec, label) in [
            ("pdq(full)", "PDQ(Full)"),
            ("pdq(es+et)", "PDQ(ES+ET)"),
            ("pdq(es)", "PDQ(ES)"),
            ("pdq(basic)", "PDQ(Basic)"),
            ("pdq(full;exact)", "PDQ(Full); Perfect Flow Information"),
            ("pdq(full;random)", "PDQ(Full); Random Criticality"),
            (
                "pdq(full;estimate=50000)",
                "PDQ(Full); Flow Size Estimation",
            ),
            ("pdq(full;aging=0.5)", "PDQ(Full); Aging(alpha=0.5)"),
            ("mpdq(3)", "M-PDQ(3 subflows)"),
            ("cpdq", "C-PDQ(Full)"),
        ] {
            let installer = reg.resolve(spec).expect(spec);
            assert_eq!(installer.label(), label, "{spec}");
            // Canonical name round-trips through the registry.
            assert_eq!(installer.name(), spec, "{spec}");
            assert_eq!(reg.resolve(&installer.name()).unwrap().label(), label);
        }
        assert!(reg.resolve("pdq").is_err());
        assert!(reg.resolve("pdq(turbo)").is_err());
        assert!(reg.resolve("mpdq(0)").is_err());
        assert!(reg.resolve("pdq(full;psychic)").is_err());
        assert!(reg.resolve("cpdq(3)").is_err());
    }

    #[test]
    fn cpdq_is_packet_only_and_coflow_aware() {
        let reg = &mut ProtocolRegistry::new();
        register_pdq(reg);
        let installer = reg.resolve("cpdq").unwrap();
        assert!(installer.supports(SimBackend::Packet));
        assert!(installer.flow_config().is_none());
        assert!(installer.fluid_model().is_none());
        assert!(!installer.supports(SimBackend::Flow));
        assert!(!installer.supports(SimBackend::Fluid));
        let families = reg.families_supporting(SimBackend::Packet);
        assert!(families.contains(&"cpdq".to_string()));
        assert!(!reg
            .families_supporting(SimBackend::Flow)
            .contains(&"cpdq".to_string()));
    }

    #[test]
    fn flow_level_lowering_matches_the_variant() {
        let reg = &mut ProtocolRegistry::new();
        register_pdq(reg);

        // pdq(full) lowers to the exact config the figures historically built.
        let full = reg.resolve("pdq(full)").unwrap().flow_config().unwrap();
        assert_eq!(full.protocol, FlowProtocol::Pdq);
        assert!(full.early_termination);
        assert_eq!(full.aging_alpha, None);

        // Variants without ET disable flow-level early termination too.
        let basic = reg.resolve("pdq(basic)").unwrap().flow_config().unwrap();
        assert!(!basic.early_termination);

        // The aging discipline becomes the flow-level aging rate.
        let aged = reg
            .resolve("pdq(full;aging=4)")
            .unwrap()
            .flow_config()
            .unwrap();
        assert_eq!(aged.aging_alpha, Some(4.0));
        assert!(aged.early_termination);

        // M-PDQ and the imperfect-information disciplines are packet-only.
        for spec in ["mpdq(3)", "pdq(full;random)", "pdq(full;estimate=50000)"] {
            let installer = reg.resolve(spec).unwrap();
            assert!(installer.flow_config().is_none(), "{spec}");
            assert!(!installer.supports(SimBackend::Flow), "{spec}");
            assert!(installer.supports(SimBackend::Packet), "{spec}");
        }
        // The family itself advertises flow support.
        assert!(reg
            .families_supporting(SimBackend::Flow)
            .contains(&"pdq".to_string()));
    }

    #[test]
    fn fluid_lowering_covers_perfect_information_single_path_pdq() {
        let reg = &mut ProtocolRegistry::new();
        register_pdq(reg);

        // Every feature variant idealizes to the same serial EDF/SJF schedule.
        for spec in [
            "pdq(full)",
            "pdq(es+et)",
            "pdq(es)",
            "pdq(basic)",
            "pdq(full;exact)",
        ] {
            let installer = reg.resolve(spec).unwrap();
            assert_eq!(installer.fluid_model(), Some(FluidModel::SjfEdf), "{spec}");
            assert!(installer.supports(SimBackend::Fluid), "{spec}");
        }
        // Striping and imperfect information have no fluid counterpart.
        for spec in [
            "mpdq(3)",
            "pdq(full;random)",
            "pdq(full;estimate=50000)",
            "pdq(full;aging=0.5)",
        ] {
            let installer = reg.resolve(spec).unwrap();
            assert_eq!(installer.fluid_model(), None, "{spec}");
            assert!(!installer.supports(SimBackend::Fluid), "{spec}");
        }
        // The family advertises fluid; mpdq does not.
        let fluid = reg.families_supporting(SimBackend::Fluid);
        assert!(fluid.contains(&"pdq".to_string()));
        assert!(!fluid.contains(&"mpdq".to_string()));
    }
}
