//! The PDQ sender (§3.1).
//!
//! A [`PdqSender`] serves one flow: it sends a SYN to initialize the flow, paces data
//! packets at the rate granted by the switches, falls back to periodic probing while
//! paused, retransmits after timeouts, applies Early Termination to deadline flows that
//! can no longer make it, and finishes with a TERM packet so switches can drop the
//! flow's state immediately.

use pdq_netsim::{
    Ctx, FlowId, FlowInfo, LinkId, Pacer, Packet, PacketKind, SimTime, TimerKind,
    BASE_HEADER_BYTES, MSS_BYTES, SCHED_HEADER_BYTES,
};

use crate::comparator::Discipline;
use crate::params::PdqParams;

/// Why the sender stopped serving the flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SenderStatus {
    /// Still transferring.
    Active,
    /// All assigned bytes acknowledged.
    Finished,
    /// Gave up via Early Termination.
    Terminated,
}

/// Per-flow PDQ sender state machine.
#[derive(Debug)]
pub struct PdqSender {
    params: PdqParams,
    discipline: Discipline,

    flow: FlowId,
    src: pdq_netsim::NodeId,
    dst: pdq_netsim::NodeId,
    arrival: SimTime,
    deadline: Option<SimTime>,
    /// Bytes this sender is responsible for (mutable: M-PDQ re-balancing shifts load
    /// between subflows).
    assigned_bytes: u64,
    /// `R_max`: min(sender NIC rate, path bottleneck, receiver rate), bits/s.
    max_rate: f64,

    // --- paper state variables (§3.1) ---
    /// `R_S`: current granted sending rate, bits/s.
    rate: f64,
    /// `P_S`: the switch link that paused the flow, if any.
    paused_by: Option<LinkId>,
    /// `I_S`: inter-probe interval in RTTs (>= 1).
    inter_probe_rtts: f64,
    /// `RTT_S`: smoothed RTT estimate, seconds.
    rtt: f64,

    // --- transfer progress ---
    /// Next new byte to send.
    next_seq: u64,
    /// Highest cumulative acknowledgment received.
    acked: u64,
    /// Total payload bytes handed to the network (including retransmissions); feeds the
    /// flow-size-estimation discipline.
    sent_bytes: u64,
    /// Duplicate-ACK counter for fast retransmit.
    dup_acks: u32,
    /// Fast-retransmit recovery point: no further fast retransmit until `acked` passes
    /// this sequence (prevents duplicate-ACK storms from re-triggering rewinds).
    recover: u64,
    /// Fixed random criticality (only used by [`Discipline::RandomCriticality`]).
    random_crit: f64,
    /// Coflow criticality floor (seconds): the group bottleneck's transmission time,
    /// advertised in place of the flow's own `T_S` whenever it is larger, so every
    /// member of a coflow carries the group's criticality. The advertised floor is
    /// scaled by the member's remaining fraction, so a draining member still looks
    /// nearly done to the switches (Early Start keeps working). 0 for untagged flows
    /// or when [`PdqParams::coflow_aware`] is off.
    group_trans_floor: f64,
    /// True once the SYN-ACK has been received.
    syn_acked: bool,

    status: SenderStatus,

    // --- timer bookkeeping (tokens invalidate stale timers) ---
    pacing_token: u64,
    pacing_armed: bool,
    /// When the armed pacing timer is due (only meaningful while `pacing_armed`).
    pacing_at: SimTime,
    probe_token: u64,
    probe_armed: bool,
    rto_token: u64,
    /// When the last data packet was handed to the network (pacing reference point).
    last_data_send: Option<SimTime>,
    /// RFC 9002-style token bucket replacing the gap schedule when
    /// [`PdqParams::pacer`] is set.
    pacer: Option<Pacer>,
}

impl PdqSender {
    /// Create a sender for `flow`, responsible for `assigned_bytes` of it (the full
    /// size for single-path PDQ, a share for M-PDQ subflows).
    pub fn new(
        params: PdqParams,
        discipline: Discipline,
        flow: &FlowInfo,
        assigned_bytes: u64,
        random_crit: f64,
    ) -> Self {
        let rtt = flow.base_rtt.max(params.default_rtt).as_secs_f64();
        let max_rate = flow.bottleneck_rate_bps.min(flow.nic_rate_bps);
        // Coflow-aware criticality: a tagged flow inherits its group's deadline and
        // bottleneck transmission time. Both come from the static CoflowTag, so no
        // cross-flow (or cross-shard) state is consulted at schedule time.
        let (deadline, group_trans_floor) = match flow.spec.coflow.filter(|_| params.coflow_aware) {
            Some(tag) if max_rate > 0.0 => (
                tag.deadline.or(flow.spec.deadline),
                tag.bottleneck_bytes as f64 * 8.0 / max_rate,
            ),
            _ => (flow.spec.deadline, 0.0),
        };
        PdqSender {
            pacer: params.pacer.map(Pacer::new),
            params,
            discipline,
            flow: flow.spec.id,
            src: flow.spec.src,
            dst: flow.spec.dst,
            arrival: flow.spec.arrival,
            deadline,
            assigned_bytes,
            max_rate,
            rate: 0.0,
            paused_by: None,
            inter_probe_rtts: 1.0,
            rtt,
            next_seq: 0,
            acked: 0,
            sent_bytes: 0,
            dup_acks: 0,
            recover: 0,
            random_crit,
            group_trans_floor,
            syn_acked: false,
            status: SenderStatus::Active,
            pacing_token: 0,
            pacing_armed: false,
            pacing_at: SimTime::ZERO,
            probe_token: 0,
            probe_armed: false,
            rto_token: 0,
            last_data_send: None,
        }
    }

    /// Current status.
    pub fn status(&self) -> SenderStatus {
        self.status
    }

    /// Granted rate in bits/s (0 while paused).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// True while the switches have this flow paused.
    pub fn is_paused(&self) -> bool {
        self.rate <= 0.0
    }

    /// Bytes not yet acknowledged.
    pub fn remaining_bytes(&self) -> u64 {
        self.assigned_bytes.saturating_sub(self.acked)
    }

    /// Bytes this sender is responsible for.
    pub fn assigned_bytes(&self) -> u64 {
        self.assigned_bytes
    }

    /// Bytes already handed to the network (new data only, not retransmissions).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Shrink the assignment to what has already been handed to the network and return
    /// how many bytes were given up (M-PDQ re-balancing takes load away from paused
    /// subflows).
    pub fn shed_unsent_bytes(&mut self) -> u64 {
        let floor = self.next_seq.max(self.acked);
        let shed = self.assigned_bytes.saturating_sub(floor);
        self.assigned_bytes = floor;
        shed
    }

    /// Grow the assignment by `extra` bytes (M-PDQ re-balancing adds load to the least
    /// loaded sending subflow).
    pub fn add_bytes(&mut self, extra: u64) {
        self.assigned_bytes += extra;
        if self.status == SenderStatus::Finished && extra > 0 {
            // More work arrived after we thought we were done.
            self.status = SenderStatus::Active;
        }
    }

    // ------------------------------------------------------------------ protocol

    /// Start the flow: send the SYN and arm the retransmission timer.
    pub fn start(&mut self, ctx: &mut Ctx) {
        if self.assigned_bytes == 0 {
            self.finish(ctx);
            return;
        }
        let syn = self.forward_packet(PacketKind::Syn, 0, 0, ctx.now());
        ctx.send(syn);
        self.arm_rto(ctx);
        if let Some(dl) = self.deadline {
            // Wake up at the deadline so Early Termination fires even if no feedback
            // ever arrives.
            ctx.set_timer_at(self.flow, TimerKind::Custom(0), dl, 0);
        }
    }

    /// Handle a reverse-direction packet (SYN-ACK, ACK or TERM-ACK).
    pub fn on_packet(&mut self, pkt: &Packet, ctx: &mut Ctx) {
        if self.status != SenderStatus::Active {
            return;
        }
        match pkt.kind {
            PacketKind::SynAck | PacketKind::Ack => {
                self.take_rtt_sample(pkt, ctx.now());
                if pkt.kind == PacketKind::SynAck {
                    self.syn_acked = true;
                    // The handshake completed: push the retransmission timer out.
                    self.arm_rto(ctx);
                }
                if self.process_ack_number(pkt.ack) {
                    // Progress was made: the retransmission timer restarts from now.
                    self.arm_rto(ctx);
                }
                self.apply_feedback(pkt);
                if self.acked >= self.assigned_bytes && self.syn_acked {
                    self.finish(ctx);
                    return;
                }
                if self.check_early_termination(ctx) {
                    return;
                }
                self.reschedule(ctx);
            }
            PacketKind::TermAck => {}
            _ => {}
        }
    }

    /// Handle a timer owned by this flow.
    pub fn on_timer(&mut self, kind: TimerKind, token: u64, ctx: &mut Ctx) {
        if self.status != SenderStatus::Active {
            return;
        }
        match kind {
            TimerKind::Pacing => {
                if token != self.pacing_token {
                    return;
                }
                self.pacing_armed = false;
                if self.check_early_termination(ctx) {
                    return;
                }
                self.reschedule(ctx);
            }
            TimerKind::Probe => {
                if token != self.probe_token {
                    return;
                }
                self.probe_armed = false;
                if self.check_early_termination(ctx) {
                    return;
                }
                if self.rate <= 0.0 || self.needs_probing() {
                    // Either paused, or sending so slowly that data packets alone would
                    // not fetch timely feedback: keep the probe loop alive.
                    let probe = self.forward_packet(PacketKind::Probe, 0, 0, ctx.now());
                    ctx.send(probe);
                    self.arm_probe(ctx);
                }
                self.reschedule(ctx);
            }
            TimerKind::Rto => {
                if token != self.rto_token {
                    return;
                }
                if self.check_early_termination(ctx) {
                    return;
                }
                if !self.syn_acked {
                    let syn = self.forward_packet(PacketKind::Syn, 0, 0, ctx.now());
                    ctx.send(syn);
                } else if self.acked < self.assigned_bytes {
                    // Go-back-N: rewind to the last acknowledged byte and allow an
                    // immediate retransmission regardless of the old pacing schedule.
                    self.next_seq = self.acked;
                    self.last_data_send = None;
                    self.reschedule(ctx);
                }
                self.arm_rto(ctx);
            }
            TimerKind::Custom(0) => {
                // Deadline wake-up.
                self.check_early_termination(ctx);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------ internals

    /// Process the cumulative ACK number. Returns true if it acknowledged new data.
    fn process_ack_number(&mut self, ack: u64) -> bool {
        if ack > self.acked {
            self.acked = ack;
            self.dup_acks = 0;
            return true;
        }
        if ack == self.acked && self.acked < self.next_seq {
            self.dup_acks += 1;
            // Fast retransmit: rewind to the missing byte, but only once per window
            // (until the cumulative ACK passes the recovery point) — otherwise the
            // ACKs of our own retransmissions would re-trigger rewinds forever.
            if self.dup_acks >= 3 && self.acked >= self.recover {
                self.recover = self.next_seq;
                self.next_seq = self.acked;
                self.dup_acks = 0;
            }
        }
        false
    }

    fn apply_feedback(&mut self, pkt: &Packet) {
        let h = &pkt.sched;
        self.paused_by = h.pause_by;
        self.rate = if h.pause_by.is_some() {
            0.0
        } else {
            h.rate.min(self.max_rate).max(0.0)
        };
        if h.inter_probe_rtts > 0.0 {
            self.inter_probe_rtts = h.inter_probe_rtts.max(1.0);
        } else {
            self.inter_probe_rtts = 1.0;
        }
    }

    fn take_rtt_sample(&mut self, pkt: &Packet, now: SimTime) {
        if pkt.sent_at > SimTime::ZERO && now > pkt.sent_at {
            let sample = (now - pkt.sent_at).as_secs_f64();
            self.rtt = 0.875 * self.rtt + 0.125 * sample;
        }
    }

    /// `T_S`: the expected remaining transmission time the sender advertises.
    fn advertised_trans_time(&self, now: SimTime) -> f64 {
        // The coflow floor drains with the member's own progress: at flow start it is
        // the full group-bottleneck time (smallest-bottleneck-first across coflows),
        // and it shrinks linearly toward 0 as the member completes, so switches still
        // see a nearly-done flow as nearly done.
        let remaining_frac = if self.assigned_bytes > 0 {
            self.remaining_bytes() as f64 / self.assigned_bytes as f64
        } else {
            0.0
        };
        self.discipline
            .advertised_trans_time(
                self.remaining_bytes(),
                self.sent_bytes,
                self.max_rate,
                now.saturating_sub(self.arrival),
                self.random_crit,
            )
            .max(self.group_trans_floor * remaining_frac)
    }

    fn forward_packet(&self, kind: PacketKind, seq: u64, payload: u32, now: SimTime) -> Packet {
        let mut p = if payload > 0 {
            Packet::data(self.flow, self.src, self.dst, seq, payload)
        } else {
            Packet::control(kind, self.flow, self.src, self.dst)
        };
        p.kind = kind;
        p.reverse = false;
        p.sent_at = now;
        p.sched.rate = self.max_rate;
        p.sched.pause_by = self.paused_by;
        p.sched.deadline = self.deadline;
        p.sched.expected_trans_time = self.advertised_trans_time(now);
        p.sched.rtt = self.rtt;
        p.sched.inter_probe_rtts = 0.0;
        p
    }

    /// Recompute what the sender should be waiting for and (re)arm the right timer.
    ///
    /// Called after every packet or timer event. The invariant it maintains:
    /// * a flow with a positive rate and unsent data either transmits now (if its pacing
    ///   gap has elapsed) or has a pacing timer armed no later than its next send time;
    /// * a paused flow always has a probe timer armed;
    /// * a flow whose granted rate is too small to produce one packet per probe interval
    ///   additionally keeps probing, so it still learns promptly when capacity frees up.
    fn reschedule(&mut self, ctx: &mut Ctx) {
        if self.status != SenderStatus::Active {
            return;
        }
        if self.rate > 0.0 {
            if self.next_seq < self.assigned_bytes {
                if self.pacer.is_some() {
                    self.drain_bucket(ctx);
                } else {
                    let now = ctx.now();
                    let due = self.next_send_due(now);
                    if due <= now {
                        self.transmit_data(ctx);
                        if self.next_seq < self.assigned_bytes {
                            let next = self.next_send_due(ctx.now());
                            self.arm_pacing(next, ctx);
                        }
                    } else if !self.pacing_armed || due < self.pacing_at {
                        // The granted rate increased: pull the pacing timer forward.
                        self.arm_pacing(due, ctx);
                    }
                }
            }
            if self.needs_probing() && !self.probe_armed {
                self.arm_probe(ctx);
            }
        } else if !self.probe_armed {
            self.arm_probe(ctx);
        }
    }

    /// The token-bucket counterpart of the gap schedule: drain packets while
    /// tokens last at the granted rate, then arm one pacing timer for the
    /// instant the next packet's deficit clears.
    fn drain_bucket(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        let rate = self.rate;
        self.pacer
            .as_mut()
            .expect("checked by caller")
            .set_rate_bps(now, rate);
        while self.next_seq < self.assigned_bytes {
            let payload = (self.assigned_bytes - self.next_seq).min(MSS_BYTES as u64) as u32;
            let wire = (payload + BASE_HEADER_BYTES + SCHED_HEADER_BYTES) as u64;
            let pacer = self.pacer.as_mut().expect("checked above");
            if !pacer.try_send(now, wire) {
                let at = pacer.next_ready(now, wire);
                if !self.pacing_armed || at < self.pacing_at {
                    self.arm_pacing(at, ctx);
                }
                return;
            }
            self.transmit_data(ctx);
        }
    }

    /// True when the granted rate is so small that data packets alone would not carry
    /// scheduling feedback back at least once per probe interval.
    fn needs_probing(&self) -> bool {
        if self.rate <= 0.0 {
            return true;
        }
        let wire_bits = pdq_netsim::MTU_BYTES as f64 * 8.0;
        wire_bits / self.rate > self.probe_gap().as_secs_f64()
    }

    /// When the pacing schedule next allows a data transmission.
    fn next_send_due(&self, now: SimTime) -> SimTime {
        let Some(last) = self.last_data_send else {
            return now;
        };
        let wire_bits = pdq_netsim::MTU_BYTES as f64 * 8.0;
        let gap_secs = (wire_bits / self.rate).min(self.params.max_pace_gap.as_secs_f64());
        last + SimTime::from_secs_f64(gap_secs)
    }

    /// Send one data packet now and record it as the new pacing reference point.
    fn transmit_data(&mut self, ctx: &mut Ctx) {
        if self.status != SenderStatus::Active
            || self.rate <= 0.0
            || self.next_seq >= self.assigned_bytes
        {
            return;
        }
        let payload = (self.assigned_bytes - self.next_seq).min(MSS_BYTES as u64) as u32;
        let pkt = self.forward_packet(PacketKind::Data, self.next_seq, payload, ctx.now());
        ctx.send(pkt);
        self.next_seq += payload as u64;
        self.sent_bytes += payload as u64;
        self.last_data_send = Some(ctx.now());
    }

    fn arm_pacing(&mut self, at: SimTime, ctx: &mut Ctx) {
        self.pacing_token += 1;
        self.pacing_armed = true;
        self.pacing_at = at;
        ctx.set_timer_at(self.flow, TimerKind::Pacing, at, self.pacing_token);
    }

    /// The interval between probes of a paused (or starved) flow.
    fn probe_gap(&self) -> SimTime {
        // Probe every I_S RTTs, but never let a transiently inflated RTT estimate delay
        // the next probe by more than a couple of milliseconds: a paused flow's probes
        // are its only way to learn that capacity has freed up.
        SimTime::from_secs_f64(self.inter_probe_rtts.max(1.0) * self.rtt)
            .min(SimTime::from_millis(2))
            .max(SimTime::from_micros(50))
    }

    fn arm_probe(&mut self, ctx: &mut Ctx) {
        let gap = self.probe_gap();
        self.probe_token += 1;
        self.probe_armed = true;
        ctx.set_timer_after(self.flow, TimerKind::Probe, gap, self.probe_token);
    }

    fn arm_rto(&mut self, ctx: &mut Ctx) {
        let rto = SimTime::from_secs_f64(3.0 * self.rtt).max(self.params.min_rto);
        self.rto_token += 1;
        ctx.set_timer_after(self.flow, TimerKind::Rto, rto, self.rto_token);
    }

    fn finish(&mut self, ctx: &mut Ctx) {
        if self.status != SenderStatus::Active {
            return;
        }
        self.status = SenderStatus::Finished;
        let term = self.forward_packet(PacketKind::Term, self.next_seq, 0, ctx.now());
        ctx.send(term);
        ctx.flow_completed(self.flow);
    }

    /// Early Termination (§3.1). Returns true if the flow was terminated.
    fn check_early_termination(&mut self, ctx: &mut Ctx) -> bool {
        if !self.params.early_termination || self.status != SenderStatus::Active {
            return false;
        }
        let Some(deadline) = self.deadline else {
            return false;
        };
        let now = ctx.now();
        let t_s = SimTime::from_secs_f64(self.remaining_bytes() as f64 * 8.0 / self.max_rate);
        let rtt = SimTime::from_secs_f64(self.rtt);
        let cond_past = now > deadline;
        let cond_too_slow = now + t_s > deadline;
        let cond_paused_and_close = self.rate <= 0.0 && now + rtt > deadline;
        if cond_past || cond_too_slow || cond_paused_and_close {
            self.status = SenderStatus::Terminated;
            let term = self.forward_packet(PacketKind::Term, self.next_seq, 0, now);
            ctx.send(term);
            ctx.flow_terminated(self.flow);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::{Action, FlowPath, FlowSpec, NodeId, SchedulingHeader};
    use std::collections::HashMap;

    const GBPS: f64 = 1e9;

    fn flow_info(size: u64, deadline: Option<SimTime>) -> (HashMap<FlowId, FlowInfo>, FlowInfo) {
        let mut spec = FlowSpec::new(1, NodeId(0), NodeId(2), size);
        if let Some(d) = deadline {
            spec = spec.with_deadline(d);
        }
        let info = FlowInfo {
            spec,
            path: FlowPath::new(
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![LinkId(0), LinkId(2)],
            )
            .into(),
            bottleneck_rate_bps: GBPS,
            nic_rate_bps: GBPS,
            base_rtt: SimTime::from_micros(150),
        };
        let mut map = HashMap::new();
        map.insert(FlowId(1), info.clone());
        (map, info)
    }

    fn sender(size: u64, deadline: Option<SimTime>) -> (HashMap<FlowId, FlowInfo>, PdqSender) {
        let (map, info) = flow_info(size, deadline);
        let s = PdqSender::new(PdqParams::full(), Discipline::Exact, &info, size, 0.0);
        (map, s)
    }

    fn sent_kinds(actions: &[Action]) -> Vec<PacketKind> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(p) => Some(p.kind),
                _ => None,
            })
            .collect()
    }

    fn synack_with_rate(rate: f64, now: SimTime) -> Packet {
        let mut p = Packet::control(PacketKind::SynAck, FlowId(1), NodeId(0), NodeId(2));
        p.sched = SchedulingHeader::new(GBPS);
        p.sched.rate = rate;
        p.sent_at = now.saturating_sub(SimTime::from_micros(150));
        p
    }

    #[test]
    fn coflow_aware_sender_advertises_group_criticality() {
        let (_, info) = flow_info(10_000, Some(SimTime::from_millis(5)));
        let tag = pdq_netsim::CoflowTag {
            id: pdq_netsim::CoflowId(3),
            bottleneck_bytes: 1_000_000,
            deadline: Some(SimTime::from_millis(9)),
        };
        let mut tagged = info.clone();
        tagged.spec = tagged.spec.with_coflow(tag);

        // Coflow-unaware params ignore the tag entirely.
        let plain = PdqSender::new(PdqParams::full(), Discipline::Exact, &tagged, 10_000, 0.0);
        let p = plain.forward_packet(PacketKind::Syn, 0, 0, SimTime::ZERO);
        assert_eq!(p.sched.deadline, Some(SimTime::from_millis(5)));
        assert_eq!(p.sched.expected_trans_time, 10_000.0 * 8.0 / GBPS);

        // Coflow-aware senders inherit the group deadline and advertise the group
        // bottleneck's transmission time: the whole coflow shares one criticality.
        let aware = PdqSender::new(PdqParams::coflow(), Discipline::Exact, &tagged, 10_000, 0.0);
        let p = aware.forward_packet(PacketKind::Syn, 0, 0, SimTime::ZERO);
        assert_eq!(p.sched.deadline, Some(SimTime::from_millis(9)));
        assert_eq!(p.sched.expected_trans_time, 1_000_000.0 * 8.0 / GBPS);

        // Untagged flows under coflow-aware params behave exactly as plain PDQ.
        let untagged = PdqSender::new(PdqParams::coflow(), Discipline::Exact, &info, 10_000, 0.0);
        let p = untagged.forward_packet(PacketKind::Syn, 0, 0, SimTime::ZERO);
        assert_eq!(p.sched.deadline, Some(SimTime::from_millis(5)));
        assert_eq!(p.sched.expected_trans_time, 10_000.0 * 8.0 / GBPS);
    }

    #[test]
    fn start_sends_syn_with_header() {
        let (map, mut s) = sender(100_000, None);
        let mut ctx = Ctx::new(SimTime::ZERO, &map);
        s.start(&mut ctx);
        let actions = ctx.take_actions();
        assert_eq!(sent_kinds(&actions), vec![PacketKind::Syn]);
        if let Action::Send(p) = &actions[0] {
            assert_eq!(p.sched.rate, GBPS);
            assert!((p.sched.expected_trans_time - 0.0008).abs() < 1e-9);
            assert!(p.sched.deadline.is_none());
        }
        // RTO timer armed.
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                kind: TimerKind::Rto,
                ..
            }
        )));
    }

    #[test]
    fn synack_with_rate_starts_paced_sending() {
        let (map, mut s) = sender(10_000, None);
        let now = SimTime::from_micros(200);
        let mut ctx = Ctx::new(now, &map);
        s.on_packet(&synack_with_rate(GBPS, now), &mut ctx);
        let actions = ctx.take_actions();
        let kinds = sent_kinds(&actions);
        assert_eq!(kinds, vec![PacketKind::Data]);
        assert!(s.rate() > 0.0);
        // The pacing timer is armed roughly one packet-serialization later.
        let pacing = actions.iter().find_map(|a| match a {
            Action::SetTimer {
                kind: TimerKind::Pacing,
                at,
                ..
            } => Some(*at),
            _ => None,
        });
        let gap = pacing.unwrap() - now;
        assert!(
            gap.as_micros_f64() > 10.0 && gap.as_micros_f64() < 14.0,
            "{gap}"
        );
    }

    #[test]
    fn paused_flow_probes_instead_of_sending() {
        let (map, mut s) = sender(100_000, None);
        let now = SimTime::from_micros(200);
        let mut ctx = Ctx::new(now, &map);
        let mut synack = synack_with_rate(0.0, now);
        synack.sched.pause_by = Some(LinkId(5));
        s.on_packet(&synack, &mut ctx);
        let actions = ctx.take_actions();
        assert!(
            sent_kinds(&actions).is_empty(),
            "paused flow must not send data"
        );
        assert!(s.is_paused());
        let probe_at = actions.iter().find_map(|a| match a {
            Action::SetTimer {
                kind: TimerKind::Probe,
                at,
                token,
                ..
            } => Some((*at, *token)),
            _ => None,
        });
        let (at, token) = probe_at.expect("probe timer armed");
        // Fire the probe timer: a probe packet goes out carrying the pause tag.
        let mut ctx2 = Ctx::new(at, &map);
        s.on_timer(TimerKind::Probe, token, &mut ctx2);
        let actions2 = ctx2.take_actions();
        assert_eq!(sent_kinds(&actions2), vec![PacketKind::Probe]);
        if let Action::Send(p) = &actions2[0] {
            assert_eq!(p.sched.pause_by, Some(LinkId(5)));
        }
    }

    #[test]
    fn suppressed_probing_interval_respected() {
        let (map, mut s) = sender(100_000, None);
        let now = SimTime::from_millis(1);
        let mut ctx = Ctx::new(now, &map);
        let mut synack = synack_with_rate(0.0, now);
        synack.sched.pause_by = Some(LinkId(5));
        synack.sched.inter_probe_rtts = 4.0;
        s.on_packet(&synack, &mut ctx);
        let actions = ctx.take_actions();
        let at = actions
            .iter()
            .find_map(|a| match a {
                Action::SetTimer {
                    kind: TimerKind::Probe,
                    at,
                    ..
                } => Some(*at),
                _ => None,
            })
            .unwrap();
        // Probe interval = I_S * RTT = 4 * ~150 µs.
        let gap = (at - now).as_micros_f64();
        assert!(gap > 500.0 && gap < 800.0, "gap = {gap}");
    }

    #[test]
    fn completion_sends_term_and_completes_flow() {
        let (map, mut s) = sender(2_000, None);
        let now = SimTime::from_micros(200);
        // Grant rate and send all data.
        let mut ctx = Ctx::new(now, &map);
        s.on_packet(&synack_with_rate(GBPS, now), &mut ctx);
        ctx.take_actions();
        // Cumulative ACK covering the whole flow.
        let mut ack = Packet::control(PacketKind::Ack, FlowId(1), NodeId(0), NodeId(2));
        ack.ack = 2_000;
        ack.sched = SchedulingHeader::new(GBPS);
        ack.sent_at = now;
        let later = now + SimTime::from_micros(300);
        let mut ctx2 = Ctx::new(later, &map);
        s.on_packet(&ack, &mut ctx2);
        let actions = ctx2.take_actions();
        assert_eq!(s.status(), SenderStatus::Finished);
        assert!(sent_kinds(&actions).contains(&PacketKind::Term));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::FlowCompleted(f) if *f == FlowId(1))));
    }

    #[test]
    fn early_termination_when_deadline_unreachable() {
        // 10 MB flow with a 1 ms deadline can never make it at 1 Gbps (needs 80 ms).
        let deadline = Some(SimTime::from_millis(1));
        let (map, mut s) = sender(10_000_000, deadline);
        let now = SimTime::from_micros(200);
        let mut ctx = Ctx::new(now, &map);
        s.on_packet(&synack_with_rate(GBPS, now), &mut ctx);
        let actions = ctx.take_actions();
        assert_eq!(s.status(), SenderStatus::Terminated);
        assert!(sent_kinds(&actions).contains(&PacketKind::Term));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::FlowTerminated(f) if *f == FlowId(1))));
    }

    #[test]
    fn no_early_termination_when_disabled() {
        let deadline = Some(SimTime::from_millis(1));
        let (map, info) = flow_info(10_000_000, deadline);
        let mut params = PdqParams::full();
        params.early_termination = false;
        let mut s = PdqSender::new(params, Discipline::Exact, &info, 10_000_000, 0.0);
        let now = SimTime::from_micros(200);
        let mut ctx = Ctx::new(now, &map);
        s.on_packet(&synack_with_rate(GBPS, now), &mut ctx);
        ctx.take_actions();
        assert_eq!(s.status(), SenderStatus::Active);
    }

    #[test]
    fn rto_rewinds_to_last_ack() {
        let (map, mut s) = sender(50_000, None);
        let now = SimTime::from_micros(200);
        let mut ctx = Ctx::new(now, &map);
        s.on_packet(&synack_with_rate(GBPS, now), &mut ctx);
        ctx.take_actions();
        // Pump the pacing loop a few times so several packets are "in flight".
        let mut t = now;
        for _ in 0..5 {
            t += SimTime::from_micros(12);
            let mut c = Ctx::new(t, &map);
            let token = s.pacing_token;
            s.on_timer(TimerKind::Pacing, token, &mut c);
        }
        let sent_before = s.next_seq();
        assert!(sent_before > 4 * 1444);
        // RTO fires with nothing acknowledged: the sender rewinds to the last cumulative
        // ACK and immediately retransmits the first unacknowledged packet.
        let mut c = Ctx::new(t + SimTime::from_millis(10), &map);
        let token = s.rto_token;
        s.on_timer(TimerKind::Rto, token, &mut c);
        let actions = c.take_actions();
        let retransmitted = actions.iter().find_map(|a| match a {
            Action::Send(p) if p.kind == PacketKind::Data => Some(p.seq),
            _ => None,
        });
        assert_eq!(
            retransmitted,
            Some(0),
            "go-back-N retransmits from the last ACK"
        );
        assert!(
            s.next_seq() < sent_before,
            "the send position rewinds (then advances past the retransmission)"
        );
    }

    #[test]
    fn stale_timers_are_ignored() {
        let (map, mut s) = sender(50_000, None);
        let now = SimTime::from_micros(200);
        let mut ctx = Ctx::new(now, &map);
        s.on_packet(&synack_with_rate(GBPS, now), &mut ctx);
        ctx.take_actions();
        let seq_before = s.next_seq();
        let mut c = Ctx::new(now + SimTime::from_micros(12), &map);
        s.on_timer(TimerKind::Pacing, 999_999, &mut c); // bogus token
        assert_eq!(s.next_seq(), seq_before);
        assert!(c.take_actions().is_empty());
    }

    #[test]
    fn rebalancing_helpers_shift_bytes() {
        let (_map, mut s) = sender(100_000, None);
        assert_eq!(s.assigned_bytes(), 100_000);
        let shed = s.shed_unsent_bytes();
        assert_eq!(shed, 100_000); // nothing sent yet, everything can move
        assert_eq!(s.assigned_bytes(), 0);
        s.add_bytes(40_000);
        assert_eq!(s.assigned_bytes(), 40_000);
        assert_eq!(s.remaining_bytes(), 40_000);
    }

    #[test]
    fn zero_byte_assignment_finishes_immediately() {
        let (map, info) = flow_info(0, None);
        let mut s = PdqSender::new(PdqParams::full(), Discipline::Exact, &info, 0, 0.0);
        let mut ctx = Ctx::new(SimTime::ZERO, &map);
        s.start(&mut ctx);
        assert_eq!(s.status(), SenderStatus::Finished);
    }
}
