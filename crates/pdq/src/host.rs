//! The per-host PDQ transport agent, including Multipath PDQ (§6).
//!
//! A [`PdqHostAgent`] owns the sender state machines of the flows originating at its
//! host and the receiver state machines of the flows terminating there. When
//! configured with more than one subflow it becomes an **M-PDQ** sender: incoming
//! flows are split into subflows (each routed independently, so flow-level ECMP spreads
//! them over distinct paths), and a periodic re-balancer moves unsent bytes from paused
//! subflows to the sending subflow with the least remaining work.

use std::collections::HashMap;

use pdq_netsim::{Ctx, FlowId, FlowInfo, FlowSpec, HostAgent, Packet, SimTime, TimerKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::comparator::Discipline;
use crate::params::PdqParams;
use crate::receiver::PdqReceiver;
use crate::sender::{PdqSender, SenderStatus};

/// Base offset for generated subflow ids; parents must use ids below this.
const SUBFLOW_ID_BASE: u64 = 1 << 48;
/// Maximum number of subflows per flow.
const MAX_SUBFLOWS: usize = 16;

/// Derive the globally unique flow id of subflow `k` of `parent`.
pub fn subflow_id(parent: FlowId, k: usize) -> FlowId {
    assert!(
        parent.value() < (1 << 44),
        "parent flow id too large for subflow encoding"
    );
    assert!(
        k < MAX_SUBFLOWS,
        "at most {MAX_SUBFLOWS} subflows are supported"
    );
    FlowId(SUBFLOW_ID_BASE | (parent.value() << 4) | k as u64)
}

/// The PDQ (and M-PDQ) host agent.
pub struct PdqHostAgent {
    params: PdqParams,
    discipline: Discipline,
    rng: SmallRng,
    senders: HashMap<FlowId, PdqSender>,
    receivers: HashMap<FlowId, PdqReceiver>,
    /// Parent flow id -> its subflow ids (only for flows originating at this host).
    children: HashMap<FlowId, Vec<FlowId>>,
    /// Subflow id -> parent flow id.
    parent_of: HashMap<FlowId, FlowId>,
    /// Parents already reported complete/terminated.
    parent_done: HashMap<FlowId, bool>,
}

impl PdqHostAgent {
    /// Create an agent. `seed` keeps any per-host randomness (random criticality)
    /// reproducible; pass e.g. the host's node id.
    pub fn new(params: PdqParams, discipline: Discipline, seed: u64) -> Self {
        PdqHostAgent {
            params,
            discipline,
            rng: SmallRng::seed_from_u64(seed),
            senders: HashMap::new(),
            receivers: HashMap::new(),
            children: HashMap::new(),
            parent_of: HashMap::new(),
            parent_done: HashMap::new(),
        }
    }

    /// Number of currently tracked sender state machines (diagnostics / tests).
    pub fn active_senders(&self) -> usize {
        self.senders.len()
    }

    fn start_sender(&mut self, flow: &FlowInfo, ctx: &mut Ctx) {
        let random_crit = Discipline::draw_random_criticality(&mut self.rng);
        let mut sender = PdqSender::new(
            self.params.clone(),
            self.discipline.clone(),
            flow,
            flow.spec.size_bytes,
            random_crit,
        );
        sender.start(ctx);
        if let Some(parent) = flow.spec.parent {
            self.parent_of.insert(flow.spec.id, parent);
        }
        self.senders.insert(flow.spec.id, sender);
    }

    fn split_into_subflows(&mut self, flow: &FlowInfo, ctx: &mut Ctx) {
        let n = self.params.subflows.clamp(1, MAX_SUBFLOWS);
        let size = flow.spec.size_bytes;
        let base = size / n as u64;
        let mut ids = Vec::with_capacity(n);
        for k in 0..n {
            let mut share = base;
            if k == 0 {
                share += size - base * n as u64; // remainder to the first subflow
            }
            let id = subflow_id(flow.spec.id, k);
            let mut spec = FlowSpec {
                id,
                src: flow.spec.src,
                dst: flow.spec.dst,
                size_bytes: share,
                deadline: flow.spec.deadline,
                arrival: ctx.now(),
                parent: Some(flow.spec.id),
                coflow: flow.spec.coflow,
            };
            // Avoid zero-byte subflows when the flow is tiny.
            if spec.size_bytes == 0 {
                spec.size_bytes = 1;
            }
            ids.push(id);
            ctx.spawn_flow(spec);
        }
        self.children.insert(flow.spec.id, ids);
        self.parent_done.insert(flow.spec.id, false);
        // Periodic M-PDQ re-balancing.
        let interval = flow
            .base_rtt
            .mul_f64(self.params.rebalance_interval_rtts)
            .max(SimTime::from_micros(100));
        ctx.set_timer_after(flow.spec.id, TimerKind::Rebalance, interval, 0);
    }

    fn check_parent_completion(&mut self, parent: FlowId, ctx: &mut Ctx) {
        if self.parent_done.get(&parent).copied().unwrap_or(true) {
            return;
        }
        let Some(kids) = self.children.get(&parent) else {
            return;
        };
        let mut all_done = true;
        let mut any_terminated = false;
        for k in kids {
            match self.senders.get(k).map(|s| s.status()) {
                Some(SenderStatus::Finished) => {}
                Some(SenderStatus::Terminated) => any_terminated = true,
                _ => {
                    all_done = false;
                    break;
                }
            }
        }
        if all_done {
            self.parent_done.insert(parent, true);
            if any_terminated {
                ctx.flow_terminated(parent);
            } else {
                ctx.flow_completed(parent);
            }
        }
    }

    /// M-PDQ re-balancing: move unsent bytes from paused subflows to the sending
    /// subflow with the least remaining work.
    fn rebalance(&mut self, parent: FlowId, ctx: &mut Ctx) {
        let Some(kids) = self.children.get(&parent).cloned() else {
            return;
        };
        // Pick the target: an active, sending subflow with minimal remaining bytes.
        let target = kids
            .iter()
            .filter(|k| {
                self.senders
                    .get(k)
                    .map(|s| s.status() == SenderStatus::Active && !s.is_paused())
                    .unwrap_or(false)
            })
            .min_by_key(|k| {
                self.senders
                    .get(k)
                    .map(|s| s.remaining_bytes())
                    .unwrap_or(u64::MAX)
            })
            .copied();
        if let Some(target) = target {
            let mut pool = 0u64;
            for k in &kids {
                if *k == target {
                    continue;
                }
                if let Some(s) = self.senders.get_mut(k) {
                    if s.status() == SenderStatus::Active && s.is_paused() {
                        pool += s.shed_unsent_bytes();
                    }
                }
            }
            if pool > 0 {
                if let Some(s) = self.senders.get_mut(&target) {
                    s.add_bytes(pool);
                }
            }
        }
        self.check_parent_completion(parent, ctx);
        if !self.parent_done.get(&parent).copied().unwrap_or(true) {
            let interval = SimTime::from_secs_f64(
                self.params.rebalance_interval_rtts * self.params.default_rtt.as_secs_f64(),
            )
            .max(SimTime::from_micros(100));
            ctx.set_timer_after(parent, TimerKind::Rebalance, interval, 0);
        }
    }
}

impl HostAgent for PdqHostAgent {
    fn on_flow_arrival(&mut self, flow: &FlowInfo, ctx: &mut Ctx) {
        if self.params.subflows > 1 && flow.spec.parent.is_none() {
            self.split_into_subflows(flow, ctx);
        } else {
            self.start_sender(flow, ctx);
        }
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Ctx) {
        if packet.reverse {
            // We are the flow's source: feed the sender.
            if let Some(sender) = self.senders.get_mut(&packet.flow) {
                sender.on_packet(&packet, ctx);
                if sender.status() != SenderStatus::Active {
                    if let Some(parent) = self.parent_of.get(&packet.flow).copied() {
                        self.check_parent_completion(parent, ctx);
                    }
                }
            }
        } else {
            // We are the flow's destination: feed (or create) the receiver.
            let receiver = match self.receivers.entry(packet.flow) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let Some(info) = ctx.flow(packet.flow) else {
                        return;
                    };
                    e.insert(PdqReceiver::new(
                        packet.flow,
                        info.spec.size_bytes,
                        info.bottleneck_rate_bps,
                        info.spec.parent.is_some(),
                    ))
                }
            };
            receiver.on_packet(&packet, ctx);
        }
    }

    fn on_timer(&mut self, flow: FlowId, kind: TimerKind, token: u64, ctx: &mut Ctx) {
        if kind == TimerKind::Rebalance {
            self.rebalance(flow, ctx);
            return;
        }
        if let Some(sender) = self.senders.get_mut(&flow) {
            sender.on_timer(kind, token, ctx);
            if sender.status() != SenderStatus::Active {
                if let Some(parent) = self.parent_of.get(&flow).copied() {
                    self.check_parent_completion(parent, ctx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::{Action, FlowPath, LinkId, NodeId};

    fn info(id: u64, size: u64, parent: Option<FlowId>) -> FlowInfo {
        FlowInfo {
            spec: FlowSpec {
                id: FlowId(id),
                src: NodeId(0),
                dst: NodeId(2),
                size_bytes: size,
                deadline: None,
                arrival: SimTime::ZERO,
                parent,
                coflow: None,
            },
            path: FlowPath::new(
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![LinkId(0), LinkId(2)],
            )
            .into(),
            bottleneck_rate_bps: 1e9,
            nic_rate_bps: 1e9,
            base_rtt: SimTime::from_micros(150),
        }
    }

    #[test]
    fn subflow_ids_are_unique_and_derived() {
        let a = subflow_id(FlowId(7), 0);
        let b = subflow_id(FlowId(7), 1);
        let c = subflow_id(FlowId(8), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a.value() >= SUBFLOW_ID_BASE);
    }

    #[test]
    fn single_path_flow_starts_a_sender() {
        let mut agent = PdqHostAgent::new(PdqParams::full(), Discipline::Exact, 1);
        let flows = HashMap::new();
        let mut ctx = Ctx::new(SimTime::ZERO, &flows);
        agent.on_flow_arrival(&info(1, 10_000, None), &mut ctx);
        assert_eq!(agent.active_senders(), 1);
        let actions = ctx.take_actions();
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send(p) if p.kind == pdq_netsim::PacketKind::Syn)));
    }

    #[test]
    fn multipath_parent_spawns_subflows() {
        let mut params = PdqParams::full();
        params.subflows = 4;
        let mut agent = PdqHostAgent::new(params, Discipline::Exact, 1);
        let flows = HashMap::new();
        let mut ctx = Ctx::new(SimTime::ZERO, &flows);
        agent.on_flow_arrival(&info(1, 100_000, None), &mut ctx);
        let actions = ctx.take_actions();
        let spawned: Vec<&FlowSpec> = actions
            .iter()
            .filter_map(|a| match a {
                Action::SpawnFlow(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spawned.len(), 4);
        let total: u64 = spawned.iter().map(|s| s.size_bytes).sum();
        assert_eq!(total, 100_000);
        assert!(spawned.iter().all(|s| s.parent == Some(FlowId(1))));
        // No sender for the parent itself; a re-balance timer is armed.
        assert_eq!(agent.active_senders(), 0);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                kind: TimerKind::Rebalance,
                ..
            }
        )));
    }

    #[test]
    fn subflow_arrivals_create_senders() {
        let mut params = PdqParams::full();
        params.subflows = 2;
        let mut agent = PdqHostAgent::new(params, Discipline::Exact, 1);
        let flows = HashMap::new();
        let mut ctx = Ctx::new(SimTime::ZERO, &flows);
        // The engine delivers the subflow arrival back to the same host.
        let sub = info(subflow_id(FlowId(1), 0).value(), 50_000, Some(FlowId(1)));
        agent.on_flow_arrival(&sub, &mut ctx);
        assert_eq!(agent.active_senders(), 1);
    }

    #[test]
    fn receiver_is_created_on_demand() {
        let mut agent = PdqHostAgent::new(PdqParams::full(), Discipline::Exact, 1);
        let mut flows = HashMap::new();
        flows.insert(FlowId(1), info(1, 2_000, None));
        let mut ctx = Ctx::new(SimTime::ZERO, &flows);
        let syn = Packet::control(pdq_netsim::PacketKind::Syn, FlowId(1), NodeId(0), NodeId(2));
        agent.on_packet(syn, &mut ctx);
        let actions = ctx.take_actions();
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send(p) if p.kind == pdq_netsim::PacketKind::SynAck)));
    }
}
