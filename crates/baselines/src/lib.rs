//! # pdq-baselines
//!
//! The transport protocols the PDQ paper compares against (§5.1), implemented on the
//! same [`pdq_netsim`] substrate so the comparison is apples-to-apples:
//!
//! * **TCP Reno** with a small minimum RTO (incast mitigation) — [`tcp`];
//! * **RCP** with exact per-link flow counting (the paper's optimized variant, which is
//!   also what D3 degenerates to without deadlines) — [`rcp`];
//! * **D3**, the deadline-aware "first-come first-reserve" protocol, with the
//!   non-negative fair-share fix and quenching described in the paper — [`d3`].
//!
//! [`install_tcp`], [`install_rcp`] and [`install_d3`] wire a whole simulator in one
//! call, mirroring [`pdq::install_pdq`](https://docs.rs/pdq).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod d3;
pub mod install;
pub mod rate_host;
pub mod rcp;
pub mod receiver;
pub mod tcp;

pub use d3::{D3Params, D3SwitchController};
pub use install::{register_baselines, D3Installer, RcpInstaller, TcpInstaller};
pub use rate_host::{RateHostAgent, RateMode, RateSender, RateSenderStatus};
pub use rcp::{RcpParams, RcpSwitchController};
pub use receiver::EchoReceiver;
pub use tcp::{TcpHostAgent, TcpParams, TcpSender, TcpStatus};

use pdq_netsim::Simulator;

/// Install plain TCP Reno on every host (switches stay dumb FIFO tail-drop).
pub fn install_tcp(sim: &mut Simulator, params: &TcpParams) {
    let p = params.clone();
    sim.install_agents(move |_, _| Box::new(TcpHostAgent::new(p.clone())));
}

/// Install RCP: rate-paced hosts plus an exact-flow-counting rate controller on every
/// switch egress link.
pub fn install_rcp(sim: &mut Simulator, params: &RcpParams) {
    sim.install_agents(|_, _| Box::new(RateHostAgent::new(RateMode::Rcp)));
    let p = params.clone();
    sim.install_switch_controllers(move |_, _| Box::new(RcpSwitchController::new(p.clone())));
}

/// Install D3: deadline-request hosts plus the first-come-first-reserve allocator on
/// every switch egress link.
pub fn install_d3(sim: &mut Simulator, params: &D3Params, quenching: bool) {
    sim.install_agents(move |_, _| Box::new(RateHostAgent::new(RateMode::D3 { quenching })));
    let p = params.clone();
    sim.install_switch_controllers(move |_, _| Box::new(D3SwitchController::new(p.clone())));
}
