//! TCP Reno with a small minimum RTO (the paper's TCP baseline, §5.1).
//!
//! Window-based congestion control: slow start, congestion avoidance, fast retransmit /
//! fast recovery on three duplicate ACKs, and a retransmission timeout with a small
//! floor (to alleviate the incast problem, as suggested by Vasudevan et al. and done in
//! the PDQ paper's TCP baseline). Switches need no controller: plain FIFO tail-drop.

use std::collections::HashMap;

use pdq_netsim::{
    Ctx, FlowId, FlowInfo, HostAgent, NodeId, Pacer, PacerConfig, Packet, PacketKind, SimTime,
    TimerKind, MSS_BYTES,
};

use crate::receiver::EchoReceiver;

/// TCP Reno parameters.
#[derive(Clone, Debug)]
pub struct TcpParams {
    /// Initial congestion window, in segments.
    pub initial_window_segments: u32,
    /// Minimum retransmission timeout. Data-center TCP deployments shrink this to a few
    /// milliseconds (or less) to recover quickly from incast losses.
    pub min_rto: SimTime,
    /// Receive/congestion window cap, in bytes.
    pub max_window_bytes: u64,
    /// RFC 9002 §7.7 sender pacing: spread the window at `gain · cwnd / srtt`
    /// instead of bursting it back to back. `None` (the default) keeps the
    /// historical burst behavior byte for byte.
    pub pacer: Option<PacerConfig>,
}

impl Default for TcpParams {
    fn default() -> Self {
        TcpParams {
            initial_window_segments: 2,
            min_rto: SimTime::from_millis(2),
            max_window_bytes: 1 << 20,
            pacer: None,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CcState {
    SlowStart,
    CongestionAvoidance,
    FastRecovery,
}

/// Sender status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpStatus {
    /// Still transferring.
    Active,
    /// Finished.
    Finished,
}

/// A TCP Reno sender for one flow.
#[derive(Debug)]
pub struct TcpSender {
    params: TcpParams,
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    size: u64,

    cwnd: f64,
    ssthresh: f64,
    state: CcState,
    next_seq: u64,
    acked: u64,
    dup_acks: u32,
    recover: u64,
    rtt: f64,
    rttvar: f64,
    syn_acked: bool,
    status: TcpStatus,
    rto_token: u64,
    rto_backoff: u32,
    pacer: Option<Pacer>,
    pace_token: u64,
}

impl TcpSender {
    /// Create a sender for `flow`.
    pub fn new(params: TcpParams, flow: &FlowInfo) -> Self {
        let mss = MSS_BYTES as f64;
        let rtt = flow.base_rtt.as_secs_f64();
        TcpSender {
            cwnd: params.initial_window_segments as f64 * mss,
            ssthresh: params.max_window_bytes as f64,
            pacer: params.pacer.map(Pacer::new),
            params,
            flow: flow.spec.id,
            src: flow.spec.src,
            dst: flow.spec.dst,
            size: flow.spec.size_bytes,
            state: CcState::SlowStart,
            next_seq: 0,
            acked: 0,
            dup_acks: 0,
            recover: 0,
            rtt,
            rttvar: rtt / 2.0,
            syn_acked: false,
            status: TcpStatus::Active,
            rto_token: 0,
            rto_backoff: 0,
            pace_token: 0,
        }
    }

    /// Current status.
    pub fn status(&self) -> TcpStatus {
        self.status
    }

    /// Congestion window in bytes (tests / diagnostics).
    pub fn cwnd_bytes(&self) -> f64 {
        self.cwnd
    }

    fn mss(&self) -> f64 {
        MSS_BYTES as f64
    }

    fn in_flight(&self) -> u64 {
        self.next_seq.saturating_sub(self.acked)
    }

    fn rto(&self) -> SimTime {
        let base = self.rtt + 4.0 * self.rttvar;
        let backoff = 1u64 << self.rto_backoff.min(6);
        SimTime::from_secs_f64(base * backoff as f64).max(self.params.min_rto)
    }

    fn data_packet(&self, seq: u64, now: SimTime) -> Packet {
        let payload = (self.size - seq).min(MSS_BYTES as u64) as u32;
        let mut p = Packet::data(self.flow, self.src, self.dst, seq, payload);
        p.sent_at = now;
        p
    }

    /// Start the flow: send the SYN.
    pub fn start(&mut self, ctx: &mut Ctx) {
        if self.size == 0 {
            self.status = TcpStatus::Finished;
            ctx.flow_completed(self.flow);
            return;
        }
        let mut syn = Packet::control(PacketKind::Syn, self.flow, self.src, self.dst);
        syn.sent_at = ctx.now();
        ctx.send(syn);
        self.arm_rto(ctx);
    }

    fn send_window(&mut self, ctx: &mut Ctx) {
        if self.status != TcpStatus::Active || !self.syn_acked {
            return;
        }
        let window = self.cwnd.min(self.params.max_window_bytes as f64) as u64;
        // Re-derive the pacing rate from the current window and smoothed RTT
        // before draining (RFC 9002 §7.7: rate = gain · cwnd / srtt).
        if let Some(p) = &mut self.pacer {
            p.set_window(ctx.now(), window, SimTime::from_secs_f64(self.rtt));
        }
        while self.next_seq < self.size && self.in_flight() < window {
            let pkt = self.data_packet(self.next_seq, ctx.now());
            if let Some(p) = &mut self.pacer {
                let wire = pkt.wire_size as u64;
                if !p.try_send(ctx.now(), wire) {
                    // Out of tokens: arm a pacing timer for the instant the
                    // deficit clears and resume the drain there.
                    let wait = p.next_ready(ctx.now(), wire) - ctx.now();
                    self.pace_token += 1;
                    ctx.set_timer_after(self.flow, TimerKind::Pacing, wait, self.pace_token);
                    return;
                }
            }
            self.next_seq += pkt.payload as u64;
            ctx.send(pkt);
        }
    }

    /// Handle a reverse packet (SYN-ACK / ACK).
    pub fn on_packet(&mut self, pkt: &Packet, ctx: &mut Ctx) {
        if self.status != TcpStatus::Active {
            return;
        }
        match pkt.kind {
            PacketKind::SynAck => {
                self.syn_acked = true;
                self.take_rtt_sample(pkt, ctx.now());
                self.send_window(ctx);
                self.arm_rto(ctx);
            }
            PacketKind::Ack => {
                self.take_rtt_sample(pkt, ctx.now());
                if pkt.ack > self.acked {
                    let newly = pkt.ack - self.acked;
                    self.acked = pkt.ack;
                    self.dup_acks = 0;
                    self.rto_backoff = 0;
                    if self.state == CcState::FastRecovery {
                        if self.acked >= self.recover {
                            self.cwnd = self.ssthresh;
                            self.state = CcState::CongestionAvoidance;
                        } else {
                            // Partial ACK: retransmit the next missing segment.
                            let pkt = self.data_packet(self.acked, ctx.now());
                            ctx.send(pkt);
                        }
                    } else if self.state == CcState::SlowStart {
                        self.cwnd += newly as f64;
                        if self.cwnd >= self.ssthresh {
                            self.state = CcState::CongestionAvoidance;
                        }
                    } else {
                        self.cwnd += self.mss() * newly as f64 / self.cwnd;
                    }
                    self.cwnd = self.cwnd.min(self.params.max_window_bytes as f64);
                    if self.acked >= self.size {
                        self.status = TcpStatus::Finished;
                        ctx.flow_completed(self.flow);
                        return;
                    }
                    self.send_window(ctx);
                    self.arm_rto(ctx);
                } else if self.acked < self.next_seq {
                    self.dup_acks += 1;
                    if self.dup_acks == 3 && self.state != CcState::FastRecovery {
                        // Fast retransmit + fast recovery.
                        self.ssthresh = (self.in_flight() as f64 / 2.0).max(2.0 * self.mss());
                        self.cwnd = self.ssthresh + 3.0 * self.mss();
                        self.state = CcState::FastRecovery;
                        self.recover = self.next_seq;
                        let pkt = self.data_packet(self.acked, ctx.now());
                        ctx.send(pkt);
                    } else if self.state == CcState::FastRecovery {
                        self.cwnd += self.mss();
                        self.send_window(ctx);
                    }
                }
            }
            _ => {}
        }
    }

    /// Handle a timer (RTO, plus pacing when enabled).
    pub fn on_timer(&mut self, kind: TimerKind, token: u64, ctx: &mut Ctx) {
        if self.status != TcpStatus::Active {
            return;
        }
        if kind == TimerKind::Pacing {
            if token == self.pace_token {
                self.send_window(ctx);
            }
            return;
        }
        if kind != TimerKind::Rto || token != self.rto_token {
            return;
        }
        if !self.syn_acked {
            let mut syn = Packet::control(PacketKind::Syn, self.flow, self.src, self.dst);
            syn.sent_at = ctx.now();
            ctx.send(syn);
        } else if self.acked < self.size && self.in_flight() > 0 {
            // Timeout: multiplicative decrease and go back to slow start.
            self.ssthresh = (self.in_flight() as f64 / 2.0).max(2.0 * self.mss());
            self.cwnd = self.mss();
            self.state = CcState::SlowStart;
            self.next_seq = self.acked;
            self.dup_acks = 0;
            self.rto_backoff += 1;
            self.send_window(ctx);
        }
        self.arm_rto(ctx);
    }

    fn take_rtt_sample(&mut self, pkt: &Packet, now: SimTime) {
        if pkt.sent_at > SimTime::ZERO && now > pkt.sent_at {
            let sample = (now - pkt.sent_at).as_secs_f64();
            self.rttvar = 0.75 * self.rttvar + 0.25 * (sample - self.rtt).abs();
            self.rtt = 0.875 * self.rtt + 0.125 * sample;
        }
    }

    fn arm_rto(&mut self, ctx: &mut Ctx) {
        self.rto_token += 1;
        let rto = self.rto();
        ctx.set_timer_after(self.flow, TimerKind::Rto, rto, self.rto_token);
    }
}

/// The per-host TCP agent: one [`TcpSender`] per originating flow, one
/// [`EchoReceiver`] per terminating flow.
pub struct TcpHostAgent {
    params: TcpParams,
    senders: HashMap<FlowId, TcpSender>,
    receivers: HashMap<FlowId, EchoReceiver>,
}

impl TcpHostAgent {
    /// Create an agent with the given TCP parameters.
    pub fn new(params: TcpParams) -> Self {
        TcpHostAgent {
            params,
            senders: HashMap::new(),
            receivers: HashMap::new(),
        }
    }
}

impl HostAgent for TcpHostAgent {
    fn on_flow_arrival(&mut self, flow: &FlowInfo, ctx: &mut Ctx) {
        let mut s = TcpSender::new(self.params.clone(), flow);
        s.start(ctx);
        self.senders.insert(flow.spec.id, s);
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Ctx) {
        if packet.reverse {
            if let Some(s) = self.senders.get_mut(&packet.flow) {
                s.on_packet(&packet, ctx);
            }
        } else {
            let receiver = match self.receivers.entry(packet.flow) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let Some(info) = ctx.flow(packet.flow) else {
                        return;
                    };
                    e.insert(EchoReceiver::new(packet.flow, info.spec.size_bytes))
                }
            };
            receiver.on_packet(&packet, ctx);
        }
    }

    fn on_timer(&mut self, flow: FlowId, kind: TimerKind, token: u64, ctx: &mut Ctx) {
        if let Some(s) = self.senders.get_mut(&flow) {
            s.on_timer(kind, token, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::{Action, FlowPath, FlowSpec, LinkId};

    fn info(size: u64) -> (HashMap<FlowId, FlowInfo>, FlowInfo) {
        let fi = FlowInfo {
            spec: FlowSpec::new(1, NodeId(0), NodeId(2), size),
            path: FlowPath::new(
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![LinkId(0), LinkId(2)],
            )
            .into(),
            bottleneck_rate_bps: 1e9,
            nic_rate_bps: 1e9,
            base_rtt: SimTime::from_micros(150),
        };
        let mut m = HashMap::new();
        m.insert(FlowId(1), fi.clone());
        (m, fi)
    }

    fn synack(now: SimTime) -> Packet {
        let mut p = Packet::control(PacketKind::SynAck, FlowId(1), NodeId(0), NodeId(2));
        p.sent_at = now.saturating_sub(SimTime::from_micros(150));
        p
    }

    fn ack(n: u64, now: SimTime) -> Packet {
        let mut p = Packet::control(PacketKind::Ack, FlowId(1), NodeId(0), NodeId(2));
        p.ack = n;
        p.sent_at = now.saturating_sub(SimTime::from_micros(150));
        p
    }

    fn count_data(actions: &[Action]) -> usize {
        actions
            .iter()
            .filter(|a| matches!(a, Action::Send(p) if p.kind == PacketKind::Data))
            .count()
    }

    #[test]
    fn slow_start_doubles_window_per_rtt() {
        let (map, fi) = info(1_000_000);
        let mut s = TcpSender::new(TcpParams::default(), &fi);
        let t0 = SimTime::from_micros(200);
        let mut ctx = Ctx::new(t0, &map);
        s.start(&mut ctx);
        ctx.take_actions();
        let mut ctx = Ctx::new(t0, &map);
        s.on_packet(&synack(t0), &mut ctx);
        let a = ctx.take_actions();
        assert_eq!(count_data(&a), 2, "initial window of 2 segments");
        // ACK both segments: window grows to 4 -> sends 4 more.
        let mut ctx = Ctx::new(t0 + SimTime::from_micros(300), &map);
        s.on_packet(&ack(2 * MSS_BYTES as u64, ctx.now()), &mut ctx);
        let a = ctx.take_actions();
        assert_eq!(count_data(&a), 4);
        assert!(s.cwnd_bytes() >= 4.0 * MSS_BYTES as f64);
    }

    #[test]
    fn triple_dup_ack_triggers_fast_retransmit() {
        let (map, fi) = info(1_000_000);
        let mut s = TcpSender::new(TcpParams::default(), &fi);
        let t0 = SimTime::from_micros(200);
        let mut ctx = Ctx::new(t0, &map);
        s.start(&mut ctx);
        ctx.take_actions();
        let mut ctx = Ctx::new(t0, &map);
        s.on_packet(&synack(t0), &mut ctx);
        ctx.take_actions();
        // Grow the window a bit so several packets are in flight.
        let mut t = t0;
        for i in 1..=4u64 {
            t += SimTime::from_micros(300);
            let mut c = Ctx::new(t, &map);
            s.on_packet(&ack(i * 2 * MSS_BYTES as u64, t), &mut c);
        }
        let cwnd_before = s.cwnd_bytes();
        let acked_before = 8 * MSS_BYTES as u64;
        // Three duplicate ACKs at the same cumulative value.
        let mut retransmitted = 0;
        for _ in 0..3 {
            t += SimTime::from_micros(50);
            let mut c = Ctx::new(t, &map);
            s.on_packet(&ack(acked_before, t), &mut c);
            retransmitted += count_data(&c.take_actions());
        }
        assert_eq!(retransmitted, 1, "exactly one fast retransmission");
        assert!(s.cwnd_bytes() < cwnd_before, "window must shrink on loss");
    }

    #[test]
    fn rto_resets_to_slow_start() {
        let (map, fi) = info(1_000_000);
        let mut s = TcpSender::new(TcpParams::default(), &fi);
        let t0 = SimTime::from_micros(200);
        let mut ctx = Ctx::new(t0, &map);
        s.start(&mut ctx);
        ctx.take_actions();
        let mut ctx = Ctx::new(t0, &map);
        s.on_packet(&synack(t0), &mut ctx);
        ctx.take_actions();
        let token = s.rto_token;
        let mut ctx = Ctx::new(t0 + SimTime::from_millis(10), &map);
        s.on_timer(TimerKind::Rto, token, &mut ctx);
        assert_eq!(s.cwnd_bytes(), MSS_BYTES as f64);
    }

    #[test]
    fn completion_reports_flow_completed() {
        let (map, fi) = info(2 * MSS_BYTES as u64);
        let mut s = TcpSender::new(TcpParams::default(), &fi);
        let t0 = SimTime::from_micros(200);
        let mut ctx = Ctx::new(t0, &map);
        s.start(&mut ctx);
        ctx.take_actions();
        let mut ctx = Ctx::new(t0, &map);
        s.on_packet(&synack(t0), &mut ctx);
        ctx.take_actions();
        let mut ctx = Ctx::new(t0 + SimTime::from_micros(400), &map);
        s.on_packet(&ack(2 * MSS_BYTES as u64, ctx.now()), &mut ctx);
        assert_eq!(s.status(), TcpStatus::Finished);
        assert!(ctx
            .take_actions()
            .iter()
            .any(|a| matches!(a, Action::FlowCompleted(_))));
    }

    #[test]
    fn pacing_spreads_the_window_instead_of_bursting() {
        let (map, fi) = info(1_000_000);
        let params = TcpParams {
            pacer: Some(PacerConfig {
                gain: 1.25,
                burst_bytes: MSS_BYTES as u64, // one full packet of burst
            }),
            ..TcpParams::default()
        };
        let mut s = TcpSender::new(params, &fi);
        let t0 = SimTime::from_micros(200);
        let mut ctx = Ctx::new(t0, &map);
        s.start(&mut ctx);
        ctx.take_actions();
        let mut ctx = Ctx::new(t0, &map);
        s.on_packet(&synack(t0), &mut ctx);
        let actions = ctx.take_actions();
        // Unpaced TCP would blast both initial segments back to back; the paced
        // sender emits one and arms a pacing timer for the second.
        assert_eq!(count_data(&actions), 1);
        let (at, token) = actions
            .iter()
            .find_map(|a| match a {
                Action::SetTimer {
                    kind: TimerKind::Pacing,
                    at,
                    token,
                    ..
                } => Some((*at, *token)),
                _ => None,
            })
            .expect("a pacing timer must be armed");
        assert!(at > t0);
        // When the timer fires, the drain resumes and the second segment leaves.
        let mut ctx = Ctx::new(at, &map);
        s.on_timer(TimerKind::Pacing, token, &mut ctx);
        assert_eq!(count_data(&ctx.take_actions()), 1);
    }

    #[test]
    fn min_rto_is_respected() {
        let (_, fi) = info(1_000_000);
        let s = TcpSender::new(TcpParams::default(), &fi);
        assert!(s.rto() >= SimTime::from_millis(2));
    }
}
