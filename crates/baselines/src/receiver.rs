//! A generic receiver for the explicit-rate baselines (RCP, D3).
//!
//! Like the PDQ receiver, it echoes the scheduling header of every forward packet on
//! the matching ACK, keeps a cumulative in-order byte count, and declares the flow
//! complete when every byte has arrived.

use pdq_netsim::{Ctx, FlowId, Packet, PacketKind};

/// Per-flow receiver state for RCP / D3.
#[derive(Debug)]
pub struct EchoReceiver {
    flow: FlowId,
    size: u64,
    received_upto: u64,
    completed: bool,
}

impl EchoReceiver {
    /// Create receiver state for a flow of `size` bytes.
    pub fn new(flow: FlowId, size: u64) -> Self {
        EchoReceiver {
            flow,
            size,
            received_upto: 0,
            completed: false,
        }
    }

    /// Contiguous bytes received so far.
    pub fn received(&self) -> u64 {
        self.received_upto
    }

    /// Handle a forward packet, emitting the echo / ACK.
    pub fn on_packet(&mut self, pkt: &Packet, ctx: &mut Ctx) {
        match pkt.kind {
            PacketKind::Syn => {
                ctx.send(pkt.make_echo(PacketKind::SynAck, self.received_upto));
            }
            PacketKind::Data => {
                if pkt.seq == self.received_upto {
                    self.received_upto += pkt.payload as u64;
                }
                ctx.send(pkt.make_echo(PacketKind::Ack, self.received_upto));
                if self.received_upto >= self.size && !self.completed {
                    self.completed = true;
                    ctx.flow_completed(self.flow);
                }
            }
            PacketKind::Probe => {
                ctx.send(pkt.make_echo(PacketKind::Ack, self.received_upto));
            }
            PacketKind::Term => {
                ctx.send(pkt.make_echo(PacketKind::TermAck, self.received_upto));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::{Action, FlowInfo, NodeId, SimTime};
    use std::collections::HashMap;

    #[test]
    fn completes_after_all_bytes() {
        let map: HashMap<FlowId, FlowInfo> = HashMap::new();
        let mut r = EchoReceiver::new(FlowId(1), 2_000);
        let mut ctx = Ctx::new(SimTime::ZERO, &map);
        let p1 = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 1_000);
        let p2 = Packet::data(FlowId(1), NodeId(0), NodeId(1), 1_000, 1_000);
        r.on_packet(&p1, &mut ctx);
        assert_eq!(r.received(), 1_000);
        r.on_packet(&p2, &mut ctx);
        let actions = ctx.take_actions();
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::FlowCompleted(f) if *f == FlowId(1))));
        // Duplicate data does not double-complete.
        let mut ctx2 = Ctx::new(SimTime::ZERO, &map);
        r.on_packet(&p2, &mut ctx2);
        assert!(!ctx2
            .take_actions()
            .iter()
            .any(|a| matches!(a, Action::FlowCompleted(_))));
    }

    #[test]
    fn gap_does_not_advance_ack() {
        let map: HashMap<FlowId, FlowInfo> = HashMap::new();
        let mut r = EchoReceiver::new(FlowId(1), 10_000);
        let mut ctx = Ctx::new(SimTime::ZERO, &map);
        let late = Packet::data(FlowId(1), NodeId(0), NodeId(1), 5_000, 1_000);
        r.on_packet(&late, &mut ctx);
        let actions = ctx.take_actions();
        if let Action::Send(p) = &actions[0] {
            assert_eq!(p.ack, 0);
        } else {
            panic!("expected an ACK");
        }
    }
}
