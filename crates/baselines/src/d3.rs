//! D3 (Deadline-Driven Delivery) switch logic.
//!
//! D3 (Wilson et al., SIGCOMM 2011) is the deadline-aware baseline the PDQ paper
//! compares against. Senders of deadline flows request `remaining_size /
//! time_to_deadline`; switches grant requests greedily **in the order they arrive**
//! ("first-come first-reserve") plus a fair share of whatever is left, and non-deadline
//! flows just get the fair share. Because allocations persist until the flow finishes,
//! an early-arriving far-deadline flow can hold bandwidth that a later, tighter-deadline
//! flow needed — the behaviour PDQ's preemption fixes.
//!
//! Following §5.1 of the PDQ paper, the fair share is clamped to be non-negative
//! (their fix to the published algorithm) and the rate-adaptation constants are
//! α = 0.1, β = 1.

use std::collections::HashMap;

use pdq_netsim::{FlowId, Link, LinkController, Packet, PacketKind, SimTime};

/// Parameters for the D3 controller.
#[derive(Clone, Debug)]
pub struct D3Params {
    /// Control interval, in multiples of the average RTT.
    pub interval_rtts: f64,
    /// Fallback RTT before any measurement exists.
    pub default_rtt: SimTime,
    /// α: weight of the spare-capacity term in the base-rate adaptation.
    pub alpha: f64,
    /// β: weight of the queue-drain term in the base-rate adaptation.
    pub beta: f64,
    /// Forget a flow if unseen for this many control intervals.
    pub idle_intervals: f64,
}

impl Default for D3Params {
    fn default() -> Self {
        D3Params {
            interval_rtts: 2.0,
            default_rtt: SimTime::from_micros(150),
            alpha: 0.1,
            beta: 1.0,
            idle_intervals: 20.0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Allocation {
    rate: f64,
    desired: f64,
    last_seen: SimTime,
}

/// Per-link D3 controller.
pub struct D3SwitchController {
    params: D3Params,
    capacity: f64,
    /// Capacity available to new allocations after the rate-adaptation correction.
    effective_capacity: f64,
    rtt_avg: f64,
    allocations: HashMap<FlowId, Allocation>,
    allocated_sum: f64,
    /// Bytes transmitted at the last tick (to measure utilization for rate adaptation).
    last_bytes_transmitted: u64,
}

impl D3SwitchController {
    /// Create a controller; the link rate is learned in `init`.
    pub fn new(params: D3Params) -> Self {
        let rtt = params.default_rtt.as_secs_f64();
        D3SwitchController {
            params,
            capacity: 0.0,
            effective_capacity: 0.0,
            rtt_avg: rtt,
            allocations: HashMap::new(),
            allocated_sum: 0.0,
            last_bytes_transmitted: 0,
        }
    }

    /// Number of flows with a live allocation.
    pub fn flow_count(&self) -> usize {
        self.allocations.len()
    }

    /// Sum of the rates currently reserved on this link (bits/s).
    pub fn allocated(&self) -> f64 {
        self.allocated_sum
    }

    fn interval(&self) -> SimTime {
        SimTime::from_secs_f64((self.params.interval_rtts * self.rtt_avg).max(50e-6))
    }

    fn release(&mut self, flow: FlowId) {
        if let Some(a) = self.allocations.remove(&flow) {
            self.allocated_sum = (self.allocated_sum - a.rate).max(0.0);
        }
    }

    /// Process a rate request: return the flow's previous allocation, grant
    /// `desired + fair_share` if it fits (deadline flows) or just the fair share
    /// (non-deadline flows), and record the new allocation.
    ///
    /// The fair share is `max(0, C_eff − ΣD) / N`, where `ΣD` is the sum of the desired
    /// rates of every flow the switch currently knows and `N` the flow count — the
    /// published D3 allocation with the non-negativity fix. Because each flow only
    /// refreshes its allocation when its own request arrives, capacity reserved by
    /// earlier flows stays reserved: requests are effectively served in arrival order.
    fn allocate(&mut self, flow: FlowId, desired: f64, now: SimTime) -> f64 {
        // Return this flow's previous allocation before recomputing.
        let prev = self.allocations.get(&flow).map(|a| a.rate).unwrap_or(0.0);
        self.allocated_sum = (self.allocated_sum - prev).max(0.0);

        // Total demand and flow count including the requester's fresh demand.
        let others_desired: f64 = self
            .allocations
            .iter()
            .filter(|(f, _)| **f != flow)
            .map(|(_, a)| a.desired)
            .sum();
        let total_desired = others_desired + desired;
        let n = if self.allocations.contains_key(&flow) {
            self.allocations.len()
        } else {
            self.allocations.len() + 1
        }
        .max(1) as f64;
        let left = (self.effective_capacity - self.allocated_sum).max(0.0);
        // Non-negative fair share (the PDQ paper's fix to the original algorithm).
        let fair_share = ((self.effective_capacity - total_desired) / n).max(0.0);
        let grant = if desired > 0.0 {
            if left >= desired {
                (desired + fair_share).min(left)
            } else {
                // Cannot reserve the desired rate: the flow only gets the fair share of
                // what is left and will most likely miss its deadline (and be quenched).
                fair_share.min(left)
            }
        } else {
            fair_share.min(left)
        };
        self.allocations.insert(
            flow,
            Allocation {
                rate: grant,
                desired,
                last_seen: now,
            },
        );
        self.allocated_sum += grant;
        grant
    }
}

impl LinkController for D3SwitchController {
    fn init(&mut self, now: SimTime, link: &Link) -> Option<SimTime> {
        self.capacity = link.rate_bps;
        self.effective_capacity = link.rate_bps;
        Some(now + self.interval())
    }

    fn on_forward(&mut self, packet: &mut Packet, now: SimTime, _link: &Link) {
        if packet.sched.rtt > 0.0 {
            self.rtt_avg = 0.875 * self.rtt_avg + 0.125 * packet.sched.rtt;
        }
        match packet.kind {
            PacketKind::Term => self.release(packet.flow),
            k if k.carries_forward_header() => {
                let grant = self.allocate(packet.flow, packet.sched.d3_desired, now);
                if packet.sched.d3_allocated > grant {
                    packet.sched.d3_allocated = grant;
                }
            }
            _ => {}
        }
    }

    fn on_reverse(&mut self, _packet: &mut Packet, _now: SimTime, _link: &Link) {}

    fn on_tick(&mut self, now: SimTime, link: &Link) -> Option<SimTime> {
        // Rate adaptation: effective capacity follows C + α(C − y) − β q/T, clamped to
        // [0, C], where y is the measured utilization over the last interval.
        let interval_s = (self.params.interval_rtts * self.rtt_avg).max(50e-6);
        let bytes = link.stats.bytes_transmitted;
        let delta = bytes.saturating_sub(self.last_bytes_transmitted);
        self.last_bytes_transmitted = bytes;
        let y = delta as f64 * 8.0 / interval_s;
        let q_drain = link.queue_bytes() as f64 * 8.0 / interval_s;
        self.effective_capacity = (self.capacity + self.params.alpha * (self.capacity - y)
            - self.params.beta * q_drain)
            .clamp(0.0, self.capacity);
        // Purge silent flows.
        let idle = SimTime::from_secs_f64(self.params.idle_intervals * interval_s);
        let stale: Vec<FlowId> = self
            .allocations
            .iter()
            .filter(|(_, a)| a.last_seen + idle < now)
            .map(|(f, _)| *f)
            .collect();
        for f in stale {
            self.release(f);
        }
        Some(now + self.interval())
    }

    fn name(&self) -> &'static str {
        "d3-switch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::{LinkParams, Network, NodeId, SchedulingHeader};

    fn setup() -> (Network, pdq_netsim::LinkId, D3SwitchController) {
        let mut net = Network::new();
        let s = net.add_switch("s");
        let h = net.add_host("h");
        let (l, _) = net.add_duplex_link(s, h, LinkParams::default());
        let mut ctl = D3SwitchController::new(D3Params::default());
        ctl.init(SimTime::ZERO, net.link(l));
        (net, l, ctl)
    }

    fn request(flow: u64, desired: f64) -> Packet {
        let mut p = Packet::data(FlowId(flow), NodeId(1), NodeId(0), 0, 1000);
        p.sched = SchedulingHeader::new(1e9);
        p.sched.rtt = 150e-6;
        p.sched.d3_desired = desired;
        p.sched.d3_allocated = f64::INFINITY;
        p
    }

    #[test]
    fn deadline_flow_gets_its_desired_rate_plus_fair_share() {
        let (net, l, mut ctl) = setup();
        let mut p = request(1, 3e8);
        ctl.on_forward(&mut p, SimTime::ZERO, net.link(l));
        assert!(p.sched.d3_allocated >= 3e8, "desired rate must be reserved");
        assert!(p.sched.d3_allocated <= 1e9 + 1.0);
    }

    #[test]
    fn first_come_first_reserve_starves_later_deadline_flows() {
        let (net, l, mut ctl) = setup();
        // Flow 1 (far deadline, huge demand) grabs most of the link first.
        let mut p1 = request(1, 9e8);
        ctl.on_forward(&mut p1, SimTime::ZERO, net.link(l));
        assert!(p1.sched.d3_allocated >= 9e8);
        // Flow 2 arrives later wanting 5e8: the link cannot reserve it any more, even
        // though flow 2 might have the tighter deadline.
        let mut p2 = request(2, 5e8);
        ctl.on_forward(&mut p2, SimTime::from_micros(10), net.link(l));
        assert!(
            p2.sched.d3_allocated < 5e8,
            "later flow cannot reserve its desired rate: got {}",
            p2.sched.d3_allocated
        );
    }

    #[test]
    fn non_deadline_flows_share_leftover_fairly() {
        let (net, l, mut ctl) = setup();
        // In D3 every sender refreshes its allocation once per RTT, so run two request
        // rounds: the first lets the switch learn all three flows, the second converges
        // to the published allocation (deadline flow keeps its demand + fair share, the
        // best-effort flows split the leftover).
        for round in 0..2 {
            let t = SimTime::from_micros(round * 150);
            let mut p1 = request(1, 6e8);
            ctl.on_forward(&mut p1, t, net.link(l));
            let mut p2 = request(2, 0.0);
            ctl.on_forward(&mut p2, t, net.link(l));
            let mut p3 = request(3, 0.0);
            ctl.on_forward(&mut p3, t, net.link(l));
            if round == 1 {
                assert!(p1.sched.d3_allocated >= 6e8, "{}", p1.sched.d3_allocated);
                assert!(p2.sched.d3_allocated > 0.0);
                assert!(p3.sched.d3_allocated > 0.0);
            }
        }
        let total = ctl.allocated();
        assert!(total <= 1e9 + 1.0, "never over-allocate the link: {total}");
    }

    #[test]
    fn term_releases_reservation() {
        let (net, l, mut ctl) = setup();
        let mut p1 = request(1, 8e8);
        ctl.on_forward(&mut p1, SimTime::ZERO, net.link(l));
        let mut term = Packet::control(PacketKind::Term, FlowId(1), NodeId(1), NodeId(0));
        ctl.on_forward(&mut term, SimTime::ZERO, net.link(l));
        assert_eq!(ctl.flow_count(), 0);
        // A later flow can now reserve the full link.
        let mut p2 = request(2, 8e8);
        ctl.on_forward(&mut p2, SimTime::ZERO, net.link(l));
        assert!(p2.sched.d3_allocated >= 8e8);
    }

    #[test]
    fn fair_share_never_negative_even_when_overloaded() {
        let (net, l, mut ctl) = setup();
        for f in 1..=5u64 {
            let mut p = request(f, 4e8);
            ctl.on_forward(&mut p, SimTime::ZERO, net.link(l));
            assert!(p.sched.d3_allocated >= 0.0);
        }
        assert!(ctl.allocated() <= 1e9 + 1.0);
    }

    #[test]
    fn rate_adaptation_reacts_to_queue() {
        let (mut net, l, mut ctl) = setup();
        net.link_mut(l).queue_bytes = 200_000;
        ctl.on_tick(SimTime::from_millis(1), net.link(l));
        assert!(ctl.effective_capacity < 1e9);
        net.link_mut(l).queue_bytes = 0;
        ctl.on_tick(SimTime::from_millis(2), net.link(l));
        assert!(ctl.effective_capacity > 9e8);
    }
}
