//! Sender and host agent shared by the explicit-rate baselines (RCP and D3).
//!
//! Both protocols pace data at a rate granted by the switches through the scheduling
//! header; they differ only in which header fields carry the grant and in what the
//! sender requests (D3 deadline flows ask for `remaining_size / time_to_deadline`).

use std::collections::HashMap;

use pdq_netsim::{
    Ctx, FlowId, FlowInfo, HostAgent, NodeId, Pacer, PacerConfig, Packet, PacketKind, SimTime,
    TimerKind, MSS_BYTES,
};

use crate::receiver::EchoReceiver;

/// Which explicit-rate protocol a sender speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RateMode {
    /// RCP with exact flow counting: the granted rate arrives in `rcp_rate`.
    Rcp,
    /// D3: the granted rate arrives in `d3_allocated`; deadline flows request
    /// `remaining / time_to_deadline` and are quenched when the deadline has passed.
    D3 {
        /// Enable the quenching (early termination) of flows whose deadline passed.
        quenching: bool,
    },
}

/// Sender status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RateSenderStatus {
    /// Still transferring.
    Active,
    /// All bytes acknowledged.
    Finished,
    /// Quenched (D3 only).
    Terminated,
}

/// A rate-paced sender for RCP / D3.
#[derive(Debug)]
pub struct RateSender {
    mode: RateMode,
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    size: u64,
    deadline: Option<SimTime>,
    max_rate: f64,
    min_rto: SimTime,

    rate: f64,
    granted: f64,
    previous_alloc: f64,
    rtt: f64,
    next_seq: u64,
    acked: u64,
    dup_acks: u32,
    /// No further fast retransmit until the cumulative ACK passes this point.
    recover: u64,
    syn_acked: bool,
    status: RateSenderStatus,

    pacing_token: u64,
    pacing_armed: bool,
    rto_token: u64,
    /// RFC 9002-style token bucket replacing the one-packet-per-gap schedule
    /// when enabled (see [`RateSender::with_pacer`]).
    pacer: Option<Pacer>,
}

impl RateSender {
    /// Create a sender for `flow`.
    pub fn new(mode: RateMode, flow: &FlowInfo, min_rto: SimTime) -> Self {
        RateSender {
            mode,
            flow: flow.spec.id,
            src: flow.spec.src,
            dst: flow.spec.dst,
            size: flow.spec.size_bytes,
            deadline: flow.spec.deadline,
            max_rate: flow.bottleneck_rate_bps.min(flow.nic_rate_bps),
            min_rto,
            rate: 0.0,
            granted: 0.0,
            previous_alloc: 0.0,
            rtt: flow.base_rtt.as_secs_f64(),
            next_seq: 0,
            acked: 0,
            dup_acks: 0,
            recover: 0,
            syn_acked: false,
            status: RateSenderStatus::Active,
            pacing_token: 0,
            pacing_armed: false,
            rto_token: 0,
            pacer: None,
        }
    }

    /// Drive sends through an RFC 9002-style token bucket at the granted rate
    /// instead of the fixed one-packet-per-gap schedule: short token-bounded
    /// bursts are allowed (better WAN pipe utilization), and a mid-gap rate
    /// change re-prices the remaining wait instead of honoring the stale gap.
    pub fn with_pacer(mut self, config: PacerConfig) -> Self {
        self.pacer = Some(Pacer::new(config));
        self
    }

    /// Current status.
    pub fn status(&self) -> RateSenderStatus {
        self.status
    }

    /// Currently granted rate in bits/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The minimum rate any flow is allowed to trickle at (one packet per RTT), which
    /// is D3's "base rate" and also keeps RCP flows alive under extreme load.
    fn floor_rate(&self) -> f64 {
        (MSS_BYTES as f64 * 8.0) / self.rtt.max(1e-6)
    }

    fn desired_rate(&self, now: SimTime) -> f64 {
        match self.mode {
            RateMode::Rcp => 0.0,
            RateMode::D3 { .. } => match self.deadline {
                Some(dl) if dl > now => {
                    let remaining = (self.size - self.acked) as f64 * 8.0;
                    let time_left = (dl - now).as_secs_f64();
                    (remaining / time_left).min(self.max_rate)
                }
                _ => 0.0,
            },
        }
    }

    fn forward_packet(&self, kind: PacketKind, seq: u64, payload: u32, now: SimTime) -> Packet {
        let mut p = if payload > 0 {
            Packet::data(self.flow, self.src, self.dst, seq, payload)
        } else {
            Packet::control(kind, self.flow, self.src, self.dst)
        };
        p.kind = kind;
        p.reverse = false;
        p.sent_at = now;
        p.sched.rate = self.max_rate;
        p.sched.deadline = self.deadline;
        p.sched.rtt = self.rtt;
        p.sched.rcp_rate = f64::INFINITY;
        p.sched.d3_allocated = f64::INFINITY;
        p.sched.d3_desired = self.desired_rate(now);
        p.sched.d3_previous = self.previous_alloc;
        p
    }

    /// Start the flow: send SYN.
    pub fn start(&mut self, ctx: &mut Ctx) {
        if self.size == 0 {
            self.finish(ctx);
            return;
        }
        let syn = self.forward_packet(PacketKind::Syn, 0, 0, ctx.now());
        ctx.send(syn);
        self.arm_rto(ctx);
    }

    /// Handle a reverse packet (SYN-ACK / ACK).
    pub fn on_packet(&mut self, pkt: &Packet, ctx: &mut Ctx) {
        if self.status != RateSenderStatus::Active {
            return;
        }
        match pkt.kind {
            PacketKind::SynAck | PacketKind::Ack => {
                if pkt.sent_at > SimTime::ZERO && ctx.now() > pkt.sent_at {
                    let sample = (ctx.now() - pkt.sent_at).as_secs_f64();
                    self.rtt = 0.875 * self.rtt + 0.125 * sample;
                }
                if pkt.kind == PacketKind::SynAck {
                    self.syn_acked = true;
                    self.arm_rto(ctx);
                }
                if pkt.ack > self.acked {
                    self.acked = pkt.ack;
                    self.dup_acks = 0;
                    // Progress: restart the retransmission timer.
                    self.arm_rto(ctx);
                } else if pkt.ack == self.acked && self.acked < self.next_seq {
                    self.dup_acks += 1;
                    // One fast retransmit per window (see PdqSender for the rationale).
                    if self.dup_acks >= 3 && self.acked >= self.recover {
                        self.recover = self.next_seq;
                        self.next_seq = self.acked;
                        self.dup_acks = 0;
                    }
                }
                // Extract the granted rate for this protocol.
                let grant = match self.mode {
                    RateMode::Rcp => pkt.sched.rcp_rate,
                    RateMode::D3 { .. } => pkt.sched.d3_allocated,
                };
                self.granted = if grant.is_finite() {
                    grant
                } else {
                    self.max_rate
                };
                self.previous_alloc = self.granted;
                self.rate = self
                    .granted
                    .min(self.max_rate)
                    .max(self.floor_rate())
                    .min(self.max_rate);

                if self.acked >= self.size && self.syn_acked {
                    self.finish(ctx);
                    return;
                }
                if self.check_quenching(ctx) {
                    return;
                }
                if !self.pacing_armed {
                    self.send_paced(ctx);
                }
            }
            _ => {}
        }
    }

    /// Handle a timer for this flow.
    pub fn on_timer(&mut self, kind: TimerKind, token: u64, ctx: &mut Ctx) {
        if self.status != RateSenderStatus::Active {
            return;
        }
        match kind {
            TimerKind::Pacing => {
                if token != self.pacing_token {
                    return;
                }
                self.pacing_armed = false;
                if self.check_quenching(ctx) {
                    return;
                }
                self.send_paced(ctx);
            }
            TimerKind::Rto => {
                if token != self.rto_token {
                    return;
                }
                if !self.syn_acked {
                    let syn = self.forward_packet(PacketKind::Syn, 0, 0, ctx.now());
                    ctx.send(syn);
                } else if self.acked < self.size {
                    self.next_seq = self.acked;
                    if !self.pacing_armed {
                        self.send_paced(ctx);
                    }
                }
                self.arm_rto(ctx);
            }
            _ => {}
        }
    }

    fn send_paced(&mut self, ctx: &mut Ctx) {
        if self.status != RateSenderStatus::Active || !self.syn_acked {
            return;
        }
        if self.next_seq >= self.size {
            return; // waiting for ACKs; RTO covers loss
        }
        if self.rate <= 0.0 {
            return;
        }
        if self.pacer.is_some() {
            return self.send_bucketed(ctx);
        }
        let payload = (self.size - self.next_seq).min(MSS_BYTES as u64) as u32;
        let pkt = self.forward_packet(PacketKind::Data, self.next_seq, payload, ctx.now());
        let wire_bits = pkt.wire_size as f64 * 8.0;
        ctx.send(pkt);
        self.next_seq += payload as u64;
        let gap = SimTime::from_secs_f64(wire_bits / self.rate);
        self.pacing_token += 1;
        self.pacing_armed = true;
        ctx.set_timer_after(self.flow, TimerKind::Pacing, gap, self.pacing_token);
    }

    /// The token-bucket variant of [`RateSender::send_paced`]: drain while tokens
    /// last, then arm one pacing timer for the instant the deficit clears.
    fn send_bucketed(&mut self, ctx: &mut Ctx) {
        let pacer = self.pacer.as_mut().expect("checked by caller");
        pacer.set_rate_bps(ctx.now(), self.rate);
        while self.next_seq < self.size {
            let payload = (self.size - self.next_seq).min(MSS_BYTES as u64) as u32;
            let pkt = self.forward_packet(PacketKind::Data, self.next_seq, payload, ctx.now());
            let wire = pkt.wire_size as u64;
            let pacer = self.pacer.as_mut().expect("checked above");
            if !pacer.try_send(ctx.now(), wire) {
                let wait = pacer.next_ready(ctx.now(), wire) - ctx.now();
                self.pacing_token += 1;
                self.pacing_armed = true;
                ctx.set_timer_after(self.flow, TimerKind::Pacing, wait, self.pacing_token);
                return;
            }
            ctx.send(pkt);
            self.next_seq += payload as u64;
        }
    }

    fn arm_rto(&mut self, ctx: &mut Ctx) {
        let rto = SimTime::from_secs_f64(3.0 * self.rtt).max(self.min_rto);
        self.rto_token += 1;
        ctx.set_timer_after(self.flow, TimerKind::Rto, rto, self.rto_token);
    }

    fn finish(&mut self, ctx: &mut Ctx) {
        if self.status != RateSenderStatus::Active {
            return;
        }
        self.status = RateSenderStatus::Finished;
        let term = self.forward_packet(PacketKind::Term, self.next_seq, 0, ctx.now());
        ctx.send(term);
        ctx.flow_completed(self.flow);
    }

    /// D3 quenching: a deadline flow whose deadline has passed stops wasting bandwidth.
    fn check_quenching(&mut self, ctx: &mut Ctx) -> bool {
        let RateMode::D3 { quenching: true } = self.mode else {
            return false;
        };
        let Some(dl) = self.deadline else {
            return false;
        };
        if ctx.now() > dl && self.acked < self.size {
            self.status = RateSenderStatus::Terminated;
            let term = self.forward_packet(PacketKind::Term, self.next_seq, 0, ctx.now());
            ctx.send(term);
            ctx.flow_terminated(self.flow);
            return true;
        }
        false
    }
}

/// The host agent for RCP / D3: one [`RateSender`] per originating flow, one
/// [`EchoReceiver`] per terminating flow.
pub struct RateHostAgent {
    mode: RateMode,
    min_rto: SimTime,
    pacer: Option<PacerConfig>,
    senders: HashMap<FlowId, RateSender>,
    receivers: HashMap<FlowId, EchoReceiver>,
}

impl RateHostAgent {
    /// Create an agent speaking `mode`.
    pub fn new(mode: RateMode) -> Self {
        RateHostAgent {
            mode,
            min_rto: SimTime::from_millis(2),
            pacer: None,
            senders: HashMap::new(),
            receivers: HashMap::new(),
        }
    }

    /// Give every sender an RFC 9002-style token bucket (see
    /// [`RateSender::with_pacer`]).
    pub fn with_pacer(mut self, config: PacerConfig) -> Self {
        self.pacer = Some(config);
        self
    }
}

impl HostAgent for RateHostAgent {
    fn on_flow_arrival(&mut self, flow: &FlowInfo, ctx: &mut Ctx) {
        let mut s = RateSender::new(self.mode, flow, self.min_rto);
        if let Some(config) = self.pacer {
            s = s.with_pacer(config);
        }
        s.start(ctx);
        self.senders.insert(flow.spec.id, s);
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Ctx) {
        if packet.reverse {
            if let Some(s) = self.senders.get_mut(&packet.flow) {
                s.on_packet(&packet, ctx);
            }
        } else {
            let receiver = match self.receivers.entry(packet.flow) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let Some(info) = ctx.flow(packet.flow) else {
                        return;
                    };
                    e.insert(EchoReceiver::new(packet.flow, info.spec.size_bytes))
                }
            };
            receiver.on_packet(&packet, ctx);
        }
    }

    fn on_timer(&mut self, flow: FlowId, kind: TimerKind, token: u64, ctx: &mut Ctx) {
        if let Some(s) = self.senders.get_mut(&flow) {
            s.on_timer(kind, token, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::{Action, FlowPath, FlowSpec, LinkId, SchedulingHeader};

    fn info(size: u64, deadline: Option<SimTime>) -> (HashMap<FlowId, FlowInfo>, FlowInfo) {
        let mut spec = FlowSpec::new(1, NodeId(0), NodeId(2), size);
        if let Some(d) = deadline {
            spec = spec.with_deadline(d);
        }
        let fi = FlowInfo {
            spec,
            path: FlowPath::new(
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![LinkId(0), LinkId(2)],
            )
            .into(),
            bottleneck_rate_bps: 1e9,
            nic_rate_bps: 1e9,
            base_rtt: SimTime::from_micros(150),
        };
        let mut m = HashMap::new();
        m.insert(FlowId(1), fi.clone());
        (m, fi)
    }

    fn synack(rcp: f64, d3: f64, now: SimTime) -> Packet {
        let mut p = Packet::control(PacketKind::SynAck, FlowId(1), NodeId(0), NodeId(2));
        p.sched = SchedulingHeader::new(1e9);
        p.sched.rcp_rate = rcp;
        p.sched.d3_allocated = d3;
        p.sent_at = now.saturating_sub(SimTime::from_micros(150));
        p
    }

    #[test]
    fn rcp_sender_uses_rcp_rate_field() {
        let (map, fi) = info(100_000, None);
        let mut s = RateSender::new(RateMode::Rcp, &fi, SimTime::from_millis(2));
        let now = SimTime::from_micros(200);
        let mut ctx = Ctx::new(now, &map);
        s.start(&mut ctx);
        ctx.take_actions();
        let mut ctx = Ctx::new(now, &map);
        s.on_packet(&synack(5e8, 1e3, now), &mut ctx);
        assert!((s.rate() - 5e8).abs() < 1.0);
        let actions = ctx.take_actions();
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send(p) if p.kind == PacketKind::Data)));
    }

    #[test]
    fn d3_sender_uses_allocation_and_requests_desired_rate() {
        let deadline = Some(SimTime::from_millis(10));
        let (map, fi) = info(500_000, deadline);
        let mut s = RateSender::new(
            RateMode::D3 { quenching: true },
            &fi,
            SimTime::from_millis(2),
        );
        let now = SimTime::from_micros(200);
        let mut ctx = Ctx::new(now, &map);
        s.start(&mut ctx);
        let actions = ctx.take_actions();
        // The SYN carries the desired rate = remaining/(deadline - now) ~ 408 Mbps.
        let syn_desired = actions
            .iter()
            .find_map(|a| match a {
                Action::Send(p) if p.kind == PacketKind::Syn => Some(p.sched.d3_desired),
                _ => None,
            })
            .unwrap();
        assert!(syn_desired > 3.5e8 && syn_desired < 4.5e8, "{syn_desired}");
        let mut ctx = Ctx::new(now, &map);
        s.on_packet(&synack(1e3, 2e8, now), &mut ctx);
        assert!((s.rate() - 2e8).abs() < 1.0);
    }

    #[test]
    fn d3_quenches_after_deadline() {
        let deadline = Some(SimTime::from_millis(1));
        let (map, fi) = info(500_000, deadline);
        let mut s = RateSender::new(
            RateMode::D3 { quenching: true },
            &fi,
            SimTime::from_millis(2),
        );
        let start = SimTime::from_micros(200);
        let mut ctx = Ctx::new(start, &map);
        s.start(&mut ctx);
        ctx.take_actions();
        // First feedback arrives after the deadline has already passed.
        let late = SimTime::from_millis(2);
        let mut ctx = Ctx::new(late, &map);
        s.on_packet(&synack(1e3, 1e8, late), &mut ctx);
        assert_eq!(s.status(), RateSenderStatus::Terminated);
        let actions = ctx.take_actions();
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::FlowTerminated(f) if *f == FlowId(1))));
    }

    #[test]
    fn rcp_without_quenching_keeps_going_past_deadline() {
        let deadline = Some(SimTime::from_millis(1));
        let (map, fi) = info(500_000, deadline);
        let mut s = RateSender::new(RateMode::Rcp, &fi, SimTime::from_millis(2));
        let late = SimTime::from_millis(2);
        let mut ctx = Ctx::new(late, &map);
        s.start(&mut ctx);
        ctx.take_actions();
        let mut ctx = Ctx::new(late, &map);
        s.on_packet(&synack(1e8, 1e3, late), &mut ctx);
        assert_eq!(s.status(), RateSenderStatus::Active);
    }

    #[test]
    fn token_bucket_pacer_bursts_then_arms_one_timer() {
        let (map, fi) = info(100_000, None);
        let mut s =
            RateSender::new(RateMode::Rcp, &fi, SimTime::from_millis(2)).with_pacer(PacerConfig {
                gain: 1.0,
                burst_bytes: 2 * pdq_netsim::MTU_BYTES as u64,
            });
        let now = SimTime::from_micros(200);
        let mut ctx = Ctx::new(now, &map);
        s.start(&mut ctx);
        ctx.take_actions();
        let mut ctx = Ctx::new(now, &map);
        s.on_packet(&synack(5e8, 1e3, now), &mut ctx);
        let actions = ctx.take_actions();
        // The legacy gap schedule sends exactly one packet per grant; the token
        // bucket drains its two-MTU burst allowance, then arms a single pacing
        // timer for the instant the next packet's deficit clears.
        let data = actions
            .iter()
            .filter(|a| matches!(a, Action::Send(p) if p.kind == PacketKind::Data))
            .count();
        assert_eq!(data, 2);
        let pacing_timers = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::SetTimer {
                        kind: TimerKind::Pacing,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(pacing_timers, 1);
    }

    #[test]
    fn granted_rate_never_below_floor_or_above_max() {
        let (map, fi) = info(100_000, None);
        let mut s = RateSender::new(RateMode::Rcp, &fi, SimTime::from_millis(2));
        let now = SimTime::from_micros(200);
        let mut ctx = Ctx::new(now, &map);
        s.start(&mut ctx);
        ctx.take_actions();
        let mut ctx = Ctx::new(now, &map);
        s.on_packet(&synack(0.0, 0.0, now), &mut ctx);
        assert!(s.rate() > 0.0, "rate floor keeps the flow alive");
        let mut ctx = Ctx::new(now, &map);
        s.on_packet(&synack(5e12, 0.0, now), &mut ctx);
        assert!(s.rate() <= 1e9 + 1.0, "never exceed the path rate");
        let _ = ctx.take_actions();
    }
}
