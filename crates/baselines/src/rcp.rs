//! RCP (Rate Control Protocol) switch logic with exact flow counting.
//!
//! The PDQ paper's RCP baseline (§5.1) is optimized by counting the exact number of
//! flows at each switch, so the per-link fair rate converges immediately to
//! `C_effective / N` instead of being estimated from aggregate arrival rates. This is
//! also exactly what D3 degenerates to when no flow has a deadline.

use std::collections::HashMap;

use pdq_netsim::{FlowId, Link, LinkController, Packet, PacketKind, SimTime};

/// Parameters for the RCP controller.
#[derive(Clone, Debug)]
pub struct RcpParams {
    /// Control interval, in multiples of the average RTT.
    pub interval_rtts: f64,
    /// Fallback RTT before any measurement exists.
    pub default_rtt: SimTime,
    /// Forget a flow if it has not been seen for this many control intervals
    /// (flows normally deregister via their TERM packet).
    pub idle_intervals: f64,
}

impl Default for RcpParams {
    fn default() -> Self {
        RcpParams {
            interval_rtts: 2.0,
            default_rtt: SimTime::from_micros(150),
            idle_intervals: 20.0,
        }
    }
}

/// Per-link RCP controller: advertises `max(0, C - q/T) / N` to every flow.
pub struct RcpSwitchController {
    params: RcpParams,
    capacity: f64,
    fair_rate: f64,
    rtt_avg: f64,
    /// Active flows and when each was last seen.
    flows: HashMap<FlowId, SimTime>,
}

impl RcpSwitchController {
    /// Create a controller; the link rate is learned in `init`.
    pub fn new(params: RcpParams) -> Self {
        let rtt = params.default_rtt.as_secs_f64();
        RcpSwitchController {
            params,
            capacity: 0.0,
            fair_rate: 0.0,
            rtt_avg: rtt,
            flows: HashMap::new(),
        }
    }

    /// Number of flows currently counted (tests / diagnostics).
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The advertised fair-share rate in bits/s (tests / diagnostics).
    pub fn fair_rate(&self) -> f64 {
        self.fair_rate
    }

    fn interval(&self) -> SimTime {
        SimTime::from_secs_f64((self.params.interval_rtts * self.rtt_avg).max(50e-6))
    }

    fn recompute(&mut self, queue_bytes: u64) {
        let interval = (self.params.interval_rtts * self.rtt_avg).max(50e-6);
        let drain = queue_bytes as f64 * 8.0 / interval;
        let effective = (self.capacity - drain).max(0.0);
        let n = self.flows.len().max(1) as f64;
        self.fair_rate = effective / n;
    }
}

impl LinkController for RcpSwitchController {
    fn init(&mut self, now: SimTime, link: &Link) -> Option<SimTime> {
        self.capacity = link.rate_bps;
        self.fair_rate = link.rate_bps;
        Some(now + self.interval())
    }

    fn on_forward(&mut self, packet: &mut Packet, now: SimTime, _link: &Link) {
        if packet.sched.rtt > 0.0 {
            self.rtt_avg = 0.875 * self.rtt_avg + 0.125 * packet.sched.rtt;
        }
        match packet.kind {
            PacketKind::Term => {
                self.flows.remove(&packet.flow);
            }
            k if k.carries_forward_header() => {
                let newly_seen = self.flows.insert(packet.flow, now).is_none();
                if newly_seen {
                    // Make room for the new flow right away so a burst of arrivals
                    // immediately shares the link instead of waiting a control interval.
                    let q = 0;
                    self.recompute(q);
                }
                if packet.sched.rcp_rate > self.fair_rate {
                    packet.sched.rcp_rate = self.fair_rate;
                }
            }
            _ => {}
        }
    }

    fn on_reverse(&mut self, _packet: &mut Packet, _now: SimTime, _link: &Link) {}

    fn on_tick(&mut self, now: SimTime, link: &Link) -> Option<SimTime> {
        // Purge flows that silently disappeared.
        let idle = SimTime::from_secs_f64(
            self.params.idle_intervals * self.params.interval_rtts * self.rtt_avg,
        );
        self.flows.retain(|_, last| *last + idle >= now);
        self.recompute(link.queue_bytes());
        Some(now + self.interval())
    }

    fn name(&self) -> &'static str {
        "rcp-switch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::{LinkParams, Network, NodeId, SchedulingHeader};

    fn setup() -> (Network, pdq_netsim::LinkId, RcpSwitchController) {
        let mut net = Network::new();
        let s = net.add_switch("s");
        let h = net.add_host("h");
        let (l, _) = net.add_duplex_link(s, h, LinkParams::default());
        let mut ctl = RcpSwitchController::new(RcpParams::default());
        ctl.init(SimTime::ZERO, net.link(l));
        (net, l, ctl)
    }

    fn data(flow: u64) -> Packet {
        let mut p = Packet::data(FlowId(flow), NodeId(1), NodeId(0), 0, 1000);
        p.sched = SchedulingHeader::new(1e9);
        p.sched.rtt = 150e-6;
        p
    }

    #[test]
    fn fair_share_divides_capacity_by_flow_count() {
        let (net, l, mut ctl) = setup();
        let mut p1 = data(1);
        ctl.on_forward(&mut p1, SimTime::ZERO, net.link(l));
        assert!(
            (p1.sched.rcp_rate - 1e9).abs() < 1.0,
            "one flow gets the full rate"
        );
        let mut p2 = data(2);
        ctl.on_forward(&mut p2, SimTime::ZERO, net.link(l));
        assert!(
            (p2.sched.rcp_rate - 5e8).abs() < 1.0,
            "two flows split the link"
        );
        assert_eq!(ctl.flow_count(), 2);
        // A third flow: each gets a third.
        let mut p3 = data(3);
        ctl.on_forward(&mut p3, SimTime::ZERO, net.link(l));
        assert!((p3.sched.rcp_rate - 1e9 / 3.0).abs() < 1.0);
    }

    #[test]
    fn term_releases_the_share() {
        let (net, l, mut ctl) = setup();
        for f in 1..=4u64 {
            let mut p = data(f);
            ctl.on_forward(&mut p, SimTime::ZERO, net.link(l));
        }
        assert_eq!(ctl.flow_count(), 4);
        let mut term = Packet::control(PacketKind::Term, FlowId(2), NodeId(1), NodeId(0));
        ctl.on_forward(&mut term, SimTime::ZERO, net.link(l));
        assert_eq!(ctl.flow_count(), 3);
        ctl.on_tick(SimTime::from_millis(1), net.link(l));
        assert!((ctl.fair_rate() - 1e9 / 3.0).abs() < 1.0);
    }

    #[test]
    fn queue_build_up_reduces_fair_rate() {
        let (mut net, l, mut ctl) = setup();
        let mut p = data(1);
        ctl.on_forward(&mut p, SimTime::ZERO, net.link(l));
        net.link_mut(l).queue_bytes = 50_000;
        ctl.on_tick(SimTime::from_millis(1), net.link(l));
        assert!(ctl.fair_rate() < 1e9, "queue must push the rate down");
    }

    #[test]
    fn only_lowers_the_header_rate() {
        let (net, l, mut ctl) = setup();
        let mut p1 = data(1);
        ctl.on_forward(&mut p1, SimTime::ZERO, net.link(l));
        let mut p2 = data(2);
        p2.sched.rcp_rate = 1e8; // a slower upstream link already capped it
        ctl.on_forward(&mut p2, SimTime::ZERO, net.link(l));
        assert!((p2.sched.rcp_rate - 1e8).abs() < 1.0);
    }

    #[test]
    fn idle_flows_are_purged() {
        let (net, l, mut ctl) = setup();
        let mut p = data(1);
        ctl.on_forward(&mut p, SimTime::ZERO, net.link(l));
        assert_eq!(ctl.flow_count(), 1);
        // Far in the future, the flow has been silent: it is forgotten.
        ctl.on_tick(SimTime::from_secs(1), net.link(l));
        assert_eq!(ctl.flow_count(), 0);
    }
}
