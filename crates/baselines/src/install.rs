//! TCP, RCP and D3 as pluggable protocols: thin [`pdq_scenario::ProtocolInstaller`]
//! wrappers over [`crate::install_tcp`] / [`crate::install_rcp`] /
//! [`crate::install_d3`], and [`register_baselines`] adding the `tcp`, `rcp` and `d3`
//! families to a [`pdq_scenario::ProtocolRegistry`].
//!
//! All three families take no arguments except `d3(noquench)`, which disables D3's
//! quenching of hopeless deadline flows.
//!
//! `rcp` and `d3` support all three simulation backends — on `backend = flow`
//! scenarios they lower to the §5.5 flow-level models (max-min fair sharing and
//! first-come-first-reserve; `d3(noquench)` disables flow-level quenching too).
//! `tcp` has no flow-level model, but all three families carry a §2.1 fluid
//! idealization for `backend = fluid` scenarios: `tcp` and `rcp` are fair sharing
//! (Figure 1b), `d3` is the first-come-first-reserve model (Figure 1d; the fluid
//! model never quenches, so both `d3` variants idealize identically).

use std::sync::Arc;

use pdq_flowsim::{FlowLevelConfig, FlowProtocol, FluidModel};
use pdq_netsim::{PacerConfig, Simulator};
use pdq_scenario::{InstallerHandle, ProtocolInstaller, ProtocolRegistry, SimBackend};

use crate::{
    install_d3, install_rcp, install_tcp, D3Params, D3SwitchController, RateHostAgent, RateMode,
    RcpParams, RcpSwitchController, TcpParams,
};

/// Installs TCP Reno with the paper's small minimum RTO on every host.
#[derive(Clone, Debug, Default)]
pub struct TcpInstaller {
    /// TCP parameters.
    pub params: TcpParams,
}

impl ProtocolInstaller for TcpInstaller {
    fn name(&self) -> String {
        "tcp".into()
    }

    fn label(&self) -> String {
        "TCP".into()
    }

    fn install(&self, sim: &mut Simulator) {
        install_tcp(sim, &self.params);
    }

    fn with_pacing(&self, config: PacerConfig) -> Option<InstallerHandle> {
        let mut paced = self.clone();
        paced.params.pacer = Some(config);
        Some(Arc::new(paced) as InstallerHandle)
    }

    fn fluid_model(&self) -> Option<FluidModel> {
        Some(FluidModel::FairSharing)
    }
}

/// Installs RCP with exact flow counting: rate-paced hosts plus a rate controller on
/// every switch egress link.
#[derive(Clone, Debug, Default)]
pub struct RcpInstaller {
    /// RCP parameters.
    pub params: RcpParams,
    /// Give every sender an RFC 9002-style token bucket instead of the
    /// one-packet-per-gap schedule (see [`RateHostAgent::with_pacer`]).
    pub pacer: Option<PacerConfig>,
}

impl ProtocolInstaller for RcpInstaller {
    fn name(&self) -> String {
        "rcp".into()
    }

    fn label(&self) -> String {
        "RCP".into()
    }

    fn install(&self, sim: &mut Simulator) {
        match self.pacer {
            None => install_rcp(sim, &self.params),
            Some(config) => {
                sim.install_agents(move |_, _| {
                    Box::new(RateHostAgent::new(RateMode::Rcp).with_pacer(config))
                });
                let p = self.params.clone();
                sim.install_switch_controllers(move |_, _| {
                    Box::new(RcpSwitchController::new(p.clone()))
                });
            }
        }
    }

    fn with_pacing(&self, config: PacerConfig) -> Option<InstallerHandle> {
        let mut paced = self.clone();
        paced.pacer = Some(config);
        Some(Arc::new(paced) as InstallerHandle)
    }

    fn flow_config(&self) -> Option<FlowLevelConfig> {
        Some(FlowLevelConfig::for_protocol(FlowProtocol::Rcp))
    }

    fn fluid_model(&self) -> Option<FluidModel> {
        Some(FluidModel::FairSharing)
    }
}

/// Installs D3: deadline-request hosts plus the first-come-first-reserve allocator on
/// every switch egress link.
#[derive(Clone, Debug)]
pub struct D3Installer {
    /// D3 parameters.
    pub params: D3Params,
    /// Quench hopeless deadline flows (the paper's configuration).
    pub quenching: bool,
    /// Give every sender an RFC 9002-style token bucket instead of the
    /// one-packet-per-gap schedule (see [`RateHostAgent::with_pacer`]).
    pub pacer: Option<PacerConfig>,
}

impl Default for D3Installer {
    fn default() -> Self {
        D3Installer {
            params: D3Params::default(),
            quenching: true,
            pacer: None,
        }
    }
}

impl ProtocolInstaller for D3Installer {
    fn name(&self) -> String {
        if self.quenching {
            "d3".into()
        } else {
            "d3(noquench)".into()
        }
    }

    fn label(&self) -> String {
        if self.quenching {
            "D3".into()
        } else {
            "D3 (no quenching)".into()
        }
    }

    fn install(&self, sim: &mut Simulator) {
        match self.pacer {
            None => install_d3(sim, &self.params, self.quenching),
            Some(config) => {
                let quenching = self.quenching;
                sim.install_agents(move |_, _| {
                    Box::new(RateHostAgent::new(RateMode::D3 { quenching }).with_pacer(config))
                });
                let p = self.params.clone();
                sim.install_switch_controllers(move |_, _| {
                    Box::new(D3SwitchController::new(p.clone()))
                });
            }
        }
    }

    fn with_pacing(&self, config: PacerConfig) -> Option<InstallerHandle> {
        let mut paced = self.clone();
        paced.pacer = Some(config);
        Some(Arc::new(paced) as InstallerHandle)
    }

    fn flow_config(&self) -> Option<FlowLevelConfig> {
        Some(FlowLevelConfig {
            early_termination: self.quenching,
            ..FlowLevelConfig::for_protocol(FlowProtocol::D3)
        })
    }

    fn fluid_model(&self) -> Option<FluidModel> {
        // The §2.1 D3 model has no quenching — flows past their deadline just fall
        // back to the leftover share — so both variants idealize the same way.
        Some(FluidModel::D3)
    }
}

/// Register the `tcp`, `rcp` and `d3` protocol families.
pub fn register_baselines(registry: &mut ProtocolRegistry) {
    registry.register_instance(Arc::new(TcpInstaller::default()));
    registry.register_instance(Arc::new(RcpInstaller::default()));
    registry.register_family_with_backends(
        "d3",
        "D3 first-come-first-reserve: d3 or d3(noquench)",
        &[SimBackend::Packet, SimBackend::Flow, SimBackend::Fluid],
        Box::new(|args| {
            let quenching = match args {
                None => true,
                Some("noquench") => false,
                Some(other) => return Err(format!("unknown d3 argument {other:?}")),
            };
            Ok(Arc::new(D3Installer {
                quenching,
                ..D3Installer::default()
            }) as InstallerHandle)
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_names_and_labels() {
        let mut reg = ProtocolRegistry::new();
        register_baselines(&mut reg);
        for (spec, label) in [
            ("tcp", "TCP"),
            ("rcp", "RCP"),
            ("d3", "D3"),
            ("d3(noquench)", "D3 (no quenching)"),
        ] {
            let installer = reg.resolve(spec).expect(spec);
            assert_eq!(installer.label(), label);
            assert_eq!(installer.name(), spec);
        }
        assert!(reg.resolve("d3(fast)").is_err());
        assert!(reg.resolve("tcp(reno)").is_err());
    }

    #[test]
    fn rcp_and_d3_have_flow_models_tcp_does_not() {
        let mut reg = ProtocolRegistry::new();
        register_baselines(&mut reg);

        let rcp = reg.resolve("rcp").unwrap().flow_config().unwrap();
        assert_eq!(rcp.protocol, FlowProtocol::Rcp);

        let d3 = reg.resolve("d3").unwrap().flow_config().unwrap();
        assert_eq!(d3.protocol, FlowProtocol::D3);
        assert!(d3.early_termination);
        let noquench = reg.resolve("d3(noquench)").unwrap().flow_config().unwrap();
        assert!(!noquench.early_termination);

        let tcp = reg.resolve("tcp").unwrap();
        assert!(tcp.flow_config().is_none());
        assert!(!tcp.supports(SimBackend::Flow));
        // register_instance derived the backends, so the family lists agree.
        let flow_families = reg.families_supporting(SimBackend::Flow);
        assert_eq!(flow_families, vec!["d3".to_string(), "rcp".to_string()]);
    }

    #[test]
    fn every_baseline_has_a_fluid_idealization() {
        let mut reg = ProtocolRegistry::new();
        register_baselines(&mut reg);

        // TCP and RCP are the paper's fair-sharing column; D3 (with or without
        // quenching) is the first-come-first-reserve column.
        for (spec, model) in [
            ("tcp", FluidModel::FairSharing),
            ("rcp", FluidModel::FairSharing),
            ("d3", FluidModel::D3),
            ("d3(noquench)", FluidModel::D3),
        ] {
            let installer = reg.resolve(spec).unwrap();
            assert_eq!(installer.fluid_model(), Some(model), "{spec}");
            assert!(installer.supports(SimBackend::Fluid), "{spec}");
        }
        assert_eq!(
            reg.families_supporting(SimBackend::Fluid),
            vec!["d3".to_string(), "rcp".to_string(), "tcp".to_string()]
        );
    }
}
