//! Per-flow diagnostics.
//!
//! Not a paper figure: a debugging aid that runs the deadline-constrained query
//! aggregation workload (the same setup as Figure 3a) once per protocol and dumps one
//! row per flow — size, deadline, outcome, completion time, slack. This is the quickest
//! way to see *why* a scheme misses deadlines (late completion vs. early termination vs.
//! never finishing) when a figure-level number looks off.

use pdq_netsim::TraceConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use pdq_workloads::{DeadlineDist, SizeDist};

use pdq_topology::single::default_paper_tree;
use pdq_workloads::query_aggregation_flows;

use crate::common::{fmt, run_packet_level, Protocol, Table};

/// One table per protocol in the quick comparison set: per-flow outcomes of a single
/// deadline-constrained query-aggregation run with `n_flows` flows.
pub fn per_flow_outcomes(n_flows: usize, seed: u64) -> Vec<Table> {
    let topo = default_paper_tree();
    let mut tables = Vec::new();
    for protocol in Protocol::quick_set() {
        let mut rng = SmallRng::seed_from_u64(seed);
        let flows = query_aggregation_flows(
            &topo,
            n_flows,
            &SizeDist::query(),
            &DeadlineDist::paper_default(),
            1,
            &mut rng,
        );
        let res = run_packet_level(&topo, &flows, &protocol, seed, TraceConfig::default());
        let mut table = Table::new(
            format!(
                "Per-flow diagnostics: {} ({n_flows} deadline-constrained flows, seed {seed})",
                protocol.label()
            ),
            &[
                "flow",
                "size [KB]",
                "deadline [ms]",
                "outcome",
                "done at [ms]",
                "slack [ms]",
            ],
        );
        let mut ids: Vec<_> = res.flows.keys().copied().collect();
        ids.sort();
        for id in ids {
            let r = &res.flows[&id];
            if r.spec.parent.is_some() {
                continue;
            }
            let deadline = r.spec.deadline;
            let done = r.completed_at.or(r.terminated_at);
            let outcome = match (r.completed_at, r.terminated_at) {
                (Some(_), _) => {
                    if r.met_deadline() {
                        "met"
                    } else {
                        "late"
                    }
                }
                (None, Some(_)) => "terminated",
                (None, None) => "unfinished",
            };
            let slack = match (deadline, r.completed_at) {
                (Some(d), Some(c)) => Some(d.as_millis_f64() - c.as_millis_f64()),
                _ => None,
            };
            table.push_row(vec![
                id.value().to_string(),
                fmt(r.spec.size_bytes as f64 / 1000.0),
                deadline
                    .map(|d| fmt(d.as_millis_f64()))
                    .unwrap_or_else(|| "-".into()),
                outcome.to_string(),
                done.map(|t| fmt(t.as_millis_f64()))
                    .unwrap_or_else(|| "-".into()),
                slack.map(fmt).unwrap_or_else(|| "-".into()),
            ]);
        }
        table.push_row(vec![
            "application throughput".into(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            fmt(res.application_throughput().unwrap_or(1.0) * 100.0),
        ]);
        tables.push(table);
    }
    tables
}

/// Default diagnostic configuration used by the `diag` experiment name. The flow count
/// and seed can be overridden with the `PDQ_DIAG_FLOWS` / `PDQ_DIAG_SEED` environment
/// variables so the tool is usable without recompiling.
pub fn diag() -> Vec<Table> {
    let n = std::env::var("PDQ_DIAG_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    let seed = std::env::var("PDQ_DIAG_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    per_flow_outcomes(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diag_reports_every_flow_for_every_protocol() {
        let tables = per_flow_outcomes(3, 7);
        assert_eq!(tables.len(), Protocol::quick_set().len());
        for t in &tables {
            // 3 flows + the summary row.
            assert_eq!(t.rows.len(), 4);
            // Every flow row has a recognizable outcome.
            for row in &t.rows[..3] {
                assert!(["met", "late", "terminated", "unfinished"].contains(&row[3].as_str()));
            }
        }
    }

    #[test]
    fn deadline_unmet_shows_negative_slack_or_termination() {
        // Sanity of the slack column: it is only present for completed flows.
        let tables = per_flow_outcomes(6, 2);
        for t in &tables {
            for row in &t.rows[..t.rows.len() - 1] {
                if row[3] == "terminated" || row[3] == "unfinished" {
                    assert_eq!(row[5], "-");
                }
            }
        }
    }
}
