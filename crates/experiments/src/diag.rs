//! Per-flow diagnostics.
//!
//! Not a paper figure: a debugging aid that runs the deadline-constrained query
//! aggregation workload (the same setup as Figure 3a) once per protocol and dumps one
//! row per flow — size, deadline, outcome, completion time, slack. This is the quickest
//! way to see *why* a scheme misses deadlines (late completion vs. early termination vs.
//! never finishing) when a figure-level number looks off.

use pdq_scenario::{Scenario, TopologySpec, WorkloadSpec};
use pdq_workloads::{DeadlineDist, SizeDist};

use crate::common::{fmt, label_of, quick_protocols, run_scenario, Table};

/// One table per protocol in the quick comparison set: per-flow outcomes of a single
/// deadline-constrained query-aggregation run with `n_flows` flows.
pub fn per_flow_outcomes(n_flows: usize, seed: u64) -> Vec<Table> {
    let mut tables = Vec::new();
    for protocol in quick_protocols() {
        let res = run_scenario(
            &Scenario::new("diag")
                .topology(TopologySpec::PaperTree)
                .workload(WorkloadSpec::QueryAggregation {
                    flows: n_flows,
                    sizes: SizeDist::query(),
                    deadlines: DeadlineDist::paper_default(),
                })
                .protocol(protocol)
                .seed(seed),
        );
        let mut table = Table::new(
            format!(
                "Per-flow diagnostics: {} ({n_flows} deadline-constrained flows, seed {seed})",
                label_of(protocol)
            ),
            &[
                "flow",
                "size [KB]",
                "deadline [ms]",
                "outcome",
                "done at [ms]",
                "slack [ms]",
            ],
        );
        let mut ids: Vec<_> = res.packet().flows.keys().copied().collect();
        ids.sort();
        for id in ids {
            let r = &res.packet().flows[&id];
            if r.spec.parent.is_some() {
                continue;
            }
            let deadline = r.spec.deadline;
            let done = r.completed_at.or(r.terminated_at);
            let outcome = match (r.completed_at, r.terminated_at) {
                (Some(_), _) => {
                    if r.met_deadline() {
                        "met"
                    } else {
                        "late"
                    }
                }
                (None, Some(_)) => "terminated",
                (None, None) => "unfinished",
            };
            let slack = match (deadline, r.completed_at) {
                (Some(d), Some(c)) => Some(d.as_millis_f64() - c.as_millis_f64()),
                _ => None,
            };
            table.push_row(vec![
                id.value().to_string(),
                fmt(r.spec.size_bytes as f64 / 1000.0),
                deadline
                    .map(|d| fmt(d.as_millis_f64()))
                    .unwrap_or_else(|| "-".into()),
                outcome.to_string(),
                done.map(|t| fmt(t.as_millis_f64()))
                    .unwrap_or_else(|| "-".into()),
                slack.map(fmt).unwrap_or_else(|| "-".into()),
            ]);
        }
        table.push_row(vec![
            "application throughput".into(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            fmt(res.application_throughput().unwrap_or(1.0) * 100.0),
        ]);
        tables.push(table);
    }
    tables
}

/// Default diagnostic configuration used by the `diag` experiment name. The flow count
/// and seed can be overridden with the `PDQ_DIAG_FLOWS` / `PDQ_DIAG_SEED` environment
/// variables so the tool is usable without recompiling.
pub fn diag() -> Vec<Table> {
    let n = std::env::var("PDQ_DIAG_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    let seed = std::env::var("PDQ_DIAG_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    per_flow_outcomes(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diag_reports_every_flow_for_every_protocol() {
        let tables = per_flow_outcomes(3, 7);
        assert_eq!(tables.len(), quick_protocols().len());
        for t in &tables {
            // 3 flows + the summary row.
            assert_eq!(t.rows.len(), 4);
            // Every flow row has a recognizable outcome.
            for row in &t.rows[..3] {
                assert!(["met", "late", "terminated", "unfinished"].contains(&row[3].as_str()));
            }
        }
    }

    #[test]
    fn deadline_unmet_shows_negative_slack_or_termination() {
        // Sanity of the slack column: it is only present for completed flows.
        let tables = per_flow_outcomes(6, 2);
        for t in &tables {
            for row in &t.rows[..t.rows.len() - 1] {
                if row[3] == "terminated" || row[3] == "unfinished" {
                    assert_eq!(row[5], "-");
                }
            }
        }
    }
}
