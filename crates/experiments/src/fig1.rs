//! Figure 1 (§2.1): the motivating fluid-model comparison, regenerated through the
//! Scenario API's `fluid` backend.
//!
//! Three flows — `f_A` (size 1, deadline 1), `f_B` (2, 4), `f_C` (3, 6) — share one
//! unit-rate bottleneck. Fair sharing (TCP/RCP) finishes them at [3, 5, 6] and
//! misses two deadlines; serial SJF/EDF (PDQ's ideal) finishes at [1, 3, 6],
//! ~29% better mean FCT, and meets all three; D3's first-come-first-reserve meets
//! them only for the single arrival order that happens to equal EDF.
//!
//! Each row is a [`Scenario`] with the same manual flow list, run on
//! `backend = fluid` under a different protocol (and, for D3, a different arrival
//! order) — so the paper's motivating numbers are regression-tested through the
//! exact same path `run-spec specs/fig1_fluid.scn` and sweeps use, and stay
//! byte-identical to direct `pdq_flowsim::fluid` calls (see this module's tests).

use pdq_netsim::{FlowSpec, NodeId, SimTime};
use pdq_scenario::{RunSummary, Scenario, SimBackend, TopologySpec, WorkloadSpec};

use crate::common::{run_scenario, Table};

/// The §2.1 flow set as a manual workload: sizes 1/2/3 (fluid units = bytes),
/// deadlines 1/4/6 s, with per-flow arrival offsets in nanoseconds. Arrivals don't
/// shift fluid completions — they only fix D3's reservation (arrival) order.
fn fig1_workload(arrival_offsets_ns: [u64; 3]) -> WorkloadSpec {
    let flow = |id: u64, size: u64, deadline_secs: u64, at: u64| {
        FlowSpec::new(id, NodeId(id as u32), NodeId(4), size)
            .with_arrival(SimTime::from_nanos(at))
            .with_deadline(SimTime::from_secs(deadline_secs))
    };
    WorkloadSpec::Manual(vec![
        flow(1, 1, 1, arrival_offsets_ns[0]),
        flow(2, 2, 4, arrival_offsets_ns[1]),
        flow(3, 3, 6, arrival_offsets_ns[2]),
    ])
}

/// One Figure 1 cell: the shared flow set on the Figure 2b single-bottleneck
/// topology, on the fluid backend, under `protocol`.
pub fn fig1_scenario(name: &str, protocol: &str, arrival_offsets_ns: [u64; 3]) -> Scenario {
    Scenario::new(name)
        .backend(SimBackend::Fluid)
        .topology(TopologySpec::SingleBottleneck {
            senders: 3,
            access_loss: 0.0,
        })
        .workload(fig1_workload(arrival_offsets_ns))
        .protocol(protocol)
}

fn row(label: &str, summary: &RunSummary) -> Vec<String> {
    let fluid = summary.fluid();
    let completion = |id: u64| {
        fluid
            .flow(id)
            .and_then(|r| r.completion)
            .map(|c| format!("{c:.2}"))
            .unwrap_or_else(|| "-".to_string())
    };
    vec![
        label.to_string(),
        completion(1),
        completion(2),
        completion(3),
        fluid
            .mean_fct_secs()
            .map(|m| format!("{m:.2}"))
            .unwrap_or_else(|| "-".to_string()),
        format!("{}/{}", summary.deadlines_met, summary.deadline_flows),
    ]
}

/// Figure 1: completion times, mean FCT and deadlines met for fair sharing,
/// SJF/EDF and D3 (under both the adversarial and the lucky arrival order).
pub fn fig1() -> Table {
    let mut table = Table::new(
        "Figure 1 (§2.1): fluid-model completion times on a unit-rate bottleneck \
         (flows A/B/C: sizes 1/2/3, deadlines 1/4/6)",
        &[
            "scheme",
            "f_A done",
            "f_B done",
            "f_C done",
            "mean FCT",
            "deadlines met",
        ],
    );
    // Fair sharing and SJF/EDF are arrival-order insensitive; D3 is the point of
    // the figure: order B,A,C (Figure 1d) starves f_A, order A,B,C (= EDF) is the
    // one permutation out of 3! = 6 that meets every deadline.
    let cells: [(&str, &str, [u64; 3]); 4] = [
        ("Fair sharing (TCP/RCP)", "tcp", [0, 0, 0]),
        ("SJF/EDF (PDQ)", "pdq(full)", [0, 0, 0]),
        ("D3, arrivals B,A,C", "d3", [1, 0, 2]),
        ("D3, arrivals A,B,C", "d3", [0, 1, 2]),
    ];
    for (label, protocol, arrivals) in cells {
        let summary = run_scenario(&fig1_scenario("fig1", protocol, arrivals));
        table.push_row(row(label, &summary));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_flowsim::{
        d3_completion, deadlines_met, edf_completion, fair_sharing_completion, figure1_flows,
    };

    /// The acceptance gate: the scenario-driven table is byte-identical to the one
    /// computed straight from the `fluid.rs` functions.
    #[test]
    fn fig1_table_matches_direct_fluid_calls_byte_for_byte() {
        let flows = figure1_flows();
        let expect_row = |c: &[f64]| -> Vec<String> {
            let mean = c.iter().sum::<f64>() / c.len() as f64;
            let mut row: Vec<String> = c.iter().map(|v| format!("{v:.2}")).collect();
            row.push(format!("{mean:.2}"));
            row.push(format!("{}/3", deadlines_met(&flows, c)));
            row
        };
        let expected = [
            expect_row(&fair_sharing_completion(&flows)),
            expect_row(&edf_completion(&flows)),
            expect_row(&d3_completion(&flows, &[1, 0, 2])),
            expect_row(&d3_completion(&flows, &[0, 1, 2])),
        ];
        let table = fig1();
        assert_eq!(table.rows.len(), expected.len());
        for (got, want) in table.rows.iter().zip(&expected) {
            assert_eq!(&got[1..], want.as_slice(), "row {:?}", got[0]);
        }
    }

    #[test]
    fn fig1_reproduces_the_papers_headline_numbers() {
        let table = fig1();
        // Fair sharing: [3, 5, 6], mean 4.67, 1/3 deadlines.
        assert_eq!(
            table.rows[0][1..].to_vec(),
            vec!["3.00", "5.00", "6.00", "4.67", "1/3"]
        );
        // SJF/EDF: [1, 3, 6], mean 3.33 (~29% better), all deadlines met.
        assert_eq!(
            table.rows[1][1..].to_vec(),
            vec!["1.00", "3.00", "6.00", "3.33", "3/3"]
        );
        // D3 under the bad arrival order misses a deadline; under EDF order it
        // meets all three.
        assert_eq!(table.rows[2][5], "2/3");
        assert_eq!(table.rows[3][5], "3/3");
    }

    #[test]
    fn fig1_scenarios_round_trip_through_the_spec_format() {
        let s = fig1_scenario("fig1-d3", "d3", [1, 0, 2]);
        let back = Scenario::from_spec(&s.to_spec()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.backend, SimBackend::Fluid);
    }
}
