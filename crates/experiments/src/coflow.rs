//! Coflow completion times.
//!
//! Not a figure from the PDQ paper: coflows (Chowdhury & Stoica, HotNets 2012) group
//! the flows of one application-level operation — a shuffle stage, a partition/
//! aggregate query — and the application-level metric is the *coflow* completion time
//! (CCT), the finish of the group's last flow. This experiment runs the coflow
//! workload once per scheme and compares:
//!
//! * `cpdq` — coflow-aware PDQ: every member advertises the group bottleneck's
//!   expected transmission time and inherits the group deadline, so switches schedule
//!   whole coflows smallest-bottleneck-first (the Sincronia ordering) instead of
//!   interleaving members of different groups;
//! * `pdq(full)` — flow-level PDQ, which optimizes per-flow completion times and
//!   happily interleaves coflows;
//! * `tcp` — fair sharing, the baseline every coflow scheduler is measured against;
//! * `d3` — arrival-order rate reservation.
//!
//! Two tables: a deadline-free workload compares mean/p95 CCT (with deadlines the
//! switch comparator is EDF-first and every scheme sees the same inherited group
//! deadlines, so criticality ordering would not differ), and a deadline-constrained
//! workload compares coflow deadline miss counts.

use pdq_scenario::{RunSummary, Scenario, TopologySpec, WorkloadSpec};
use pdq_workloads::{DeadlineDist, SizeDist};

use crate::common::{fmt_opt, label_of, run_scenario, Table};
use crate::fig3::Scale;

/// The schemes the coflow experiment compares.
pub fn coflow_protocols() -> Vec<&'static str> {
    vec!["cpdq", "pdq(full)", "tcp", "d3"]
}

/// The coflow scenario at the given scale: Poisson coflow arrivals on the paper's
/// 12-server tree, each coflow a partition/aggregate-style group of query-sized
/// member flows.
pub fn coflow_scenario(
    scale: Scale,
    protocol: &str,
    deadlines: DeadlineDist,
    seed: u64,
) -> Scenario {
    let (coflows, width) = match scale {
        Scale::Quick => (8, 4),
        Scale::Paper => (30, 6),
        Scale::Large => (60, 8),
        Scale::Huge => (120, 8),
    };
    Scenario::new("coflow")
        .topology(TopologySpec::PaperTree)
        .workload(WorkloadSpec::Coflow {
            coflows,
            width,
            rate_coflows_per_sec: 2000.0,
            sizes: SizeDist::query(),
            deadlines,
        })
        .protocol(protocol)
        .seed(seed)
}

fn run(scale: Scale, protocol: &str, deadlines: DeadlineDist, seed: u64) -> RunSummary {
    run_scenario(&coflow_scenario(scale, protocol, deadlines, seed))
}

/// Mean/p95 CCT per scheme on the deadline-free coflow workload, where criticality
/// ordering (group-bottleneck SJF vs per-flow SRPT vs fair sharing) is what differs.
pub fn coflow_cct(scale: Scale) -> Table {
    let mut table = Table::new(
        "Coflow completion times (deadline-free groups on the paper tree)",
        &[
            "protocol",
            "coflows",
            "completed",
            "mean CCT [ms]",
            "p95 CCT [ms]",
        ],
    );
    for protocol in coflow_protocols() {
        let res = run(scale, protocol, DeadlineDist::None, 1);
        table.push_row(vec![
            label_of(protocol),
            res.coflows.to_string(),
            res.coflows_completed.to_string(),
            fmt_opt(res.mean_cct_secs.map(|s| s * 1e3)),
            fmt_opt(res.p95_cct_secs.map(|s| s * 1e3)),
        ]);
    }
    table
}

/// Coflow deadline outcomes per scheme when every group carries a deadline that all
/// members inherit.
pub fn coflow_deadline_misses(scale: Scale) -> Table {
    let mut table = Table::new(
        "Coflow deadline misses (every group deadline-constrained)",
        &[
            "protocol",
            "coflows",
            "completed",
            "deadlines met",
            "deadlines missed",
            "mean CCT [ms]",
        ],
    );
    for protocol in coflow_protocols() {
        let res = run(scale, protocol, DeadlineDist::exponential_ms(40), 1);
        let missed = res.coflow_deadlines - res.coflow_deadlines_met;
        table.push_row(vec![
            label_of(protocol),
            res.coflows.to_string(),
            res.coflows_completed.to_string(),
            res.coflow_deadlines_met.to_string(),
            missed.to_string(),
            fmt_opt(res.mean_cct_secs.map(|s| s * 1e3)),
        ]);
    }
    table
}

/// Both coflow tables (the `coflow` experiment name).
pub fn coflow(scale: Scale) -> Vec<Table> {
    vec![coflow_cct(scale), coflow_deadline_misses(scale)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_cct_ms(t: &Table, label: &str) -> f64 {
        let row = t
            .rows
            .iter()
            .find(|r| r[0] == label)
            .unwrap_or_else(|| panic!("no row for {label}"));
        row[3]
            .parse()
            .unwrap_or_else(|_| panic!("{label}: {row:?}"))
    }

    #[test]
    fn coflow_pdq_beats_fair_sharing_on_mean_cct() {
        let t = coflow_cct(Scale::Quick);
        assert_eq!(t.rows.len(), coflow_protocols().len());
        let cpdq = mean_cct_ms(&t, "C-PDQ(Full)");
        let tcp = mean_cct_ms(&t, "TCP");
        // The acceptance bar: scheduling whole coflows smallest-bottleneck-first must
        // beat fair sharing on mean CCT, as in the coflow-scheduling literature.
        assert!(
            cpdq < tcp,
            "coflow-aware PDQ should beat fair sharing on mean CCT: {cpdq} vs {tcp}"
        );
        // Deadline-free groups all complete.
        for row in &t.rows {
            assert_eq!(row[1], "8", "{row:?}");
            assert_eq!(row[2], "8", "{row:?}");
        }
    }

    #[test]
    fn deadline_misses_are_accounted_per_scheme() {
        let t = coflow_deadline_misses(Scale::Quick);
        assert_eq!(t.rows.len(), coflow_protocols().len());
        for row in &t.rows {
            let coflows: usize = row[1].parse().unwrap();
            let met: usize = row[3].parse().unwrap();
            let missed: usize = row[4].parse().unwrap();
            assert_eq!(met + missed, coflows, "{row:?}");
        }
    }
}
