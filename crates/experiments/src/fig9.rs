//! Figure 9: resilience to random packet loss at the bottleneck link (both directions),
//! PDQ vs TCP, for deadline-constrained and deadline-unconstrained query aggregation.

use pdq_scenario::{Scenario, TopologySpec, WorkloadSpec};
use pdq_workloads::{DeadlineDist, SizeDist};

use crate::common::{
    avg_application_throughput, fmt, max_supported, run_scenario, Table, PDQ_FULL,
};
use crate::fig3::Scale;

/// The Figure 9 scenario: query aggregation over a 12-sender bottleneck whose shared
/// access link drops packets at `loss` in both directions.
fn lossy_scenario(name: &str, loss: f64, workload: WorkloadSpec) -> Scenario {
    Scenario::new(name)
        .topology(TopologySpec::SingleBottleneck {
            senders: 12,
            access_loss: loss,
        })
        .workload(workload)
}

/// Figure 9a: number of deadline flows supported at 99% application throughput vs
/// packet loss rate, PDQ vs TCP.
pub fn fig9a(scale: Scale) -> Table {
    let loss_rates = match scale {
        Scale::Quick => vec![0.0, 0.02],
        Scale::Paper | Scale::Large | Scale::Huge => vec![0.0, 0.01, 0.02, 0.03],
    };
    let max_n = match scale {
        Scale::Quick => 16,
        Scale::Paper | Scale::Large | Scale::Huge => 24,
    };
    let mut table = Table::new(
        "Figure 9a: flows at 99% application throughput vs bottleneck loss rate",
        &["loss rate", "PDQ", "TCP"],
    );
    for &loss in &loss_rates {
        let mut row = vec![fmt(loss)];
        for p in [PDQ_FULL, "tcp"] {
            let supported = max_supported(max_n, 0.99, |n| {
                let base = lossy_scenario(
                    "fig9a",
                    loss,
                    WorkloadSpec::QueryAggregation {
                        flows: n,
                        sizes: SizeDist::query(),
                        deadlines: DeadlineDist::paper_default(),
                    },
                )
                .protocol(p);
                avg_application_throughput(&base, &[1])
            });
            row.push(supported.to_string());
        }
        table.push_row(row);
    }
    table
}

/// Figure 9b: mean FCT (normalized to PDQ without loss) vs packet loss rate, PDQ vs
/// TCP, deadline-unconstrained flows.
pub fn fig9b(scale: Scale) -> Table {
    let loss_rates = match scale {
        Scale::Quick => vec![0.0, 0.03],
        Scale::Paper | Scale::Large | Scale::Huge => vec![0.0, 0.01, 0.02, 0.03],
    };
    let n_flows = 10;
    let mut table = Table::new(
        "Figure 9b: mean FCT vs bottleneck loss rate (normalized to PDQ without loss)",
        &["loss rate", "PDQ", "TCP"],
    );
    let fct = |protocol: &str, loss: f64| -> f64 {
        let summary = run_scenario(
            &lossy_scenario(
                "fig9b",
                loss,
                WorkloadSpec::QueryAggregation {
                    flows: n_flows,
                    sizes: SizeDist::UniformMean(100_000),
                    deadlines: DeadlineDist::None,
                },
            )
            .protocol(protocol)
            .seed(2),
        );
        summary.mean_fct_secs.unwrap_or(10.0)
    };
    let base = fct(PDQ_FULL, 0.0);
    for &loss in &loss_rates {
        table.push_row(vec![
            fmt(loss),
            fmt(fct(PDQ_FULL, loss) / base),
            fmt(fct("tcp", loss) / base),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9b_quick_pdq_degrades_less_than_tcp() {
        let t = fig9b(Scale::Quick);
        // Row 0: no loss; row 1: 3% loss each way.
        let pdq_lossless: f64 = t.rows[0][1].parse().unwrap();
        let pdq_lossy: f64 = t.rows[1][1].parse().unwrap();
        let tcp_lossy: f64 = t.rows[1][2].parse().unwrap();
        assert!((pdq_lossless - 1.0).abs() < 1e-9);
        // The paper reports +11% for PDQ vs +45% for TCP under 3% loss each way. Our
        // PDQ sender recovers losses with go-back-N, which is more wasteful than the
        // paper's selective retransmission, so we only assert that PDQ's degradation
        // stays bounded rather than strictly below TCP's (see EXPERIMENTS.md).
        assert!(pdq_lossy < 2.5, "PDQ inflation under 3% loss: {pdq_lossy}");
        assert!(
            tcp_lossy > 1.2,
            "TCP should visibly degrade under loss: {tcp_lossy}"
        );
    }
}
