//! Figure 9: resilience to random packet loss at the bottleneck link (both directions),
//! PDQ vs TCP, for deadline-constrained and deadline-unconstrained query aggregation.

use pdq_netsim::{LinkParams, TraceConfig};
use pdq_topology::single_bottleneck;
use pdq_workloads::{query_aggregation_flows, DeadlineDist, SizeDist};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::common::{
    avg_application_throughput, fmt, max_supported, run_packet_level, Protocol, Table,
};
use crate::fig3::Scale;

fn lossy_topology(n_senders: usize, loss: f64) -> pdq_topology::Topology {
    // Losses are injected on the shared switch<->receiver access link, both directions.
    let mut topo = single_bottleneck(n_senders, LinkParams::default());
    let n_links = topo.net.link_count();
    for idx in [n_links - 2, n_links - 1] {
        topo.net.links[idx].loss_rate = loss;
    }
    topo
}

/// Figure 9a: number of deadline flows supported at 99% application throughput vs
/// packet loss rate, PDQ vs TCP.
pub fn fig9a(scale: Scale) -> Table {
    let loss_rates = match scale {
        Scale::Quick => vec![0.0, 0.02],
        Scale::Paper | Scale::Large => vec![0.0, 0.01, 0.02, 0.03],
    };
    let max_n = match scale {
        Scale::Quick => 16,
        Scale::Paper | Scale::Large => 24,
    };
    let n_senders = 12;
    let mut table = Table::new(
        "Figure 9a: flows at 99% application throughput vs bottleneck loss rate",
        &["loss rate", "PDQ", "TCP"],
    );
    for &loss in &loss_rates {
        let topo = lossy_topology(n_senders, loss);
        let mut row = vec![fmt(loss)];
        for p in [Protocol::Pdq(pdq::PdqVariant::Full), Protocol::Tcp] {
            let supported = max_supported(max_n, 0.99, |n| {
                avg_application_throughput(&topo, &p, &[1], |s| {
                    let mut rng = SmallRng::seed_from_u64(s);
                    query_aggregation_flows(
                        &topo,
                        n,
                        &SizeDist::query(),
                        &DeadlineDist::paper_default(),
                        1,
                        &mut rng,
                    )
                })
            });
            row.push(supported.to_string());
        }
        table.push_row(row);
    }
    table
}

/// Figure 9b: mean FCT (normalized to PDQ without loss) vs packet loss rate, PDQ vs
/// TCP, deadline-unconstrained flows.
pub fn fig9b(scale: Scale) -> Table {
    let loss_rates = match scale {
        Scale::Quick => vec![0.0, 0.03],
        Scale::Paper | Scale::Large => vec![0.0, 0.01, 0.02, 0.03],
    };
    let n_flows = 10;
    let mut table = Table::new(
        "Figure 9b: mean FCT vs bottleneck loss rate (normalized to PDQ without loss)",
        &["loss rate", "PDQ", "TCP"],
    );
    let fct = |protocol: &Protocol, loss: f64| -> f64 {
        let topo = lossy_topology(12, loss);
        let mut rng = SmallRng::seed_from_u64(2);
        let flows = query_aggregation_flows(
            &topo,
            n_flows,
            &SizeDist::UniformMean(100_000),
            &DeadlineDist::None,
            1,
            &mut rng,
        );
        run_packet_level(&topo, &flows, protocol, 2, TraceConfig::default())
            .mean_fct_all_secs()
            .unwrap_or(10.0)
    };
    let base = fct(&Protocol::Pdq(pdq::PdqVariant::Full), 0.0);
    for &loss in &loss_rates {
        table.push_row(vec![
            fmt(loss),
            fmt(fct(&Protocol::Pdq(pdq::PdqVariant::Full), loss) / base),
            fmt(fct(&Protocol::Tcp, loss) / base),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9b_quick_pdq_degrades_less_than_tcp() {
        let t = fig9b(Scale::Quick);
        // Row 0: no loss; row 1: 3% loss each way.
        let pdq_lossless: f64 = t.rows[0][1].parse().unwrap();
        let pdq_lossy: f64 = t.rows[1][1].parse().unwrap();
        let tcp_lossy: f64 = t.rows[1][2].parse().unwrap();
        assert!((pdq_lossless - 1.0).abs() < 1e-9);
        // The paper reports +11% for PDQ vs +45% for TCP under 3% loss each way. Our
        // PDQ sender recovers losses with go-back-N, which is more wasteful than the
        // paper's selective retransmission, so we only assert that PDQ's degradation
        // stays bounded rather than strictly below TCP's (see EXPERIMENTS.md).
        assert!(pdq_lossy < 2.5, "PDQ inflation under 3% loss: {pdq_lossy}");
        assert!(
            tcp_lossy > 1.2,
            "TCP should visibly degrade under loss: {tcp_lossy}"
        );
    }
}
