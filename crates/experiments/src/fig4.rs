//! Figure 4: impact of the sending pattern (Aggregation, Stride, Staggered Prob,
//! Random Permutation) on deadline and no-deadline performance, normalized to
//! PDQ(Full).

use pdq_scenario::{Scenario, TopologySpec, WorkloadSpec};
use pdq_workloads::{DeadlineDist, Pattern, SizeDist};

use crate::common::{
    avg_application_throughput, fmt, label_of, max_supported, run_scenario, Table, PDQ_FULL,
};
use crate::fig3::Scale;

fn patterns(scale: Scale) -> Vec<Pattern> {
    match scale {
        Scale::Quick => vec![Pattern::Aggregation, Pattern::RandomPermutation],
        Scale::Paper | Scale::Large | Scale::Huge => vec![
            Pattern::Aggregation,
            Pattern::Stride(1),
            Pattern::Stride(6),
            Pattern::StaggeredProb(0.7),
            Pattern::StaggeredProb(0.3),
            Pattern::RandomPermutation,
        ],
    }
}

fn pattern_scenario(
    name: &str,
    pattern: &Pattern,
    sizes: SizeDist,
    deadlines: DeadlineDist,
    flows_per_pair: usize,
) -> Scenario {
    Scenario::new(name)
        .topology(TopologySpec::PaperTree)
        .workload(WorkloadSpec::Pattern {
            pattern: pattern.clone(),
            sizes,
            deadlines,
            flows_per_pair,
        })
}

/// Figure 4a: flows supported at 99% application throughput for each sending pattern,
/// normalized to PDQ(Full).
pub fn fig4a(scale: Scale) -> Table {
    let seeds = match scale {
        Scale::Quick => vec![1],
        Scale::Paper | Scale::Large | Scale::Huge => vec![1, 2],
    };
    let protocols = scale.protocols();
    let max_per_pair = match scale {
        Scale::Quick => 6,
        Scale::Paper | Scale::Large | Scale::Huge => 16,
    };
    let mut cols = vec!["pattern".to_string()];
    cols.extend(protocols.iter().map(|p| label_of(p)));
    let mut table = Table::new(
        "Figure 4a: flows at 99% application throughput by sending pattern (normalized to PDQ(Full))",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for pattern in patterns(scale) {
        let supported = |p: &str| {
            max_supported(max_per_pair, 0.99, |n| {
                let base = pattern_scenario(
                    "fig4a",
                    &pattern,
                    SizeDist::query(),
                    DeadlineDist::paper_default(),
                    n,
                )
                .protocol(p);
                avg_application_throughput(&base, &seeds)
            })
        };
        let base = supported(PDQ_FULL).max(1);
        let mut row = vec![pattern.label()];
        for p in &protocols {
            let v = if *p == PDQ_FULL { base } else { supported(p) };
            row.push(fmt(v as f64 / base as f64));
        }
        table.push_row(row);
    }
    table
}

/// Figure 4b: mean FCT for each sending pattern (no deadlines), normalized to
/// PDQ(Full).
pub fn fig4b(scale: Scale) -> Table {
    let seeds = match scale {
        Scale::Quick => vec![1],
        Scale::Paper | Scale::Large | Scale::Huge => vec![1, 2, 3],
    };
    let protocols = scale.protocols();
    let mut cols = vec!["pattern".to_string()];
    cols.extend(protocols.iter().map(|p| label_of(p)));
    let mut table = Table::new(
        "Figure 4b: mean FCT by sending pattern (no deadlines, normalized to PDQ(Full))",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for pattern in patterns(scale) {
        let fct_of = |p: &str| -> f64 {
            let mut sum = 0.0;
            for &s in &seeds {
                let summary = run_scenario(
                    &pattern_scenario(
                        "fig4b",
                        &pattern,
                        SizeDist::UniformMean(100_000),
                        DeadlineDist::None,
                        2,
                    )
                    .protocol(p)
                    .seed(s),
                );
                sum += summary.mean_fct_secs.unwrap_or(10.0);
            }
            sum / seeds.len() as f64
        };
        let base = fct_of(PDQ_FULL);
        let mut row = vec![pattern.label()];
        for p in &protocols {
            let v = if *p == PDQ_FULL { base } else { fct_of(p) };
            row.push(fmt(v / base.max(1e-9)));
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4b_quick_pdq_is_the_reference() {
        let t = fig4b(Scale::Quick);
        for row in &t.rows {
            let pdq: f64 = row[1].parse().unwrap();
            assert!((pdq - 1.0).abs() < 1e-9, "PDQ column is normalized to 1");
            // The fair-sharing baselines should not beat PDQ by much on mean FCT.
            let rcp: f64 = row[3].parse().unwrap();
            assert!(rcp > 0.8, "RCP normalized FCT: {rcp}");
        }
    }
}
