//! Figure 4: impact of the sending pattern (Aggregation, Stride, Staggered Prob,
//! Random Permutation) on deadline and no-deadline performance, normalized to
//! PDQ(Full).

use pdq_netsim::TraceConfig;
use pdq_topology::single::default_paper_tree;
use pdq_workloads::{pattern_flows, DeadlineDist, Pattern, SizeDist, WorkloadConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::common::{
    avg_application_throughput, fmt, max_supported, run_packet_level, Protocol, Table,
};
use crate::fig3::Scale;

fn patterns(scale: Scale) -> Vec<Pattern> {
    match scale {
        Scale::Quick => vec![Pattern::Aggregation, Pattern::RandomPermutation],
        Scale::Paper | Scale::Large => vec![
            Pattern::Aggregation,
            Pattern::Stride(1),
            Pattern::Stride(6),
            Pattern::StaggeredProb(0.7),
            Pattern::StaggeredProb(0.3),
            Pattern::RandomPermutation,
        ],
    }
}

/// Figure 4a: flows supported at 99% application throughput for each sending pattern,
/// normalized to PDQ(Full).
pub fn fig4a(scale: Scale) -> Table {
    let topo = default_paper_tree();
    let seeds = match scale {
        Scale::Quick => vec![1],
        Scale::Paper | Scale::Large => vec![1, 2],
    };
    let protocols = match scale {
        Scale::Quick => Protocol::quick_set(),
        Scale::Paper | Scale::Large => Protocol::paper_set(),
    };
    let max_per_pair = match scale {
        Scale::Quick => 6,
        Scale::Paper | Scale::Large => 16,
    };
    let mut cols = vec!["pattern".to_string()];
    cols.extend(protocols.iter().map(|p| p.label()));
    let mut table = Table::new(
        "Figure 4a: flows at 99% application throughput by sending pattern (normalized to PDQ(Full))",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for pattern in patterns(scale) {
        let supported = |p: &Protocol| {
            max_supported(max_per_pair, 0.99, |n| {
                avg_application_throughput(&topo, p, &seeds, |s| {
                    let mut rng = SmallRng::seed_from_u64(s);
                    let cfg = WorkloadConfig {
                        pattern: pattern.clone(),
                        sizes: SizeDist::query(),
                        deadlines: DeadlineDist::paper_default(),
                        flows_per_pair: n,
                        ..Default::default()
                    };
                    pattern_flows(&topo, &cfg, 1, &mut rng)
                })
            })
        };
        let base = supported(&Protocol::Pdq(pdq::PdqVariant::Full)).max(1);
        let mut row = vec![pattern.label()];
        for p in &protocols {
            let v = if matches!(p, Protocol::Pdq(pdq::PdqVariant::Full)) {
                base
            } else {
                supported(p)
            };
            row.push(fmt(v as f64 / base as f64));
        }
        table.push_row(row);
    }
    table
}

/// Figure 4b: mean FCT for each sending pattern (no deadlines), normalized to
/// PDQ(Full).
pub fn fig4b(scale: Scale) -> Table {
    let topo = default_paper_tree();
    let seeds = match scale {
        Scale::Quick => vec![1],
        Scale::Paper | Scale::Large => vec![1, 2, 3],
    };
    let protocols = match scale {
        Scale::Quick => Protocol::quick_set(),
        Scale::Paper | Scale::Large => Protocol::paper_set(),
    };
    let mut cols = vec!["pattern".to_string()];
    cols.extend(protocols.iter().map(|p| p.label()));
    let mut table = Table::new(
        "Figure 4b: mean FCT by sending pattern (no deadlines, normalized to PDQ(Full))",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for pattern in patterns(scale) {
        let fct_of = |p: &Protocol| -> f64 {
            let mut sum = 0.0;
            for &s in &seeds {
                let mut rng = SmallRng::seed_from_u64(s);
                let cfg = WorkloadConfig {
                    pattern: pattern.clone(),
                    sizes: SizeDist::UniformMean(100_000),
                    deadlines: DeadlineDist::None,
                    flows_per_pair: 2,
                    ..Default::default()
                };
                let flows = pattern_flows(&topo, &cfg, 1, &mut rng);
                let res = run_packet_level(&topo, &flows, p, s, TraceConfig::default());
                sum += res.mean_fct_all_secs().unwrap_or(10.0);
            }
            sum / seeds.len() as f64
        };
        let base = fct_of(&Protocol::Pdq(pdq::PdqVariant::Full));
        let mut row = vec![pattern.label()];
        for p in &protocols {
            let v = if matches!(p, Protocol::Pdq(pdq::PdqVariant::Full)) {
                base
            } else {
                fct_of(p)
            };
            row.push(fmt(v / base.max(1e-9)));
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4b_quick_pdq_is_the_reference() {
        let t = fig4b(Scale::Quick);
        for row in &t.rows {
            let pdq: f64 = row[1].parse().unwrap();
            assert!((pdq - 1.0).abs() < 1e-9, "PDQ column is normalized to 1");
            // The fair-sharing baselines should not beat PDQ by much on mean FCT.
            let rcp: f64 = row[3].parse().unwrap();
            assert!(rcp > 0.8, "RCP normalized FCT: {rcp}");
        }
    }
}
