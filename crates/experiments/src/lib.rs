//! # pdq-experiments
//!
//! The experiment harness that regenerates every table and figure of the PDQ paper's
//! evaluation (§5–§7). Each `figNN` function returns a [`common::Table`] with the same
//! rows/series the paper reports; the `pdq-experiments` binary prints them as markdown
//! or CSV. Every experiment accepts a [`fig3::Scale`]: `Quick` for second-scale runs
//! (used by the test suite and the Criterion benches) and `Paper` for the full
//! parameter sweeps recorded in EXPERIMENTS.md.
//!
//! Every run — packet-level *and* flow-level — is a declarative
//! [`pdq_scenario::Scenario`]: topology + workload + protocol + seed + backend,
//! resolved against the open protocol registry ([`common::registry`]). Protocols
//! are spec strings like `pdq(full)` or `mpdq(3)`, so new schemes plug in without
//! touching figure code; the backend is `packet` (default), `flow` (the §5.5
//! model the large-scale figures use) or `fluid` (the §2.1 model behind Figure 1).
//! The binary's `run-spec` subcommand executes a scenario from a plain-text spec
//! file, and `sweep` fans a scenario grid across worker threads — either the
//! canonical fig5a grid or a custom [`pdq_scenario::GridBuilder`] product over
//! `--protocols` / `--seeds` / `--loads` / `--sizes` / `--deadlines` axes —
//! optionally replicated over seeds (`--replicate`) with mean/stddev/95%-CI
//! (Student-t) statistics per cell.
//!
//! | Function | Paper figure | Backend | What it shows |
//! |---|---|---|---|
//! | [`fig1::fig1`] | Fig. 1 | fluid | §2.1 motivating comparison: fair sharing vs SJF/EDF vs D3 |
//! | [`fig3::fig3a`]–[`fig3::fig3e`] | Fig. 3 | packet | query aggregation: application throughput and normalized FCT |
//! | [`fig3::headline`] | §1 | packet | ~30% FCT saving and 3× supported senders vs D3 |
//! | [`fig4::fig4a`], [`fig4::fig4b`] | Fig. 4 | packet | sending patterns |
//! | [`fig5::fig5a`]–[`fig5::fig5c`] | Fig. 5 | packet | realistic (VL2-like, EDU1-like) workloads |
//! | [`fig67::fig6`], [`fig67::fig7`] | Fig. 6, 7 | packet | convergence dynamics, burst robustness |
//! | [`fig8::fig8a`], [`fig8::fig8_fct_vs_size`], [`fig8::fig8e`] | Fig. 8 | flow (+ packet cross-check) | scaling on fat-tree / BCube / Jellyfish |
//! | [`fig9::fig9a`], [`fig9::fig9b`] | Fig. 9 | packet | resilience to packet loss |
//! | [`fig10::fig10`] | Fig. 10 | packet | inaccurate flow information |
//! | [`fig11::fig11a`]–[`fig11::fig11c`] | Fig. 11 | packet | Multipath PDQ on BCube |
//! | [`fig12::fig12`] | Fig. 12 | flow | flow aging vs starvation |
//! | [`coflow::coflow`] | — (coflow extension) | packet | group-level CCT: coflow-aware PDQ vs flow-level schemes |
//! | [`wan::wan`] | — (WAN extension) | packet | inter-datacenter mesh: RFC 9002-style paced vs unpaced senders |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod coflow;
pub mod common;
pub mod diag;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig67;
pub mod fig8;
pub mod fig9;
pub mod scalebench;
pub mod sweeps;
pub mod wan;

pub use common::Table;
pub use fig3::Scale;

/// Run one named experiment ("fig3a", "fig6", "headline", ...) and return its tables,
/// or `None` for an unknown name (callers print [`all_experiments`] and fail loudly).
pub fn run_experiment(name: &str, scale: Scale) -> Option<Vec<Table>> {
    let tables = match name {
        "fig1" => vec![fig1::fig1()],
        "fig3a" => vec![fig3::fig3a(scale)],
        "fig3b" => vec![fig3::fig3b(scale)],
        "fig3c" => vec![fig3::fig3c(scale)],
        "fig3d" => vec![fig3::fig3d(scale)],
        "fig3e" => vec![fig3::fig3e(scale)],
        "headline" => vec![fig3::headline(scale)],
        "fig4a" => vec![fig4::fig4a(scale)],
        "fig4b" => vec![fig4::fig4b(scale)],
        "fig5a" => vec![fig5::fig5a(scale)],
        "fig5b" => vec![fig5::fig5b(scale)],
        "fig5c" => vec![fig5::fig5c(scale)],
        "fig6" => vec![fig67::fig6()],
        "fig7" => vec![fig67::fig7()],
        "fig8a" => vec![fig8::fig8a(scale)],
        "fig8b" => vec![fig8::fig8_fct_vs_size(fig8::ScaleTopology::FatTree, scale)],
        "fig8c" => vec![fig8::fig8_fct_vs_size(fig8::ScaleTopology::BCube, scale)],
        "fig8d" => vec![fig8::fig8_fct_vs_size(
            fig8::ScaleTopology::Jellyfish,
            scale,
        )],
        "fig8e" => vec![fig8::fig8e(scale)],
        "fig9a" => vec![fig9::fig9a(scale)],
        "fig9b" => vec![fig9::fig9b(scale)],
        "fig10" => vec![fig10::fig10(scale)],
        "fig11a" => vec![fig11::fig11a(scale)],
        "fig11b" => vec![fig11::fig11b(scale)],
        "fig11c" => vec![fig11::fig11c(scale)],
        "fig12" => vec![fig12::fig12(scale)],
        "coflow" => coflow::coflow(scale),
        "diag" => diag::diag(),
        "ablation" => ablation::ablation(scale),
        "engine_scale" => vec![scalebench::engine_scale(scale)],
        "wan" => vec![wan::wan(scale)],
        _ => return None,
    };
    Some(tables)
}

/// All experiment names, in paper order.
pub fn all_experiments() -> Vec<&'static str> {
    vec![
        "fig1",
        "fig3a",
        "fig3b",
        "fig3c",
        "fig3d",
        "fig3e",
        "headline",
        "fig4a",
        "fig4b",
        "fig5a",
        "fig5b",
        "fig5c",
        "fig6",
        "fig7",
        "fig8a",
        "fig8b",
        "fig8c",
        "fig8d",
        "fig8e",
        "fig9a",
        "fig9b",
        "fig10",
        "fig11a",
        "fig11b",
        "fig11c",
        "fig12",
        "coflow",
        "diag",
        "ablation",
        "engine_scale",
        "wan",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_none_and_names_are_unique() {
        assert!(run_experiment("nonexistent", Scale::Quick).is_none());
        let names = all_experiments();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        assert_eq!(names.len(), 31);
    }
}
