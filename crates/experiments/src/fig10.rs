//! Figure 10: resilience to inaccurate flow information.
//!
//! Ten deadline-unconstrained flows (mean 100 KB) under query aggregation; PDQ with
//! perfect flow-size information vs random criticality vs flow-size estimation
//! (criticality updated every 50 KB sent), compared against RCP, for a uniform and a
//! heavy-tailed (Pareto, tail index 1.1) size distribution.
//!
//! The information models are the `pdq(<variant>;<discipline>)` forms of the protocol
//! registry — no special-cased installation.

use pdq_scenario::{Scenario, TopologySpec, WorkloadSpec};
use pdq_workloads::{DeadlineDist, SizeDist};

use crate::common::{fmt, label_of, run_scenario, Table};
use crate::fig3::Scale;

/// Figure 10: mean FCT [ms] for each information model and size distribution.
pub fn fig10(scale: Scale) -> Table {
    let n_flows = 10;
    let seeds: Vec<u64> = match scale {
        Scale::Quick => vec![1],
        Scale::Paper | Scale::Large | Scale::Huge => vec![1, 2, 3, 4],
    };
    let schemes: Vec<&str> = vec![
        "pdq(full;exact)",
        "pdq(full;random)",
        "pdq(full;estimate=50000)",
        "rcp",
    ];
    let dists: Vec<(&str, SizeDist)> = vec![
        ("Uniform", SizeDist::UniformMean(100_000)),
        (
            "Pareto (tail 1.1)",
            SizeDist::Pareto {
                mean: 100_000,
                alpha: 1.1,
            },
        ),
    ];
    let mut cols = vec!["size distribution".to_string()];
    cols.extend(schemes.iter().map(|p| label_of(p)));
    let mut table = Table::new(
        "Figure 10: mean FCT [ms] with inaccurate flow information (10 flows, mean 100 KB)",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (name, dist) in &dists {
        let mut row = vec![name.to_string()];
        for p in &schemes {
            let mut sum = 0.0;
            for &s in &seeds {
                let summary = run_scenario(
                    &Scenario::new("fig10")
                        .topology(TopologySpec::PaperTree)
                        .workload(WorkloadSpec::QueryAggregation {
                            flows: n_flows,
                            sizes: dist.clone(),
                            deadlines: DeadlineDist::None,
                        })
                        .protocol(*p)
                        .seed(s),
                );
                sum += summary.mean_fct_secs.unwrap_or(10.0) * 1e3;
            }
            row.push(fmt(sum / seeds.len() as f64));
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_quick_estimation_beats_random_on_heavy_tails() {
        let t = fig10(Scale::Quick);
        // Columns: dist, Exact, Random, Estimation, RCP.
        let pareto = &t.rows[1];
        let exact: f64 = pareto[1].parse().unwrap();
        let random: f64 = pareto[2].parse().unwrap();
        let est: f64 = pareto[3].parse().unwrap();
        assert!(
            exact <= random * 1.2,
            "perfect info should be best: exact={exact} random={random}"
        );
        assert!(
            est <= random * 1.2,
            "size estimation should not be much worse than random: est={est} random={random}"
        );
    }
}
