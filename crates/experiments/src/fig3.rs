//! Figure 3: query aggregation on the default 12-server single-rooted tree.
//!
//! * 3a — application throughput vs number of deadline-constrained flows;
//! * 3b — application throughput vs mean flow size (3 flows);
//! * 3c — number of flows supported at 99% application throughput vs mean deadline;
//! * 3d — mean FCT (normalized to optimal) vs number of deadline-unconstrained flows;
//! * 3e — mean FCT (normalized to optimal) vs mean flow size (3 flows).

use pdq_flowsim::{optimal_application_throughput, optimal_mean_fct, Job};
use pdq_netsim::FlowSpec;
use pdq_scenario::{Scenario, TopologySpec, WorkloadSpec};
use pdq_topology::single::default_paper_tree;
use pdq_workloads::{DeadlineDist, SizeDist};

use crate::common::{
    avg_application_throughput, fmt, label_of, max_supported, run_scenario, Table, PDQ_FULL,
};

/// Experiment scale: `Quick` keeps runtimes in seconds (used by tests and benches),
/// `Paper` sweeps the full parameter ranges of the figures, and `Large` / `Huge`
/// additionally unlock the engine-stress tiers of the engine-scale scenario
/// ([`crate::scalebench::engine_scale`]) used to benchmark the packet engine itself.
/// Figure sweeps treat `Large` and `Huge` like `Paper`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sweep, fewer seeds and protocols.
    Quick,
    /// The paper's parameter ranges.
    Paper,
    /// Engine-stress scale: ≥10k flows on a fat-tree in the `engine_scale` scenario
    /// (figure experiments fall back to the `Paper` ranges).
    Large,
    /// Partitioned-engine stress scale: ≥1024 hosts and ≥1M flows in the
    /// `engine_scale` scenario — the tier the sharded engine exists for (figure
    /// experiments fall back to the `Paper` ranges).
    Huge,
}

impl Scale {
    pub(crate) fn seeds(&self) -> Vec<u64> {
        match self {
            Scale::Quick => vec![1],
            Scale::Paper | Scale::Large | Scale::Huge => vec![1, 2, 3],
        }
    }
    pub(crate) fn protocols(&self) -> Vec<&'static str> {
        match self {
            Scale::Quick => crate::common::quick_protocols(),
            Scale::Paper | Scale::Large | Scale::Huge => crate::common::paper_protocols(),
        }
    }
}

fn aggregation_jobs(flows: &[FlowSpec]) -> Vec<Job> {
    flows
        .iter()
        .map(|f| Job {
            size_bytes: f.size_bytes,
            deadline_secs: f.deadline.map(|d| d.as_secs_f64()),
        })
        .collect()
}

/// The Figure 3 scenario family: `n` query-aggregation flows on the paper tree.
fn aggregation_scenario(
    name: &str,
    n_flows: usize,
    sizes: &SizeDist,
    deadlines: &DeadlineDist,
) -> Scenario {
    Scenario::new(name)
        .topology(TopologySpec::PaperTree)
        .workload(WorkloadSpec::QueryAggregation {
            flows: n_flows,
            sizes: sizes.clone(),
            deadlines: deadlines.clone(),
        })
}

/// Figure 3a: application throughput [%] vs number of deadline-constrained flows.
pub fn fig3a(scale: Scale) -> Table {
    let topo = default_paper_tree();
    let flow_counts: Vec<usize> = match scale {
        Scale::Quick => vec![3, 9, 15],
        Scale::Paper | Scale::Large | Scale::Huge => vec![2, 5, 10, 15, 20, 25],
    };
    let mut cols = vec!["flows".to_string(), "Optimal".to_string()];
    let protocols = scale.protocols();
    cols.extend(protocols.iter().map(|p| label_of(p)));
    let mut table = Table::new(
        "Figure 3a: application throughput [%] vs number of flows (query aggregation, deadlines)",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for &n in &flow_counts {
        let base = aggregation_scenario(
            "fig3a",
            n,
            &SizeDist::query(),
            &DeadlineDist::paper_default(),
        );
        let mut row = vec![n.to_string()];
        // Optimal: EDF + Moore-Hodgson on the shared receiver access link, computed on
        // exactly the flow sets the scenario runs see (same workload spec, same seeds).
        let mut opt_sum = 0.0;
        for &s in &scale.seeds() {
            let flows = base.workload.generate(&topo, s);
            opt_sum +=
                optimal_application_throughput(&aggregation_jobs(&flows), 1e9).unwrap_or(1.0);
        }
        row.push(fmt(100.0 * opt_sum / scale.seeds().len() as f64));
        for p in &protocols {
            let at = avg_application_throughput(&base.clone().protocol(*p), &scale.seeds());
            row.push(fmt(100.0 * at));
        }
        table.push_row(row);
    }
    table
}

/// Figure 3b: application throughput [%] vs mean flow size, 3 concurrent flows.
pub fn fig3b(scale: Scale) -> Table {
    let topo = default_paper_tree();
    let sizes_kb: Vec<u64> = match scale {
        Scale::Quick => vec![100, 250],
        Scale::Paper | Scale::Large | Scale::Huge => vec![100, 150, 200, 250, 300, 350],
    };
    let protocols = scale.protocols();
    let mut cols = vec!["mean size [KB]".to_string(), "Optimal".to_string()];
    cols.extend(protocols.iter().map(|p| label_of(p)));
    let mut table = Table::new(
        "Figure 3b: application throughput [%] vs mean flow size (3 flows, deadlines)",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for &kb in &sizes_kb {
        let size_dist = SizeDist::UniformMean(kb * 1000);
        let base = aggregation_scenario("fig3b", 3, &size_dist, &DeadlineDist::paper_default());
        let mut row = vec![kb.to_string()];
        let mut opt_sum = 0.0;
        for &s in &scale.seeds() {
            let flows = base.workload.generate(&topo, s);
            opt_sum +=
                optimal_application_throughput(&aggregation_jobs(&flows), 1e9).unwrap_or(1.0);
        }
        row.push(fmt(100.0 * opt_sum / scale.seeds().len() as f64));
        for p in &protocols {
            let at = avg_application_throughput(&base.clone().protocol(*p), &scale.seeds());
            row.push(fmt(100.0 * at));
        }
        table.push_row(row);
    }
    table
}

/// Figure 3c: number of flows supported at 99% application throughput vs mean deadline.
pub fn fig3c(scale: Scale) -> Table {
    let deadlines_ms: Vec<u64> = match scale {
        Scale::Quick => vec![20, 40],
        Scale::Paper | Scale::Large | Scale::Huge => vec![20, 30, 40, 50, 60],
    };
    let max_n = match scale {
        Scale::Quick => 24,
        Scale::Paper | Scale::Large | Scale::Huge => 64,
    };
    let protocols = scale.protocols();
    let mut cols = vec!["mean deadline [ms]".to_string()];
    cols.extend(protocols.iter().map(|p| label_of(p)));
    let mut table = Table::new(
        "Figure 3c: flows supported at 99% application throughput vs mean flow deadline",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for &dl in &deadlines_ms {
        let mut row = vec![dl.to_string()];
        for p in &protocols {
            let supported = max_supported(max_n, 0.99, |n| {
                let base = aggregation_scenario(
                    "fig3c",
                    n,
                    &SizeDist::query(),
                    &DeadlineDist::exponential_ms(dl),
                )
                .protocol(*p);
                avg_application_throughput(&base, &scale.seeds())
            });
            row.push(supported.to_string());
        }
        table.push_row(row);
    }
    table
}

fn mean_fct_normalized(protocol: &str, seeds: &[u64], n_flows: usize, size_dist: &SizeDist) -> f64 {
    let topo = default_paper_tree();
    let mut ratio_sum = 0.0;
    for &s in seeds {
        let scenario = aggregation_scenario("fig3-fct", n_flows, size_dist, &DeadlineDist::None)
            .protocol(protocol)
            .seed(s);
        // The optimal denominator is computed on the scenario's own flow set.
        let flows = scenario.workload.generate(&topo, s);
        let optimal = optimal_mean_fct(&aggregation_jobs(&flows), 1e9);
        let summary = run_scenario(&scenario);
        let fct = summary.mean_fct_secs.unwrap_or(10.0);
        ratio_sum += fct / optimal.max(1e-9);
    }
    ratio_sum / seeds.len() as f64
}

/// Figure 3d: mean FCT normalized to optimal vs number of flows (no deadlines).
pub fn fig3d(scale: Scale) -> Table {
    let flow_counts: Vec<usize> = match scale {
        Scale::Quick => vec![3, 9],
        Scale::Paper | Scale::Large | Scale::Huge => vec![1, 5, 10, 15, 20, 25],
    };
    let protocols = scale.protocols();
    let mut cols = vec!["flows".to_string()];
    cols.extend(protocols.iter().map(|p| label_of(p)));
    let mut table = Table::new(
        "Figure 3d: mean FCT (normalized to optimal) vs number of flows (no deadlines)",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for &n in &flow_counts {
        let mut row = vec![n.to_string()];
        for p in &protocols {
            row.push(fmt(mean_fct_normalized(
                p,
                &scale.seeds(),
                n,
                &SizeDist::UniformMean(100_000),
            )));
        }
        table.push_row(row);
    }
    table
}

/// Figure 3e: mean FCT normalized to optimal vs mean flow size (3 flows, no deadlines).
pub fn fig3e(scale: Scale) -> Table {
    let sizes_kb: Vec<u64> = match scale {
        Scale::Quick => vec![100, 250],
        Scale::Paper | Scale::Large | Scale::Huge => vec![100, 150, 200, 250, 300, 350],
    };
    let protocols = scale.protocols();
    let mut cols = vec!["mean size [KB]".to_string()];
    cols.extend(protocols.iter().map(|p| label_of(p)));
    let mut table = Table::new(
        "Figure 3e: mean FCT (normalized to optimal) vs mean flow size (3 flows, no deadlines)",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for &kb in &sizes_kb {
        let mut row = vec![kb.to_string()];
        for p in &protocols {
            row.push(fmt(mean_fct_normalized(
                p,
                &scale.seeds(),
                3,
                &SizeDist::UniformMean(kb * 1000),
            )));
        }
        table.push_row(row);
    }
    table
}

/// The paper's headline claims derived from the Figure 3/4 setup: the mean-FCT saving
/// of PDQ over TCP, RCP and D3, and the ratio of concurrent senders supported at 99%
/// application throughput relative to D3.
pub fn headline(scale: Scale) -> Table {
    let seeds = scale.seeds();
    let n_flows = 15;
    let mut table = Table::new(
        "Headline claims (§1): FCT saving vs baselines and supported-flow ratio vs D3",
        &["metric", "value"],
    );
    // Mean FCT comparison, deadline-unconstrained aggregation.
    let fct_of = |p: &str| -> f64 {
        let mut sum = 0.0;
        for &s in &seeds {
            let summary = run_scenario(
                &aggregation_scenario(
                    "headline",
                    n_flows,
                    &SizeDist::UniformMean(100_000),
                    &DeadlineDist::None,
                )
                .protocol(p)
                .seed(s),
            );
            sum += summary.mean_fct_secs.unwrap_or(10.0);
        }
        sum / seeds.len() as f64
    };
    let pdq = fct_of(PDQ_FULL);
    let rcp = fct_of("rcp");
    let tcp = fct_of("tcp");
    let d3 = fct_of("d3");
    table.push_row(vec![
        "mean FCT saving vs RCP [%]".into(),
        fmt(100.0 * (1.0 - pdq / rcp)),
    ]);
    table.push_row(vec![
        "mean FCT saving vs D3 [%]".into(),
        fmt(100.0 * (1.0 - pdq / d3)),
    ]);
    table.push_row(vec![
        "mean FCT saving vs TCP [%]".into(),
        fmt(100.0 * (1.0 - pdq / tcp)),
    ]);
    // Concurrent senders supported at 99% application throughput vs D3.
    let max_n = match scale {
        Scale::Quick => 24,
        Scale::Paper | Scale::Large | Scale::Huge => 64,
    };
    let supported = |p: &str| {
        max_supported(max_n, 0.99, |n| {
            let base = aggregation_scenario(
                "headline",
                n,
                &SizeDist::query(),
                &DeadlineDist::paper_default(),
            )
            .protocol(p);
            avg_application_throughput(&base, &seeds)
        })
    };
    let pdq_n = supported(PDQ_FULL);
    let d3_n = supported("d3").max(1);
    table.push_row(vec!["PDQ flows @99% AT".into(), pdq_n.to_string()]);
    table.push_row(vec!["D3 flows @99% AT".into(), d3_n.to_string()]);
    table.push_row(vec![
        "PDQ/D3 supported-flow ratio".into(),
        fmt(pdq_n as f64 / d3_n as f64),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_quick_shape() {
        let t = fig3a(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let opt: f64 = row[1].parse().unwrap();
            let pdq: f64 = row[2].parse().unwrap();
            let rcp: f64 = row[4].parse().unwrap();
            // PDQ tracks the omniscient EDF scheduler closely and never falls behind
            // the fair-sharing baseline (paper Fig. 3a). The quick tier runs one seed
            // of 15 flows, so application throughput is quantized in steps of 6.67
            // points; allow two marginal deadline misses before calling it a
            // regression (near-capacity outcomes flip with scheduling tie-breaks).
            assert!(
                pdq >= opt - 14.0,
                "PDQ {pdq}% should be near optimal {opt}%"
            );
            assert!(pdq + 1e-9 >= rcp, "PDQ {pdq}% should beat RCP {rcp}%");
        }
        // At light load every deadline is met.
        let pdq_light: f64 = t.rows[0][2].parse().unwrap();
        assert!(
            pdq_light >= 99.0,
            "PDQ light-load app throughput: {pdq_light}"
        );
    }

    #[test]
    fn fig3d_quick_pdq_close_to_optimal() {
        let t = fig3d(Scale::Quick);
        // Paper Fig. 3d: PDQ stays within a small factor of the omniscient SJF
        // scheduler and clearly below the fair-sharing and first-come-first-reserve
        // baselines. The remaining gap to optimal is flow-initialization latency and
        // header overhead, which the optimal fluid model does not pay.
        for row in &t.rows {
            let pdq: f64 = row[1].parse().unwrap();
            let d3: f64 = row[2].parse().unwrap();
            let rcp: f64 = row[3].parse().unwrap();
            let tcp: f64 = row[4].parse().unwrap();
            assert!(pdq < 1.8, "PDQ normalized FCT too far from optimal: {pdq}");
            assert!(pdq < d3, "PDQ {pdq} should beat D3 {d3}");
            assert!(pdq < rcp, "PDQ {pdq} should beat RCP {rcp}");
            assert!(pdq <= tcp + 0.05, "PDQ {pdq} should not lose to TCP {tcp}");
        }
    }
}
