//! Ablation studies of PDQ's design choices.
//!
//! The paper motivates four mechanisms beyond the core preemptive scheduler — Early
//! Start (§3.3.2), Dampening (§3.3.2), Suppressed Probing (§3.3.2) and the rate
//! controller (§3.3.3) — and Figure 3 ablates three of them at the protocol-variant
//! level (Basic / ES / ES+ET / Full). This module ablates the underlying *parameters*
//! on the two dynamics scenarios where each mechanism matters most:
//!
//! * the Figure 6 convergence scenario (five ~1 MB flows on one bottleneck) measures
//!   makespan, utilization while busy and peak queue;
//! * the Figure 7 burst scenario (fifty 20 KB flows preempting a long flow) measures
//!   utilization during the preemption period, which is dominated by how quickly the
//!   switch can hand the link from one sub-RTT flow to the next.
//!
//! Sweeps: the Early Start threshold `K`, the dampening window, the Suppressed Probing
//! constant `X`, and the sliver-acceptance threshold added by this implementation.

use pdq::{install_pdq, Discipline, PdqParams};
use pdq_netsim::{FlowSpec, LinkId, SimConfig, SimTime, Simulator, TraceConfig};
use pdq_topology::{single_bottleneck, Topology};

use crate::common::{fmt, Table};
use crate::fig3::Scale;

/// Outcome of one Figure-6-style convergence run.
#[derive(Clone, Copy, Debug)]
pub struct ConvergenceOutcome {
    /// Completion time of the last flow, in milliseconds.
    pub makespan_ms: f64,
    /// Mean bottleneck utilization over the samples where the link was busy.
    pub busy_utilization: f64,
    /// Peak bottleneck queue in packets.
    pub max_queue_pkts: f64,
}

fn bottleneck_link(topo: &Topology) -> LinkId {
    LinkId(topo.net.link_count() as u32 - 2)
}

/// Run the Figure 6 scenario (five ~1 MB flows, single 1 Gbps bottleneck) under the
/// given PDQ parameters.
pub fn convergence_run(params: &PdqParams) -> ConvergenceOutcome {
    let topo = single_bottleneck(5, Default::default());
    let receiver = *topo.hosts.last().unwrap();
    let bottleneck = bottleneck_link(&topo);
    let cfg = SimConfig {
        max_sim_time: SimTime::from_secs(5),
        trace: TraceConfig {
            interval: SimTime::from_millis(1),
            links: vec![bottleneck],
            flows: false,
        },
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.net.clone(), cfg);
    install_pdq(&mut sim, params, &Discipline::Exact);
    for i in 0..5u64 {
        sim.add_flow(FlowSpec::new(
            i + 1,
            topo.hosts[i as usize],
            receiver,
            1_000_000 + i * 2_000,
        ));
    }
    let res = sim.run();
    let makespan_ms = res
        .flows
        .values()
        .filter_map(|r| r.completed_at)
        .max()
        .map(|t| t.as_millis_f64())
        .unwrap_or(f64::INFINITY);
    let util = res
        .traces
        .link_utilization
        .get(&bottleneck)
        .cloned()
        .unwrap_or_default();
    let busy: Vec<f64> = util
        .iter()
        .map(|s| s.value.min(1.0))
        .filter(|v| *v > 0.05)
        .collect();
    let busy_utilization = busy.iter().sum::<f64>() / busy.len().max(1) as f64;
    let max_queue_pkts = res
        .traces
        .link_queue_bytes
        .get(&bottleneck)
        .map(|s| s.iter().map(|x| x.value).fold(0.0, f64::max) / 1500.0)
        .unwrap_or(0.0);
    ConvergenceOutcome {
        makespan_ms,
        busy_utilization,
        max_queue_pkts,
    }
}

/// Run the Figure 7 burst scenario under the given PDQ parameters and return the mean
/// bottleneck utilization during the preemption period (10–20 ms).
pub fn burst_utilization(params: &PdqParams) -> f64 {
    let topo = single_bottleneck(51, Default::default());
    let receiver = *topo.hosts.last().unwrap();
    let bottleneck = bottleneck_link(&topo);
    let cfg = SimConfig {
        max_sim_time: SimTime::from_secs(5),
        trace: TraceConfig {
            interval: SimTime::from_millis(1),
            links: vec![bottleneck],
            flows: false,
        },
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.net.clone(), cfg);
    install_pdq(&mut sim, params, &Discipline::Exact);
    sim.add_flow(FlowSpec::new(1, topo.hosts[0], receiver, 6_000_000));
    for i in 0..50u64 {
        sim.add_flow(
            FlowSpec::new(
                i + 2,
                topo.hosts[(i + 1) as usize],
                receiver,
                20_000 + 100 * (i % 7),
            )
            .with_arrival(SimTime::from_millis(10)),
        );
    }
    let res = sim.run();
    let util = res
        .traces
        .link_utilization
        .get(&bottleneck)
        .cloned()
        .unwrap_or_default();
    let window: Vec<f64> = util
        .iter()
        .filter(|s| {
            let t = s.at.as_millis_f64();
            (10.0..20.0).contains(&t)
        })
        .map(|s| s.value.min(1.0))
        .collect();
    window.iter().sum::<f64>() / window.len().max(1) as f64
}

/// Ablation of the Early Start threshold `K` (paper recommends 1–2, uses 2; K = 0
/// disables Early Start entirely).
pub fn ablate_early_start_k(scale: Scale) -> Table {
    let ks: Vec<f64> = match scale {
        Scale::Quick => vec![0.0, 2.0],
        Scale::Paper | Scale::Large | Scale::Huge => vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0],
    };
    let mut table = Table::new(
        "Ablation: Early Start threshold K (Fig. 6 convergence + Fig. 7 burst scenarios)",
        &[
            "K [RTTs]",
            "makespan [ms]",
            "busy utilization",
            "max queue [pkts]",
            "burst utilization",
        ],
    );
    for &k in &ks {
        let mut params = PdqParams::full();
        params.early_start = k > 0.0;
        params.early_start_k = k.max(0.0);
        let conv = convergence_run(&params);
        let burst = burst_utilization(&params);
        table.push_row(vec![
            fmt(k),
            fmt(conv.makespan_ms),
            fmt(conv.busy_utilization),
            fmt(conv.max_queue_pkts),
            fmt(burst),
        ]);
    }
    table
}

/// Ablation of the dampening window (0 disables dampening).
pub fn ablate_damping(scale: Scale) -> Table {
    let windows_us: Vec<u64> = match scale {
        Scale::Quick => vec![0, 150, 600],
        Scale::Paper | Scale::Large | Scale::Huge => vec![0, 75, 150, 300, 600, 1200],
    };
    let mut table = Table::new(
        "Ablation: dampening window (Fig. 6 convergence + Fig. 7 burst scenarios)",
        &[
            "window [us]",
            "makespan [ms]",
            "busy utilization",
            "max queue [pkts]",
            "burst utilization",
        ],
    );
    for &w in &windows_us {
        let mut params = PdqParams::full();
        params.damping = SimTime::from_micros(w);
        let conv = convergence_run(&params);
        let burst = burst_utilization(&params);
        table.push_row(vec![
            w.to_string(),
            fmt(conv.makespan_ms),
            fmt(conv.busy_utilization),
            fmt(conv.max_queue_pkts),
            fmt(burst),
        ]);
    }
    table
}

/// Ablation of the Suppressed Probing constant `X` (0 disables suppression: every
/// paused flow probes once per RTT).
pub fn ablate_probing_x(scale: Scale) -> Table {
    let xs: Vec<f64> = match scale {
        Scale::Quick => vec![0.0, 0.2],
        Scale::Paper | Scale::Large | Scale::Huge => vec![0.0, 0.1, 0.2, 0.5, 1.0, 2.0],
    };
    let mut table = Table::new(
        "Ablation: Suppressed Probing constant X (Fig. 6 convergence scenario)",
        &[
            "X [RTTs/flow]",
            "makespan [ms]",
            "busy utilization",
            "max queue [pkts]",
        ],
    );
    for &x in &xs {
        let mut params = PdqParams::full();
        params.suppressed_probing = x > 0.0;
        params.probing_x = x.max(0.0);
        let conv = convergence_run(&params);
        table.push_row(vec![
            fmt(x),
            fmt(conv.makespan_ms),
            fmt(conv.busy_utilization),
            fmt(conv.max_queue_pkts),
        ]);
    }
    table
}

/// Ablation of the sliver-acceptance threshold added by this implementation (see
/// EXPERIMENTS.md "implementation notes"): 0 reproduces the literal Algorithm 1, which
/// grants arbitrarily small leftovers to paused flows.
pub fn ablate_min_accept(scale: Scale) -> Table {
    let fractions: Vec<f64> = match scale {
        Scale::Quick => vec![0.0, 0.01],
        Scale::Paper | Scale::Large | Scale::Huge => vec![0.0, 0.001, 0.01, 0.05, 0.1],
    };
    let mut table = Table::new(
        "Ablation: sliver-acceptance threshold (fraction of link rate; Fig. 6 scenario)",
        &[
            "threshold",
            "makespan [ms]",
            "busy utilization",
            "max queue [pkts]",
        ],
    );
    for &f in &fractions {
        let mut params = PdqParams::full();
        params.min_accept_fraction = f;
        let conv = convergence_run(&params);
        table.push_row(vec![
            fmt(f),
            fmt(conv.makespan_ms),
            fmt(conv.busy_utilization),
            fmt(conv.max_queue_pkts),
        ]);
    }
    table
}

/// All ablation tables.
pub fn ablation(scale: Scale) -> Vec<Table> {
    vec![
        ablate_early_start_k(scale),
        ablate_damping(scale),
        ablate_probing_x(scale),
        ablate_min_accept(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_start_improves_burst_utilization() {
        let t = ablate_early_start_k(Scale::Quick);
        assert_eq!(t.rows.len(), 2);
        let without: f64 = t.rows[0][4].parse().unwrap();
        let with: f64 = t.rows[1][4].parse().unwrap();
        // The whole point of Early Start (§3.3.2): without it, sub-RTT flows leave the
        // link idle between switchovers.
        assert!(
            with > without + 0.05,
            "Early Start should raise burst utilization: {without} -> {with}"
        );
        // And it must not blow up the queue.
        let queue_with: f64 = t.rows[1][3].parse().unwrap();
        assert!(
            queue_with < 15.0,
            "queue too large with Early Start: {queue_with}"
        );
    }

    #[test]
    fn paper_dampening_window_is_a_reasonable_operating_point() {
        let t = ablate_damping(Scale::Quick);
        // The default window (150 us = one RTT) must not cost utilization on the burst
        // scenario compared to no dampening, and a much larger window must not improve
        // the makespan (it only adds switchover latency).
        let no_damp_burst: f64 = t.rows[0][4].parse().unwrap();
        let default_burst: f64 = t.rows[1][4].parse().unwrap();
        let large_makespan: f64 = t.rows[2][1].parse().unwrap();
        let default_makespan: f64 = t.rows[1][1].parse().unwrap();
        assert!(
            default_burst > no_damp_burst - 0.1,
            "one-RTT dampening should not cost much burst utilization: {no_damp_burst} vs {default_burst}"
        );
        assert!(
            default_makespan <= large_makespan + 1.0,
            "a 4x larger dampening window should not beat the default: {default_makespan} vs {large_makespan}"
        );
    }

    #[test]
    fn suppressed_probing_does_not_hurt_convergence() {
        let t = ablate_probing_x(Scale::Quick);
        let without: f64 = t.rows[0][1].parse().unwrap();
        let with: f64 = t.rows[1][1].parse().unwrap();
        // Suppressed Probing trades probe overhead for (bounded) extra resume latency;
        // on the 5-flow scenario the makespan difference must stay small.
        assert!(
            (with - without).abs() < 5.0,
            "X=0.2 should not change the 5-flow makespan much: {without} vs {with}"
        );
    }

    #[test]
    fn sliver_threshold_keeps_schedule_tight() {
        let t = ablate_min_accept(Scale::Quick);
        let with_threshold: f64 = t.rows[1][1].parse().unwrap();
        // With the threshold the five ~1 MB flows finish in about the ideal 42 ms.
        assert!(
            with_threshold < 50.0,
            "makespan with the sliver threshold should be near-ideal: {with_threshold}"
        );
    }
}
