//! Shared experiment machinery: protocol selection, packet-level runs, binary search
//! for the "flows supported at 99% application throughput" metric, and table output.

use pdq::{install_pdq, Discipline, PdqParams, PdqVariant};
use pdq_baselines::{install_d3, install_rcp, install_tcp, D3Params, RcpParams, TcpParams};
use pdq_netsim::{FlowSpec, SimConfig, SimResults, SimTime, Simulator, TraceConfig};
use pdq_topology::{EcmpRouter, Topology};

/// Every transport scheme the paper evaluates.
#[derive(Clone, Debug, PartialEq)]
pub enum Protocol {
    /// PDQ with one of the paper's four feature variants.
    Pdq(PdqVariant),
    /// PDQ with a custom sender discipline (Figure 10 / Figure 12).
    PdqWithDiscipline(PdqVariant, Discipline),
    /// Multipath PDQ with the given number of subflows (Figure 11).
    MultipathPdq(usize),
    /// D3 with quenching.
    D3,
    /// RCP with exact flow counting.
    Rcp,
    /// TCP Reno with a small minimum RTO.
    Tcp,
}

impl Protocol {
    /// Label used in tables (matches the paper's legends).
    pub fn label(&self) -> String {
        match self {
            Protocol::Pdq(v) => v.label().to_string(),
            Protocol::PdqWithDiscipline(v, d) => match d {
                Discipline::Exact => format!("{}; Perfect Flow Information", v.label()),
                Discipline::RandomCriticality => format!("{}; Random Criticality", v.label()),
                Discipline::EstimatedSize { .. } => format!("{}; Flow Size Estimation", v.label()),
                Discipline::Aging { alpha } => format!("{}; Aging(alpha={alpha})", v.label()),
            },
            Protocol::MultipathPdq(k) => format!("M-PDQ({k} subflows)"),
            Protocol::D3 => "D3".to_string(),
            Protocol::Rcp => "RCP".to_string(),
            Protocol::Tcp => "TCP".to_string(),
        }
    }

    /// The protocol set most figures compare: PDQ variants, D3, RCP and TCP.
    pub fn paper_set() -> Vec<Protocol> {
        vec![
            Protocol::Pdq(PdqVariant::Full),
            Protocol::Pdq(PdqVariant::EarlyStartEarlyTermination),
            Protocol::Pdq(PdqVariant::EarlyStart),
            Protocol::Pdq(PdqVariant::Basic),
            Protocol::D3,
            Protocol::Rcp,
            Protocol::Tcp,
        ]
    }

    /// A reduced set used by the quick configurations and the benches.
    pub fn quick_set() -> Vec<Protocol> {
        vec![
            Protocol::Pdq(PdqVariant::Full),
            Protocol::D3,
            Protocol::Rcp,
            Protocol::Tcp,
        ]
    }
}

/// Run a packet-level simulation of `flows` over `topo` under `protocol`.
pub fn run_packet_level(
    topo: &Topology,
    flows: &[FlowSpec],
    protocol: &Protocol,
    seed: u64,
    trace: TraceConfig,
) -> SimResults {
    let config = SimConfig {
        seed,
        trace,
        max_sim_time: SimTime::from_secs(20),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.net.clone(), config);
    sim.set_router(EcmpRouter::new());
    match protocol {
        Protocol::Pdq(v) => install_pdq(&mut sim, &PdqParams::variant(*v), &Discipline::Exact),
        Protocol::PdqWithDiscipline(v, d) => install_pdq(&mut sim, &PdqParams::variant(*v), d),
        Protocol::MultipathPdq(k) => {
            let mut params = PdqParams::full();
            params.subflows = *k;
            install_pdq(&mut sim, &params, &Discipline::Exact);
        }
        Protocol::D3 => install_d3(&mut sim, &D3Params::default(), true),
        Protocol::Rcp => install_rcp(&mut sim, &RcpParams::default()),
        Protocol::Tcp => install_tcp(&mut sim, &TcpParams::default()),
    }
    sim.add_flows(flows.iter().cloned());
    sim.run()
}

/// Average application throughput over several seeds, given a flow generator.
pub fn avg_application_throughput<F>(
    topo: &Topology,
    protocol: &Protocol,
    seeds: &[u64],
    mut flow_gen: F,
) -> f64
where
    F: FnMut(u64) -> Vec<FlowSpec>,
{
    let mut sum = 0.0;
    for &s in seeds {
        let flows = flow_gen(s);
        let res = run_packet_level(topo, &flows, protocol, s, TraceConfig::default());
        sum += res.application_throughput().unwrap_or(1.0);
    }
    sum / seeds.len() as f64
}

/// Binary-search the largest `n` in `[1, max_n]` for which `metric(n) >= target`.
/// `metric` is assumed to be (noisily) non-increasing in `n`; the search is the same
/// procedure the paper uses to find the number of flows supported at 99% application
/// throughput (Figure 3c, 4a, 5a).
pub fn max_supported<F>(max_n: usize, target: f64, mut metric: F) -> usize
where
    F: FnMut(usize) -> f64,
{
    let mut lo = 0usize; // highest n known to satisfy the target
    let mut hi = max_n + 1; // lowest n known to fail (exclusive bound)
                            // Quick check of the smallest instance.
    if metric(1) < target {
        return 0;
    }
    lo = lo.max(1);
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if metric(mid) >= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// A printable experiment result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (figure number and what it reproduces).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }

    /// Render as CSV (no title).
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with three significant decimals for table cells.
pub fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

/// Format an optional float.
pub fn fmt_opt(v: Option<f64>) -> String {
    v.map(fmt).unwrap_or_else(|| "-".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering() {
        let mut t = Table::new("Fig X", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Fig X"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn binary_search_finds_threshold() {
        // metric(n) >= 0.99 iff n <= 37.
        let n = max_supported(100, 0.99, |n| if n <= 37 { 1.0 } else { 0.5 });
        assert_eq!(n, 37);
        // Nothing satisfies the target.
        assert_eq!(max_supported(100, 0.99, |_| 0.1), 0);
        // Everything satisfies the target.
        assert_eq!(max_supported(64, 0.99, |_| 1.0), 64);
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(Protocol::Pdq(PdqVariant::Full).label(), "PDQ(Full)");
        assert_eq!(Protocol::D3.label(), "D3");
        assert_eq!(Protocol::MultipathPdq(3).label(), "M-PDQ(3 subflows)");
        assert_eq!(Protocol::paper_set().len(), 7);
    }
}
