//! Shared experiment machinery: the default protocol registry, scenario execution
//! helpers, binary search for the "flows supported at 99% application throughput"
//! metric, and table output.
//!
//! Every scheme the paper evaluates — the four PDQ variants, the Figure 10/12
//! information models, M-PDQ, D3, RCP and TCP — installs through the open
//! [`pdq_scenario::ProtocolInstaller`] registry; figures refer to protocols by spec
//! string (`pdq(full)`, `mpdq(3)`, `tcp`, ...) and get their table labels from the
//! installers, so adding a scheme never touches figure code.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

use pdq_scenario::{ProtocolRegistry, RunSummary, Scenario};

pub use pdq_scenario::run_packet_level;

/// The canonical complete protocol, used as the normalization baseline everywhere.
pub const PDQ_FULL: &str = "pdq(full)";

/// A fresh registry with every scheme the paper evaluates registered: the `pdq` and
/// `mpdq` families plus the `tcp`, `rcp` and `d3` baselines.
pub fn default_registry() -> ProtocolRegistry {
    let mut registry = ProtocolRegistry::new();
    pdq::register_pdq(&mut registry);
    pdq_baselines::register_baselines(&mut registry);
    registry
}

/// The shared registry the figure modules and the CLI resolve against.
pub fn registry() -> &'static ProtocolRegistry {
    static REGISTRY: OnceLock<ProtocolRegistry> = OnceLock::new();
    REGISTRY.get_or_init(default_registry)
}

/// The protocol set most figures compare: PDQ variants, D3, RCP and TCP.
pub fn paper_protocols() -> Vec<&'static str> {
    vec![
        "pdq(full)",
        "pdq(es+et)",
        "pdq(es)",
        "pdq(basic)",
        "d3",
        "rcp",
        "tcp",
    ]
}

/// A reduced set used by the quick configurations and the benches.
pub fn quick_protocols() -> Vec<&'static str> {
    vec!["pdq(full)", "d3", "rcp", "tcp"]
}

/// The table label a protocol spec resolves to (via the shared registry).
pub fn label_of(protocol: &str) -> String {
    registry().label(protocol).unwrap_or_else(|e| panic!("{e}"))
}

/// The process-wide packet-engine shard count (`--engine-threads`), applied to every
/// scenario that keeps the sequential default. 0 stores "auto-detect cores".
static ENGINE_THREADS: AtomicU32 = AtomicU32::new(1);

/// Set the process-wide packet-engine shard count: 1 (default) keeps the sequential
/// engine, N ≥ 2 shards every figure scenario, 0 auto-detects the core count.
pub fn set_engine_threads(threads: u32) {
    ENGINE_THREADS.store(threads, Ordering::Relaxed);
}

/// The process-wide shard count with auto-detection resolved (never 0).
pub fn engine_threads() -> u32 {
    match ENGINE_THREADS.load(Ordering::Relaxed) {
        0 => pdq_scenario::default_threads() as u32,
        n => n,
    }
}

/// Apply the process-wide shard count to a scenario that keeps the sequential
/// default; a scenario (or spec file) that pins its own count wins.
pub fn with_engine_threads(scenario: Scenario) -> Scenario {
    let threads = engine_threads();
    if threads != 1 && scenario.engine_threads == 1 {
        scenario.engine_threads(threads)
    } else {
        scenario
    }
}

/// Run one scenario through the shared registry, under the process-wide
/// `--engine-threads` override. Panics on unresolvable protocols — figure code only
/// uses registered names.
pub fn run_scenario(scenario: &Scenario) -> RunSummary {
    with_engine_threads(scenario.clone())
        .run(registry())
        .unwrap_or_else(|e| panic!("scenario {:?}: {e}", scenario.name))
}

/// Average application throughput of `base` (protocol and workload already set) over
/// several seeds.
pub fn avg_application_throughput(base: &Scenario, seeds: &[u64]) -> f64 {
    let mut sum = 0.0;
    for &s in seeds {
        sum += run_scenario(&base.clone().seed(s))
            .application_throughput()
            .unwrap_or(1.0);
    }
    sum / seeds.len() as f64
}

/// Binary-search the largest `n` in `[1, max_n]` for which `metric(n) >= target`.
/// `metric` is assumed to be (noisily) non-increasing in `n`; the search is the same
/// procedure the paper uses to find the number of flows supported at 99% application
/// throughput (Figure 3c, 4a, 5a).
pub fn max_supported<F>(max_n: usize, target: f64, mut metric: F) -> usize
where
    F: FnMut(usize) -> f64,
{
    let mut lo = 0usize; // highest n known to satisfy the target
    let mut hi = max_n + 1; // lowest n known to fail (exclusive bound)
                            // Quick check of the smallest instance.
    if metric(1) < target {
        return 0;
    }
    lo = lo.max(1);
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if metric(mid) >= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// A printable experiment result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (figure number and what it reproduces).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }

    /// Render as CSV (no title).
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with three significant decimals for table cells.
pub fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

/// Format an optional float.
pub fn fmt_opt(v: Option<f64>) -> String {
    v.map(fmt).unwrap_or_else(|| "-".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering() {
        let mut t = Table::new("Fig X", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Fig X"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn binary_search_finds_threshold() {
        // metric(n) >= 0.99 iff n <= 37.
        let n = max_supported(100, 0.99, |n| if n <= 37 { 1.0 } else { 0.5 });
        assert_eq!(n, 37);
        // Nothing satisfies the target.
        assert_eq!(max_supported(100, 0.99, |_| 0.1), 0);
        // Everything satisfies the target.
        assert_eq!(max_supported(64, 0.99, |_| 1.0), 64);
    }

    #[test]
    fn registry_labels_match_the_paper_legends() {
        assert_eq!(label_of("pdq(full)"), "PDQ(Full)");
        assert_eq!(label_of("d3"), "D3");
        assert_eq!(label_of("mpdq(3)"), "M-PDQ(3 subflows)");
        assert_eq!(paper_protocols().len(), 7);
        // Every set member resolves.
        for p in paper_protocols().iter().chain(quick_protocols().iter()) {
            assert!(registry().resolve(p).is_ok(), "{p}");
        }
    }
}
