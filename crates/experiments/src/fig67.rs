//! Figures 6 and 7: PDQ dynamics on a single bottleneck.
//!
//! * Figure 6 — convergence: five ~1 MB flows start together; PDQ serves them one at a
//!   time (seamless switching), keeps the bottleneck near 100% utilized and the queue
//!   tiny.
//! * Figure 7 — robustness to bursts: a long-lived flow is preempted by 50 short flows
//!   arriving simultaneously at t = 10 ms.
//!
//! Both figures are hand-built flow lists, expressed as [`WorkloadSpec::Manual`]
//! scenarios with per-millisecond traces enabled.

use pdq_netsim::{FlowSpec, LinkId, SimTime, TraceConfig};
use pdq_scenario::{RunSummary, Scenario, TopologySpec, WorkloadSpec};
use pdq_topology::{single_bottleneck, Topology};

use crate::common::{fmt, run_scenario, Table, PDQ_FULL};

fn bottleneck_link(topo: &Topology) -> LinkId {
    // The receiver is the last host; its access link (switch -> receiver) is the last
    // duplex pair's forward direction, i.e. the second-to-last link id.
    LinkId(topo.net.link_count() as u32 - 2)
}

/// The Figure 6 scenario: five ~1 MB flows on a 5-sender bottleneck, sizes perturbed
/// so that a smaller index is more critical (as in the paper).
fn fig6_scenario(trace_flows: bool) -> (Scenario, LinkId) {
    let topo = single_bottleneck(5, Default::default());
    let receiver = *topo.hosts.last().unwrap();
    let bottleneck = bottleneck_link(&topo);
    let flows: Vec<FlowSpec> = (0..5)
        .map(|i| {
            FlowSpec::new(
                i as u64 + 1,
                topo.hosts[i],
                receiver,
                1_000_000 + i as u64 * 2_000,
            )
        })
        .collect();
    let scenario = Scenario::new("fig6")
        .topology(TopologySpec::SingleBottleneck {
            senders: 5,
            access_loss: 0.0,
        })
        .workload(WorkloadSpec::Manual(flows))
        .protocol(PDQ_FULL)
        .trace(TraceConfig {
            interval: SimTime::from_millis(1),
            links: vec![bottleneck],
            flows: trace_flows,
        });
    (scenario, bottleneck)
}

/// The Figure 7 scenario: one long-lived flow plus 50 short (20 KB) flows arriving at
/// t = 10 ms.
fn fig7_scenario() -> (Scenario, LinkId) {
    let topo = single_bottleneck(51, Default::default());
    let receiver = *topo.hosts.last().unwrap();
    let bottleneck = bottleneck_link(&topo);
    let mut flows = vec![FlowSpec::new(1, topo.hosts[0], receiver, 6_000_000)];
    for i in 0..50u64 {
        flows.push(
            FlowSpec::new(
                i + 2,
                topo.hosts[(i + 1) as usize],
                receiver,
                20_000 + 100 * (i % 7),
            )
            .with_arrival(SimTime::from_millis(10)),
        );
    }
    let scenario = Scenario::new("fig7")
        .topology(TopologySpec::SingleBottleneck {
            senders: 51,
            access_loss: 0.0,
        })
        .workload(WorkloadSpec::Manual(flows))
        .protocol(PDQ_FULL)
        .trace(TraceConfig {
            interval: SimTime::from_millis(1),
            links: vec![bottleneck],
            flows: true,
        });
    (scenario, bottleneck)
}

fn goodput_at(res: &RunSummary, flow: u64, sample: usize) -> f64 {
    res.packet()
        .traces
        .flow_goodput
        .get(&pdq_netsim::FlowId(flow))
        .and_then(|s| s.get(sample))
        .map(|s| s.value / 1e9)
        .unwrap_or(0.0)
}

/// Figure 6: five ~1 MB flows, per-flow throughput / bottleneck utilization / queue
/// over time. Returns one row per sample interval (1 ms).
pub fn fig6() -> Table {
    let (scenario, bottleneck) = fig6_scenario(true);
    let res = run_scenario(&scenario);

    let mut table = Table::new(
        "Figure 6: PDQ convergence dynamics (5 x ~1 MB flows, single 1 Gbps bottleneck)",
        &[
            "time [ms]",
            "flow1 [Gbps]",
            "flow2 [Gbps]",
            "flow3 [Gbps]",
            "flow4 [Gbps]",
            "flow5 [Gbps]",
            "utilization",
            "queue [pkts]",
        ],
    );
    let util = res
        .packet()
        .traces
        .link_utilization
        .get(&bottleneck)
        .cloned()
        .unwrap_or_default();
    let queue = res
        .packet()
        .traces
        .link_queue_bytes
        .get(&bottleneck)
        .cloned()
        .unwrap_or_default();
    for (i, u) in util.iter().enumerate() {
        let t_ms = u.at.as_millis_f64();
        let mut row = vec![fmt(t_ms)];
        for f in 1..=5u64 {
            row.push(fmt(goodput_at(&res, f, i)));
        }
        row.push(fmt(u.value.min(1.0)));
        let q_pkts = queue.get(i).map(|s| s.value / 1500.0).unwrap_or(0.0);
        row.push(fmt(q_pkts));
        table.push_row(row);
    }
    table
}

/// Summary statistics for Figure 6 used by tests and EXPERIMENTS.md: total completion
/// time of all five flows [ms], mean bottleneck utilization while busy, max queue
/// (packets).
pub fn fig6_summary() -> (f64, f64, f64) {
    let (scenario, bottleneck) = fig6_scenario(false);
    let res = run_scenario(&scenario);
    let last_completion = res
        .packet()
        .flows
        .values()
        .filter_map(|r| r.completed_at)
        .max()
        .map(|t| t.as_millis_f64())
        .unwrap_or(f64::INFINITY);
    let util = res
        .packet()
        .traces
        .link_utilization
        .get(&bottleneck)
        .cloned()
        .unwrap_or_default();
    let busy: Vec<f64> = util
        .iter()
        .map(|s| s.value.min(1.0))
        .filter(|v| *v > 0.05)
        .collect();
    let mean_util = busy.iter().sum::<f64>() / busy.len().max(1) as f64;
    let max_queue_pkts = res
        .packet()
        .traces
        .link_queue_bytes
        .get(&bottleneck)
        .map(|s| s.iter().map(|x| x.value).fold(0.0, f64::max) / 1500.0)
        .unwrap_or(0.0);
    (last_completion, mean_util, max_queue_pkts)
}

/// Figure 7: one long-lived flow plus 50 short (20 KB) flows arriving at t = 10 ms.
/// Returns per-millisecond bottleneck utilization and queue, plus the long/short
/// split of throughput.
pub fn fig7() -> Table {
    let (scenario, bottleneck) = fig7_scenario();
    let res = run_scenario(&scenario);
    let mut table = Table::new(
        "Figure 7: robustness to a burst of 50 short flows preempting a long flow",
        &[
            "time [ms]",
            "long flow [Gbps]",
            "short flows total [Gbps]",
            "utilization",
            "queue [pkts]",
        ],
    );
    let util = res
        .packet()
        .traces
        .link_utilization
        .get(&bottleneck)
        .cloned()
        .unwrap_or_default();
    let queue = res
        .packet()
        .traces
        .link_queue_bytes
        .get(&bottleneck)
        .cloned()
        .unwrap_or_default();
    for (i, u) in util.iter().enumerate() {
        let long = goodput_at(&res, 1, i);
        // Sum only flows present in the traces: an absent sample must not launder a
        // negative-zero sum into +0.0 (the tables print the sign).
        let short: f64 = (2..=51u64)
            .filter_map(|f| {
                res.packet()
                    .traces
                    .flow_goodput
                    .get(&pdq_netsim::FlowId(f))
                    .and_then(|s| s.get(i))
                    .map(|s| s.value / 1e9)
            })
            .sum();
        let q_pkts = queue.get(i).map(|s| s.value / 1500.0).unwrap_or(0.0);
        table.push_row(vec![
            fmt(u.at.as_millis_f64()),
            fmt(long),
            fmt(short),
            fmt(u.value.min(1.0)),
            fmt(q_pkts),
        ]);
    }
    table
}

/// Summary statistics for Figure 7: mean utilization during the preemption period
/// (10–20 ms) and the maximum queue length in packets over the whole run.
pub fn fig7_summary() -> (f64, f64) {
    let table = fig7();
    let mut util_sum = 0.0;
    let mut util_n = 0usize;
    let mut max_queue: f64 = 0.0;
    for row in &table.rows {
        let t: f64 = row[0].parse().unwrap();
        let u: f64 = row[3].parse().unwrap();
        let q: f64 = row[4].parse().unwrap();
        if (10.0..20.0).contains(&t) {
            util_sum += u;
            util_n += 1;
        }
        max_queue = max_queue.max(q);
    }
    (util_sum / util_n.max(1) as f64, max_queue)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_seamless_switching() {
        let (total_ms, mean_util, max_queue) = fig6_summary();
        // The paper reports ~42 ms for all five flows (40 ms of raw serialization plus
        // ~3% header overhead and two RTTs of initialization), ~100% utilization while
        // busy, and a queue of a few packets.
        assert!(
            (40.0..50.0).contains(&total_ms),
            "all five flows should finish in about 42 ms, got {total_ms} ms"
        );
        assert!(
            mean_util > 0.9,
            "bottleneck should stay near fully utilized while busy: {mean_util}"
        );
        assert!(
            max_queue < 10.0,
            "PDQ keeps the queue small: {max_queue} packets"
        );
    }

    #[test]
    fn fig6_scenario_spec_round_trips() {
        // The figure's scenario — manual flows, traces and all — survives the
        // plain-text spec format.
        let (scenario, _) = fig6_scenario(true);
        let back = Scenario::from_spec(&scenario.to_spec()).unwrap();
        assert_eq!(back, scenario);
    }

    #[test]
    fn fig7_burst_preempts_long_flow() {
        let table = fig7();
        // Before the burst the long flow owns the link; during the burst the short
        // flows take over.
        let at = |t_ms: f64| {
            table
                .rows
                .iter()
                .find(|r| (r[0].parse::<f64>().unwrap() - t_ms).abs() < 0.6)
                .cloned()
                .unwrap()
        };
        let before = at(8.0);
        let long_before: f64 = before[1].parse().unwrap();
        assert!(
            long_before > 0.5,
            "long flow should be running before the burst"
        );
        let during = at(13.0);
        let short_during: f64 = during[2].parse().unwrap();
        let long_during: f64 = during[1].parse().unwrap();
        assert!(
            short_during > long_during,
            "short flows should preempt the long one during the burst"
        );
        let (util, max_queue) = fig7_summary();
        // The paper reports 91.7% utilization during the preemption period and a queue
        // of 5–10 packets; Early Start keeps the link busy across the sub-RTT flows.
        assert!(util > 0.8, "utilization during preemption: {util}");
        assert!(max_queue < 15.0, "queue stays bounded: {max_queue}");
    }
}
