//! Figure 12: flow aging prevents starvation of less critical flows.
//!
//! `backend = flow` scenarios on a fat-tree with random permutation traffic:
//! sweeping the aging rate α (via the `pdq(full;aging=<alpha>)` protocol spec)
//! trades a tiny increase in mean FCT for a large reduction in the worst-case
//! (max) FCT; RCP/D3 max/mean FCTs are shown for reference.

use pdq_netsim::SimTime;
use pdq_scenario::{Scenario, SimBackend, TopologySpec, WorkloadSpec};
use pdq_workloads::{DeadlineDist, Pattern, SizeDist};

use crate::common::{fmt, fmt_opt, run_scenario, Table, PDQ_FULL};
use crate::fig3::Scale;
use crate::fig8::FLOW_LEVEL_STOP_AT;

/// Figure 12: max and mean FCT [ms] vs aging rate α.
pub fn fig12(scale: Scale) -> Table {
    let n_hosts = match scale {
        Scale::Quick => 16,
        Scale::Paper | Scale::Large | Scale::Huge => 128,
    };
    let aging_rates: Vec<f64> = match scale {
        Scale::Quick => vec![0.0, 8.0],
        Scale::Paper | Scale::Large | Scale::Huge => vec![0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0],
    };
    let flows_per_host = match scale {
        Scale::Quick => 30,
        Scale::Paper | Scale::Large | Scale::Huge => 60,
    };
    // Aging only changes the schedule when flows of different ages compete, so flows
    // must arrive over time (not simultaneously). A heavy-tailed size mix makes some
    // flows much less critical than others, which is what starves them without aging.
    let total_flows = n_hosts * flows_per_host;
    // Offered load ≈ 85% of each 1 Gbps host link: flows_per_host × 300 KB ≈ 2.4 ms of
    // serialization per host per millisecond of duration at 100%.
    let duration = SimTime::from_secs_f64(flows_per_host as f64 * 300_000.0 * 8.0 / 1e9 / 0.85);
    let base = Scenario::new("fig12")
        .backend(SimBackend::Flow)
        .topology(TopologySpec::FatTree { hosts: n_hosts })
        .workload(WorkloadSpec::Poisson {
            rate_flows_per_sec: total_flows as f64 / duration.as_secs_f64(),
            duration,
            sizes: SizeDist::Pareto {
                mean: 300_000,
                alpha: 1.3,
            },
            short_deadlines: DeadlineDist::None,
            short_flow_threshold_bytes: 0,
            pattern: Pattern::RandomPermutation,
        })
        .seed(3)
        .stop_at(FLOW_LEVEL_STOP_AT);

    let mut table = Table::new(
        "Figure 12: flow aging vs starvation (fat-tree, random permutation, flow level)",
        &[
            "aging rate",
            "PDQ max FCT [ms]",
            "PDQ mean FCT [ms]",
            "RCP/D3 max FCT [ms]",
            "RCP/D3 mean FCT [ms]",
        ],
    );
    let rcp = run_scenario(&base.clone().protocol("rcp"));
    let rcp_max = rcp.max_fct_secs.map(|v| v * 1e3);
    let rcp_mean = rcp.mean_fct_secs.map(|v| v * 1e3);
    for &alpha in &aging_rates {
        let protocol = if alpha > 0.0 {
            format!("pdq(full;aging={alpha})")
        } else {
            PDQ_FULL.to_string()
        };
        let res = run_scenario(&base.clone().protocol(protocol));
        table.push_row(vec![
            fmt(alpha),
            fmt_opt(res.max_fct_secs.map(|v| v * 1e3)),
            fmt_opt(res.mean_fct_secs.map(|v| v * 1e3)),
            fmt_opt(rcp_max),
            fmt_opt(rcp_mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_quick_aging_reduces_max_fct() {
        let t = fig12(Scale::Quick);
        let no_aging_max: f64 = t.rows[0][1].parse().unwrap();
        let aged_max: f64 = t.rows[1][1].parse().unwrap();
        let no_aging_mean: f64 = t.rows[0][2].parse().unwrap();
        let aged_mean: f64 = t.rows[1][2].parse().unwrap();
        assert!(
            aged_max <= no_aging_max + 1e-6,
            "aging must not increase the worst FCT: {aged_max} vs {no_aging_max}"
        );
        assert!(
            aged_mean <= no_aging_mean * 1.5,
            "aging should only mildly affect the mean FCT: {aged_mean} vs {no_aging_mean}"
        );
    }
}
