//! Figure 5: realistic data-center workloads.
//!
//! * 5a — short-flow arrival rate supported at 99% application throughput vs mean
//!   deadline, under a VL2-like size mix (short flows < 40 KB are deadline-constrained);
//! * 5b — mean FCT of long flows under the same workload, normalized to PDQ(Full);
//! * 5c — mean FCT under an EDU1-like university data-center mix, normalized to
//!   PDQ(Full).
//!
//! The original traces are not public; the size mixes are synthetic stand-ins with the
//! same qualitative shape (see DESIGN.md).

use pdq_netsim::SimTime;
use pdq_scenario::{Scenario, TopologySpec, WorkloadSpec};
use pdq_workloads::{DeadlineDist, Pattern, SizeDist};

use crate::common::{fmt, label_of, run_scenario, Table, PDQ_FULL};
use crate::fig3::Scale;

fn vl2_workload(rate: f64, deadline_ms: u64, duration: SimTime) -> WorkloadSpec {
    WorkloadSpec::Poisson {
        rate_flows_per_sec: rate,
        duration,
        sizes: SizeDist::vl2_like(),
        short_deadlines: DeadlineDist::exponential_ms(deadline_ms),
        short_flow_threshold_bytes: 40_000,
        pattern: Pattern::RandomPermutation,
    }
}

/// The Figure 5a scenario at one grid point: VL2-like Poisson traffic on the paper
/// tree at the given arrival rate and mean deadline. Public so the CLI's `sweep`
/// subcommand can fan the same grid across threads.
pub fn fig5a_scenario(rate: f64, deadline_ms: u64, duration: SimTime) -> Scenario {
    Scenario::new(format!("fig5a/dl={deadline_ms}ms/rate={rate}"))
        .topology(TopologySpec::PaperTree)
        .workload(vl2_workload(rate, deadline_ms, duration))
        .seed(7)
}

/// The Figure 5a grid axes at a given scale: deadlines [ms], rates [flows/s] and the
/// workload duration.
pub fn fig5a_axes(scale: Scale) -> (Vec<u64>, Vec<f64>, SimTime) {
    match scale {
        Scale::Quick => (
            vec![30u64],
            vec![500.0, 1_000.0, 2_000.0],
            SimTime::from_millis(100),
        ),
        Scale::Paper | Scale::Large | Scale::Huge => (
            vec![15, 25, 35, 45],
            vec![500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0],
            SimTime::from_millis(250),
        ),
    }
}

/// Figure 5a: supported short-flow arrival rate at 99% application throughput vs mean
/// flow deadline (VL2-like workload, random permutation).
pub fn fig5a(scale: Scale) -> Table {
    let (deadlines, rates, duration) = fig5a_axes(scale);
    let protocols = scale.protocols();
    let mut cols = vec!["mean deadline [ms]".to_string()];
    cols.extend(protocols.iter().map(|p| label_of(p)));
    let mut table = Table::new(
        "Figure 5a: short-flow arrival rate [flows/s] supported at 99% application throughput (VL2-like mix)",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for &dl in &deadlines {
        let mut row = vec![dl.to_string()];
        for p in &protocols {
            // Walk the rate ladder and report the largest rate still at >= 99%.
            let mut best = 0.0f64;
            for &rate in &rates {
                let summary = run_scenario(&fig5a_scenario(rate, dl, duration).protocol(*p));
                if summary.application_throughput().unwrap_or(1.0) >= 0.99 {
                    best = rate;
                } else {
                    break;
                }
            }
            row.push(fmt(best));
        }
        table.push_row(row);
    }
    table
}

fn normalized_fct_table(
    title: &str,
    sizes: SizeDist,
    long_flows_only: bool,
    scale: Scale,
) -> Table {
    let protocols = scale.protocols();
    let duration = match scale {
        Scale::Quick => SimTime::from_millis(80),
        Scale::Paper | Scale::Large | Scale::Huge => SimTime::from_millis(300),
    };
    let workload = WorkloadSpec::Poisson {
        rate_flows_per_sec: 1_500.0,
        duration,
        sizes,
        short_deadlines: DeadlineDist::paper_default(),
        short_flow_threshold_bytes: 40_000,
        pattern: Pattern::RandomPermutation,
    };
    let filter = move |r: &pdq_netsim::FlowRecord| {
        if long_flows_only {
            r.spec.size_bytes > 40_000
        } else {
            true
        }
    };
    let fct_of = |p: &str| -> f64 {
        let summary = run_scenario(
            &Scenario::new("fig5-fct")
                .topology(TopologySpec::PaperTree)
                .workload(workload.clone())
                .protocol(p)
                .seed(11),
        );
        summary.packet().mean_fct_secs(filter).unwrap_or(10.0)
    };
    let mut table = Table::new(title, &["scheme", "normalized FCT"]);
    let base = fct_of(PDQ_FULL);
    for p in &protocols {
        let v = if *p == PDQ_FULL { base } else { fct_of(p) };
        table.push_row(vec![label_of(p), fmt(v / base.max(1e-9))]);
    }
    table
}

/// Figure 5b: mean FCT of long flows (> 40 KB) under the VL2-like mix, normalized to
/// PDQ(Full).
pub fn fig5b(scale: Scale) -> Table {
    normalized_fct_table(
        "Figure 5b: long-flow FCT under a VL2-like workload (normalized to PDQ(Full))",
        SizeDist::vl2_like(),
        true,
        scale,
    )
}

/// Figure 5c: mean FCT under the EDU1-like university data-center mix, normalized to
/// PDQ(Full).
pub fn fig5c(scale: Scale) -> Table {
    normalized_fct_table(
        "Figure 5c: FCT under an EDU1-like university data-center workload (normalized to PDQ(Full))",
        SizeDist::edu1_like(),
        false,
        scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5c_quick_runs_and_normalizes() {
        let t = fig5c(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        let pdq: f64 = t.rows[0][1].parse().unwrap();
        assert!((pdq - 1.0).abs() < 1e-9);
        for row in &t.rows {
            let v: f64 = row[1].parse().unwrap();
            assert!(v > 0.0 && v < 100.0);
        }
    }
}
