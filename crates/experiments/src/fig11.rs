//! Figure 11: Multipath PDQ on BCube.
//!
//! * 11a — mean FCT vs load (fraction of hosts sending), PDQ vs M-PDQ with 3 subflows;
//! * 11b — mean FCT vs number of subflows at 100% load;
//! * 11c — flows supported at 99% application throughput vs number of subflows.

use pdq_netsim::{FlowSpec, LinkParams, TraceConfig};
use pdq_topology::bcube;
use pdq_workloads::{DeadlineDist, Pattern, SizeDist};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::common::{
    avg_application_throughput, fmt, max_supported, run_packet_level, Protocol, Table,
};
use crate::fig3::Scale;

fn bcube_topology() -> pdq_topology::Topology {
    // BCube(2,3): 16 servers with 4 NICs each, as in the paper's Figure 11.
    bcube(2, 3, LinkParams::default())
}

fn permutation_flows_at_load(
    topo: &pdq_topology::Topology,
    load: f64,
    sizes: &SizeDist,
    deadlines: &DeadlineDist,
    seed: u64,
) -> Vec<FlowSpec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pairs = Pattern::RandomPermutation.pairs(topo, &mut rng);
    let n_senders = ((topo.host_count() as f64) * load).round().max(1.0) as usize;
    pairs
        .into_iter()
        .take(n_senders)
        .enumerate()
        .map(|(i, (src, dst))| {
            let mut spec = FlowSpec::new(i as u64 + 1, src, dst, sizes.sample(&mut rng).max(1));
            if let Some(d) = deadlines.sample(&mut rng) {
                spec = spec.with_deadline(d);
            }
            spec
        })
        .collect()
}

/// Figure 11a: mean FCT [ms] vs load, single-path PDQ vs M-PDQ with 3 subflows.
pub fn fig11a(scale: Scale) -> Table {
    let topo = bcube_topology();
    let loads = match scale {
        Scale::Quick => vec![0.25, 1.0],
        Scale::Paper | Scale::Large => vec![0.2, 0.4, 0.6, 0.8, 1.0],
    };
    let mut table = Table::new(
        "Figure 11a: mean FCT [ms] vs load on BCube(2,3) (random permutation, no deadlines)",
        &["load", "PDQ", "M-PDQ (3 subflows)"],
    );
    for &load in &loads {
        let flows = permutation_flows_at_load(
            &topo,
            load,
            &SizeDist::UniformMean(1_000_000),
            &DeadlineDist::None,
            4,
        );
        let mut row = vec![fmt(load)];
        for p in [
            Protocol::Pdq(pdq::PdqVariant::Full),
            Protocol::MultipathPdq(3),
        ] {
            let res = run_packet_level(&topo, &flows, &p, 4, TraceConfig::default());
            row.push(fmt(res.mean_fct_all_secs().unwrap_or(10.0) * 1e3));
        }
        table.push_row(row);
    }
    table
}

/// Figure 11b: mean FCT [ms] vs number of subflows at 100% load.
pub fn fig11b(scale: Scale) -> Table {
    let topo = bcube_topology();
    let subflow_counts: Vec<usize> = match scale {
        Scale::Quick => vec![1, 3],
        Scale::Paper | Scale::Large => vec![1, 2, 3, 4, 5, 6, 7, 8],
    };
    let flows = permutation_flows_at_load(
        &topo,
        1.0,
        &SizeDist::UniformMean(1_000_000),
        &DeadlineDist::None,
        4,
    );
    let mut table = Table::new(
        "Figure 11b: mean FCT [ms] vs number of M-PDQ subflows (100% load)",
        &["subflows", "mean FCT [ms]"],
    );
    for &k in &subflow_counts {
        let p = if k == 1 {
            Protocol::Pdq(pdq::PdqVariant::Full)
        } else {
            Protocol::MultipathPdq(k)
        };
        let res = run_packet_level(&topo, &flows, &p, 4, TraceConfig::default());
        table.push_row(vec![
            k.to_string(),
            fmt(res.mean_fct_all_secs().unwrap_or(10.0) * 1e3),
        ]);
    }
    table
}

/// Figure 11c: deadline flows supported at 99% application throughput vs number of
/// subflows (100% load, deadline-constrained).
pub fn fig11c(scale: Scale) -> Table {
    let topo = bcube_topology();
    let subflow_counts: Vec<usize> = match scale {
        Scale::Quick => vec![1, 3],
        Scale::Paper | Scale::Large => vec![1, 2, 3, 4, 6, 8],
    };
    let max_n = match scale {
        Scale::Quick => 16,
        Scale::Paper | Scale::Large => 40,
    };
    let mut table = Table::new(
        "Figure 11c: flows at 99% application throughput vs number of M-PDQ subflows",
        &["subflows", "flows @99% application throughput"],
    );
    for &k in &subflow_counts {
        let p = if k == 1 {
            Protocol::Pdq(pdq::PdqVariant::Full)
        } else {
            Protocol::MultipathPdq(k)
        };
        let supported = max_supported(max_n, 0.99, |n| {
            avg_application_throughput(&topo, &p, &[5], |s| {
                let mut rng = SmallRng::seed_from_u64(s);
                pdq_workloads::query_aggregation_flows(
                    &topo,
                    n,
                    &SizeDist::query(),
                    &DeadlineDist::paper_default(),
                    1,
                    &mut rng,
                )
            })
        });
        table.push_row(vec![k.to_string(), supported.to_string()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11a_quick_mpdq_helps_at_light_load() {
        let t = fig11a(Scale::Quick);
        // At 25% load M-PDQ should be at least as fast as single-path PDQ (it can use
        // idle parallel paths); at 100% load it should not be dramatically worse.
        let light = &t.rows[0];
        let pdq: f64 = light[1].parse().unwrap();
        let mpdq: f64 = light[2].parse().unwrap();
        assert!(
            mpdq <= pdq * 1.15,
            "M-PDQ at light load should not be slower: pdq={pdq} mpdq={mpdq}"
        );
    }
}
