//! Figure 11: Multipath PDQ on BCube.
//!
//! * 11a — mean FCT vs load (fraction of hosts sending), PDQ vs M-PDQ with 3 subflows;
//! * 11b — mean FCT vs number of subflows at 100% load;
//! * 11c — flows supported at 99% application throughput vs number of subflows.
//!
//! M-PDQ installs through the registry's `mpdq(<k>)` family.

use pdq_scenario::{Scenario, TopologySpec, WorkloadSpec};
use pdq_workloads::{DeadlineDist, SizeDist};

use crate::common::{
    avg_application_throughput, fmt, max_supported, run_scenario, Table, PDQ_FULL,
};
use crate::fig3::Scale;

// BCube(2,3): 16 servers with 4 NICs each, as in the paper's Figure 11.
const BCUBE: TopologySpec = TopologySpec::BCube { n: 2, k: 3 };

fn protocol_for_subflows(k: usize) -> String {
    if k == 1 {
        PDQ_FULL.to_string()
    } else {
        format!("mpdq({k})")
    }
}

fn load_scenario(name: &str, load: f64) -> Scenario {
    Scenario::new(name)
        .topology(BCUBE)
        .workload(WorkloadSpec::PermutationAtLoad {
            load,
            sizes: SizeDist::UniformMean(1_000_000),
            deadlines: DeadlineDist::None,
        })
        .seed(4)
}

/// Figure 11a: mean FCT [ms] vs load, single-path PDQ vs M-PDQ with 3 subflows.
pub fn fig11a(scale: Scale) -> Table {
    let loads = match scale {
        Scale::Quick => vec![0.25, 1.0],
        Scale::Paper | Scale::Large | Scale::Huge => vec![0.2, 0.4, 0.6, 0.8, 1.0],
    };
    let mut table = Table::new(
        "Figure 11a: mean FCT [ms] vs load on BCube(2,3) (random permutation, no deadlines)",
        &["load", "PDQ", "M-PDQ (3 subflows)"],
    );
    for &load in &loads {
        let mut row = vec![fmt(load)];
        for p in [PDQ_FULL, "mpdq(3)"] {
            let summary = run_scenario(&load_scenario("fig11a", load).protocol(p));
            row.push(fmt(summary.mean_fct_secs.unwrap_or(10.0) * 1e3));
        }
        table.push_row(row);
    }
    table
}

/// Figure 11b: mean FCT [ms] vs number of subflows at 100% load.
pub fn fig11b(scale: Scale) -> Table {
    let subflow_counts: Vec<usize> = match scale {
        Scale::Quick => vec![1, 3],
        Scale::Paper | Scale::Large | Scale::Huge => vec![1, 2, 3, 4, 5, 6, 7, 8],
    };
    let mut table = Table::new(
        "Figure 11b: mean FCT [ms] vs number of M-PDQ subflows (100% load)",
        &["subflows", "mean FCT [ms]"],
    );
    for &k in &subflow_counts {
        let summary =
            run_scenario(&load_scenario("fig11b", 1.0).protocol(protocol_for_subflows(k)));
        table.push_row(vec![
            k.to_string(),
            fmt(summary.mean_fct_secs.unwrap_or(10.0) * 1e3),
        ]);
    }
    table
}

/// Figure 11c: deadline flows supported at 99% application throughput vs number of
/// subflows (100% load, deadline-constrained).
pub fn fig11c(scale: Scale) -> Table {
    let subflow_counts: Vec<usize> = match scale {
        Scale::Quick => vec![1, 3],
        Scale::Paper | Scale::Large | Scale::Huge => vec![1, 2, 3, 4, 6, 8],
    };
    let max_n = match scale {
        Scale::Quick => 16,
        Scale::Paper | Scale::Large | Scale::Huge => 40,
    };
    let mut table = Table::new(
        "Figure 11c: flows at 99% application throughput vs number of M-PDQ subflows",
        &["subflows", "flows @99% application throughput"],
    );
    for &k in &subflow_counts {
        let protocol = protocol_for_subflows(k);
        let supported = max_supported(max_n, 0.99, |n| {
            let base = Scenario::new("fig11c")
                .topology(BCUBE)
                .workload(WorkloadSpec::QueryAggregation {
                    flows: n,
                    sizes: SizeDist::query(),
                    deadlines: DeadlineDist::paper_default(),
                })
                .protocol(protocol.clone());
            avg_application_throughput(&base, &[5])
        });
        table.push_row(vec![k.to_string(), supported.to_string()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11a_quick_mpdq_helps_at_light_load() {
        let t = fig11a(Scale::Quick);
        // At 25% load M-PDQ should be at least as fast as single-path PDQ (it can use
        // idle parallel paths); at 100% load it should not be dramatically worse.
        let light = &t.rows[0];
        let pdq: f64 = light[1].parse().unwrap();
        let mpdq: f64 = light[2].parse().unwrap();
        assert!(
            mpdq <= pdq * 1.15,
            "M-PDQ at light load should not be slower: pdq={pdq} mpdq={mpdq}"
        );
    }
}
