//! Command-line entry point: regenerate the PDQ paper's tables and figures, run
//! declarative scenario specs, and fan scenario sweeps across worker threads.
//!
//! ```text
//! pdq-experiments <experiment...|all> [--quick|--paper|--large] [--csv]
//! pdq-experiments list
//! pdq-experiments run-spec <file.scn> [--csv]
//! pdq-experiments sweep [--quick|--paper] [--threads N] [--replicate K] [--csv]
//!
//!   <experiment>   one or more of: fig3a fig3b fig3c fig3d fig3e headline fig4a fig4b
//!                  fig5a fig5b fig5c fig6 fig7 fig8a fig8b fig8c fig8d fig8e fig9a
//!                  fig9b fig10 fig11a fig11b fig11c fig12 diag engine_scale, or "all"
//!   list           print every experiment name and every registered protocol family,
//!                  grouped by the simulation backends the family supports
//!   run-spec       execute one scenario from a plain-text spec file (see README);
//!                  exits 2 when the spec's protocol lacks its backend
//!   sweep          run the fig5a protocol x deadline x rate grid in parallel
//!                  (--threads defaults to the CPU count)
//!   --quick        the reduced quick-scale sweep (the default)
//!   --paper        run the full paper-scale parameter sweep
//!   --large        engine-stress scale: >=10k flows in engine_scale (figures as --paper)
//!   --replicate K  run every sweep cell under K consecutive seeds and report
//!                  mean/stddev/95%-CI statistics per cell
//!   --csv          print CSV instead of markdown
//! ```

use std::num::NonZeroUsize;

use pdq_experiments::{all_experiments, run_experiment, sweeps, Scale, Table};
use pdq_scenario::{default_threads, Scenario, SimBackend};

fn print_tables(tables: &[Table], heading: &str, csv: bool) {
    for t in tables {
        if csv {
            println!("# {heading}");
            print!("{}", t.to_csv());
        } else {
            println!("{}", t.to_markdown());
        }
    }
}

fn unknown_experiment(name: &str) -> ! {
    eprintln!("unknown experiment: {name}");
    eprintln!("experiments: {}", all_experiments().join(" "));
    eprintln!("(run `pdq-experiments list` for experiments and protocols)");
    std::process::exit(2);
}

fn cmd_list() {
    println!("experiments:");
    for name in all_experiments() {
        println!("  {name}");
    }
    // Group protocol families by the backend set they support, packet+flow first.
    let registry = pdq_experiments::common::registry();
    for (heading, wants_flow) in [
        ("packet + flow backends", true),
        ("packet backend only", false),
    ] {
        let members: Vec<(&str, &str)> = registry
            .families_with_backends()
            .filter(|(_, _, backends)| backends.contains(&SimBackend::Flow) == wants_flow)
            .map(|(name, summary, _)| (name, summary))
            .collect();
        if members.is_empty() {
            continue;
        }
        println!("\nprotocols ({heading}):");
        for (name, summary) in members {
            println!("  {name:<8} {summary}");
        }
    }
}

fn cmd_run_spec(path: &str, csv: bool) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let scenario = match Scenario::from_spec(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
    };
    let summary = match scenario.run(pdq_experiments::common::registry()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
    };
    let table = sweeps::sweep_table(&format!("Scenario: {}", summary.scenario), &[summary]);
    print_tables(&[table], path, csv);
}

fn cmd_sweep(scale: Scale, threads: usize, replicate: NonZeroUsize, csv: bool) {
    let sweep = sweeps::fig5a_grid(scale);
    let registry = pdq_experiments::common::registry();
    let started = std::time::Instant::now();
    let (table, runs) = if replicate.get() > 1 {
        match sweep.run_replicated(registry, threads, replicate) {
            Ok(cells) => {
                let runs = cells.iter().map(|c| c.runs.len()).sum();
                let table = sweeps::replicated_table(
                    &format!(
                        "Sweep: fig5a grid, {} cells x {} seeds",
                        cells.len(),
                        replicate
                    ),
                    &cells,
                );
                (table, runs)
            }
            Err(e) => {
                eprintln!("sweep failed: {e}");
                std::process::exit(2);
            }
        }
    } else {
        match sweep.run(registry, threads) {
            Ok(results) => {
                let table = sweeps::sweep_table(
                    &format!("Sweep: fig5a grid, {} scenarios", results.len()),
                    &results,
                );
                let runs = results.len();
                (table, runs)
            }
            Err(e) => {
                eprintln!("sweep failed: {e}");
                std::process::exit(2);
            }
        }
    };
    let wall = started.elapsed().as_secs_f64();
    print_tables(&[table], "sweep", csv);
    eprintln!("sweep: {runs} runs on {threads} thread(s) in {wall:.3} s");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: pdq-experiments <experiment...|all|list|run-spec <file>|sweep> \
             [--quick|--paper|--large] [--threads N] [--replicate K] [--csv]"
        );
        eprintln!("experiments: {}", all_experiments().join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let scale_flags: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| matches!(*a, "--quick" | "--paper" | "--large"))
        .collect();
    if scale_flags.len() > 1 {
        eprintln!("conflicting scale flags: {}", scale_flags.join(" "));
        std::process::exit(2);
    }
    let scale = match scale_flags.first() {
        Some(&"--large") => Scale::Large,
        Some(&"--paper") => Scale::Paper,
        _ => Scale::Quick,
    };
    let csv = args.iter().any(|a| a == "--csv");
    let valued_flag = |flag: &str| -> Option<Option<usize>> {
        args.iter()
            .position(|a| a == flag)
            .map(|i| args.get(i + 1).and_then(|v| v.parse().ok()))
    };
    let threads = match valued_flag("--threads") {
        None => default_threads(),
        Some(Some(n)) => n,
        Some(None) => {
            eprintln!("--threads needs a positive integer");
            std::process::exit(2);
        }
    };
    let replicate = match valued_flag("--replicate") {
        None => NonZeroUsize::MIN,
        Some(n) => match n.and_then(NonZeroUsize::new) {
            Some(k) => k,
            None => {
                eprintln!("--replicate needs a positive seed count, e.g. --replicate 3");
                std::process::exit(2);
            }
        },
    };
    let mut positional: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--threads" || a == "--replicate" {
            skip_next = true;
            continue;
        }
        if let Some(flag) = a.strip_prefix("--") {
            if !matches!(flag, "quick" | "paper" | "large" | "csv") {
                eprintln!("unknown flag: --{flag}");
                std::process::exit(2);
            }
            continue;
        }
        positional.push(a.clone());
    }

    match positional.first().map(String::as_str) {
        Some("list") => {
            cmd_list();
            return;
        }
        Some("run-spec") => {
            let Some(path) = positional.get(1) else {
                eprintln!("usage: pdq-experiments run-spec <file.scn> [--csv]");
                std::process::exit(2);
            };
            cmd_run_spec(path, csv);
            return;
        }
        Some("sweep") => {
            cmd_sweep(scale, threads.max(1), replicate, csv);
            return;
        }
        _ => {}
    }

    let names: Vec<String> = if positional.iter().any(|n| n == "all") {
        all_experiments().iter().map(|s| s.to_string()).collect()
    } else {
        positional
    };
    if names.is_empty() {
        unknown_experiment("(none)");
    }
    for n in &names {
        match run_experiment(n, scale) {
            Some(tables) => print_tables(&tables, n, csv),
            None => unknown_experiment(n),
        }
    }
}
