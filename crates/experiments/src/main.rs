//! Command-line entry point: regenerate the PDQ paper's tables and figures.
//!
//! ```text
//! pdq-experiments <experiment...|all|list> [--paper] [--large] [--csv]
//!
//!   <experiment>   one or more of: fig3a fig3b fig3c fig3d fig3e headline fig4a fig4b
//!                  fig5a fig5b fig5c fig6 fig7 fig8a fig8b fig8c fig8d fig8e fig9a
//!                  fig9b fig10 fig11a fig11b fig11c fig12 diag engine_scale, or "all"
//!   --paper        run the full paper-scale parameter sweep (default: quick)
//!   --large        engine-stress scale: >=10k flows in engine_scale (figures as --paper)
//!   --csv          print CSV instead of markdown
//! ```

use pdq_experiments::{all_experiments, run_experiment, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: pdq-experiments <experiment...|all|list> [--paper] [--large] [--csv]");
        eprintln!("experiments: {}", all_experiments().join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let scale = if args.iter().any(|a| a == "--large") {
        Scale::Large
    } else if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Quick
    };
    let csv = args.iter().any(|a| a == "--csv");
    let requested: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();

    if requested.iter().any(|n| n == "list") {
        println!("{}", all_experiments().join("\n"));
        return;
    }

    let names: Vec<String> = if requested.iter().any(|n| n == "all") {
        all_experiments().iter().map(|s| s.to_string()).collect()
    } else {
        requested
    };

    for n in names {
        let tables = run_experiment(&n, scale);
        if tables.is_empty() {
            eprintln!("unknown experiment: {n}");
            eprintln!("experiments: {}", all_experiments().join(" "));
            std::process::exit(2);
        }
        for t in tables {
            if csv {
                println!("# {n}");
                print!("{}", t.to_csv());
            } else {
                println!("{}", t.to_markdown());
            }
        }
    }
}
