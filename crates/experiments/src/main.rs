//! Command-line entry point: regenerate the PDQ paper's tables and figures, run
//! declarative scenario specs, and fan scenario sweeps across worker threads.
//!
//! ```text
//! pdq-experiments <experiment...|all> [--quick|--paper|--large|--huge]
//!                 [--engine-threads N] [--csv]
//! pdq-experiments list
//! pdq-experiments run-spec <file.scn> [--engine-threads N] [--fingerprint] [--csv]
//! pdq-experiments sweep [<base.scn>] [--quick|--paper] [--threads N] [--replicate K]
//!                       [--protocols A,B] [--seeds S1,S2] [--loads L1,L2]
//!                       [--sizes D1,D2] [--deadlines D1,D2]
//!                       [--cache-dir DIR] [--no-cache] [--jsonl FILE] [--csv]
//! pdq-experiments cache <stats|clear> [--cache-dir DIR]
//!
//!   <experiment>   one or more of: fig1 fig3a fig3b fig3c fig3d fig3e headline fig4a
//!                  fig4b fig5a fig5b fig5c fig6 fig7 fig8a fig8b fig8c fig8d fig8e
//!                  fig9a fig9b fig10 fig11a fig11b fig11c fig12 diag engine_scale,
//!                  or "all"
//!   list           print every experiment name and every registered protocol family,
//!                  grouped by the simulation backends the family supports
//!   run-spec       execute one scenario from a plain-text spec file (see README);
//!                  exits 2 when the spec's protocol lacks its backend.
//!                  --fingerprint prints only the run's determinism fingerprint
//!                  instead of the result table
//!   sweep          with no axis flags: the canonical fig5a protocol x deadline x
//!                  rate grid in parallel (--threads defaults to the CPU count).
//!                  With axis flags: the cartesian GridBuilder product of the given
//!                  axes over a base scenario — the fig5a base, or <base.scn> if a
//!                  spec file is named. Axis values are comma-separated lists
//!                  (--sizes/--deadlines take distribution tokens like fixed:20000
//!                  or paper); empty or malformed axes exit 2.
//!   cache          inspect (`stats`) or empty (`clear`) a result-cache directory
//!                  (default `.pdq-cache`, or --cache-dir DIR)
//!   --quick        the reduced quick-scale sweep (the default)
//!   --paper        run the full paper-scale parameter sweep
//!   --large        engine-stress scale: >=10k flows in engine_scale (figures as --paper)
//!   --huge         partitioned-engine stress scale: >=1M flows on a >=1024-host
//!                  fat-tree in engine_scale (figures as --paper)
//!   --engine-threads N  shard the packet engine across N conservative-lookahead
//!                  cores (default 1 = sequential; 0 = auto-detect the core count);
//!                  applies to every scenario that does not pin engine_threads itself
//!                  and leaves determinism fingerprints unchanged
//!   --replicate K  run every sweep cell under K consecutive seeds and report
//!                  mean/stddev/95%-CI (Student-t) statistics per cell
//!   --cache-dir D  serve sweep cells from the fingerprint-keyed result cache in D,
//!                  storing newly computed cells as they finish — an interrupted
//!                  sweep re-run restarts from the missing cells only
//!   --no-cache     bypass the cache entirely (with --cache-dir: run and store
//!                  nothing)
//!   --jsonl FILE   stream one JSON line per sweep cell to FILE as it finishes,
//!                  instead of only the buffered end-of-run table
//!   --csv          print CSV instead of markdown
//! ```

use std::io::Write;
use std::num::NonZeroUsize;
use std::str::FromStr;

use pdq_experiments::{all_experiments, run_experiment, sweeps, Scale, Table};
use pdq_scenario::{
    default_threads, CachePolicy, GridBuilder, ResultCache, Scenario, SimBackend, Sweep,
};
use pdq_workloads::{DeadlineDist, SizeDist};

/// The cache directory `cache` and `sweep --cache-dir` default to.
const DEFAULT_CACHE_DIR: &str = ".pdq-cache";

fn print_tables(tables: &[Table], heading: &str, csv: bool) {
    for t in tables {
        if csv {
            println!("# {heading}");
            print!("{}", t.to_csv());
        } else {
            println!("{}", t.to_markdown());
        }
    }
}

fn unknown_experiment(name: &str) -> ! {
    eprintln!("unknown experiment: {name}");
    eprintln!("experiments: {}", all_experiments().join(" "));
    eprintln!("(run `pdq-experiments list` for experiments and protocols)");
    std::process::exit(2);
}

fn cmd_list() {
    println!("experiments:");
    for name in all_experiments() {
        println!("  {name}");
    }
    // Group protocol families by the exact backend set they support, widest set
    // first (packet + flow + fluid, then packet + fluid, ..., packet only).
    type BackendGroups<'a> =
        std::collections::BTreeMap<(std::cmp::Reverse<usize>, String), Vec<(&'a str, &'a str)>>;
    let registry = pdq_experiments::common::registry();
    let mut groups: BackendGroups = BackendGroups::new();
    for (name, summary, backends) in registry.families_with_backends() {
        let key = backends
            .iter()
            .map(SimBackend::token)
            .collect::<Vec<_>>()
            .join(" + ");
        groups
            .entry((std::cmp::Reverse(backends.len()), key))
            .or_default()
            .push((name, summary));
    }
    for ((n_backends, key), members) in groups {
        if n_backends.0 > 1 {
            println!("\nprotocols ({key} backends):");
        } else {
            println!("\nprotocols ({key} backend only):");
        }
        for (name, summary) in members {
            println!("  {name:<8} {summary}");
        }
    }
}

fn cmd_run_spec(path: &str, csv: bool, fingerprint: bool) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let scenario = match Scenario::from_spec(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
    };
    // A spec that pins engine_threads wins over the --engine-threads flag.
    let scenario = pdq_experiments::common::with_engine_threads(scenario);
    let summary = match scenario.run(pdq_experiments::common::registry()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
    };
    if fingerprint {
        println!("{}", summary.fingerprint());
        return;
    }
    let table = sweeps::sweep_table(&format!("Scenario: {}", summary.scenario), &[summary]);
    print_tables(&[table], path, csv);
}

/// The parsed `sweep` axis flags: each is a comma-separated list that becomes one
/// [`GridBuilder`] axis.
#[derive(Default)]
struct AxisFlags {
    protocols: Option<Vec<String>>,
    seeds: Option<Vec<u64>>,
    loads: Option<Vec<f64>>,
    sizes: Option<Vec<SizeDist>>,
    deadlines: Option<Vec<DeadlineDist>>,
}

impl AxisFlags {
    fn any(&self) -> bool {
        self.protocols.is_some()
            || self.seeds.is_some()
            || self.loads.is_some()
            || self.sizes.is_some()
            || self.deadlines.is_some()
    }
}

/// Parse a comma-separated axis value list; exits 2 on empty or malformed values
/// so a typo'd axis never silently shrinks (or empties) the grid.
fn parse_axis<T: FromStr>(flag: &str, value: &str) -> Vec<T>
where
    T::Err: std::fmt::Display,
{
    let parts: Vec<&str> = value
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect();
    if parts.is_empty() {
        eprintln!("{flag} needs a non-empty comma-separated list, got {value:?}");
        std::process::exit(2);
    }
    parts
        .into_iter()
        .map(|p| {
            p.parse().unwrap_or_else(|e| {
                eprintln!("bad {flag} value {p:?}: {e}");
                std::process::exit(2);
            })
        })
        .collect()
}

/// Build the sweep the CLI was asked for: the canonical fig5a grid when no axis
/// flag is given, otherwise the [`GridBuilder`] product of the given axes over the
/// base scenario (the fig5a base, or `base_spec` when a spec file is named).
fn build_sweep(scale: Scale, base_spec: Option<&str>, axes: &AxisFlags) -> (Sweep, &'static str) {
    if !axes.any() && base_spec.is_none() {
        return (sweeps::fig5a_grid(scale), "fig5a grid");
    }
    let base = match base_spec {
        None => sweeps::fig5a_base(scale),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            match Scenario::from_spec(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(2);
                }
            }
        }
    };
    let mut grid = GridBuilder::new(base);
    if let Some(protocols) = &axes.protocols {
        let refs: Vec<&str> = protocols.iter().map(String::as_str).collect();
        grid = grid.protocols(&refs);
    }
    if let Some(seeds) = &axes.seeds {
        grid = grid.seeds(seeds);
    }
    if let Some(loads) = &axes.loads {
        grid = grid.loads(loads);
    }
    if let Some(sizes) = &axes.sizes {
        grid = grid.sizes(sizes.clone());
    }
    if let Some(deadlines) = &axes.deadlines {
        grid = grid.deadlines(deadlines.clone());
    }
    match grid.build() {
        Ok(sweep) => (sweep, "custom grid"),
        Err(e) => {
            eprintln!("sweep grid: {e}");
            std::process::exit(2);
        }
    }
}

/// The parsed `sweep` cache/streaming flags.
#[derive(Default)]
struct CacheFlags {
    cache_dir: Option<String>,
    no_cache: bool,
    jsonl: Option<String>,
}

impl CacheFlags {
    fn any(&self) -> bool {
        self.cache_dir.is_some() || self.no_cache || self.jsonl.is_some()
    }

    /// Open the result cache (if any) and pick the policy: `--no-cache` bypasses
    /// even an explicit `--cache-dir`.
    fn open_cache(&self) -> (Option<ResultCache>, CachePolicy) {
        if self.no_cache {
            return (None, CachePolicy::Bypass);
        }
        let Some(dir) = &self.cache_dir else {
            return (None, CachePolicy::Bypass);
        };
        match ResultCache::open(dir) {
            Ok(cache) => (Some(cache), CachePolicy::ReadWrite),
            Err(e) => {
                eprintln!("cannot open cache dir {dir}: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Open the `--jsonl` sink for writing (truncating any previous stream).
    fn open_sink(&self) -> Option<std::fs::File> {
        let path = self.jsonl.as_ref()?;
        match std::fs::File::create(path) {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                std::process::exit(2);
            }
        }
    }
}

fn cmd_sweep(
    scale: Scale,
    threads: usize,
    replicate: NonZeroUsize,
    csv: bool,
    base_spec: Option<&str>,
    axes: &AxisFlags,
    cache_flags: &CacheFlags,
) {
    let (sweep, grid_label) = build_sweep(scale, base_spec, axes);
    let registry = pdq_experiments::common::registry();
    let (cache, policy) = cache_flags.open_cache();
    let mut sink_file = cache_flags.open_sink();
    let sink = sink_file.as_mut().map(|f| f as &mut (dyn Write + Send));
    let started = std::time::Instant::now();
    let (table, runs, hits, executed) = if replicate.get() > 1 {
        match sweep.run_replicated_cached(
            registry,
            threads,
            replicate,
            cache.as_ref(),
            policy,
            sink,
        ) {
            Ok(outcome) => {
                let runs = outcome.cells.iter().map(|c| c.runs.len()).sum();
                let table = sweeps::replicated_table(
                    &format!(
                        "Sweep: {grid_label}, {} cells x {} seeds",
                        outcome.cells.len(),
                        replicate
                    ),
                    &outcome.cells,
                );
                (table, runs, outcome.cache_hits, outcome.executed)
            }
            Err(e) => {
                eprintln!("sweep failed: {e}");
                std::process::exit(2);
            }
        }
    } else {
        match sweep.run_cached(registry, threads, cache.as_ref(), policy, sink) {
            Ok(outcome) => {
                let table = sweeps::sweep_table(
                    &format!("Sweep: {grid_label}, {} scenarios", outcome.summaries.len()),
                    &outcome.summaries,
                );
                let runs = outcome.summaries.len();
                (table, runs, outcome.cache_hits, outcome.executed)
            }
            Err(e) => {
                eprintln!("sweep failed: {e}");
                std::process::exit(2);
            }
        }
    };
    let wall = started.elapsed().as_secs_f64();
    print_tables(&[table], "sweep", csv);
    eprintln!(
        "sweep: {runs} runs ({hits} cache hits, {executed} executed) \
         on {threads} thread(s) in {wall:.3} s"
    );
}

fn cmd_cache(action: &str, dir: &str) {
    let cache = match ResultCache::open(dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot open cache dir {dir}: {e}");
            std::process::exit(2);
        }
    };
    match action {
        "stats" => match cache.stats() {
            Ok(stats) => {
                println!(
                    "cache {dir}: {} record(s), {} byte(s)",
                    stats.records, stats.bytes
                );
                println!(
                    "  by backend: {} packet, {} flow, {} fluid",
                    stats.packet_records, stats.flow_records, stats.fluid_records
                );
            }
            Err(e) => {
                eprintln!("cache stats failed for {dir}: {e}");
                std::process::exit(2);
            }
        },
        "clear" => match cache.clear() {
            Ok(removed) => println!("cache {dir}: removed {removed} record(s)"),
            Err(e) => {
                eprintln!("cache clear failed for {dir}: {e}");
                std::process::exit(2);
            }
        },
        other => {
            eprintln!("unknown cache action: {other} (expected stats or clear)");
            std::process::exit(2);
        }
    }
}

/// Flags that consume the following argument as their value.
const VALUED_FLAGS: [&str; 10] = [
    "--threads",
    "--engine-threads",
    "--replicate",
    "--protocols",
    "--seeds",
    "--loads",
    "--sizes",
    "--deadlines",
    "--cache-dir",
    "--jsonl",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: pdq-experiments <experiment...|all|list|run-spec <file>|sweep [<base.scn>]|\
             cache <stats|clear>> \
             [--quick|--paper|--large|--huge] [--engine-threads N] [--fingerprint] \
             [--threads N] [--replicate K] \
             [--protocols A,B] [--seeds S1,S2] [--loads L1,L2] [--sizes D1,D2] \
             [--deadlines D1,D2] [--cache-dir DIR] [--no-cache] [--jsonl FILE] [--csv]"
        );
        eprintln!("experiments: {}", all_experiments().join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let scale_flags: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| matches!(*a, "--quick" | "--paper" | "--large" | "--huge"))
        .collect();
    if scale_flags.len() > 1 {
        eprintln!("conflicting scale flags: {}", scale_flags.join(" "));
        std::process::exit(2);
    }
    let scale = match scale_flags.first() {
        Some(&"--huge") => Scale::Huge,
        Some(&"--large") => Scale::Large,
        Some(&"--paper") => Scale::Paper,
        _ => Scale::Quick,
    };
    let csv = args.iter().any(|a| a == "--csv");
    let string_flag = |flag: &'static str| -> Option<String> {
        let mut found: Option<String> = None;
        for (i, a) in args.iter().enumerate() {
            if a != flag {
                continue;
            }
            if found.is_some() {
                eprintln!("{flag} was set twice — give each flag once");
                std::process::exit(2);
            }
            found = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            }));
        }
        found
    };
    let valued_flag =
        |flag: &'static str| -> Option<Option<usize>> { string_flag(flag).map(|v| v.parse().ok()) };
    let threads = match valued_flag("--threads") {
        None | Some(Some(0)) => default_threads(), // 0 = auto-detect, like no flag
        Some(Some(n)) => n,
        Some(None) => {
            eprintln!("--threads needs an integer (0 auto-detects the core count)");
            std::process::exit(2);
        }
    };
    match valued_flag("--engine-threads") {
        None => {}
        Some(Some(n)) if u32::try_from(n).is_ok() => {
            pdq_experiments::common::set_engine_threads(n as u32);
        }
        Some(_) => {
            eprintln!("--engine-threads needs an integer (0 auto-detects the core count)");
            std::process::exit(2);
        }
    }
    let replicate = match valued_flag("--replicate") {
        None => NonZeroUsize::MIN,
        Some(n) => match n.and_then(NonZeroUsize::new) {
            Some(k) => k,
            None => {
                eprintln!("--replicate needs a positive seed count, e.g. --replicate 3");
                std::process::exit(2);
            }
        },
    };
    let axes = AxisFlags {
        protocols: string_flag("--protocols").map(|v| parse_axis("--protocols", &v)),
        seeds: string_flag("--seeds").map(|v| parse_axis("--seeds", &v)),
        loads: string_flag("--loads").map(|v| parse_axis("--loads", &v)),
        sizes: string_flag("--sizes").map(|v| parse_axis("--sizes", &v)),
        deadlines: string_flag("--deadlines").map(|v| parse_axis("--deadlines", &v)),
    };
    let mut positional: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUED_FLAGS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if let Some(flag) = a.strip_prefix("--") {
            if !matches!(
                flag,
                "quick" | "paper" | "large" | "huge" | "csv" | "no-cache" | "fingerprint"
            ) {
                eprintln!("unknown flag: --{flag}");
                std::process::exit(2);
            }
            continue;
        }
        positional.push(a.clone());
    }
    let cache_flags = CacheFlags {
        cache_dir: string_flag("--cache-dir"),
        no_cache: args.iter().any(|a| a == "--no-cache"),
        jsonl: string_flag("--jsonl"),
    };

    let subcommand = positional.first().map(String::as_str);
    if args.iter().any(|a| a == "--fingerprint") && subcommand != Some("run-spec") {
        eprintln!("--fingerprint only applies to run-spec");
        std::process::exit(2);
    }
    if axes.any() && subcommand != Some("sweep") {
        eprintln!(
            "axis flags (--protocols/--seeds/--loads/--sizes/--deadlines) only apply to sweep"
        );
        std::process::exit(2);
    }
    if cache_flags.any() && !matches!(subcommand, Some("sweep") | Some("cache")) {
        eprintln!("cache flags (--cache-dir/--no-cache/--jsonl) only apply to sweep and cache");
        std::process::exit(2);
    }
    if (cache_flags.no_cache || cache_flags.jsonl.is_some()) && subcommand == Some("cache") {
        eprintln!("the cache subcommand only takes --cache-dir");
        std::process::exit(2);
    }
    match subcommand {
        Some("list") => {
            cmd_list();
            return;
        }
        Some("run-spec") => {
            let Some(path) = positional.get(1) else {
                eprintln!(
                    "usage: pdq-experiments run-spec <file.scn> \
                     [--engine-threads N] [--fingerprint] [--csv]"
                );
                std::process::exit(2);
            };
            cmd_run_spec(path, csv, args.iter().any(|a| a == "--fingerprint"));
            return;
        }
        Some("sweep") => {
            cmd_sweep(
                scale,
                threads.max(1),
                replicate,
                csv,
                positional.get(1).map(String::as_str),
                &axes,
                &cache_flags,
            );
            return;
        }
        Some("cache") => {
            let Some(action) = positional.get(1) else {
                eprintln!("usage: pdq-experiments cache <stats|clear> [--cache-dir DIR]");
                std::process::exit(2);
            };
            let dir = cache_flags
                .cache_dir
                .as_deref()
                .unwrap_or(DEFAULT_CACHE_DIR);
            cmd_cache(action, dir);
            return;
        }
        _ => {}
    }

    let names: Vec<String> = if positional.iter().any(|n| n == "all") {
        all_experiments().iter().map(|s| s.to_string()).collect()
    } else {
        positional
    };
    if names.is_empty() {
        unknown_experiment("(none)");
    }
    for n in &names {
        match run_experiment(n, scale) {
            Some(tables) => print_tables(&tables, n, csv),
            None => unknown_experiment(n),
        }
    }
}
