//! Inter-datacenter WAN scenario: paced vs unpaced senders on long-haul links.
//!
//! This is not a paper figure — the paper evaluates PDQ inside a single
//! datacenter. The WAN scenario stresses the regime the pacing work exists for:
//! tens-of-milliseconds RTTs, BDP-scaled queues and lossy long-haul links (see
//! `pdq_topology::wan`). Each protocol runs twice, with the historical
//! one-packet-per-gap schedule (`pacing = off`) and with the RFC 9002-style
//! token bucket (`pacing = on`), so the table shows what burst-capped bucket
//! pacing buys at WAN BDPs. The quick tier is also the committed
//! `specs/wan_quick.scn` that CI replays at 1 and 4 engine shards to pin the
//! lossy-WAN determinism fingerprint (per-link loss streams are shard-count
//! invariant; see `pdq_netsim::LossStream`).
//!
//! Like `engine_scale`, wall-clock and event-queue telemetry go to stderr —
//! stdout tables are byte-compared in CI and must stay deterministic.

use std::time::Instant;

use pdq_netsim::SimTime;
use pdq_scenario::{Scenario, TopologySpec, WorkloadSpec};
use pdq_workloads::SizeDist;

use crate::common::{fmt, fmt_opt, run_scenario, Table, PDQ_FULL};
use crate::fig3::Scale;

/// The protocols the WAN comparison runs, in table order.
pub const WAN_PROTOCOLS: &[&str] = &["tcp", "rcp", "d3", PDQ_FULL];

/// The WAN [`Scenario`]: `protocol` between random host pairs across a
/// heterogeneous inter-datacenter mesh (60 ms worst-pair RTT, 1 Gbit/s slowest
/// long-haul, 10⁻⁴ random loss per long-haul direction). `pacing` toggles the
/// RFC 9002-style sender token bucket.
pub fn wan_scenario(scale: Scale, protocol: &str, pacing: bool) -> Scenario {
    let (sites, hosts_per_site, flows, spread_ms, mean_bytes) = match scale {
        Scale::Quick => (4, 2, 48, 100, 150_000),
        Scale::Paper => (6, 4, 400, 300, 500_000),
        Scale::Large => (8, 8, 2_000, 500, 500_000),
        Scale::Huge => (8, 16, 10_000, 1_000, 500_000),
    };
    Scenario::new("wan")
        .topology(TopologySpec::Wan {
            sites,
            hosts_per_site,
            rtt_ms: 60.0,
            gbps: 1.0,
            loss_rate: 1e-4,
        })
        .workload(WorkloadSpec::RandomPairs {
            flows,
            spread: SimTime::from_millis(spread_ms),
            sizes: SizeDist::UniformMean(mean_bytes),
        })
        .protocol(protocol)
        .pacing(pacing)
        .seed(1)
}

/// The WAN comparison: every protocol with pacing off and on.
///
/// Columns are fully deterministic (CI byte-compares them); wall-clock seconds
/// and event-queue [`pdq_netsim::QueueStats`] peaks are printed to stderr per run.
pub fn wan(scale: Scale) -> Table {
    let mut table = Table::new(
        "WAN: inter-datacenter mesh (60 ms RTT, 1e-4 long-haul loss), paced vs unpaced senders",
        &[
            "protocol",
            "pacing",
            "flows",
            "completed",
            "mean FCT [ms]",
            "p99 FCT [ms]",
            "goodput [MB]",
        ],
    );
    for &protocol in WAN_PROTOCOLS {
        for pacing in [false, true] {
            let scenario = wan_scenario(scale, protocol, pacing);
            let started = Instant::now();
            let res = run_scenario(&scenario);
            let wall = started.elapsed().as_secs_f64();
            // Telemetry on stderr (the wall-clock of a WAN run and the event
            // queue's high-water marks are per-run measurements, not results).
            if let Some(r) = res.results.packet() {
                let q = &r.queue;
                eprintln!(
                    "wan[{protocol} pacing={}]: wall={wall:.3}s event queue pushes={} \
                     pops={} peak_pending={} overflow_migrations={} buckets_sorted={}",
                    if pacing { "on" } else { "off" },
                    q.pushes,
                    q.pops,
                    q.peak_pending,
                    q.overflow_migrations,
                    q.buckets_sorted
                );
            }
            table.push_row(vec![
                res.protocol_label.clone(),
                if pacing { "on" } else { "off" }.to_string(),
                res.flows.to_string(),
                res.completed.to_string(),
                fmt_opt(res.mean_fct_secs.map(|s| s * 1e3)),
                fmt_opt(res.p99_fct_secs.map(|s| s * 1e3)),
                fmt(res.goodput_bytes as f64 / 1e6),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_wan_scenario_is_a_high_bdp_lossy_mesh() {
        let s = wan_scenario(Scale::Quick, PDQ_FULL, true);
        match s.topology {
            TopologySpec::Wan {
                rtt_ms, loss_rate, ..
            } => {
                assert!(rtt_ms >= 50.0, "ISSUE floor: at least 50 ms RTT");
                assert!(loss_rate > 0.0, "ISSUE floor: nonzero loss");
            }
            ref t => panic!("expected a WAN topology, got {t:?}"),
        }
        assert!(s.pacing);
    }

    #[test]
    fn quick_wan_completes_for_every_protocol_paced_and_unpaced() {
        let t = wan(Scale::Quick);
        assert_eq!(t.rows.len(), 2 * WAN_PROTOCOLS.len());
        for row in &t.rows {
            let flows: usize = row[2].parse().unwrap();
            let completed: usize = row[3].parse().unwrap();
            assert_eq!(flows, 48);
            // Long-haul loss is rare (1e-4); essentially everything finishes.
            assert!(
                completed * 10 >= flows * 9,
                "{}/{} completed for {} pacing={}",
                completed,
                flows,
                row[0],
                row[1]
            );
        }
    }
}
