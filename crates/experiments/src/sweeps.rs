//! Pre-built scenario grids for the `sweep` CLI subcommand and the sweep benchmarks.
//!
//! The canonical grid is the Figure 5a ladder — protocol × deadline × arrival-rate on
//! the VL2-like workload — expressed as one flat [`Sweep`] so the runner can fan it
//! across worker threads. Unlike [`crate::fig5::fig5a`] (which walks each rate ladder
//! sequentially and stops at the first miss), the grid runs every point, which is what
//! makes it embarrassingly parallel and lets one call answer "who supports what rate"
//! for the whole protocol set.

use pdq_scenario::{ReplicatedSummary, RunSummary, SummaryStats, Sweep};

use crate::common::{fmt, Table};
use crate::fig3::Scale;
use crate::fig5::{fig5a_axes, fig5a_scenario};

/// The base scenario custom CLI grids expand over when no spec file is named: the
/// fig5a cell at the scale's first deadline and first arrival rate. Its Poisson
/// workload has a load knob (the arrival rate), so all five [`GridBuilder`]
/// axes — protocols, seeds, loads, sizes, deadlines — apply to it.
pub fn fig5a_base(scale: Scale) -> pdq_scenario::Scenario {
    let (deadlines, rates, duration) = fig5a_axes(scale);
    fig5a_scenario(rates[0], deadlines[0], duration)
}

/// The Figure 5a protocol × deadline × rate grid at the given scale.
pub fn fig5a_grid(scale: Scale) -> Sweep {
    let (deadlines, rates, duration) = fig5a_axes(scale);
    let protocols = scale.protocols();
    let mut scenarios = Vec::new();
    for p in &protocols {
        for &dl in &deadlines {
            for &rate in &rates {
                scenarios.push(fig5a_scenario(rate, dl, duration).protocol(*p));
            }
        }
    }
    Sweep::new(scenarios)
}

/// Render sweep results as a table: one row per grid point, in sweep order. When any
/// result carries coflow metrics, coflow count and mean CCT columns are appended
/// (coflow-free tables keep their historical shape byte for byte).
pub fn sweep_table(title: &str, results: &[RunSummary]) -> Table {
    let with_coflows = results.iter().any(|r| r.coflows > 0);
    let mut columns = vec![
        "scenario",
        "protocol",
        "flows",
        "completed",
        "app throughput",
        "mean FCT [ms]",
    ];
    if with_coflows {
        columns.extend(["coflows", "mean CCT [ms]"]);
    }
    let mut table = Table::new(title, &columns);
    for r in results {
        let mut row = vec![
            r.scenario.clone(),
            r.protocol_label.clone(),
            r.flows.to_string(),
            r.completed.to_string(),
            r.application_throughput()
                .map(fmt)
                .unwrap_or_else(|| "-".into()),
            r.mean_fct_secs
                .map(|v| fmt(v * 1e3))
                .unwrap_or_else(|| "-".into()),
        ];
        if with_coflows {
            row.push(r.coflows.to_string());
            row.push(
                r.mean_cct_secs
                    .map(|v| fmt(v * 1e3))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        table.push_row(row);
    }
    table
}

/// Render replicated sweep results as a table: one row per grid cell with
/// mean ± 95%-CI statistics across the cell's seeds.
pub fn replicated_table(title: &str, results: &[ReplicatedSummary]) -> Table {
    let fmt_stats =
        |s: Option<SummaryStats>| s.map(|s| s.to_string()).unwrap_or_else(|| "-".into());
    let mut table = Table::new(
        title,
        &[
            "scenario",
            "protocol",
            "seeds",
            "app throughput (mean ± 95% CI)",
            "mean FCT [ms] (mean ± 95% CI)",
            "completed (mean ± 95% CI)",
        ],
    );
    for r in results {
        table.push_row(vec![
            r.scenario.clone(),
            r.protocol_label.clone(),
            r.runs.len().to_string(),
            fmt_stats(r.application_throughput_stats()),
            fmt_stats(r.mean_fct_stats().map(|s| SummaryStats {
                mean: s.mean * 1e3,
                stddev: s.stddev * 1e3,
                ci95: s.ci95 * 1e3,
                ..s
            })),
            fmt_stats(r.completed_stats()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::registry;

    #[test]
    fn quick_grid_covers_protocols_times_rates() {
        let sweep = fig5a_grid(Scale::Quick);
        // 4 quick protocols × 1 deadline × 3 rates.
        assert_eq!(sweep.len(), 12);
        // Every scenario resolves against the default registry.
        for s in &sweep.scenarios {
            assert!(registry().resolve(&s.protocol).is_ok(), "{}", s.protocol);
        }
    }

    #[test]
    fn replicated_sweep_renders_stats_per_cell() {
        let mut sweep = fig5a_grid(Scale::Quick);
        sweep.scenarios.truncate(2);
        let k = std::num::NonZeroUsize::new(3).unwrap();
        let cells = sweep.run_replicated(registry(), 2, k).unwrap();
        assert_eq!(cells.len(), 2);
        let table = replicated_table("replicated", &cells);
        assert_eq!(table.rows.len(), 2);
        // Each row reports the replicate count and a "mean ± ci" cell.
        assert_eq!(table.rows[0][2], "3");
        assert!(table.rows[0][4].contains('±'), "{:?}", table.rows[0]);
    }

    #[test]
    fn sweep_results_are_thread_count_independent() {
        // A tiny sub-grid (PDQ only) run on 1 and 3 threads must agree exactly.
        let mut sweep = fig5a_grid(Scale::Quick);
        sweep.scenarios.truncate(3);
        let one = sweep.run(registry(), 1).unwrap();
        let many = sweep.run(registry(), 3).unwrap();
        assert_eq!(one.len(), many.len());
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }
}
