//! Engine-scale benchmark scenario: many flows on a fat-tree, packet level.
//!
//! This is not a paper figure — it exists to exercise and measure the simulator's hot
//! path (dense id slabs, zero-clone forwarding, slim events) at flow counts the figure
//! experiments never reach. At [`Scale::Large`] it runs ≥10k flows, the regime needed
//! for configuration sweeps over large topologies; `Quick` runs a few hundred flows so
//! the scenario stays cheap enough for the test suite and the Criterion smoke bench.
//! Reported wall-clock times feed `BENCH_engine.json`.

use std::time::Instant;

use pdq::PdqVariant;
use pdq_netsim::{FlowSpec, SimTime};
use pdq_topology::fattree::fat_tree_with_at_least;
use pdq_workloads::SizeDist;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::{fmt, run_packet_level, Protocol, Table};
use crate::fig3::Scale;

/// Number of flows the scenario injects at each scale.
pub fn flow_count(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 300,
        Scale::Paper => 2_000,
        Scale::Large => 10_000,
    }
}

/// Generate the scenario's flows: random distinct host pairs on `topo`, small flows
/// (mean 30 KB) with arrivals spread uniformly over `spread` so the engine sees both
/// churn (arrivals/completions) and steady-state forwarding.
fn scenario_flows(
    hosts: &[pdq_netsim::NodeId],
    n_flows: usize,
    spread: SimTime,
    rng: &mut SmallRng,
) -> Vec<FlowSpec> {
    let sizes = SizeDist::UniformMean(30_000);
    let mut flows = Vec::with_capacity(n_flows);
    for i in 0..n_flows {
        let src = hosts[rng.gen_range(0..hosts.len())];
        let mut dst = hosts[rng.gen_range(0..hosts.len())];
        while dst == src {
            dst = hosts[rng.gen_range(0..hosts.len())];
        }
        let at = SimTime::from_nanos(rng.gen_range(0..=spread.as_nanos()));
        flows
            .push(FlowSpec::new(i as u64 + 1, src, dst, sizes.sample(rng).max(1)).with_arrival(at));
    }
    flows
}

/// The engine-scale scenario: PDQ (Full) on a fat-tree, `flow_count(scale)` flows.
///
/// Columns report the flow count, host count, completion statistics and the host
/// wall-clock seconds the packet-level run took — the engine's headline number.
pub fn engine_scale(scale: Scale) -> Table {
    let (n_hosts, spread_ms) = match scale {
        Scale::Quick => (16, 20),
        Scale::Paper => (54, 100),
        Scale::Large => (128, 200),
    };
    let topo = fat_tree_with_at_least(n_hosts, Default::default());
    let n_flows = flow_count(scale);
    let mut rng = SmallRng::seed_from_u64(1);
    let flows = scenario_flows(
        &topo.hosts,
        n_flows,
        SimTime::from_millis(spread_ms),
        &mut rng,
    );

    let mut table = Table::new(
        format!(
            "Engine scale: PDQ(Full) packet-level, {} flows on a {}-host fat-tree",
            n_flows,
            topo.host_count()
        ),
        &[
            "flows",
            "hosts",
            "completed",
            "mean FCT [ms]",
            "wall-clock [s]",
            "sim-flows/s",
        ],
    );
    let started = Instant::now();
    let res = run_packet_level(
        &topo,
        &flows,
        &Protocol::Pdq(PdqVariant::Full),
        1,
        Default::default(),
    );
    let wall = started.elapsed().as_secs_f64();
    table.push_row(vec![
        n_flows.to_string(),
        topo.host_count().to_string(),
        res.completed_count().to_string(),
        fmt(res.mean_fct_all_secs().unwrap_or(0.0) * 1e3),
        fmt(wall),
        fmt(n_flows as f64 / wall.max(1e-9)),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_engine_scale_completes_all_flows() {
        let t = engine_scale(Scale::Quick);
        assert_eq!(t.rows.len(), 1);
        let flows: usize = t.rows[0][0].parse().unwrap();
        let completed: usize = t.rows[0][2].parse().unwrap();
        assert_eq!(flows, flow_count(Scale::Quick));
        // The scenario is mildly loaded; essentially every flow must complete.
        assert!(completed * 10 >= flows * 9, "{completed}/{flows} completed");
    }

    #[test]
    fn large_scale_is_at_least_ten_thousand_flows() {
        assert!(flow_count(Scale::Large) >= 10_000);
    }
}
