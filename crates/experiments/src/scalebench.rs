//! Engine-scale benchmark scenario: many flows on a fat-tree, packet level.
//!
//! This is not a paper figure — it exists to exercise and measure the simulator's hot
//! path (dense id slabs, zero-clone forwarding, slim events) at flow counts the figure
//! experiments never reach. At [`Scale::Large`] it runs ≥10k flows, the regime needed
//! for configuration sweeps over large topologies; [`Scale::Huge`] runs ≥1M flows on a
//! ≥1024-host fat-tree, the tier the partitioned engine exists for; `Quick` runs a few
//! hundred flows so the scenario stays cheap enough for the test suite and the
//! Criterion smoke bench. The scenario honours the `--engine-threads` override
//! ([`crate::common::set_engine_threads`]), so the same table measures the sequential
//! and the sharded engine. Reported wall-clock times feed `BENCH_engine.json`.

use std::time::Instant;

use pdq_netsim::SimTime;
use pdq_scenario::{Scenario, TopologySpec, WorkloadSpec};
use pdq_workloads::SizeDist;

use crate::common::{engine_threads, fmt, run_scenario, Table, PDQ_FULL};
use crate::fig3::Scale;

/// Number of flows the scenario injects at each scale.
pub fn flow_count(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 300,
        Scale::Paper => 2_000,
        Scale::Large => 10_000,
        Scale::Huge => 1_048_576,
    }
}

/// The engine-scale [`Scenario`]: PDQ (Full) on a fat-tree with `flow_count(scale)`
/// small flows between random distinct host pairs, arrivals spread uniformly so the
/// engine sees both churn (arrivals/completions) and steady-state forwarding. The
/// `Huge` tier drops the mean flow size to 3 KB so a million flows drain within the
/// arrival spread instead of queueing without bound.
pub fn engine_scale_scenario(scale: Scale) -> Scenario {
    let (n_hosts, spread_ms, mean_bytes) = match scale {
        Scale::Quick => (16, 20, 30_000),
        Scale::Paper => (54, 100, 30_000),
        Scale::Large => (128, 200, 30_000),
        Scale::Huge => (1024, 500, 3_000),
    };
    Scenario::new("engine_scale")
        .topology(TopologySpec::FatTree { hosts: n_hosts })
        .workload(WorkloadSpec::RandomPairs {
            flows: flow_count(scale),
            spread: SimTime::from_millis(spread_ms),
            sizes: SizeDist::UniformMean(mean_bytes),
        })
        .protocol(PDQ_FULL)
        .seed(1)
}

/// The engine-scale scenario: PDQ (Full) on a fat-tree, `flow_count(scale)` flows.
///
/// Columns report the flow count, host count, completion statistics and the host
/// wall-clock seconds the packet-level run took — the engine's headline number.
pub fn engine_scale(scale: Scale) -> Table {
    let scenario = engine_scale_scenario(scale);
    let n_flows = flow_count(scale);
    let host_count = scenario.topology.build().host_count();

    let mut table = Table::new(
        format!(
            "Engine scale: PDQ(Full) packet-level, {n_flows} flows on a {host_count}-host fat-tree"
        ),
        &[
            "flows",
            "hosts",
            "shards",
            "completed",
            "mean FCT [ms]",
            "wall-clock [s]",
            "sim-flows/s",
        ],
    );
    let started = Instant::now();
    let res = run_scenario(&scenario);
    let wall = started.elapsed().as_secs_f64();
    // Scheduler telemetry on stderr (stdout tables are byte-compared in CI; this
    // line, like the wall-clock column, is a per-run measurement).
    if let Some(r) = res.results.packet() {
        let q = &r.queue;
        eprintln!(
            "engine_scale: event queue pushes={} pops={} peak_pending={} \
             overflow_migrations={} buckets_sorted={}",
            q.pushes, q.pops, q.peak_pending, q.overflow_migrations, q.buckets_sorted
        );
    }
    table.push_row(vec![
        n_flows.to_string(),
        host_count.to_string(),
        engine_threads().to_string(),
        res.completed.to_string(),
        fmt(res.mean_fct_secs.unwrap_or(0.0) * 1e3),
        fmt(wall),
        fmt(n_flows as f64 / wall.max(1e-9)),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_engine_scale_completes_all_flows() {
        let t = engine_scale(Scale::Quick);
        assert_eq!(t.rows.len(), 1);
        let flows: usize = t.rows[0][0].parse().unwrap();
        let completed: usize = t.rows[0][3].parse().unwrap();
        assert_eq!(flows, flow_count(Scale::Quick));
        // The scenario is mildly loaded; essentially every flow must complete.
        assert!(completed * 10 >= flows * 9, "{completed}/{flows} completed");
    }

    #[test]
    fn large_scale_is_at_least_ten_thousand_flows() {
        assert!(flow_count(Scale::Large) >= 10_000);
    }

    #[test]
    fn huge_scale_hits_the_partitioned_engine_targets() {
        // The tier the sharded engine exists for: >= 1024 hosts, >= 1M flows.
        assert!(flow_count(Scale::Huge) >= 1_000_000);
        let scenario = engine_scale_scenario(Scale::Huge);
        assert!(scenario.topology.build().host_count() >= 1024);
    }
}
