//! Figure 8: scaling to large topologies (Fat-tree, BCube, Jellyfish) with the
//! flow-level simulator, cross-validated against the packet-level simulator at the
//! smallest size. Also Figure 8e: the per-flow CDF of RCP-FCT / PDQ-FCT.
//!
//! Both fidelity levels run through the same [`Scenario`] API: the flow-level runs
//! are `backend = flow` scenarios (resolved to the §5.5 model via the protocol
//! registry), the packet-level cross-checks are the default `backend = packet`.

use pdq_netsim::SimTime;
use pdq_scenario::{Scenario, SimBackend, TopologySpec, WorkloadSpec};
use pdq_topology::Topology;
use pdq_workloads::{DeadlineDist, Pattern, SizeDist};

use crate::common::{fmt, fmt_opt, run_scenario, Table, PDQ_FULL};
use crate::fig3::Scale;

/// The flow-level model's historical time horizon (`FlowLevelConfig::max_time`).
pub(crate) const FLOW_LEVEL_STOP_AT: SimTime = SimTime::from_secs(60);

/// Which topology family to scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleTopology {
    /// Fat-tree (Figure 8a/8b).
    FatTree,
    /// BCube with 4-port switches (Figure 8c).
    BCube,
    /// Jellyfish, 24-port switches at a 2:1 network:server port ratio (Figure 8d).
    Jellyfish,
}

impl ScaleTopology {
    fn spec(&self, n_hosts: usize) -> TopologySpec {
        match self {
            ScaleTopology::FatTree => TopologySpec::FatTree { hosts: n_hosts },
            ScaleTopology::BCube => TopologySpec::BCubeHosts {
                hosts: n_hosts,
                n: 4,
            },
            ScaleTopology::Jellyfish => TopologySpec::Jellyfish {
                hosts: n_hosts,
                seed: 7,
            },
        }
    }
    fn build(&self, n_hosts: usize) -> Topology {
        self.spec(n_hosts).build()
    }
    fn label(&self) -> &'static str {
        match self {
            ScaleTopology::FatTree => "fat-tree",
            ScaleTopology::BCube => "BCube",
            ScaleTopology::Jellyfish => "Jellyfish",
        }
    }
}

fn permutation_spec(flows_per_host: usize, deadline: bool) -> WorkloadSpec {
    WorkloadSpec::Pattern {
        pattern: Pattern::RandomPermutation,
        sizes: if deadline {
            SizeDist::query()
        } else {
            SizeDist::UniformMean(100_000)
        },
        deadlines: if deadline {
            DeadlineDist::paper_default()
        } else {
            DeadlineDist::None
        },
        flows_per_pair: flows_per_host,
    }
}

/// A `backend = flow` scenario over `topology` at `n_hosts` under random
/// permutation traffic — the Figure 8 flow-level setup.
fn flow_scenario(
    name: &str,
    topology: ScaleTopology,
    n_hosts: usize,
    flows_per_host: usize,
    deadline: bool,
    seed: u64,
) -> Scenario {
    Scenario::new(name)
        .backend(SimBackend::Flow)
        .topology(topology.spec(n_hosts))
        .workload(permutation_spec(flows_per_host, deadline))
        .seed(seed)
        .stop_at(FLOW_LEVEL_STOP_AT)
}

/// Figure 8b/8c/8d: mean FCT [ms] vs network size under random permutation traffic with
/// deadline-unconstrained flows, comparing PDQ and RCP/D3 flow-level models; the
/// smallest size is cross-checked against the packet-level simulator.
pub fn fig8_fct_vs_size(topology: ScaleTopology, scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![16, 64],
        Scale::Paper | Scale::Large | Scale::Huge => vec![16, 64, 128, 256, 512],
    };
    let flows_per_host = match scale {
        Scale::Quick => 2,
        Scale::Paper | Scale::Large | Scale::Huge => 10,
    };
    let mut table = Table::new(
        format!(
            "Figure 8 ({}): mean FCT [ms] vs network size (random permutation, no deadlines)",
            topology.label()
        ),
        &[
            "servers",
            "PDQ (flow level)",
            "RCP/D3 (flow level)",
            "PDQ (packet level)",
            "RCP (packet level)",
        ],
    );
    for (idx, &n) in sizes.iter().enumerate() {
        let base = flow_scenario("fig8-flow", topology, n, flows_per_host, false, 3);
        let pdq_fl = run_scenario(&base.clone().protocol(PDQ_FULL)).mean_fct_secs;
        let rcp_fl = run_scenario(&base.clone().protocol("rcp")).mean_fct_secs;
        // Packet-level cross-check only at the smallest size (it does not scale).
        let (pdq_pkt, rcp_pkt) = if idx == 0 {
            let base = Scenario::new("fig8-pkt")
                .topology(topology.spec(n))
                .workload(permutation_spec(flows_per_host, false))
                .seed(3);
            let p = run_scenario(&base.clone().protocol(PDQ_FULL)).mean_fct_secs;
            let r = run_scenario(&base.protocol("rcp")).mean_fct_secs;
            (p, r)
        } else {
            (None, None)
        };
        table.push_row(vec![
            topology.build(n).host_count().to_string(),
            fmt_opt(pdq_fl.map(|v| v * 1e3)),
            fmt_opt(rcp_fl.map(|v| v * 1e3)),
            fmt_opt(pdq_pkt.map(|v| v * 1e3)),
            fmt_opt(rcp_pkt.map(|v| v * 1e3)),
        ]);
    }
    table
}

/// Figure 8a: number of deadline-constrained flows (per the whole network) supported at
/// 99% application throughput vs network size, fat-tree, flow-level.
pub fn fig8a(scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![16, 64],
        Scale::Paper | Scale::Large | Scale::Huge => vec![16, 64, 128, 256, 512],
    };
    let mut table = Table::new(
        "Figure 8a: flows at 99% application throughput vs network size (fat-tree, deadlines, flow level)",
        &["servers", "PDQ", "D3", "RCP"],
    );
    for &n in &sizes {
        let hosts = ScaleTopology::FatTree.build(n).host_count();
        let mut row = vec![hosts.to_string()];
        for proto in [PDQ_FULL, "d3", "rcp"] {
            let supported = crate::common::max_supported(8, 0.99, |flows_per_host| {
                let s = flow_scenario("fig8a", ScaleTopology::FatTree, n, flows_per_host, true, 5)
                    .protocol(proto);
                run_scenario(&s).application_throughput().unwrap_or(1.0)
            });
            row.push((supported * hosts).to_string());
        }
        table.push_row(row);
    }
    table
}

/// Figure 8e: CDF of the per-flow ratio RCP-FCT / PDQ-FCT on a ~128-server topology.
/// Returns selected percentiles of the ratio distribution for each topology family.
pub fn fig8e(scale: Scale) -> Table {
    let n_hosts = match scale {
        Scale::Quick => 16,
        Scale::Paper | Scale::Large | Scale::Huge => 128,
    };
    let topologies = match scale {
        Scale::Quick => vec![ScaleTopology::FatTree],
        Scale::Paper | Scale::Large | Scale::Huge => vec![
            ScaleTopology::FatTree,
            ScaleTopology::BCube,
            ScaleTopology::Jellyfish,
        ],
    };
    let mut table = Table::new(
        "Figure 8e: distribution of per-flow RCP FCT / PDQ FCT (flow level)",
        &[
            "topology",
            "p10",
            "p25",
            "p50",
            "p75",
            "p90",
            "fraction of flows with ratio >= 2",
            "fraction of flows slower under PDQ",
        ],
    );
    for t in topologies {
        let base = flow_scenario("fig8e", t, n_hosts, 3, false, 9);
        let pdq = run_scenario(&base.clone().protocol(PDQ_FULL));
        let rcp = run_scenario(&base.protocol("rcp"));
        let mut ratios: Vec<f64> = pdq
            .flow()
            .flows
            .keys()
            .filter_map(|&id| {
                let p = pdq.flow().fct_of(id)?;
                let r = rcp.flow().fct_of(id)?;
                Some(r / p.max(1e-9))
            })
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| -> f64 {
            if ratios.is_empty() {
                return f64::NAN;
            }
            let idx = ((p / 100.0) * (ratios.len() as f64 - 1.0)).round() as usize;
            ratios[idx]
        };
        let frac_ge_2 = ratios.iter().filter(|&&r| r >= 2.0).count() as f64 / ratios.len() as f64;
        let frac_worse = ratios.iter().filter(|&&r| r < 1.0).count() as f64 / ratios.len() as f64;
        table.push_row(vec![
            t.label().to_string(),
            fmt(pct(10.0)),
            fmt(pct(25.0)),
            fmt(pct(50.0)),
            fmt(pct(75.0)),
            fmt(pct(90.0)),
            fmt(frac_ge_2),
            fmt(frac_worse),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_flowsim::{run_flow_level, FlowLevelConfig, FlowProtocol};

    #[test]
    fn fig8e_quick_pdq_wins_for_most_flows() {
        let t = fig8e(Scale::Quick);
        let row = &t.rows[0];
        let median: f64 = row[3].parse().unwrap();
        let frac_worse: f64 = row[7].parse().unwrap();
        assert!(
            median >= 1.0,
            "median RCP/PDQ ratio should favour PDQ: {median}"
        );
        assert!(
            frac_worse < 0.5,
            "only a minority of flows may be slower under PDQ: {frac_worse}"
        );
    }

    #[test]
    fn fig8_fct_quick_flow_level_tracks_packet_level() {
        let t = fig8_fct_vs_size(ScaleTopology::FatTree, Scale::Quick);
        let row = &t.rows[0];
        let fl: f64 = row[1].parse().unwrap();
        let pkt: f64 = row[3].parse().unwrap();
        // The two simulators should agree within a factor of two at small scale
        // (the paper's Figure 8 shows close agreement).
        assert!(fl > 0.0 && pkt > 0.0);
        let ratio = (fl / pkt).max(pkt / fl);
        assert!(ratio < 2.5, "flow-level {fl} ms vs packet-level {pkt} ms");
    }

    /// The scenario-routed flow backend must be bit-identical to calling
    /// `pdq_flowsim::run_flow_level` directly with the historical config — the
    /// guard for the "byte-identical tables" acceptance criterion.
    #[test]
    fn flow_backend_matches_direct_flowsim_invocation() {
        let scenario =
            flow_scenario("parity", ScaleTopology::FatTree, 16, 2, true, 5).protocol(PDQ_FULL);
        let summary = run_scenario(&scenario);

        let topo = scenario.topology.build();
        let flows = scenario.workload.generate(&topo, scenario.seed);
        let direct = run_flow_level(
            &topo,
            &flows,
            &FlowLevelConfig::for_protocol(FlowProtocol::Pdq),
            scenario.seed,
        );
        // Per-flow records are bit-identical; the aggregate means may differ in the
        // last ulp because summation follows HashMap iteration order.
        assert_eq!(summary.flow().flows.len(), direct.flows.len());
        for (id, rec) in &direct.flows {
            let ported = &summary.flow().flows[id];
            assert_eq!(ported.completed_at, rec.completed_at, "{id:?}");
            assert_eq!(ported.terminated, rec.terminated, "{id:?}");
        }
        let close = |a: Option<f64>, b: Option<f64>| match (a, b) {
            (Some(a), Some(b)) => (a - b).abs() <= 1e-12 * b.abs(),
            (a, b) => a == b,
        };
        assert!(close(summary.mean_fct_secs, direct.mean_fct_all_secs()));
        assert!(close(summary.max_fct_secs, direct.max_fct_secs()));
        assert_eq!(
            summary.application_throughput(),
            direct.application_throughput()
        );
        assert_eq!(summary.completed, direct.completed_count());
    }
}
