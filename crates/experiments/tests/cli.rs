//! End-to-end tests of the `pdq-experiments` binary: backend-aware `list`
//! grouping, `run-spec` on a flow-backend spec, and the exit-2 contract for
//! protocol/backend pairs the registry cannot satisfy.

use std::path::PathBuf;
use std::process::Command;

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pdq-experiments"))
}

fn workspace_file(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

#[test]
fn list_groups_protocol_families_by_backend() {
    let out = binary().arg("list").output().expect("spawn list");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let dual = stdout
        .find("protocols (packet + flow backends):")
        .unwrap_or_else(|| panic!("missing dual-backend group:\n{stdout}"));
    let packet_only = stdout
        .find("protocols (packet backend only):")
        .unwrap_or_else(|| panic!("missing packet-only group:\n{stdout}"));
    assert!(dual < packet_only, "dual-backend group prints first");
    let dual_group = &stdout[dual..packet_only];
    for family in ["pdq", "rcp", "d3"] {
        assert!(
            dual_group.contains(family),
            "{family} not in:\n{dual_group}"
        );
    }
    let packet_group = &stdout[packet_only..];
    for family in ["tcp", "mpdq"] {
        assert!(
            packet_group.contains(family),
            "{family} not in:\n{packet_group}"
        );
    }
    assert!(!packet_group.contains("rcp"));
}

#[test]
fn run_spec_executes_a_flow_backend_spec() {
    let out = binary()
        .arg("run-spec")
        .arg(workspace_file("specs/fig8a_flow.scn"))
        .output()
        .expect("spawn run-spec");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("fig8a-flow"), "{stdout}");
    assert!(stdout.contains("PDQ(Full)"), "{stdout}");
}

#[test]
fn run_spec_exits_2_with_the_supported_list_on_a_backend_mismatch() {
    // TCP has no flow-level model; the run must fail with exit code 2 and name
    // the families that do support the flow backend.
    let dir = std::env::temp_dir().join(format!("pdq-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("tcp_flow.scn");
    std::fs::write(
        &spec,
        "scenario = bad\n\
         protocol = tcp\n\
         backend = flow\n\
         seed = 1\n\
         stop_at_ns = 1000000000\n\
         topology = paper_tree\n\
         workload = query_aggregation\n\
         workload.flows = 2\n\
         workload.sizes = fixed:1000\n\
         workload.deadlines = none\n",
    )
    .unwrap();
    let out = binary().arg("run-spec").arg(&spec).output().expect("spawn");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.status.code(), Some(2), "wrong exit code: {out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("does not support the flow backend"),
        "{stderr}"
    );
    for family in ["d3", "pdq", "rcp"] {
        assert!(stderr.contains(family), "{family} missing from: {stderr}");
    }
}

#[test]
fn sweep_replicate_reports_confidence_intervals() {
    let out = binary()
        .args(["sweep", "--quick", "--replicate", "2", "--threads", "2"])
        .output()
        .expect("spawn sweep");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("cells x 2 seeds"), "{stdout}");
    assert!(stdout.contains('±'), "{stdout}");
    // --replicate rejects zero.
    let bad = binary()
        .args(["sweep", "--replicate", "0"])
        .output()
        .expect("spawn");
    assert_eq!(bad.status.code(), Some(2));
}
