//! End-to-end tests of the `pdq-experiments` binary: backend-aware `list`
//! grouping, `run-spec` on flow- and fluid-backend specs, the custom N-axis
//! `sweep` grid flags, and the exit-2 contract for protocol/backend pairs the
//! registry cannot satisfy and for malformed axis values.

use std::path::PathBuf;
use std::process::Command;

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pdq-experiments"))
}

fn workspace_file(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// Write `content` to a throwaway spec file; returns its directory (deleted by the
/// caller) and path.
fn temp_spec(tag: &str, content: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("pdq-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join(format!("{tag}.scn"));
    std::fs::write(&spec, content).unwrap();
    (dir, spec)
}

#[test]
fn list_groups_protocol_families_by_backend() {
    let out = binary().arg("list").output().expect("spawn list");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let all_three = stdout
        .find("protocols (packet + flow + fluid backends):")
        .unwrap_or_else(|| panic!("missing three-backend group:\n{stdout}"));
    let packet_fluid = stdout
        .find("protocols (packet + fluid backends):")
        .unwrap_or_else(|| panic!("missing packet+fluid group:\n{stdout}"));
    let packet_only = stdout
        .find("protocols (packet backend only):")
        .unwrap_or_else(|| panic!("missing packet-only group:\n{stdout}"));
    assert!(
        all_three < packet_fluid && packet_fluid < packet_only,
        "widest backend set prints first:\n{stdout}"
    );
    let three_group = &stdout[all_three..packet_fluid];
    for family in ["pdq", "rcp", "d3"] {
        assert!(
            three_group.contains(family),
            "{family} not in:\n{three_group}"
        );
    }
    let fluid_group = &stdout[packet_fluid..packet_only];
    assert!(fluid_group.contains("tcp"), "{fluid_group}");
    let packet_group = &stdout[packet_only..];
    assert!(packet_group.contains("mpdq"), "{packet_group}");
    assert!(!packet_group.contains("rcp"));
}

#[test]
fn run_spec_executes_a_flow_backend_spec() {
    let out = binary()
        .arg("run-spec")
        .arg(workspace_file("specs/fig8a_flow.scn"))
        .output()
        .expect("spawn run-spec");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("fig8a-flow"), "{stdout}");
    assert!(stdout.contains("PDQ(Full)"), "{stdout}");
}

#[test]
fn run_spec_executes_the_fluid_fig1_spec() {
    let out = binary()
        .arg("run-spec")
        .arg(workspace_file("specs/fig1_fluid.scn"))
        .output()
        .expect("spawn run-spec");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("fig1-fluid"), "{stdout}");
    assert!(stdout.contains("D3"), "{stdout}");
    // The committed spec is the adversarial Figure 1d arrival order: f_A misses,
    // so application throughput is 2/3.
    assert!(stdout.contains("0.667"), "{stdout}");
}

#[test]
fn run_spec_exits_2_with_the_supported_list_on_a_backend_mismatch() {
    // TCP has no flow-level model; the run must fail with exit code 2 and name
    // the families that do support the flow backend.
    let (dir, spec) = temp_spec(
        "tcp-flow",
        "scenario = bad\n\
         protocol = tcp\n\
         backend = flow\n\
         seed = 1\n\
         stop_at_ns = 1000000000\n\
         topology = paper_tree\n\
         workload = query_aggregation\n\
         workload.flows = 2\n\
         workload.sizes = fixed:1000\n\
         workload.deadlines = none\n",
    );
    let out = binary().arg("run-spec").arg(&spec).output().expect("spawn");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.status.code(), Some(2), "wrong exit code: {out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("does not support the flow backend"),
        "{stderr}"
    );
    for family in ["d3", "pdq", "rcp"] {
        assert!(stderr.contains(family), "{family} missing from: {stderr}");
    }
}

#[test]
fn run_spec_exits_2_listing_fluid_families_for_mpdq_on_fluid() {
    // M-PDQ has no fluid idealization; the error must name every family that does
    // (including tcp, which is fluid-capable despite being flow-incapable).
    let (dir, spec) = temp_spec(
        "mpdq-fluid",
        "scenario = bad\n\
         protocol = mpdq(3)\n\
         backend = fluid\n\
         seed = 1\n\
         stop_at_ns = 1000000000\n\
         topology = paper_tree\n\
         workload = query_aggregation\n\
         workload.flows = 2\n\
         workload.sizes = fixed:1000\n\
         workload.deadlines = none\n",
    );
    let out = binary().arg("run-spec").arg(&spec).output().expect("spawn");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.status.code(), Some(2), "wrong exit code: {out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("does not support the fluid backend"),
        "{stderr}"
    );
    for family in ["d3", "pdq", "rcp", "tcp"] {
        assert!(stderr.contains(family), "{family} missing from: {stderr}");
    }
}

#[test]
fn run_spec_exits_2_naming_the_unknown_key_and_the_valid_key_set() {
    // A typo'd spec key must fail with exit code 2, name the offending key, and
    // list the keys the workload does accept so the fix is obvious.
    let (dir, spec) = temp_spec(
        "typo-key",
        "scenario = bad\n\
         protocol = tcp\n\
         seed = 1\n\
         stop_at_ns = 1000000000\n\
         topology = paper_tree\n\
         workload = query_aggregation\n\
         workload.flows = 2\n\
         workload.sizes = fixed:1000\n\
         workload.deadlines = none\n\
         workload.coflows = 5\n",
    );
    let out = binary().arg("run-spec").arg(&spec).output().expect("spawn");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.status.code(), Some(2), "wrong exit code: {out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("workload.coflows"), "{stderr}");
    assert!(stderr.contains("valid keys:"), "{stderr}");
    for key in ["workload.flows", "workload.sizes", "topology", "seed"] {
        assert!(stderr.contains(key), "{key} missing from: {stderr}");
    }
}

#[test]
fn sweep_axis_flags_expand_a_custom_grid() {
    // --loads / --sizes / --deadlines over the fig5a base: 2 × 1 × 2 = 4 cells.
    let out = binary()
        .args([
            "sweep",
            "--quick",
            "--loads",
            "400,800",
            "--sizes",
            "fixed:20000",
            "--deadlines",
            "paper,none",
        ])
        .output()
        .expect("spawn sweep");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("custom grid, 4 scenarios"), "{stdout}");
    for cell in [
        "load=400/size=fixed:20000/deadline=exponential",
        "load=800/size=fixed:20000/deadline=none",
    ] {
        assert!(stdout.contains(cell), "{cell} missing from:\n{stdout}");
    }
}

#[test]
fn sweep_can_grid_over_a_spec_file_base_including_fluid() {
    // A fluid-backend base spec swept across the three fluid-capable schemes: the
    // §2.1 comparison as one sweep invocation.
    let out = binary()
        .args(["sweep", "--protocols", "tcp,pdq(full),d3"])
        .arg(workspace_file("specs/fig1_fluid.scn"))
        .output()
        .expect("spawn sweep");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("custom grid, 3 scenarios"), "{stdout}");
    for label in ["TCP", "PDQ(Full)", "D3"] {
        assert!(stdout.contains(label), "{label} missing from:\n{stdout}");
    }
}

#[test]
fn sweep_exits_2_on_empty_or_malformed_axis_values() {
    for (args, needle) in [
        (vec!["sweep", "--loads", "abc"], "bad --loads value"),
        (vec!["sweep", "--loads", ","], "non-empty comma-separated"),
        (vec!["sweep", "--seeds", "1,x"], "bad --seeds value"),
        (vec!["sweep", "--sizes", "huge:1"], "bad --sizes value"),
        (
            vec!["sweep", "--deadlines", "soon"],
            "bad --deadlines value",
        ),
        // An axis the base workload cannot express is a descriptive grid error.
        (
            vec!["sweep", "--quick", "--loads", "0.5", "--loads", "0.7"],
            "set twice",
        ),
    ] {
        let out = binary().args(&args).output().expect("spawn sweep");
        assert_eq!(out.status.code(), Some(2), "args {args:?}: {out:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains(needle), "args {args:?}: {stderr}");
    }
    // Axis flags outside sweep are rejected too — on every non-sweep subcommand,
    // not just bare experiments, so they are never silently dropped.
    for args in [
        vec!["fig1", "--seeds", "1,2"],
        vec!["list", "--loads", "5"],
        vec!["run-spec", "specs/fig1_fluid.scn", "--seeds", "1,2"],
    ] {
        let out = binary().args(&args).output().expect("spawn");
        assert_eq!(out.status.code(), Some(2), "args {args:?}: {out:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("only apply to sweep"),
            "args {args:?}: {stderr}"
        );
    }
}

/// A throwaway directory for cache tests, keyed so parallel tests never collide.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pdq-cli-cache-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sweep_second_run_is_served_entirely_from_the_cache_with_identical_output() {
    let dir = temp_dir("rerun");
    let cache = dir.join("cache");
    let jsonl = dir.join("cells.jsonl");
    let sweep_args = |extra: &[&str]| {
        let mut v = vec![
            "sweep".to_string(),
            "--quick".into(),
            "--protocols".into(),
            "rcp".into(),
            "--seeds".into(),
            "1,2".into(),
            "--cache-dir".into(),
            cache.to_str().unwrap().into(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };
    let first = binary()
        .args(sweep_args(&[]))
        .output()
        .expect("spawn first sweep");
    assert!(
        first.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    let first_err = String::from_utf8(first.stderr).unwrap();
    assert!(
        first_err.contains("(0 cache hits, 2 executed)"),
        "{first_err}"
    );
    let second = binary()
        .args(sweep_args(&["--jsonl", jsonl.to_str().unwrap()]))
        .output()
        .expect("spawn second sweep");
    assert!(second.status.success());
    let second_err = String::from_utf8(second.stderr).unwrap();
    assert!(
        second_err.contains("(2 cache hits, 0 executed)"),
        "{second_err}"
    );
    // The cached table is byte-identical to the freshly computed one.
    assert_eq!(first.stdout, second.stdout);
    // Every streamed JSONL cell on the second run came from the cache and names
    // its request fingerprint.
    let stream = std::fs::read_to_string(&jsonl).unwrap();
    let lines: Vec<&str> = stream.lines().collect();
    assert_eq!(lines.len(), 2, "{stream}");
    for line in &lines {
        assert!(line.ends_with("\"cached\":true}"), "{line}");
        assert!(line.contains("\"request_fingerprint\":\""), "{line}");
    }
    // --no-cache neither reads nor writes: everything executes again.
    let bypass = binary()
        .args(sweep_args(&["--no-cache"]))
        .output()
        .expect("spawn bypass sweep");
    assert!(bypass.status.success());
    let bypass_err = String::from_utf8(bypass.stderr).unwrap();
    assert!(
        bypass_err.contains("(0 cache hits, 2 executed)"),
        "{bypass_err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_sweep_rerun_executes_only_the_missing_cells() {
    // Warm only seed 1 — standing in for a sweep killed partway — then ask for
    // the full grid: the re-run must execute exactly the missing seed-2 cell.
    let dir = temp_dir("resume");
    let cache = dir.join("cache");
    let warm = binary()
        .args(["sweep", "--quick", "--protocols", "rcp", "--seeds", "1"])
        .args(["--cache-dir", cache.to_str().unwrap()])
        .output()
        .expect("spawn warm sweep");
    assert!(warm.status.success());
    let resumed = binary()
        .args(["sweep", "--quick", "--protocols", "rcp", "--seeds", "1,2"])
        .args(["--cache-dir", cache.to_str().unwrap()])
        .output()
        .expect("spawn resumed sweep");
    assert!(resumed.status.success());
    let resumed_err = String::from_utf8(resumed.stderr).unwrap();
    assert!(
        resumed_err.contains("(1 cache hits, 1 executed)"),
        "{resumed_err}"
    );
    // And the resumed table matches a from-scratch uncached run byte for byte.
    let fresh = binary()
        .args(["sweep", "--quick", "--protocols", "rcp", "--seeds", "1,2"])
        .output()
        .expect("spawn fresh sweep");
    assert!(fresh.status.success());
    assert_eq!(resumed.stdout, fresh.stdout);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_subcommand_reports_stats_and_clears_records() {
    let dir = temp_dir("stats");
    let cache = dir.join("cache");
    let warm = binary()
        .args(["sweep", "--quick", "--protocols", "rcp", "--seeds", "1,2"])
        .args(["--cache-dir", cache.to_str().unwrap()])
        .output()
        .expect("spawn warm sweep");
    assert!(warm.status.success());
    let stats = binary()
        .args(["cache", "stats", "--cache-dir", cache.to_str().unwrap()])
        .output()
        .expect("spawn cache stats");
    assert!(stats.status.success());
    let stdout = String::from_utf8(stats.stdout).unwrap();
    assert!(stdout.contains("2 record(s)"), "{stdout}");
    // Both cached cells ran the packet backend; the breakdown says so.
    assert!(
        stdout.contains("by backend: 2 packet, 0 flow, 0 fluid"),
        "{stdout}"
    );
    let clear = binary()
        .args(["cache", "clear", "--cache-dir", cache.to_str().unwrap()])
        .output()
        .expect("spawn cache clear");
    assert!(clear.status.success());
    let stdout = String::from_utf8(clear.stdout).unwrap();
    assert!(stdout.contains("removed 2 record(s)"), "{stdout}");
    let empty = binary()
        .args(["cache", "stats", "--cache-dir", cache.to_str().unwrap()])
        .output()
        .expect("spawn cache stats");
    let stdout = String::from_utf8(empty.stdout).unwrap();
    assert!(stdout.contains("0 record(s)"), "{stdout}");
    // An unknown action is an exit-2 usage error.
    let bad = binary()
        .args(["cache", "prune", "--cache-dir", cache.to_str().unwrap()])
        .output()
        .expect("spawn cache prune");
    assert_eq!(bad.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_flags_are_rejected_outside_sweep_and_cache() {
    for args in [
        vec!["fig1", "--cache-dir", "/tmp/nope"],
        vec!["list", "--no-cache"],
        vec!["run-spec", "specs/fig1_fluid.scn", "--jsonl", "/tmp/nope"],
    ] {
        let out = binary().args(&args).output().expect("spawn");
        assert_eq!(out.status.code(), Some(2), "args {args:?}: {out:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("only apply to sweep and cache"),
            "args {args:?}: {stderr}"
        );
    }
    // The cache subcommand takes --cache-dir but not the sweep-only flags.
    let out = binary()
        .args(["cache", "stats", "--no-cache"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("only takes --cache-dir"), "{stderr}");
}

#[test]
fn sweep_replicate_reports_confidence_intervals() {
    let out = binary()
        .args(["sweep", "--quick", "--replicate", "2", "--threads", "2"])
        .output()
        .expect("spawn sweep");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("cells x 2 seeds"), "{stdout}");
    assert!(stdout.contains('±'), "{stdout}");
    // --replicate rejects zero.
    let bad = binary()
        .args(["sweep", "--replicate", "0"])
        .output()
        .expect("spawn");
    assert_eq!(bad.status.code(), Some(2));
}
