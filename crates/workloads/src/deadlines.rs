//! Deadline distributions.
//!
//! The paper draws flow deadlines from an exponential distribution with a mean of
//! 20 ms (varied 20–60 ms in Figure 3c / Figure 5a) and imposes a 3 ms lower bound so
//! that no flow gets an unrealistically tiny deadline (§5.1).

use std::fmt;
use std::str::FromStr;

use pdq_netsim::SimTime;
use rand::rngs::SmallRng;
use rand::Rng;

/// A distribution over *relative* deadlines (durations from flow arrival).
#[derive(Clone, Debug, PartialEq)]
pub enum DeadlineDist {
    /// No deadline: flows are deadline-unconstrained.
    None,
    /// Every flow gets exactly this relative deadline.
    Fixed(SimTime),
    /// Exponential with the given mean, clamped from below at `floor`.
    Exponential {
        /// Mean relative deadline.
        mean: SimTime,
        /// Lower bound applied after sampling (the paper uses 3 ms).
        floor: SimTime,
    },
}

impl DeadlineDist {
    /// The paper's default: exponential with mean 20 ms, floored at 3 ms.
    pub fn paper_default() -> Self {
        DeadlineDist::Exponential {
            mean: SimTime::from_millis(20),
            floor: SimTime::from_millis(3),
        }
    }

    /// Exponential with the given mean in milliseconds and the paper's 3 ms floor.
    pub fn exponential_ms(mean_ms: u64) -> Self {
        DeadlineDist::Exponential {
            mean: SimTime::from_millis(mean_ms),
            floor: SimTime::from_millis(3),
        }
    }

    /// Draw one relative deadline; `None` when the distribution is [`DeadlineDist::None`].
    pub fn sample(&self, rng: &mut SmallRng) -> Option<SimTime> {
        match self {
            DeadlineDist::None => None,
            DeadlineDist::Fixed(d) => Some(*d),
            DeadlineDist::Exponential { mean, floor } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let sample = -mean.as_secs_f64() * u.ln();
                let t = SimTime::from_secs_f64(sample);
                Some(t.max(*floor))
            }
        }
    }
}

/// Canonical one-token spec form, parseable back via [`FromStr`]: `none`,
/// `fixed:<ns>`, `exponential:<mean_ns>:<floor_ns>`.
impl fmt::Display for DeadlineDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlineDist::None => write!(f, "none"),
            DeadlineDist::Fixed(d) => write!(f, "fixed:{}", d.as_nanos()),
            DeadlineDist::Exponential { mean, floor } => {
                write!(f, "exponential:{}:{}", mean.as_nanos(), floor.as_nanos())
            }
        }
    }
}

/// Parses the [`fmt::Display`] form plus the shortcut `paper` (exponential with the
/// paper's 20 ms mean and 3 ms floor).
impl FromStr for DeadlineDist {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || format!("unrecognized deadline distribution: {s:?}");
        match s {
            "none" => return Ok(DeadlineDist::None),
            "paper" => return Ok(DeadlineDist::paper_default()),
            _ => {}
        }
        let (kind, args) = s.split_once(':').ok_or_else(bad)?;
        let parse_ns = |v: &str| v.parse::<u64>().map(SimTime::from_nanos).map_err(|_| bad());
        match kind {
            "fixed" => Ok(DeadlineDist::Fixed(parse_ns(args)?)),
            "exponential" => {
                let (mean, floor) = args.split_once(':').ok_or_else(bad)?;
                Ok(DeadlineDist::Exponential {
                    mean: parse_ns(mean)?,
                    floor: parse_ns(floor)?,
                })
            }
            _ => Err(bad()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn spec_round_trip() {
        for d in [
            DeadlineDist::None,
            DeadlineDist::Fixed(SimTime::from_millis(7)),
            DeadlineDist::paper_default(),
            DeadlineDist::exponential_ms(45),
        ] {
            let text = d.to_string();
            assert_eq!(text.parse::<DeadlineDist>().expect(&text), d, "{text}");
        }
        assert_eq!(
            "paper".parse::<DeadlineDist>().unwrap(),
            DeadlineDist::paper_default()
        );
        assert!("exp".parse::<DeadlineDist>().is_err());
    }

    #[test]
    fn none_and_fixed() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(DeadlineDist::None.sample(&mut rng), None);
        assert_eq!(
            DeadlineDist::Fixed(SimTime::from_millis(7)).sample(&mut rng),
            Some(SimTime::from_millis(7))
        );
    }

    #[test]
    fn exponential_mean_and_floor() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = DeadlineDist::paper_default();
        let n = 50_000;
        let mut sum = 0.0;
        let mut at_floor = 0;
        for _ in 0..n {
            let t = d.sample(&mut rng).unwrap();
            assert!(t >= SimTime::from_millis(3));
            if t == SimTime::from_millis(3) {
                at_floor += 1;
            }
            sum += t.as_secs_f64();
        }
        let mean = sum / n as f64;
        // The floor pushes the mean slightly above 20 ms; expect roughly 20-22 ms.
        assert!(mean > 0.019 && mean < 0.024, "mean = {mean}");
        // P(exp(20ms) < 3ms) = 1 - e^(-0.15) ~ 14%, so a noticeable share sits at the floor.
        let frac = at_floor as f64 / n as f64;
        assert!(frac > 0.10 && frac < 0.18, "floor fraction = {frac}");
    }

    #[test]
    fn larger_mean_gives_larger_deadlines() {
        let mut rng = SmallRng::seed_from_u64(3);
        let small = DeadlineDist::exponential_ms(20);
        let large = DeadlineDist::exponential_ms(60);
        let avg = |d: &DeadlineDist, rng: &mut SmallRng| {
            (0..20_000)
                .map(|_| d.sample(rng).unwrap().as_secs_f64())
                .sum::<f64>()
                / 20_000.0
        };
        assert!(avg(&large, &mut rng) > 2.0 * avg(&small, &mut rng));
    }
}
