//! Sending patterns (§5.3 of the paper).

use std::fmt;
use std::str::FromStr;

use pdq_netsim::NodeId;
use pdq_topology::Topology;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Which host sends to which host.
#[derive(Clone, Debug, PartialEq)]
pub enum Pattern {
    /// Query aggregation: all senders transmit to the same aggregator host.
    /// The aggregator is the last host of the topology; every other host is a sender.
    Aggregation,
    /// Stride(i): host x sends to host (x + i) mod N.
    Stride(usize),
    /// Staggered Prob(p): a host sends to a host under the same ToR with probability
    /// `p`, and to a uniformly random other host with probability `1 - p`.
    StaggeredProb(f64),
    /// Random permutation: each host sends to exactly one other host and receives from
    /// exactly one other host (no host sends to itself).
    RandomPermutation,
}

impl Pattern {
    /// A short label used in experiment output.
    pub fn label(&self) -> String {
        match self {
            Pattern::Aggregation => "Aggregation".to_string(),
            Pattern::Stride(i) => format!("Stride({i})"),
            Pattern::StaggeredProb(p) => format!("StaggeredProb({p})"),
            Pattern::RandomPermutation => "RandomPermutation".to_string(),
        }
    }

    /// Produce the (sender, receiver) pairs of this pattern over the topology's hosts.
    ///
    /// Every host appears as a sender exactly once, except for `Aggregation`, where the
    /// aggregator only receives.
    pub fn pairs(&self, topo: &Topology, rng: &mut SmallRng) -> Vec<(NodeId, NodeId)> {
        let hosts = &topo.hosts;
        let n = hosts.len();
        assert!(n >= 2, "patterns need at least two hosts");
        match self {
            Pattern::Aggregation => {
                let receiver = hosts[n - 1];
                hosts[..n - 1].iter().map(|&s| (s, receiver)).collect()
            }
            Pattern::Stride(i) => {
                assert!(*i % n != 0, "stride of 0 mod N would send to self");
                (0..n).map(|x| (hosts[x], hosts[(x + i) % n])).collect()
            }
            Pattern::StaggeredProb(p) => {
                assert!((0.0..=1.0).contains(p), "probability out of range");
                hosts
                    .iter()
                    .map(|&src| {
                        let local: Vec<NodeId> = topo
                            .rack_peers(src)
                            .into_iter()
                            .filter(|&h| h != src)
                            .collect();
                        let remote = topo.other_rack_hosts(src);
                        let dst =
                            if !local.is_empty() && (remote.is_empty() || rng.gen::<f64>() < *p) {
                                *local.choose(rng).unwrap()
                            } else {
                                *remote.choose(rng).expect("no candidate destination")
                            };
                        (src, dst)
                    })
                    .collect()
            }
            Pattern::RandomPermutation => {
                // Generate a random permutation without fixed points (a derangement) by
                // rejection sampling on the few offending positions: shuffle, then fix
                // any self-mapping by swapping with a neighbour.
                let mut dsts: Vec<NodeId> = hosts.clone();
                loop {
                    dsts.shuffle(rng);
                    if hosts.iter().zip(&dsts).all(|(a, b)| a != b) {
                        break;
                    }
                }
                hosts.iter().copied().zip(dsts).collect()
            }
        }
    }
}

/// Canonical one-token spec form, parseable back via [`FromStr`]: `aggregation`,
/// `stride:<i>`, `staggered:<p>`, `random_permutation`.
impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Aggregation => write!(f, "aggregation"),
            Pattern::Stride(i) => write!(f, "stride:{i}"),
            Pattern::StaggeredProb(p) => write!(f, "staggered:{p}"),
            Pattern::RandomPermutation => write!(f, "random_permutation"),
        }
    }
}

/// Parses the [`fmt::Display`] form.
impl FromStr for Pattern {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || format!("unrecognized pattern: {s:?}");
        match s {
            "aggregation" => return Ok(Pattern::Aggregation),
            "random_permutation" => return Ok(Pattern::RandomPermutation),
            _ => {}
        }
        let (kind, args) = s.split_once(':').ok_or_else(bad)?;
        match kind {
            "stride" => Ok(Pattern::Stride(args.parse().map_err(|_| bad())?)),
            "staggered" => Ok(Pattern::StaggeredProb(args.parse().map_err(|_| bad())?)),
            _ => Err(bad()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::LinkParams;
    use pdq_topology::single_rooted_tree;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn topo() -> Topology {
        single_rooted_tree(4, 3, LinkParams::default(), LinkParams::default())
    }

    #[test]
    fn spec_round_trip() {
        for p in [
            Pattern::Aggregation,
            Pattern::Stride(6),
            Pattern::StaggeredProb(0.7),
            Pattern::RandomPermutation,
        ] {
            let text = p.to_string();
            assert_eq!(text.parse::<Pattern>().expect(&text), p, "{text}");
        }
        assert!("spiral".parse::<Pattern>().is_err());
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn aggregation_targets_one_receiver() {
        let t = topo();
        let pairs = Pattern::Aggregation.pairs(&t, &mut rng());
        assert_eq!(pairs.len(), 11);
        let receiver = t.hosts[11];
        assert!(pairs.iter().all(|&(s, d)| d == receiver && s != receiver));
    }

    #[test]
    fn stride_wraps_around() {
        let t = topo();
        let pairs = Pattern::Stride(1).pairs(&t, &mut rng());
        assert_eq!(pairs.len(), 12);
        assert_eq!(pairs[11], (t.hosts[11], t.hosts[0]));
        let pairs = Pattern::Stride(6).pairs(&t, &mut rng());
        assert_eq!(pairs[0], (t.hosts[0], t.hosts[6]));
    }

    #[test]
    fn staggered_prob_one_stays_local() {
        let t = topo();
        let pairs = Pattern::StaggeredProb(1.0).pairs(&t, &mut rng());
        for (s, d) in pairs {
            assert_ne!(s, d);
            assert_eq!(t.rack_of[&s], t.rack_of[&d], "p=1.0 must stay in-rack");
        }
    }

    #[test]
    fn staggered_prob_zero_goes_remote() {
        let t = topo();
        let pairs = Pattern::StaggeredProb(0.0).pairs(&t, &mut rng());
        for (s, d) in pairs {
            assert_ne!(t.rack_of[&s], t.rack_of[&d], "p=0.0 must leave the rack");
        }
    }

    #[test]
    fn staggered_prob_mid_mixes() {
        let t = topo();
        let mut r = rng();
        let mut local = 0;
        let mut total = 0;
        for _ in 0..200 {
            for (s, d) in Pattern::StaggeredProb(0.7).pairs(&t, &mut r) {
                total += 1;
                if t.rack_of[&s] == t.rack_of[&d] {
                    local += 1;
                }
            }
        }
        let frac = local as f64 / total as f64;
        assert!((frac - 0.7).abs() < 0.05, "local fraction = {frac}");
    }

    #[test]
    fn random_permutation_is_one_to_one_without_self() {
        let t = topo();
        let mut r = rng();
        for _ in 0..50 {
            let pairs = Pattern::RandomPermutation.pairs(&t, &mut r);
            assert_eq!(pairs.len(), 12);
            let mut recv_count: HashMap<NodeId, usize> = HashMap::new();
            for (s, d) in &pairs {
                assert_ne!(s, d);
                *recv_count.entry(*d).or_default() += 1;
            }
            assert!(recv_count.values().all(|&c| c == 1));
            assert_eq!(recv_count.len(), 12);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Pattern::Stride(3).label(), "Stride(3)");
        assert_eq!(Pattern::Aggregation.label(), "Aggregation");
    }
}
