//! # pdq-workloads
//!
//! Workload generation for the PDQ (SIGCOMM 2012) reproduction: flow-size
//! distributions, deadline distributions, sending patterns and arrival processes,
//! matching the paper's evaluation setup (§5.1–§5.3):
//!
//! * **Deadline-constrained flows** — sizes uniform in \[2 KB, 198 KB\], deadlines
//!   exponential with a configurable mean (20–60 ms) and a 3 ms floor.
//! * **Deadline-unconstrained flows** — sizes uniform around a mean of 100 KB or 1 MB.
//! * **Realistic mixes** — a VL2-like distribution (most flows are mice, most bytes
//!   come from elephants) and a university-data-center-like (EDU1) distribution.
//!   The original traces are not public; these synthetic equivalents reproduce the
//!   qualitative shape the experiments depend on (see DESIGN.md).
//! * **Sending patterns** — query aggregation, Stride(i), Staggered Prob(p) and random
//!   permutation (§5.3).
//! * **Arrival processes** — synchronized arrival (query aggregation / incast) and
//!   Poisson flow arrivals for the throughput-vs-load experiments (Figure 5a).
//! * **Coflows** — groups of flows with collective completion semantics (shuffle /
//!   aggregation stages with optional per-coflow deadlines), tagged onto the emitted
//!   `FlowSpec`s so coflow-aware schedulers and CCT metrics can recover membership.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coflow;
pub mod deadlines;
pub mod generator;
pub mod pattern;
pub mod sizes;

pub use coflow::{coflow_flows, coflow_set, Coflow, CoflowConfig};
pub use deadlines::DeadlineDist;
pub use generator::{
    pattern_flows, poisson_flows, query_aggregation_flows, PoissonConfig, WorkloadConfig,
};
pub use pattern::Pattern;
pub use sizes::SizeDist;
