//! Flow-size distributions.

use std::fmt;
use std::str::FromStr;

use rand::rngs::SmallRng;
use rand::Rng;

/// A distribution over flow sizes in bytes.
#[derive(Clone, Debug, PartialEq)]
pub enum SizeDist {
    /// Every flow has exactly this size.
    Fixed(u64),
    /// Uniform over `[min, max]` bytes. The paper's deadline-constrained ("query")
    /// workload is `Uniform(2 KB, 198 KB)`.
    Uniform {
        /// Minimum size in bytes.
        min: u64,
        /// Maximum size in bytes.
        max: u64,
    },
    /// Uniform over `[mean/2, 3*mean/2]`, i.e. a uniform distribution with the given
    /// mean — the paper's deadline-unconstrained workload with mean 100 KB or 1 MB.
    UniformMean(u64),
    /// Bounded Pareto with the given mean and tail index (`alpha`); Figure 10 uses a
    /// tail index of 1.1. Samples are capped at `10_000 × mean` so a single elephant
    /// cannot make a run unbounded; the cap affects well under 0.1% of samples.
    Pareto {
        /// Mean flow size in bytes.
        mean: u64,
        /// Tail index (shape parameter), > 1.
        alpha: f64,
    },
    /// Piecewise-linear CDF in log-size space: `(bytes, cumulative probability)` points
    /// in increasing order, with the last point at probability 1.0.
    Empirical(Vec<(u64, f64)>),
}

impl SizeDist {
    /// The paper's deadline-constrained query workload: uniform \[2 KB, 198 KB\].
    pub fn query() -> Self {
        SizeDist::Uniform {
            min: 2_000,
            max: 198_000,
        }
    }

    /// A VL2-like data-center mix (Greenberg et al. [12]): most flows are mice of a few
    /// kilobytes, while most of the bytes are carried by multi-megabyte elephants.
    /// Synthetic stand-in for the unpublished production trace (see DESIGN.md).
    pub fn vl2_like() -> Self {
        SizeDist::Empirical(vec![
            (1_000, 0.0),
            (10_000, 0.50),
            (40_000, 0.70),
            (100_000, 0.80),
            (1_000_000, 0.95),
            (10_000_000, 0.99),
            (30_000_000, 1.0),
        ])
    }

    /// An EDU1-like university data-center mix (Benson et al. [6]): dominated by small
    /// transfers of a few kilobytes with a modest tail below ~2 MB.
    /// Synthetic stand-in for the Bro-processed packet trace (see DESIGN.md).
    pub fn edu1_like() -> Self {
        SizeDist::Empirical(vec![
            (500, 0.0),
            (5_000, 0.70),
            (20_000, 0.90),
            (200_000, 0.98),
            (2_000_000, 1.0),
        ])
    }

    /// Draw one flow size.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match self {
            SizeDist::Fixed(s) => *s,
            SizeDist::Uniform { min, max } => {
                assert!(min <= max);
                rng.gen_range(*min..=*max)
            }
            SizeDist::UniformMean(mean) => {
                let lo = *mean / 2;
                let hi = mean + mean / 2;
                rng.gen_range(lo..=hi)
            }
            SizeDist::Pareto { mean, alpha } => {
                assert!(*alpha > 1.0, "Pareto mean is finite only for alpha > 1");
                let xm = *mean as f64 * (alpha - 1.0) / alpha;
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let sample = xm / u.powf(1.0 / alpha);
                let cap = *mean as f64 * 10_000.0;
                sample.min(cap).max(1.0) as u64
            }
            SizeDist::Empirical(points) => {
                assert!(points.len() >= 2, "empirical CDF needs at least two points");
                let u: f64 = rng.gen();
                // Find the segment containing u and interpolate in log-size space.
                for w in points.windows(2) {
                    let (s0, p0) = w[0];
                    let (s1, p1) = w[1];
                    if u <= p1 || (p1 - 1.0).abs() < 1e-12 {
                        if p1 <= p0 {
                            return s1;
                        }
                        let frac = ((u - p0) / (p1 - p0)).clamp(0.0, 1.0);
                        let log_s = (s0 as f64).ln() + frac * ((s1 as f64).ln() - (s0 as f64).ln());
                        return log_s.exp().round().max(1.0) as u64;
                    }
                }
                points.last().unwrap().0
            }
        }
    }

    /// The mean of the distribution (exact for the analytic cases, approximate for the
    /// empirical CDF where it is the mean of the piecewise log-linear interpolation's
    /// segment midpoints weighted by probability mass — good enough for load sizing).
    pub fn mean_bytes(&self) -> f64 {
        match self {
            SizeDist::Fixed(s) => *s as f64,
            SizeDist::Uniform { min, max } => (*min as f64 + *max as f64) / 2.0,
            SizeDist::UniformMean(mean) => *mean as f64,
            SizeDist::Pareto { mean, .. } => *mean as f64,
            SizeDist::Empirical(points) => {
                let mut mean = 0.0;
                for w in points.windows(2) {
                    let (s0, p0) = w[0];
                    let (s1, p1) = w[1];
                    let mid = ((s0 as f64).ln() + (s1 as f64).ln()) / 2.0;
                    mean += (p1 - p0) * mid.exp();
                }
                mean
            }
        }
    }
}

/// Canonical one-token spec form, parseable back via [`FromStr`]:
/// `fixed:<bytes>`, `uniform:<min>:<max>`, `uniform_mean:<mean>`,
/// `pareto:<mean>:<alpha>`, `empirical:<bytes>@<cdf>,...`.
impl fmt::Display for SizeDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeDist::Fixed(s) => write!(f, "fixed:{s}"),
            SizeDist::Uniform { min, max } => write!(f, "uniform:{min}:{max}"),
            SizeDist::UniformMean(mean) => write!(f, "uniform_mean:{mean}"),
            SizeDist::Pareto { mean, alpha } => write!(f, "pareto:{mean}:{alpha}"),
            SizeDist::Empirical(points) => {
                write!(f, "empirical:")?;
                for (i, (bytes, p)) in points.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{bytes}@{p}")?;
                }
                Ok(())
            }
        }
    }
}

/// Parses the [`fmt::Display`] form plus the named shortcuts `query`, `vl2` and
/// `edu1` (which map to [`SizeDist::query`], [`SizeDist::vl2_like`] and
/// [`SizeDist::edu1_like`]).
impl FromStr for SizeDist {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || format!("unrecognized size distribution: {s:?}");
        match s {
            "query" => return Ok(SizeDist::query()),
            "vl2" => return Ok(SizeDist::vl2_like()),
            "edu1" => return Ok(SizeDist::edu1_like()),
            _ => {}
        }
        let (kind, args) = s.split_once(':').ok_or_else(bad)?;
        let parse_u64 = |v: &str| v.parse::<u64>().map_err(|_| bad());
        let parse_f64 = |v: &str| v.parse::<f64>().map_err(|_| bad());
        match kind {
            "fixed" => Ok(SizeDist::Fixed(parse_u64(args)?)),
            "uniform" => {
                let (min, max) = args.split_once(':').ok_or_else(bad)?;
                Ok(SizeDist::Uniform {
                    min: parse_u64(min)?,
                    max: parse_u64(max)?,
                })
            }
            "uniform_mean" => Ok(SizeDist::UniformMean(parse_u64(args)?)),
            "pareto" => {
                let (mean, alpha) = args.split_once(':').ok_or_else(bad)?;
                Ok(SizeDist::Pareto {
                    mean: parse_u64(mean)?,
                    alpha: parse_f64(alpha)?,
                })
            }
            "empirical" => {
                let mut points = Vec::new();
                for part in args.split(',') {
                    let (bytes, p) = part.split_once('@').ok_or_else(bad)?;
                    points.push((parse_u64(bytes)?, parse_f64(p)?));
                }
                if points.len() < 2 {
                    return Err(bad());
                }
                Ok(SizeDist::Empirical(points))
            }
            _ => Err(bad()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn spec_round_trip() {
        let dists = vec![
            SizeDist::Fixed(777),
            SizeDist::query(),
            SizeDist::UniformMean(100_000),
            SizeDist::Pareto {
                mean: 100_000,
                alpha: 1.1,
            },
            SizeDist::vl2_like(),
            SizeDist::edu1_like(),
        ];
        for d in dists {
            let text = d.to_string();
            let back: SizeDist = text.parse().expect(&text);
            assert_eq!(back, d, "{text}");
        }
        // Named shortcuts parse to the same distributions.
        assert_eq!("query".parse::<SizeDist>().unwrap(), SizeDist::query());
        assert_eq!("vl2".parse::<SizeDist>().unwrap(), SizeDist::vl2_like());
        assert!("nonsense".parse::<SizeDist>().is_err());
        assert!("pareto:10".parse::<SizeDist>().is_err());
    }

    #[test]
    fn fixed_and_uniform() {
        let mut r = rng();
        assert_eq!(SizeDist::Fixed(777).sample(&mut r), 777);
        let d = SizeDist::query();
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!((2_000..=198_000).contains(&s));
        }
        assert_eq!(d.mean_bytes(), 100_000.0);
    }

    #[test]
    fn uniform_mean_brackets_mean() {
        let mut r = rng();
        let d = SizeDist::UniformMean(100_000);
        let mut sum = 0u64;
        let n = 20_000;
        for _ in 0..n {
            let s = d.sample(&mut r);
            assert!((50_000..=150_000).contains(&s));
            sum += s;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 100_000.0).abs() < 2_000.0, "mean = {mean}");
    }

    #[test]
    fn pareto_is_heavy_tailed_with_roughly_right_mean() {
        let mut r = rng();
        let d = SizeDist::Pareto {
            mean: 100_000,
            alpha: 1.1,
        };
        let n = 200_000;
        let samples: Vec<u64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        // Heavy tails converge slowly; accept a wide band around the nominal mean.
        assert!(mean > 30_000.0 && mean < 400_000.0, "mean = {mean}");
        // Median far below the mean is the signature of a heavy tail.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[n / 2] as f64;
        assert!(median < mean * 0.5, "median {median} vs mean {mean}");
    }

    #[test]
    fn empirical_respects_breakpoints() {
        let mut r = rng();
        let d = SizeDist::vl2_like();
        let n = 50_000;
        let mut below_10k = 0;
        let mut above_1m = 0;
        for _ in 0..n {
            let s = d.sample(&mut r);
            assert!((1_000..=30_000_000).contains(&s));
            if s <= 10_000 {
                below_10k += 1;
            }
            if s > 1_000_000 {
                above_1m += 1;
            }
        }
        let frac_small = below_10k as f64 / n as f64;
        let frac_big = above_1m as f64 / n as f64;
        assert!((frac_small - 0.5).abs() < 0.03, "{frac_small}");
        assert!((frac_big - 0.05).abs() < 0.02, "{frac_big}");
    }

    #[test]
    fn edu1_is_mostly_mice() {
        let mut r = rng();
        let d = SizeDist::edu1_like();
        let n = 20_000;
        let small = (0..n).filter(|_| d.sample(&mut r) <= 20_000).count();
        assert!(small as f64 / n as f64 > 0.85);
    }

    #[test]
    #[should_panic]
    fn pareto_alpha_below_one_rejected() {
        let mut r = rng();
        let _ = SizeDist::Pareto {
            mean: 1000,
            alpha: 0.9,
        }
        .sample(&mut r);
    }
}
