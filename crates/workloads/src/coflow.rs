//! Coflows: groups of flows with collective completion semantics.
//!
//! A coflow (Chowdhury & Stoica; see also "Efficient Coflow Scheduling in
//! Hybrid-Switched Data Center Networks", arXiv:2306.09713) is a set of flows that
//! belong to one application-level job — a shuffle or aggregation stage — and that
//! only matters as a unit: the job proceeds when the *last* member finishes, so the
//! metric of interest is the coflow completion time (CCT), not any individual FCT.
//!
//! This module provides the [`Coflow`] abstraction, a generator producing
//! coflow-structured aggregation traffic (Poisson coflow arrivals, every member
//! destined to the coflow's reducer host, sizes from the existing distributions,
//! optional per-coflow deadlines), and the [`CoflowTag`] stamping that lets
//! coflow-aware schedulers recover group criticality from static per-flow data —
//! membership rides on the emitted [`FlowSpec`]s, so no shared mutable state is
//! needed at schedule time and partitioned-engine determinism is preserved.

use pdq_netsim::{CoflowId, CoflowTag, FlowSpec, NodeId, SimTime};
use pdq_topology::Topology;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::deadlines::DeadlineDist;
use crate::sizes::SizeDist;

/// A group of flows with collective completion semantics: the coflow completes when
/// its last member does, and (optionally) carries one deadline for the whole group.
#[derive(Clone, Debug, PartialEq)]
pub struct Coflow {
    /// Group identity.
    pub id: CoflowId,
    /// When the coflow (and all its members) arrives.
    pub arrival: SimTime,
    /// The group's collective deadline (absolute), if any.
    pub deadline: Option<SimTime>,
    /// Member flows, already stamped with this coflow's [`CoflowTag`].
    pub members: Vec<FlowSpec>,
}

impl Coflow {
    /// Build a coflow from untagged member specs: stamps every member with the
    /// group's tag (id, bottleneck, deadline) and inherits the group deadline onto
    /// members, so flow-level schedulers see the same deadline the group carries.
    pub fn new(
        id: CoflowId,
        arrival: SimTime,
        deadline: Option<SimTime>,
        members: Vec<FlowSpec>,
    ) -> Self {
        let bottleneck_bytes = members.iter().map(|m| m.size_bytes).max().unwrap_or(0);
        let tag = CoflowTag {
            id,
            bottleneck_bytes,
            deadline,
        };
        let members = members
            .into_iter()
            .map(|mut m| {
                m.arrival = arrival;
                if m.deadline.is_none() {
                    m.deadline = deadline;
                }
                m.with_coflow(tag)
            })
            .collect();
        Coflow {
            id,
            arrival,
            deadline,
            members,
        }
    }

    /// Size in bytes of the group's largest member — the bottleneck a coflow-aware
    /// scheduler derives criticality from.
    pub fn bottleneck_bytes(&self) -> u64 {
        self.members.iter().map(|m| m.size_bytes).max().unwrap_or(0)
    }

    /// Total bytes across all members (the group's work).
    pub fn total_bytes(&self) -> u64 {
        self.members.iter().map(|m| m.size_bytes).sum()
    }

    /// The tag stamped onto every member.
    pub fn tag(&self) -> CoflowTag {
        CoflowTag {
            id: self.id,
            bottleneck_bytes: self.bottleneck_bytes(),
            deadline: self.deadline,
        }
    }
}

/// Configuration for coflow-structured aggregation traffic.
#[derive(Clone, Debug, PartialEq)]
pub struct CoflowConfig {
    /// Number of coflows to generate.
    pub coflows: usize,
    /// Member flows per coflow (the aggregation fan-in).
    pub width: usize,
    /// Coflow arrival rate (Poisson process); `<= 0` starts every coflow at time 0.
    pub rate_coflows_per_sec: f64,
    /// Member flow sizes.
    pub sizes: SizeDist,
    /// Per-coflow deadlines (relative to the coflow's arrival).
    pub deadlines: DeadlineDist,
}

/// Generate `cfg.coflows` aggregation coflows: each picks one reducer host and
/// `cfg.width` distinct sender hosts, every sender contributing one flow to the
/// reducer, all members arriving together at the coflow's (Poisson) arrival time.
/// Member flow ids are dense starting at `first_id`; coflow ids are dense starting
/// at `first_coflow_id`.
pub fn coflow_set(
    topo: &Topology,
    cfg: &CoflowConfig,
    first_id: u64,
    first_coflow_id: u64,
    rng: &mut SmallRng,
) -> Vec<Coflow> {
    let hosts = &topo.hosts;
    assert!(hosts.len() >= 2, "coflows need at least two hosts");
    let width = cfg.width.clamp(1, hosts.len() - 1);
    let mut coflows = Vec::with_capacity(cfg.coflows);
    let mut id = first_id;
    let mut t = 0.0f64;
    for k in 0..cfg.coflows {
        if cfg.rate_coflows_per_sec > 0.0 && k > 0 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / cfg.rate_coflows_per_sec;
        }
        let arrival = SimTime::from_secs_f64(t);
        let reducer = hosts[rng.gen_range(0..hosts.len())];
        let mut senders: Vec<NodeId> = hosts.iter().copied().filter(|&h| h != reducer).collect();
        senders.shuffle(rng);
        senders.truncate(width);
        let members: Vec<FlowSpec> = senders
            .iter()
            .map(|&src| {
                let size = cfg.sizes.sample(rng).max(1);
                let spec = FlowSpec::new(id, src, reducer, size);
                id += 1;
                spec
            })
            .collect();
        let deadline = cfg.deadlines.sample(rng).map(|d| arrival + d);
        coflows.push(Coflow::new(
            CoflowId(first_coflow_id + k as u64),
            arrival,
            deadline,
            members,
        ));
    }
    coflows
}

/// Flatten a coflow set into the tagged member [`FlowSpec`]s, in coflow order.
pub fn coflow_flows(coflows: &[Coflow]) -> Vec<FlowSpec> {
    coflows.iter().flat_map(|c| c.members.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::LinkParams;
    use pdq_topology::single_rooted_tree;
    use rand::SeedableRng;

    fn topo() -> Topology {
        single_rooted_tree(4, 3, LinkParams::default(), LinkParams::default())
    }

    fn cfg() -> CoflowConfig {
        CoflowConfig {
            coflows: 10,
            width: 4,
            rate_coflows_per_sec: 500.0,
            sizes: SizeDist::query(),
            deadlines: DeadlineDist::paper_default(),
        }
    }

    #[test]
    fn members_share_tag_arrival_and_deadline() {
        let t = topo();
        let mut rng = SmallRng::seed_from_u64(1);
        let coflows = coflow_set(&t, &cfg(), 0, 0, &mut rng);
        assert_eq!(coflows.len(), 10);
        for c in &coflows {
            assert_eq!(c.members.len(), 4);
            let bottleneck = c.bottleneck_bytes();
            assert!(c.members.iter().any(|m| m.size_bytes == bottleneck));
            for m in &c.members {
                let tag = m.coflow.expect("member is tagged");
                assert_eq!(tag.id, c.id);
                assert_eq!(tag.bottleneck_bytes, bottleneck);
                assert_eq!(tag.deadline, c.deadline);
                assert_eq!(m.arrival, c.arrival);
                assert_eq!(m.deadline, c.deadline, "members inherit the group deadline");
                assert_ne!(m.src, m.dst);
            }
            // Aggregation: all members converge on one reducer from distinct senders.
            let dst = c.members[0].dst;
            assert!(c.members.iter().all(|m| m.dst == dst));
            let mut srcs: Vec<u32> = c.members.iter().map(|m| m.src.0).collect();
            srcs.sort_unstable();
            srcs.dedup();
            assert_eq!(srcs.len(), 4, "senders are distinct");
        }
        // Flow and coflow ids are dense; arrivals are nondecreasing.
        let flows = coflow_flows(&coflows);
        let mut ids: Vec<u64> = flows.iter().map(|f| f.id.value()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
        for w in coflows.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
            assert_eq!(w[0].id.value() + 1, w[1].id.value());
        }
    }

    #[test]
    fn zero_rate_starts_everything_at_time_zero() {
        let t = topo();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut c = cfg();
        c.rate_coflows_per_sec = 0.0;
        c.deadlines = DeadlineDist::None;
        let coflows = coflow_set(&t, &c, 100, 5, &mut rng);
        assert!(coflows.iter().all(|c| c.arrival == SimTime::ZERO));
        assert!(coflows.iter().all(|c| c.deadline.is_none()));
        assert_eq!(coflows[0].id, CoflowId(5));
        assert_eq!(coflows[0].members[0].id.value(), 100);
    }

    #[test]
    fn generator_is_deterministic_in_the_seed() {
        let t = topo();
        let gen = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            coflow_set(&t, &cfg(), 0, 0, &mut rng)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn width_is_clamped_to_available_senders() {
        let t = topo();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut c = cfg();
        c.width = 10_000;
        let coflows = coflow_set(&t, &c, 0, 0, &mut rng);
        // 12 hosts: at most 11 senders besides the reducer.
        assert!(coflows.iter().all(|c| c.members.len() == t.hosts.len() - 1));
    }

    #[test]
    fn total_and_bottleneck_bytes() {
        let members = vec![
            FlowSpec::new(1, NodeId(0), NodeId(9), 300),
            FlowSpec::new(2, NodeId(1), NodeId(9), 700),
        ];
        let c = Coflow::new(CoflowId(1), SimTime::ZERO, None, members);
        assert_eq!(c.total_bytes(), 1_000);
        assert_eq!(c.bottleneck_bytes(), 700);
        assert_eq!(c.tag().bottleneck_bytes, 700);
    }
}
