//! Flow-set generators combining a pattern, a size distribution, a deadline
//! distribution and an arrival process into concrete [`FlowSpec`]s.

use pdq_netsim::{FlowSpec, NodeId, SimTime};
use pdq_topology::Topology;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::deadlines::DeadlineDist;
use crate::pattern::Pattern;
use crate::sizes::SizeDist;

/// Configuration for a static (all flows known up front) workload over a pattern.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Sending pattern.
    pub pattern: Pattern,
    /// Flow sizes.
    pub sizes: SizeDist,
    /// Flow deadlines (relative to arrival).
    pub deadlines: DeadlineDist,
    /// Number of flows each (sender, receiver) pair carries.
    pub flows_per_pair: usize,
    /// Arrival time of every flow (the paper's aggregation/permutation experiments
    /// start all flows simultaneously).
    pub arrival: SimTime,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            pattern: Pattern::RandomPermutation,
            sizes: SizeDist::query(),
            deadlines: DeadlineDist::None,
            flows_per_pair: 1,
            arrival: SimTime::ZERO,
        }
    }
}

/// Generate the query-aggregation workload of §5.2: `n_flows` flows all destined to the
/// aggregator (the topology's last host), assigned to the remaining hosts so that every
/// sender carries either `⌊f/n⌋` or `⌈f/n⌉` flows (footnote 6 of the paper).
///
/// Flow ids start at `first_id` and increase by one per flow.
pub fn query_aggregation_flows(
    topo: &Topology,
    n_flows: usize,
    sizes: &SizeDist,
    deadlines: &DeadlineDist,
    first_id: u64,
    rng: &mut SmallRng,
) -> Vec<FlowSpec> {
    let hosts = &topo.hosts;
    assert!(hosts.len() >= 2);
    let receiver = hosts[hosts.len() - 1];
    let mut senders: Vec<NodeId> = hosts[..hosts.len() - 1].to_vec();
    senders.shuffle(rng);
    let mut flows = Vec::with_capacity(n_flows);
    for k in 0..n_flows {
        let src = senders[k % senders.len()];
        flows.push(make_flow(
            first_id + k as u64,
            src,
            receiver,
            sizes,
            deadlines,
            SimTime::ZERO,
            rng,
        ));
    }
    flows
}

/// Generate a static workload over an arbitrary pattern: every (sender, receiver) pair
/// of the pattern carries `flows_per_pair` flows, all arriving at `cfg.arrival`.
pub fn pattern_flows(
    topo: &Topology,
    cfg: &WorkloadConfig,
    first_id: u64,
    rng: &mut SmallRng,
) -> Vec<FlowSpec> {
    let pairs = cfg.pattern.pairs(topo, rng);
    let mut flows = Vec::with_capacity(pairs.len() * cfg.flows_per_pair);
    let mut id = first_id;
    for (src, dst) in pairs {
        for _ in 0..cfg.flows_per_pair {
            flows.push(make_flow(
                id,
                src,
                dst,
                &cfg.sizes,
                &cfg.deadlines,
                cfg.arrival,
                rng,
            ));
            id += 1;
        }
    }
    flows
}

/// Configuration for a Poisson arrival workload (used by Figure 5).
#[derive(Clone, Debug)]
pub struct PoissonConfig {
    /// Aggregate flow arrival rate over the whole network, in flows per second.
    pub rate_flows_per_sec: f64,
    /// Generate arrivals over `[0, duration)`.
    pub duration: SimTime,
    /// Flow sizes.
    pub sizes: SizeDist,
    /// Deadlines applied to "short" flows (size below `short_flow_threshold_bytes`).
    pub short_deadlines: DeadlineDist,
    /// Flows with at most this many bytes are considered short / deadline-constrained
    /// (the paper uses 40 KB for the VL2-like workload).
    pub short_flow_threshold_bytes: u64,
    /// How source-destination pairs are chosen for each arrival.
    pub pattern: Pattern,
}

/// Generate a dynamic workload: flow arrivals form a Poisson process of the configured
/// aggregate rate; each arrival picks a (src, dst) pair by re-sampling the pattern
/// (for `RandomPermutation` and `StaggeredProb` this matches the paper's "random
/// permutation traffic" with ongoing arrivals). Short flows get deadlines, long flows do
/// not, mirroring §5.3.
pub fn poisson_flows(
    topo: &Topology,
    cfg: &PoissonConfig,
    first_id: u64,
    rng: &mut SmallRng,
) -> Vec<FlowSpec> {
    assert!(cfg.rate_flows_per_sec > 0.0);
    let mut flows = Vec::new();
    let mut t = 0.0f64;
    let mut id = first_id;
    let duration_s = cfg.duration.as_secs_f64();
    // Pre-draw one set of pattern pairs; re-drawn periodically to vary endpoints.
    let mut pairs = cfg.pattern.pairs(topo, rng);
    let mut used = 0usize;
    while t < duration_s {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / cfg.rate_flows_per_sec;
        if t >= duration_s {
            break;
        }
        if used >= pairs.len() {
            pairs = cfg.pattern.pairs(topo, rng);
            used = 0;
        }
        let (src, dst) = pairs[used];
        used += 1;
        let size = cfg.sizes.sample(rng);
        let arrival = SimTime::from_secs_f64(t);
        let deadline = if size <= cfg.short_flow_threshold_bytes {
            cfg.short_deadlines.sample(rng)
        } else {
            None
        };
        let mut spec = FlowSpec::new(id, src, dst, size).with_arrival(arrival);
        if let Some(d) = deadline {
            spec = spec.with_deadline(arrival + d);
        }
        flows.push(spec);
        id += 1;
    }
    flows
}

fn make_flow(
    id: u64,
    src: NodeId,
    dst: NodeId,
    sizes: &SizeDist,
    deadlines: &DeadlineDist,
    arrival: SimTime,
    rng: &mut SmallRng,
) -> FlowSpec {
    let size = sizes.sample(rng).max(1);
    let mut spec = FlowSpec::new(id, src, dst, size).with_arrival(arrival);
    if let Some(d) = deadlines.sample(rng) {
        spec = spec.with_deadline(arrival + d);
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::LinkParams;
    use pdq_topology::single_rooted_tree;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn topo() -> Topology {
        single_rooted_tree(4, 3, LinkParams::default(), LinkParams::default())
    }

    #[test]
    fn query_aggregation_balances_senders() {
        let t = topo();
        let mut rng = SmallRng::seed_from_u64(1);
        let flows = query_aggregation_flows(
            &t,
            25,
            &SizeDist::query(),
            &DeadlineDist::paper_default(),
            0,
            &mut rng,
        );
        assert_eq!(flows.len(), 25);
        let receiver = t.hosts[11];
        let mut per_sender: HashMap<NodeId, usize> = HashMap::new();
        for f in &flows {
            assert_eq!(f.dst, receiver);
            assert!(f.deadline.is_some());
            *per_sender.entry(f.src).or_default() += 1;
        }
        // 25 flows over 11 senders: each sender has 2 or 3.
        assert!(per_sender.values().all(|&c| c == 2 || c == 3));
        // Flow ids are dense starting at 0.
        let mut ids: Vec<u64> = flows.iter().map(|f| f.id.value()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn pattern_flows_respects_flows_per_pair() {
        let t = topo();
        let mut rng = SmallRng::seed_from_u64(2);
        let cfg = WorkloadConfig {
            pattern: Pattern::RandomPermutation,
            flows_per_pair: 3,
            ..Default::default()
        };
        let flows = pattern_flows(&t, &cfg, 100, &mut rng);
        assert_eq!(flows.len(), 12 * 3);
        assert!(flows.iter().all(|f| f.deadline.is_none()));
        assert!(flows.iter().all(|f| f.arrival == SimTime::ZERO));
        assert_eq!(flows[0].id.value(), 100);
    }

    #[test]
    fn poisson_flows_have_increasing_arrivals_and_short_deadlines() {
        let t = topo();
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = PoissonConfig {
            rate_flows_per_sec: 2_000.0,
            duration: SimTime::from_millis(100),
            sizes: SizeDist::vl2_like(),
            short_deadlines: DeadlineDist::paper_default(),
            short_flow_threshold_bytes: 40_000,
            pattern: Pattern::RandomPermutation,
        };
        let flows = poisson_flows(&t, &cfg, 0, &mut rng);
        // Expected ~200 arrivals in 100 ms at 2000/s.
        assert!(flows.len() > 120 && flows.len() < 300, "{}", flows.len());
        let mut last = SimTime::ZERO;
        for f in &flows {
            assert!(f.arrival >= last);
            last = f.arrival;
            assert!(f.arrival < SimTime::from_millis(100));
            if f.size_bytes <= 40_000 {
                assert!(f.deadline.is_some());
                assert!(f.deadline.unwrap() > f.arrival);
            } else {
                assert!(f.deadline.is_none());
            }
            assert_ne!(f.src, f.dst);
        }
    }

    /// Deterministic seeding: every generator must produce an identical flow set
    /// when driven by an identically seeded RNG, and a different one for a
    /// different seed — the experiments and the end-to-end determinism test all
    /// rest on this.
    #[test]
    fn generators_are_deterministic_in_the_seed() {
        let t = topo();
        let poisson_cfg = PoissonConfig {
            rate_flows_per_sec: 2_000.0,
            duration: SimTime::from_millis(50),
            sizes: SizeDist::vl2_like(),
            short_deadlines: DeadlineDist::paper_default(),
            short_flow_threshold_bytes: 40_000,
            pattern: Pattern::RandomPermutation,
        };
        let generate = |seed: u64| -> Vec<FlowSpec> {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut flows = query_aggregation_flows(
                &t,
                20,
                &SizeDist::query(),
                &DeadlineDist::paper_default(),
                0,
                &mut rng,
            );
            flows.extend(pattern_flows(
                &t,
                &WorkloadConfig::default(),
                1000,
                &mut rng,
            ));
            flows.extend(poisson_flows(&t, &poisson_cfg, 2000, &mut rng));
            flows
        };
        let key = |flows: &[FlowSpec]| -> Vec<(u64, u32, u32, u64, u64, Option<u64>)> {
            flows
                .iter()
                .map(|f| {
                    (
                        f.id.value(),
                        f.src.0,
                        f.dst.0,
                        f.size_bytes,
                        f.arrival.as_nanos(),
                        f.deadline.map(|d| d.as_nanos()),
                    )
                })
                .collect()
        };
        let a = generate(42);
        let b = generate(42);
        assert_eq!(key(&a), key(&b), "same seed must give identical flows");
        let c = generate(43);
        assert_ne!(key(&a), key(&c), "different seed must vary the workload");
    }

    #[test]
    fn poisson_rate_scales_flow_count() {
        let t = topo();
        let mut rng = SmallRng::seed_from_u64(4);
        let base = PoissonConfig {
            rate_flows_per_sec: 1_000.0,
            duration: SimTime::from_millis(200),
            sizes: SizeDist::query(),
            short_deadlines: DeadlineDist::None,
            short_flow_threshold_bytes: 0,
            pattern: Pattern::RandomPermutation,
        };
        let low = poisson_flows(&t, &base, 0, &mut rng).len();
        let mut high_cfg = base.clone();
        high_cfg.rate_flows_per_sec = 4_000.0;
        let high = poisson_flows(&t, &high_cfg, 0, &mut rng).len();
        assert!(high as f64 > 2.5 * low as f64, "low={low} high={high}");
    }
}
