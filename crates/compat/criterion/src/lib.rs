//! Offline, dependency-free shim of the parts of `criterion` this workspace uses.
//! The build container has no crates.io access, so this crate is vendored in-tree;
//! it is **not** the real `criterion`.
//!
//! It supports the classic `criterion_group!` / `criterion_main!` bench layout with
//! `benchmark_group`, `sample_size`, `bench_function`, `iter` and `black_box`. Each
//! benchmark runs a small fixed number of timed iterations and prints mean wall-clock
//! time per iteration — enough for `cargo bench` to act as a smoke-and-trend tool;
//! there is no statistical analysis, HTML report or baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (shim of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Apply command-line configuration. The shim honors a single positional
    /// argument as a substring filter on benchmark ids (like real criterion) and
    /// ignores all flags (`--bench`, `--test`, ...).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run `f` as a standalone benchmark (group of one).
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group("standalone");
        group.bench_function(id, f);
        group.finish();
        self
    }

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark function.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full_id) {
            return self;
        }
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters > 0 {
            bencher.elapsed / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{full_id:<60} time: {:>12.3?} per iter ({} iters)",
            per_iter, bencher.iters
        );
        self
    }

    /// Finish the group (no-op beyond matching real criterion's API).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` for the configured number of iterations, timing the total.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Define a benchmark group function from a list of `fn(&mut Criterion)` items.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut c = Criterion {
            filter: Some("wanted".into()),
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
        c.bench_function("wanted_bench", |b| {
            b.iter(|| ran = true);
        });
        assert!(ran);
    }
}
