//! Offline, dependency-free shim of the parts of `proptest` this workspace uses.
//! The build container has no crates.io access, so this crate is vendored in-tree;
//! it is **not** the real `proptest`.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]` header and
//!   any number of `#[test] fn name(arg in strategy, ...) { body }` items;
//! * strategies: integer / float / `usize` ranges (half-open and inclusive), tuples
//!   of strategies, and [`collection::vec`](prop::collection::vec);
//! * [`prop_assert!`] / [`prop_assert_eq!`] (panic-based — failures fail the test
//!   and report the failing case number and seed; there is no shrinking).
//!
//! Each case derives its RNG seed from the test name and case index (plus the
//! `PROPTEST_SEED` environment variable if set), so runs are deterministic and
//! reproducible while still varying across cases.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;

/// Subset of proptest's run configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// Type of the generated value.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<T: rand::SampleUniform> Strategy for core::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rand::Rng::gen_range(rng, self.start..self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rand::Rng::gen_range(rng, *self.start()..=*self.end())
    }
}

/// A strategy producing a fixed value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// The `prop` namespace (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            min_len: usize,
            max_len_exclusive: usize,
        }

        /// Length specifications accepted by [`vec`].
        pub trait IntoSizeRange {
            /// Lower bound (inclusive) and upper bound (exclusive).
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self + 1)
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                (self.start, self.end)
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end() + 1)
            }
        }

        /// `prop::collection::vec(element, len)` — a vector of `element` draws.
        pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
            let (min_len, max_len_exclusive) = len.bounds();
            assert!(min_len < max_len_exclusive, "empty length range");
            VecStrategy {
                element,
                min_len,
                max_len_exclusive,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.min_len..self.max_len_exclusive);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Deterministic per-test, per-case seed (FNV-1a over the test name, mixed with the
/// case index and the optional `PROPTEST_SEED` environment override).
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let env: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    h ^ env ^ (((case as u64) << 32) | case as u64)
}

/// `proptest::prelude` subset.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Assert a condition inside a property; failure reports the proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            panic!($($fmt)+);
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// The `proptest! { ... }` item macro: expands each contained function into a
/// `#[test]` that runs `cases` random cases of the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases {
                    let __seed = $crate::case_seed(stringify!($name), __case);
                    let mut __rng =
                        <::rand::rngs::SmallRng as ::rand::SeedableRng>::seed_from_u64(__seed);
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __guard = $crate::CaseReporter {
                        test: stringify!($name),
                        case: __case,
                        seed: __seed,
                    };
                    $body
                    ::core::mem::forget(__guard);
                }
            }
        )*
    };
}

/// Prints the failing case context when a property panics (armed via `Drop` during
/// each case, defused with `mem::forget` on success).
pub struct CaseReporter {
    /// Test function name.
    pub test: &'static str,
    /// Zero-based case index.
    pub case: u32,
    /// RNG seed of the failing case.
    pub seed: u64,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest-shim: test `{}` failed at case {} (seed {:#x}); \
                 re-run with PROPTEST_SEED to vary cases",
                self.test, self.case, self.seed
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let s = prop::collection::vec(5u64..10, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (5..10).contains(x)));
        }
        let t = (1u64..4, 0.5f64..2.0);
        for _ in 0..200 {
            let (a, b) = t.generate(&mut rng);
            assert!((1..4).contains(&a));
            assert!((0.5..2.0).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_expands_and_runs(x in 1u64..100, v in prop::collection::vec(0u64..5, 1..4)) {
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(!v.is_empty(), "vec should be non-empty, got {:?}", v);
        }
    }
}
