//! Offline, dependency-free shim of the parts of the `rand` crate (0.8 API) this
//! workspace uses. The build container has no crates.io access, so this crate is
//! vendored in-tree as a path dependency; it is **not** the real `rand`.
//!
//! Provided surface:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` (half-open and inclusive integer
//!   and float ranges) and `gen_bool`;
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`;
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64, fully deterministic;
//! * [`seq::SliceRandom`] with `choose` and `shuffle` (Fisher–Yates).
//!
//! The generators are deterministic for a fixed seed, which is all the simulator
//! needs; the streams do not match the real `rand` crate's output bit-for-bit.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Byte-array seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` seed (SplitMix64-expanded, like the real crate).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their whole domain (for [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Scalar types with a uniform sampler over an arbitrary sub-range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`; `lo < hi` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`; `lo <= hi` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of `T` from its standard distribution (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG (xoshiro256++), mirroring
    /// `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }

    /// Alias kept for drop-in compatibility with code written against `StdRng`.
    pub type StdRng = SmallRng;
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// `choose` / `shuffle` extension trait for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = r.gen_range(10..=20);
            assert!((10..=20).contains(&y));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_endpoints_inclusive() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(
            v.iter().zip(0..50).any(|(a, b)| *a != b),
            "shuffle left slice untouched"
        );
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn gen_bool_probability_is_sane() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
