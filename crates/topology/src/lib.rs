//! # pdq-topology
//!
//! Data-center topologies and routing for the PDQ (SIGCOMM 2012) reproduction.
//!
//! The paper evaluates PDQ on:
//!
//! * a **single-bottleneck** topology (Figure 2b) — N senders behind one switch sending
//!   to the same receiver;
//! * a **single-rooted tree** (Figure 2a) — the default 12-server, 4-ToR, 1-root
//!   topology borrowed from the D3 paper;
//! * **Fat-tree** (Al-Fares et al.), **BCube** (Guo et al.) and **Jellyfish**
//!   (Singla et al.) at scale (Figure 8), and BCube again for multipath PDQ
//!   (Figure 11).
//!
//! Beyond the paper, the [`wan`] module builds heterogeneous **inter-datacenter**
//! topologies (2–8 sites, 10–100 ms RTTs, 1–10 Gbps long-hauls, BDP-scaled
//! queues, optional per-link loss) for the high-BDP scenarios where sender
//! pacing matters.
//!
//! Every builder returns a [`Topology`]: the [`pdq_netsim::Network`] plus the list of
//! host nodes and rack labels (used by the Staggered-Probability traffic pattern).
//! Routing is provided by [`EcmpRouter`], a flow-level equal-cost multi-path router
//! that picks a uniformly random shortest path per flow — the paper's assumption for
//! both PDQ and the baselines — and falls back to plain shortest-path routing when a
//! pair has a single path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bcube;
pub mod ecmp;
pub mod fattree;
pub mod jellyfish;
pub mod partition;
pub mod single;
pub mod wan;

pub use bcube::bcube;
pub use ecmp::EcmpRouter;
pub use fattree::fat_tree;
pub use jellyfish::jellyfish;
pub use partition::Partition;
pub use single::{single_bottleneck, single_bottleneck_with_access_loss, single_rooted_tree};
pub use wan::{wan, WanParams};

use std::collections::HashMap;

use pdq_netsim::{Network, NodeId};

/// A built topology: the network, its hosts, and rack membership.
#[derive(Clone, Debug)]
pub struct Topology {
    /// The network (hosts, switches, links).
    pub net: Network,
    /// All host nodes, in a stable order.
    pub hosts: Vec<NodeId>,
    /// Rack (or ToR / pod-edge switch) index of each host; hosts in the same rack are
    /// "local" to each other for the Staggered Prob(p) pattern.
    pub rack_of: HashMap<NodeId, usize>,
    /// Human-readable topology name.
    pub name: String,
}

impl Topology {
    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Hosts in the same rack as `h` (including `h` itself).
    pub fn rack_peers(&self, h: NodeId) -> Vec<NodeId> {
        let rack = self.rack_of[&h];
        self.hosts
            .iter()
            .copied()
            .filter(|x| self.rack_of[x] == rack)
            .collect()
    }

    /// Hosts in a different rack from `h`.
    pub fn other_rack_hosts(&self, h: NodeId) -> Vec<NodeId> {
        let rack = self.rack_of[&h];
        self.hosts
            .iter()
            .copied()
            .filter(|x| self.rack_of[x] != rack)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::LinkParams;

    #[test]
    fn rack_helpers() {
        let t = single_rooted_tree(2, 3, LinkParams::default(), LinkParams::default());
        assert_eq!(t.host_count(), 6);
        let h = t.hosts[0];
        let peers = t.rack_peers(h);
        assert_eq!(peers.len(), 3);
        assert!(peers.contains(&h));
        let others = t.other_rack_hosts(h);
        assert_eq!(others.len(), 3);
        for o in others {
            assert_ne!(t.rack_of[&o], t.rack_of[&h]);
        }
    }
}
