//! Jellyfish (Singla et al., NSDI 2012): switches wired as a random regular graph,
//! used in Figure 8d. The paper's configuration is 24-port switches with a 2:1 ratio
//! of network ports to server ports (16 network ports, 8 servers per switch).

use std::collections::{HashMap, HashSet};

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pdq_netsim::{LinkParams, Network, NodeId};

use crate::Topology;

/// Build a Jellyfish topology.
///
/// * `n_switches` switches, each with `network_ports` ports wired to other switches as
///   a random `network_ports`-regular graph (or as close as the construction gets) and
///   `servers_per_switch` ports to hosts;
/// * `seed` controls the random graph so topologies are reproducible.
pub fn jellyfish(
    n_switches: usize,
    network_ports: usize,
    servers_per_switch: usize,
    seed: u64,
    link: LinkParams,
) -> Topology {
    assert!(n_switches >= 2);
    assert!(
        network_ports >= 2,
        "need at least two network ports per switch"
    );
    assert!(
        network_ports < n_switches,
        "a switch cannot have more network neighbours than there are other switches"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = Network::new();
    let mut hosts = Vec::new();
    let mut rack_of = HashMap::new();

    let switches: Vec<NodeId> = (0..n_switches)
        .map(|i| net.add_switch(format!("sw{i}")))
        .collect();
    for (r, &sw) in switches.iter().enumerate() {
        for s in 0..servers_per_switch {
            let h = net.add_host(format!("h{r}_{s}"));
            net.add_duplex_link(h, sw, link);
            hosts.push(h);
            rack_of.insert(h, r);
        }
    }

    // Random regular graph via repeated pairing of free ports, with edge swaps when the
    // process gets stuck (the standard Jellyfish construction).
    let mut free: Vec<usize> = (0..n_switches)
        .flat_map(|i| std::iter::repeat_n(i, network_ports))
        .collect();
    let mut edges: HashSet<(usize, usize)> = HashSet::new();
    let edge_key = |a: usize, b: usize| if a < b { (a, b) } else { (b, a) };
    let mut stuck = 0usize;
    while free.len() >= 2 && stuck < 10_000 {
        free.shuffle(&mut rng);
        let a = free[free.len() - 1];
        let b = free[free.len() - 2];
        if a != b && !edges.contains(&edge_key(a, b)) {
            free.pop();
            free.pop();
            edges.insert(edge_key(a, b));
            stuck = 0;
        } else if !edges.is_empty() {
            // Swap with a random existing edge to break the deadlock:
            // remove (c, d), add (a, c) and (b, d) if valid.
            let mut existing: Vec<(usize, usize)> = edges.iter().copied().collect();
            // HashSet iteration order is not deterministic; sort before sampling so the
            // construction is reproducible for a fixed seed.
            existing.sort_unstable();
            let &(c, d) = existing.choose(&mut rng).unwrap();
            let (x, y) = if rng.gen::<bool>() { (c, d) } else { (d, c) };
            if a != x
                && b != y
                && a != b
                && !edges.contains(&edge_key(a, x))
                && !edges.contains(&edge_key(b, y))
            {
                edges.remove(&edge_key(c, d));
                edges.insert(edge_key(a, x));
                edges.insert(edge_key(b, y));
                free.pop();
                free.pop();
                stuck = 0;
            } else {
                stuck += 1;
            }
        } else {
            stuck += 1;
        }
    }
    // Sort so that link creation order (and therefore LinkIds) does not depend on the
    // HashSet iteration order — keeps the topology reproducible for a fixed seed.
    let mut sorted_edges: Vec<(usize, usize)> = edges.into_iter().collect();
    sorted_edges.sort_unstable();
    for (a, b) in sorted_edges {
        net.add_duplex_link(switches[a], switches[b], link);
    }

    Topology {
        net,
        hosts,
        rack_of,
        name: format!("jellyfish({n_switches}sw,{network_ports}net,{servers_per_switch}srv)"),
    }
}

/// The paper's Figure 8d configuration scaled to at least `n_hosts` hosts: 24-port
/// switches with a 2:1 network-to-server port ratio (16 network ports, 8 hosts each).
pub fn jellyfish_paper_config(n_hosts: usize, seed: u64, link: LinkParams) -> Topology {
    let servers_per_switch = 8;
    let network_ports = 16;
    let n_switches = n_hosts.div_ceil(servers_per_switch).max(network_ports + 1);
    jellyfish(n_switches, network_ports, servers_per_switch, seed, link)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_degree() {
        let t = jellyfish(20, 6, 4, 7, LinkParams::default());
        assert_eq!(t.host_count(), 80);
        assert_eq!(t.net.switches().len(), 20);
        // Every switch has at most 6 network links plus 4 host links.
        for sw in t.net.switches() {
            let deg = t.net.outgoing(sw).len();
            assert!(deg <= 10, "switch degree {deg}");
            assert!(deg > 4, "switch should have at least one network link");
        }
    }

    #[test]
    fn connected_for_reasonable_parameters() {
        let t = jellyfish(16, 8, 4, 3, LinkParams::default());
        let a = t.hosts[0];
        for &b in &t.hosts {
            if a != b {
                assert!(
                    t.net.shortest_path(a, b).is_some(),
                    "hosts {a:?} and {b:?} disconnected"
                );
            }
        }
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let t1 = jellyfish(12, 4, 2, 42, LinkParams::default());
        let t2 = jellyfish(12, 4, 2, 42, LinkParams::default());
        assert_eq!(t1.net.link_count(), t2.net.link_count());
        // Same adjacency (link endpoints in same order).
        let ends = |t: &Topology| {
            t.net
                .links
                .iter()
                .map(|l| (l.src, l.dst))
                .collect::<Vec<_>>()
        };
        assert_eq!(ends(&t1), ends(&t2));
    }

    #[test]
    fn paper_config_sizing() {
        let t = jellyfish_paper_config(128, 1, LinkParams::default());
        assert!(t.host_count() >= 128);
    }
}
