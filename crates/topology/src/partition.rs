//! Partitioning a topology into shards for the parallel engine.
//!
//! A [`Partition`] assigns every node of a network to exactly one shard, for
//! [`pdq_netsim::Simulator::run_sharded`]. Two construction strategies:
//!
//! * [`Partition::of_topology`] — **structure-aware**: whole racks are kept together
//!   and distributed as contiguous blocks (for a fat-tree this groups pods, for BCube
//!   it groups sub-cubes, since both number their racks in construction order), then
//!   every switch joins the shard of the nearest host block by multi-source BFS. This
//!   keeps the dense intra-rack/intra-pod traffic shard-local and leaves only the
//!   sparse aggregation/core layers on boundaries.
//! * [`Partition::of_network`] — **structure-blind fallback** for jellyfish and
//!   arbitrary graphs: a BFS sweep from node 0 cuts the visit order into equal
//!   contiguous blocks (a breadth-first bisection), so each shard is a connected,
//!   equally-sized region whenever the graph is connected.
//!
//! The conservative lookahead of the resulting cut is [`Partition::lookahead`]: the
//! minimum propagation delay over links whose endpoints land on different shards
//! (the engine adds its per-hop processing delay on top). [`Partition::to_assignment`]
//! packages both into the [`ShardAssignment`] consumed by the engine.

use std::collections::VecDeque;

use pdq_netsim::{Network, NodeId, ShardAssignment, SimTime};

use crate::Topology;

/// A node → shard map over a specific network.
#[derive(Clone, Debug)]
pub struct Partition {
    shard_of: Vec<u32>,
    shards: u32,
}

impl Partition {
    /// Structure-aware partition of a built [`Topology`] into at most `shards` shards.
    ///
    /// Racks (in rack-index order) are split into `shards` contiguous blocks of
    /// near-equal host count; each host joins its rack's shard and each switch joins
    /// the shard of the nearest host (multi-source BFS, deterministic tie-break by
    /// visit order). The effective shard count is capped at the number of racks, so
    /// a rack is never split; [`Partition::shards`] reports the cap.
    pub fn of_topology(topo: &Topology, shards: u32) -> Partition {
        let n_racks = topo
            .rack_of
            .values()
            .copied()
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        let shards = (shards.max(1) as usize).min(n_racks.max(1)) as u32;
        if shards <= 1 {
            return Partition {
                shard_of: vec![0; topo.net.node_count()],
                shards: 1,
            };
        }
        // Contiguous rack blocks: rack r -> shard r * shards / n_racks. Rack indices
        // are assigned in construction order by every builder, so neighbouring racks
        // (same pod / same sub-cube) land on the same shard.
        let rack_shard = |rack: usize| -> u32 { (rack * shards as usize / n_racks) as u32 };
        let n = topo.net.node_count();
        let mut shard_of: Vec<Option<u32>> = vec![None; n];
        let mut queue = VecDeque::new();
        for &h in &topo.hosts {
            let s = rack_shard(topo.rack_of[&h]);
            shard_of[h.index()] = Some(s);
            queue.push_back(h);
        }
        // Multi-source BFS: every remaining node (switches; hosts are all seeds)
        // takes the shard of the nearest seed, ties broken by queue order — fully
        // deterministic for a fixed topology.
        while let Some(u) = queue.pop_front() {
            let s = shard_of[u.index()].expect("queued nodes are labelled");
            for &l in topo.net.outgoing(u) {
                let v = topo.net.link(l).dst;
                if shard_of[v.index()].is_none() {
                    shard_of[v.index()] = Some(s);
                    queue.push_back(v);
                }
            }
        }
        // Nodes unreachable from any host (none in practice): shard 0.
        let shard_of = shard_of.into_iter().map(|s| s.unwrap_or(0)).collect();
        Partition { shard_of, shards }
    }

    /// Structure-blind partition of an arbitrary network: the BFS visit order from
    /// node 0 (unvisited components appended in id order) is cut into `shards`
    /// near-equal contiguous blocks.
    pub fn of_network(net: &Network, shards: u32) -> Partition {
        let n = net.node_count();
        let shards = (shards.max(1) as usize).min(n.max(1)) as u32;
        if shards <= 1 {
            return Partition {
                shard_of: vec![0; n],
                shards: 1,
            };
        }
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        for start in 0..n {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            let mut queue = VecDeque::from([NodeId(start as u32)]);
            while let Some(u) = queue.pop_front() {
                order.push(u);
                for &l in net.outgoing(u) {
                    let v = net.link(l).dst;
                    if !visited[v.index()] {
                        visited[v.index()] = true;
                        queue.push_back(v);
                    }
                }
            }
        }
        let mut shard_of = vec![0u32; n];
        for (pos, node) in order.into_iter().enumerate() {
            shard_of[node.index()] = (pos * shards as usize / n) as u32;
        }
        Partition { shard_of, shards }
    }

    /// Effective number of shards (may be lower than requested).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> u32 {
        self.shard_of[node.index()]
    }

    /// The conservative lookahead this cut guarantees: the minimum propagation delay
    /// over cross-shard links, or [`SimTime::MAX`] if no link crosses a boundary.
    pub fn lookahead(&self, net: &Network) -> SimTime {
        net.links
            .iter()
            .filter(|l| self.shard_of[l.src.index()] != self.shard_of[l.dst.index()])
            .map(|l| l.prop_delay)
            .min()
            .unwrap_or(SimTime::MAX)
    }

    /// Package the partition as the engine's [`ShardAssignment`].
    pub fn to_assignment(&self, net: &Network) -> ShardAssignment {
        ShardAssignment::new(self.shard_of.clone(), self.shards, self.lookahead(net))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jellyfish::jellyfish_paper_config;
    use crate::{bcube, fat_tree, single_rooted_tree};
    use pdq_netsim::LinkParams;
    use proptest::{prop_assert, prop_assert_eq, proptest};

    fn check_partition(p: &Partition, net: &Network, requested: u32) {
        // Every node is assigned to exactly one shard, within the shard count.
        assert_eq!(p.shard_of.len(), net.node_count());
        assert!(p.shards >= 1 && p.shards <= requested.max(1));
        for node in 0..net.node_count() {
            assert!(p.shard_of[node] < p.shards, "node {node} out of range");
        }
        // Every shard id below the effective count is actually used (no thread ever
        // spins on an empty core).
        let mut used = vec![false; p.shards as usize];
        for &s in &p.shard_of {
            used[s as usize] = true;
        }
        assert!(used.iter().all(|&u| u), "an effective shard owns no node");
        // Every cross-shard link is at least as slow as the reported lookahead.
        let horizon = p.lookahead(net);
        for l in &net.links {
            if p.shard_of[l.src.index()] != p.shard_of[l.dst.index()] {
                assert!(
                    l.prop_delay >= horizon,
                    "cross-shard link {:?} beats the lookahead",
                    l.id
                );
            }
        }
        // The assignment round-trips into the engine's type.
        let a = p.to_assignment(net);
        assert_eq!(a.shards(), p.shards);
        assert_eq!(a.lookahead(), horizon);
        for node in 0..net.node_count() {
            assert_eq!(a.shard_of(NodeId(node as u32)), p.shard_of[node]);
        }
    }

    #[test]
    fn fat_tree_partition_keeps_pods_together() {
        let topo = fat_tree(4, LinkParams::default());
        // k=4 fat-tree: 4 pods, 8 racks (2 per pod), 16 hosts.
        let p = Partition::of_topology(&topo, 4);
        assert_eq!(p.shards(), 4);
        check_partition(&p, &topo.net, 4);
        // Both racks of a pod map to the same shard (8 racks / 4 shards = pod blocks).
        for hosts in topo.hosts.chunks(4) {
            let s0 = p.shard_of(hosts[0]);
            assert!(hosts.iter().all(|&h| p.shard_of(h) == s0), "pod split");
        }
    }

    #[test]
    fn shard_count_is_capped_at_rack_count() {
        let topo = single_rooted_tree(4, 3, LinkParams::default(), LinkParams::default());
        // 4 ToRs -> at most 4 shards, however many were requested.
        let p = Partition::of_topology(&topo, 64);
        assert_eq!(p.shards(), 4);
        check_partition(&p, &topo.net, 64);
    }

    #[test]
    fn single_shard_partition_is_trivial() {
        let topo = fat_tree(4, LinkParams::default());
        let p = Partition::of_topology(&topo, 1);
        assert_eq!(p.shards(), 1);
        assert!(p.shard_of.iter().all(|&s| s == 0));
        assert_eq!(p.lookahead(&topo.net), SimTime::MAX);
    }

    #[test]
    fn of_network_fallback_covers_disconnected_graphs() {
        let mut net = Network::new();
        let a = net.add_host("a");
        let b = net.add_host("b");
        let c = net.add_host("c");
        let d = net.add_host("d");
        net.add_duplex_link(a, b, LinkParams::default());
        net.add_duplex_link(c, d, LinkParams::default());
        let p = Partition::of_network(&net, 2);
        check_partition(&p, &net, 2);
        // The BFS blocks respect the components: each island stays whole.
        assert_eq!(p.shard_of(a), p.shard_of(b));
        assert_eq!(p.shard_of(c), p.shard_of(d));
        assert_ne!(p.shard_of(a), p.shard_of(c));
        assert_eq!(p.lookahead(&net), SimTime::MAX);
    }

    proptest! {
        /// Partition correctness across the paper's three scaled topologies: every
        /// node on exactly one in-range shard, every effective shard non-empty, and
        /// every cross-shard link at least as slow as the reported lookahead.
        #[test]
        fn topology_partitions_are_valid(kind in 0usize..3, shards in 1u32..9) {
            let topo = match kind {
                0 => fat_tree(4, LinkParams::default()),
                1 => bcube(4, 1, LinkParams::default()),
                _ => jellyfish_paper_config(24, 7, LinkParams::default()),
            };
            let p = Partition::of_topology(&topo, shards);
            check_partition(&p, &topo.net, shards);
            // Hosts of one rack are never split across shards.
            let mut rack_shard: std::collections::HashMap<usize, u32> =
                std::collections::HashMap::new();
            for (&h, &r) in &topo.rack_of {
                let s = p.shard_of(h);
                let prev = *rack_shard.entry(r).or_insert(s);
                prop_assert_eq!(prev, s, "rack {} split across shards", r);
            }
            prop_assert!(p.shards() <= shards.max(1));
        }

        /// The structure-blind fallback is valid on arbitrary (jellyfish) graphs too.
        #[test]
        fn network_partitions_are_valid(seed in 0u64..50, shards in 1u32..9) {
            let topo = jellyfish_paper_config(16, seed, LinkParams::default());
            let p = Partition::of_network(&topo.net, shards);
            check_partition(&p, &topo.net, shards);
        }
    }
}
