//! Flow-level Equal-Cost Multi-Path routing.
//!
//! The paper assumes flow-level ECMP everywhere (VL2-style forwarding in §3.3.1, the
//! M-PDQ subflow assignment in §6, and the scale experiments of §5.5). [`EcmpRouter`]
//! picks, independently for every flow, a uniformly random shortest path from source to
//! destination: it precomputes hop distances to each destination once (cached) and then
//! walks from the source choosing uniformly among the next hops that decrease the
//! remaining distance. All of the topologies in this crate are symmetric, so BFS
//! distance *from* the destination equals distance *to* it.

use std::collections::{HashMap, VecDeque};

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

use pdq_netsim::{FlowPath, FlowSpec, Network, NodeId, Router};

/// A router that picks a uniformly random shortest path per flow (flow-level ECMP).
#[derive(Debug, Default)]
pub struct EcmpRouter {
    /// Cached BFS hop-distance vectors, keyed by destination node.
    dist_cache: HashMap<NodeId, Vec<u32>>,
}

impl EcmpRouter {
    /// Create an ECMP router with an empty distance cache.
    pub fn new() -> Self {
        EcmpRouter::default()
    }

    fn distances(&mut self, net: &Network, dst: NodeId) -> &Vec<u32> {
        self.dist_cache.entry(dst).or_insert_with(|| {
            let mut dist = vec![u32::MAX; net.node_count()];
            dist[dst.index()] = 0;
            let mut q = VecDeque::new();
            q.push_back(dst);
            while let Some(u) = q.pop_front() {
                for &l in net.outgoing(u) {
                    let v = net.link(l).dst;
                    if dist[v.index()] == u32::MAX {
                        dist[v.index()] = dist[u.index()] + 1;
                        q.push_back(v);
                    }
                }
            }
            dist
        })
    }

    /// Compute one random shortest path. Panics if `dst` is unreachable from `src`.
    pub fn random_shortest_path(
        &mut self,
        net: &Network,
        src: NodeId,
        dst: NodeId,
        rng: &mut SmallRng,
    ) -> FlowPath {
        assert_ne!(src, dst, "ECMP path requested from a node to itself");
        let dist = self.distances(net, dst).clone();
        assert_ne!(
            dist[src.index()],
            u32::MAX,
            "no path from {src:?} to {dst:?}"
        );
        let mut nodes = vec![src];
        let mut links = Vec::new();
        let mut cur = src;
        while cur != dst {
            let d = dist[cur.index()];
            let candidates: Vec<_> = net
                .outgoing(cur)
                .iter()
                .copied()
                .filter(|&l| dist[net.link(l).dst.index()] == d - 1)
                .collect();
            let &l = candidates
                .choose(rng)
                .expect("BFS distance field guarantees at least one downhill neighbour");
            cur = net.link(l).dst;
            links.push(l);
            nodes.push(cur);
        }
        FlowPath::new(nodes, links)
    }

    /// Number of distinct shortest paths between two nodes (counted exactly via the
    /// distance field). Useful in tests and for reporting path diversity.
    pub fn shortest_path_count(&mut self, net: &Network, src: NodeId, dst: NodeId) -> u64 {
        let dist = self.distances(net, dst).clone();
        if dist[src.index()] == u32::MAX {
            return 0;
        }
        // Count paths by dynamic programming in order of decreasing distance.
        let mut order: Vec<NodeId> = (0..net.node_count() as u32).map(NodeId).collect();
        order.retain(|n| dist[n.index()] != u32::MAX);
        order.sort_by_key(|n| std::cmp::Reverse(dist[n.index()]));
        let mut count = vec![0u64; net.node_count()];
        count[dst.index()] = 1;
        for &u in order.iter().rev() {
            if u == dst {
                continue;
            }
            let mut c = 0u64;
            for &l in net.outgoing(u) {
                let v = net.link(l).dst;
                if dist[v.index()] + 1 == dist[u.index()] {
                    c += count[v.index()];
                }
            }
            count[u.index()] = c;
        }
        count[src.index()]
    }
}

impl Router for EcmpRouter {
    fn route(&mut self, net: &Network, spec: &FlowSpec, rng: &mut SmallRng) -> Option<FlowPath> {
        if spec.src == spec.dst || self.distances(net, spec.dst)[spec.src.index()] == u32::MAX {
            // Disconnected (or degenerate) pair: let the engine record the flow as
            // failed instead of panicking mid-run.
            return None;
        }
        Some(self.random_shortest_path(net, spec.src, spec.dst, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fat_tree, single::default_paper_tree};
    use pdq_netsim::LinkParams;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn ecmp_paths_are_valid_shortest_paths() {
        let t = fat_tree(4, LinkParams::default());
        let mut router = EcmpRouter::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let src = t.hosts[0];
        let dst = t.hosts[12]; // cross-pod
        let base = t.net.shortest_path(src, dst).unwrap().hops();
        for _ in 0..20 {
            let p = router.random_shortest_path(&t.net, src, dst, &mut rng);
            assert_eq!(p.hops(), base);
            assert_eq!(p.src(), src);
            assert_eq!(p.dst(), dst);
            // Path links must be consistent with node sequence.
            for (i, &l) in p.links.iter().enumerate() {
                assert_eq!(t.net.link(l).src, p.nodes[i]);
                assert_eq!(t.net.link(l).dst, p.nodes[i + 1]);
            }
        }
    }

    #[test]
    fn ecmp_explores_multiple_paths_in_fat_tree() {
        let t = fat_tree(4, LinkParams::default());
        let mut router = EcmpRouter::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let src = t.hosts[0];
        let dst = t.hosts[12];
        // A k=4 fat-tree has 4 shortest paths between cross-pod hosts.
        assert_eq!(router.shortest_path_count(&t.net, src, dst), 4);
        let mut seen = HashSet::new();
        for _ in 0..100 {
            let p = router.random_shortest_path(&t.net, src, dst, &mut rng);
            seen.insert(p.links.clone());
        }
        assert_eq!(seen.len(), 4, "ECMP should eventually use all 4 paths");
    }

    #[test]
    fn single_path_topologies_have_one_path() {
        let t = default_paper_tree();
        let mut router = EcmpRouter::new();
        let src = t.hosts[0];
        let dst = t.other_rack_hosts(src)[0];
        assert_eq!(router.shortest_path_count(&t.net, src, dst), 1);
    }

    #[test]
    fn bcube_has_parallel_paths() {
        let t = crate::bcube(2, 3, LinkParams::default());
        let mut router = EcmpRouter::new();
        // Two servers differing in one digit have one 2-hop path, but servers differing
        // in several digits have multiple equal-cost paths.
        let src = t.hosts[0];
        let dst = *t.hosts.last().unwrap();
        assert!(router.shortest_path_count(&t.net, src, dst) > 1);
    }
}
