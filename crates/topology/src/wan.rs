//! Inter-datacenter WAN topologies.
//!
//! The paper's evaluation is intra-datacenter (microsecond RTTs, homogeneous
//! 1 Gbps links), but the preemptive-scheduling question is just as interesting
//! across sites: long-haul links have millisecond propagation delays, so the
//! bandwidth-delay product — and with it the damage an unpaced window burst can
//! do — grows by four orders of magnitude. This module builds that setting:
//!
//! * `sites` datacenter sites (2–8 is the intended range), each a site switch
//!   with `hosts_per_site` hosts attached on default intra-DC access links;
//! * a full mesh of **long-haul** duplex links between the site switches,
//!   heterogeneous on purpose: across the site pairs, the one-way propagation
//!   delay spreads from half of `rtt_ms/2` up to the full `rtt_ms/2`, and the
//!   line rate from `gbps` up to `2·gbps` (slowest pair = longest pair, the
//!   worst case for pacing);
//! * **BDP-scaled queues**: each long-haul direction gets a queue of
//!   `max(rate · rtt / 8, DEFAULT_QUEUE_CAPACITY_BYTES)` bytes — a 4 MB
//!   intra-DC default is less than half the BDP of a 2.5 Gbps / 60 ms path and
//!   would tail-drop every window burst;
//! * optional random `loss_rate` on every long-haul direction, drawn from
//!   [`LossStream::PerLink`] streams so lossy WAN runs stay fingerprint-identical
//!   at every shard count (see `pdq_netsim::shard`).
//!
//! Each site is one rack ([`Topology::rack_of`]), so rack-aware workloads and
//! the shard partitioner both see sites as the natural unit: a partitioned run
//! cuts along the long-haul links, whose large propagation delays make generous
//! conservative-lookahead windows.

use std::collections::HashMap;

use pdq_netsim::{LinkParams, LossStream, Network, SimTime, DEFAULT_QUEUE_CAPACITY_BYTES};

use crate::Topology;

/// Parameters of a [`wan`] topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WanParams {
    /// Number of datacenter sites (≥ 2 for any long-haul link to exist).
    pub sites: usize,
    /// Hosts attached to each site switch.
    pub hosts_per_site: usize,
    /// Round-trip propagation across the *longest* site pair, in milliseconds
    /// (10–100 ms is the intended range). Shorter pairs get down to half this.
    pub rtt_ms: f64,
    /// Line rate of the *slowest* long-haul pair, in Gbit/s (1–10 is the
    /// intended range). Faster pairs get up to twice this.
    pub gbps: f64,
    /// Random loss probability on every long-haul direction (0 disables).
    pub loss_rate: f64,
}

impl Default for WanParams {
    fn default() -> Self {
        WanParams {
            sites: 4,
            hosts_per_site: 4,
            rtt_ms: 60.0,
            gbps: 2.5,
            loss_rate: 0.0,
        }
    }
}

/// Build an inter-datacenter WAN topology: `sites` site switches in a full
/// long-haul mesh, `hosts_per_site` hosts per site. See the module docs for the
/// heterogeneity and queue-sizing rules.
pub fn wan(params: WanParams) -> Topology {
    assert!(params.sites >= 2, "a WAN needs at least two sites");
    assert!(
        params.hosts_per_site >= 1,
        "need at least one host per site"
    );
    assert!(params.rtt_ms > 0.0, "RTT must be positive");
    assert!(params.gbps > 0.0, "line rate must be positive");
    assert!(
        (0.0..1.0).contains(&params.loss_rate),
        "loss rate must be in [0, 1)"
    );

    let mut net = Network::new();
    let mut hosts = Vec::new();
    let mut rack_of = HashMap::new();

    let switches: Vec<_> = (0..params.sites)
        .map(|s| net.add_switch(format!("site{s}")))
        .collect();
    for (s, &sw) in switches.iter().enumerate() {
        for h in 0..params.hosts_per_site {
            let host = net.add_host(format!("h{s}_{h}"));
            net.add_duplex_link(host, sw, LinkParams::default());
            hosts.push(host);
            rack_of.insert(host, s);
        }
    }

    // Long-haul mesh. Pair k of P (lexicographic (i, j), i < j) is placed at
    // frac = k / (P - 1): delay grows with frac, rate shrinks — the longest
    // path is also the slowest, maximizing BDP heterogeneity.
    let pairs: Vec<_> = (0..params.sites)
        .flat_map(|i| (i + 1..params.sites).map(move |j| (i, j)))
        .collect();
    let denom = (pairs.len() - 1).max(1) as f64;
    for (k, &(i, j)) in pairs.iter().enumerate() {
        let frac = if pairs.len() == 1 {
            1.0
        } else {
            k as f64 / denom
        };
        let one_way_s = params.rtt_ms * 1e-3 / 2.0 * (0.5 + 0.5 * frac);
        let rate_bps = params.gbps * 1e9 * (2.0 - frac);
        // BDP of this pair, at its own RTT; never below the intra-DC default.
        let bdp_bytes = (rate_bps * 2.0 * one_way_s / 8.0).ceil() as u64;
        net.add_duplex_link(
            switches[i],
            switches[j],
            LinkParams {
                rate_bps,
                prop_delay: SimTime::from_secs_f64(one_way_s),
                queue_capacity_bytes: bdp_bytes.max(DEFAULT_QUEUE_CAPACITY_BYTES),
                loss_rate: params.loss_rate,
                loss_stream: LossStream::PerLink,
            },
        );
    }

    Topology {
        net,
        hosts,
        rack_of,
        name: format!(
            "wan({}x{},rtt{}ms,{}gbps,loss{})",
            params.sites, params.hosts_per_site, params.rtt_ms, params.gbps, params.loss_rate
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;

    #[test]
    fn structure_and_rack_labels() {
        let t = wan(WanParams::default());
        assert_eq!(t.host_count(), 16);
        assert_eq!(t.net.switches().len(), 4);
        // 16 access duplex links + C(4,2)=6 long-haul duplex links.
        assert_eq!(t.net.link_count(), 2 * (16 + 6));
        for (s, &h) in t.hosts.iter().enumerate() {
            assert_eq!(t.rack_of[&h], s / 4);
        }
    }

    #[test]
    fn long_hauls_are_heterogeneous_bdp_sized_and_per_link_lossy() {
        let params = WanParams {
            loss_rate: 0.001,
            ..WanParams::default()
        };
        let t = wan(params);
        let long_hauls: Vec<_> = t
            .net
            .links
            .iter()
            .filter(|l| l.loss_stream == LossStream::PerLink)
            .collect();
        assert_eq!(long_hauls.len(), 12); // 6 pairs, both directions
        let delays: Vec<_> = long_hauls.iter().map(|l| l.prop_delay).collect();
        let min = *delays.iter().min().unwrap();
        let max = *delays.iter().max().unwrap();
        // One-way spreads from rtt/4 (15 ms) to rtt/2 (30 ms).
        assert_eq!(min, SimTime::from_millis(15));
        assert_eq!(max, SimTime::from_millis(30));
        for l in &long_hauls {
            assert!(l.rate_bps >= params.gbps * 1e9);
            assert!(l.rate_bps <= 2.0 * params.gbps * 1e9);
            assert_eq!(l.loss_rate, 0.001);
            // Queue at least the link's own BDP and at least the 4 MB default.
            let bdp = (l.rate_bps * 2.0 * l.prop_delay.as_secs_f64() / 8.0).ceil() as u64;
            assert!(l.queue_capacity_bytes >= bdp.max(DEFAULT_QUEUE_CAPACITY_BYTES));
        }
        // Access links keep intra-DC defaults and the engine loss stream.
        for l in t
            .net
            .links
            .iter()
            .filter(|l| l.loss_stream == LossStream::Engine)
        {
            assert_eq!(l.loss_rate, 0.0);
            assert_eq!(l.queue_capacity_bytes, DEFAULT_QUEUE_CAPACITY_BYTES);
        }
    }

    #[test]
    fn partition_cuts_along_long_haul_links() {
        let t = wan(WanParams::default());
        let p = Partition::of_topology(&t, 4);
        assert_eq!(p.shards(), 4);
        // The lookahead is the minimum cross-shard propagation delay: the
        // shortest long-haul (15 ms one-way), millions of times the intra-DC
        // lookahead — sharded WAN runs barrier rarely.
        assert_eq!(p.lookahead(&t.net), SimTime::from_millis(15));
    }

    #[test]
    fn two_sites_use_the_full_rtt() {
        let t = wan(WanParams {
            sites: 2,
            hosts_per_site: 1,
            rtt_ms: 100.0,
            gbps: 1.0,
            loss_rate: 0.0,
        });
        let long_haul = t
            .net
            .links
            .iter()
            .find(|l| l.loss_stream == LossStream::PerLink)
            .unwrap();
        assert_eq!(long_haul.prop_delay, SimTime::from_millis(50));
        assert_eq!(long_haul.rate_bps, 1e9);
    }
}
