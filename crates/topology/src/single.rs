//! The two small topologies used throughout the paper's evaluation (Figure 2).

use std::collections::HashMap;

use pdq_netsim::{LinkParams, Network};

use crate::Topology;

/// The single-bottleneck topology of Figure 2b: `n_senders` sending hosts, one switch,
/// one receiving host. Every sender's flow shares the switch→receiver link.
///
/// `link` configures every link (the paper uses 1 Gbps everywhere).
pub fn single_bottleneck(n_senders: usize, link: LinkParams) -> Topology {
    assert!(n_senders >= 1, "need at least one sender");
    let mut net = Network::new();
    let mut hosts = Vec::new();
    let mut rack_of = HashMap::new();
    let sw = net.add_switch("sw");
    for i in 0..n_senders {
        let h = net.add_host(format!("sender{i}"));
        net.add_duplex_link(h, sw, link);
        hosts.push(h);
        rack_of.insert(h, 0);
    }
    let recv = net.add_host("receiver");
    net.add_duplex_link(sw, recv, link);
    hosts.push(recv);
    rack_of.insert(recv, 0);
    Topology {
        net,
        hosts,
        rack_of,
        name: format!("single-bottleneck({n_senders})"),
    }
}

/// [`single_bottleneck`] with random packet loss injected on the shared
/// switch↔receiver access link, both directions — the Figure 9 setup.
pub fn single_bottleneck_with_access_loss(
    n_senders: usize,
    link: LinkParams,
    loss_rate: f64,
) -> Topology {
    let mut topo = single_bottleneck(n_senders, link);
    let n_links = topo.net.link_count();
    for idx in [n_links - 2, n_links - 1] {
        topo.net.links[idx].loss_rate = loss_rate;
    }
    topo
}

/// The single-rooted tree of Figure 2a: `n_tors` top-of-rack switches, each with
/// `servers_per_tor` servers attached at `edge` link parameters, and a root switch
/// connecting the ToRs at `core` link parameters.
///
/// The paper's default is a two-level 12-server tree (4 ToRs × 3 servers) with 1 Gbps
/// links everywhere, the same topology used by D3.
pub fn single_rooted_tree(
    n_tors: usize,
    servers_per_tor: usize,
    edge: LinkParams,
    core: LinkParams,
) -> Topology {
    assert!(n_tors >= 1 && servers_per_tor >= 1);
    let mut net = Network::new();
    let mut hosts = Vec::new();
    let mut rack_of = HashMap::new();
    let root = net.add_switch("root");
    for t in 0..n_tors {
        let tor = net.add_switch(format!("tor{t}"));
        net.add_duplex_link(tor, root, core);
        for s in 0..servers_per_tor {
            let h = net.add_host(format!("srv{t}_{s}"));
            net.add_duplex_link(h, tor, edge);
            hosts.push(h);
            rack_of.insert(h, t);
        }
    }
    Topology {
        net,
        hosts,
        rack_of,
        name: format!("single-rooted-tree({}x{})", n_tors, servers_per_tor),
    }
}

/// The paper's default topology: a two-level 12-server single-rooted tree with
/// 1 Gbps links (Figure 2a).
pub fn default_paper_tree() -> Topology {
    single_rooted_tree(4, 3, LinkParams::default(), LinkParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_netsim::NodeKind;

    #[test]
    fn single_bottleneck_structure() {
        let t = single_bottleneck(5, LinkParams::default());
        assert_eq!(t.host_count(), 6); // 5 senders + 1 receiver
        assert_eq!(t.net.switches().len(), 1);
        // Every sender reaches the receiver in exactly 2 hops through the switch.
        let recv = *t.hosts.last().unwrap();
        for &s in &t.hosts[..5] {
            let p = t.net.shortest_path(s, recv).unwrap();
            assert_eq!(p.hops(), 2);
        }
    }

    #[test]
    fn paper_tree_is_12_servers_5_switches() {
        let t = default_paper_tree();
        assert_eq!(t.host_count(), 12);
        assert_eq!(t.net.switches().len(), 5); // root + 4 ToR
                                               // Cross-rack paths traverse 4 links (host-tor-root-tor-host); intra-rack 2.
        let a = t.hosts[0];
        let same_rack = t.rack_peers(a)[1];
        let other_rack = t.other_rack_hosts(a)[0];
        assert_eq!(t.net.shortest_path(a, same_rack).unwrap().hops(), 2);
        assert_eq!(t.net.shortest_path(a, other_rack).unwrap().hops(), 4);
    }

    #[test]
    fn all_hosts_are_hosts() {
        let t = default_paper_tree();
        for &h in &t.hosts {
            assert_eq!(t.net.node(h).kind, NodeKind::Host);
        }
    }
}
