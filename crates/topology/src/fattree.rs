//! The k-ary fat-tree of Al-Fares et al. (SIGCOMM 2008), used in Figure 8a/8b/8e.

use std::collections::HashMap;

use pdq_netsim::{LinkParams, Network};

use crate::Topology;

/// Build a k-ary fat-tree.
///
/// * `k` pods (must be even), each with `k/2` edge switches and `k/2` aggregation
///   switches;
/// * `(k/2)^2` core switches;
/// * `k/2` hosts per edge switch, for `k^3/4` hosts in total.
///
/// Every link uses the same [`LinkParams`] (the paper's evaluation uses uniform
/// 1 Gbps links).
pub fn fat_tree(k: usize, link: LinkParams) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree degree k must be even and >= 2"
    );
    let half = k / 2;
    let mut net = Network::new();
    let mut hosts = Vec::new();
    let mut rack_of = HashMap::new();

    // Core switches.
    let mut core = Vec::new();
    for i in 0..half * half {
        core.push(net.add_switch(format!("core{i}")));
    }

    let mut rack_idx = 0usize;
    for pod in 0..k {
        // Aggregation and edge layers of this pod.
        let mut aggs = Vec::new();
        for a in 0..half {
            aggs.push(net.add_switch(format!("agg{pod}_{a}")));
        }
        let mut edges = Vec::new();
        for e in 0..half {
            edges.push(net.add_switch(format!("edge{pod}_{e}")));
        }
        // Edge <-> aggregation: full bipartite within the pod.
        for &e in &edges {
            for &a in &aggs {
                net.add_duplex_link(e, a, link);
            }
        }
        // Aggregation <-> core: agg j connects to core group j.
        for (j, &a) in aggs.iter().enumerate() {
            for c in 0..half {
                net.add_duplex_link(a, core[j * half + c], link);
            }
        }
        // Hosts.
        for &e in &edges {
            for h in 0..half {
                let host = net.add_host(format!("h{pod}_{rack_idx}_{h}"));
                net.add_duplex_link(host, e, link);
                hosts.push(host);
                rack_of.insert(host, rack_idx);
            }
            rack_idx += 1;
        }
    }

    Topology {
        net,
        hosts,
        rack_of,
        name: format!("fat-tree(k={k})"),
    }
}

/// The smallest fat-tree whose host count is at least `n_hosts`.
/// Returns the topology; its actual host count is `k^3/4` for the chosen even `k`.
pub fn fat_tree_with_at_least(n_hosts: usize, link: LinkParams) -> Topology {
    let mut k = 2;
    while k * k * k / 4 < n_hosts {
        k += 2;
    }
    fat_tree(k, link)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn k4_fat_tree_counts() {
        let t = fat_tree(4, LinkParams::default());
        assert_eq!(t.host_count(), 16); // k^3/4
                                        // 4 core + 4 pods * (2 agg + 2 edge) = 20 switches.
        assert_eq!(t.net.switches().len(), 20);
        // Each host-edge link + pod wiring + core wiring:
        // hosts: 16, edge-agg: 4 pods * 4 = 16, agg-core: 4 pods * 4 = 16 duplex links.
        assert_eq!(t.net.link_count(), (16 + 16 + 16) * 2);
    }

    #[test]
    fn k4_paths_have_expected_lengths() {
        let t = fat_tree(4, LinkParams::default());
        // Same edge switch: 2 hops; same pod different edge: 4 hops; cross pod: 6 hops.
        let h0 = t.hosts[0];
        let same_edge = t.hosts[1];
        let same_pod = t.hosts[2];
        let cross_pod = t.hosts[4];
        assert_eq!(t.net.shortest_path(h0, same_edge).unwrap().hops(), 2);
        assert_eq!(t.net.shortest_path(h0, same_pod).unwrap().hops(), 4);
        assert_eq!(t.net.shortest_path(h0, cross_pod).unwrap().hops(), 6);
    }

    #[test]
    fn all_pairs_connected_k6() {
        let t = fat_tree(6, LinkParams::default());
        assert_eq!(t.host_count(), 54);
        let mut rng = SmallRng::seed_from_u64(1);
        use rand::seq::SliceRandom;
        // Spot-check 50 random pairs.
        for _ in 0..50 {
            let a = *t.hosts.choose(&mut rng).unwrap();
            let b = *t.hosts.choose(&mut rng).unwrap();
            if a != b {
                assert!(t.net.shortest_path(a, b).is_some());
            }
        }
    }

    #[test]
    fn at_least_sizing() {
        assert_eq!(
            fat_tree_with_at_least(16, LinkParams::default()).host_count(),
            16
        );
        assert_eq!(
            fat_tree_with_at_least(17, LinkParams::default()).host_count(),
            54
        );
        assert!(fat_tree_with_at_least(128, LinkParams::default()).host_count() >= 128);
    }

    #[test]
    #[should_panic]
    fn odd_k_rejected() {
        let _ = fat_tree(3, LinkParams::default());
    }
}
