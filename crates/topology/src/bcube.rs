//! BCube (Guo et al., SIGCOMM 2009): the server-centric modular topology used in
//! Figure 8c and for multipath PDQ in Figure 11.
//!
//! A `BCube(n, k)` has `n^(k+1)` servers, each with `k+1` ports, and `k+1` levels of
//! `n`-port mini-switches (`n^k` switches per level). Server `a_k a_{k-1} ... a_0`
//! (base-`n` digits) connects, at level `l`, to switch number formed by removing digit
//! `a_l`. Two servers differing in exactly one digit are two hops apart through the
//! switch of that level, which gives the topology its `k+1` parallel paths — the path
//! diversity M-PDQ exploits.

use std::collections::HashMap;

use pdq_netsim::{LinkParams, Network, NodeId};

use crate::Topology;

/// Build a `BCube(n, k)` topology: `n` = switch port count, `k+1` = levels.
///
/// The number of servers is `n^(k+1)`; each server has `k+1` NICs (one per level),
/// which is how the paper's Figure 11 lets M-PDQ use "all four interfaces" on
/// BCube(2,3)-style networks.
pub fn bcube(n: usize, k: usize, link: LinkParams) -> Topology {
    assert!(n >= 2, "BCube switch port count must be >= 2");
    let levels = k + 1;
    let n_servers = n.pow(levels as u32);
    let switches_per_level = n.pow(k as u32);

    let mut net = Network::new();
    let mut hosts = Vec::new();
    let mut rack_of = HashMap::new();

    for s in 0..n_servers {
        let h = net.add_host(format!("srv{s}"));
        hosts.push(h);
        // Rack = the level-0 switch group (servers sharing their lowest-level switch).
        rack_of.insert(h, s / n);
    }

    // Switches, per level.
    let mut switch_ids: Vec<Vec<NodeId>> = Vec::new();
    for l in 0..levels {
        let mut level_switches = Vec::new();
        for s in 0..switches_per_level {
            level_switches.push(net.add_switch(format!("sw{l}_{s}")));
        }
        switch_ids.push(level_switches);
    }

    // Wiring: server `srv` connects at level `l` to the switch whose index is the
    // base-n representation of `srv` with digit `l` removed.
    for (srv, &host) in hosts.iter().enumerate() {
        for (l, level_switches) in switch_ids.iter().enumerate() {
            let sw_index = remove_digit(srv, l, n);
            net.add_duplex_link(host, level_switches[sw_index], link);
        }
    }

    Topology {
        net,
        hosts,
        rack_of,
        name: format!("bcube({n},{k})"),
    }
}

/// Remove the base-`n` digit at position `pos` from `value`, compacting the remaining
/// digits. E.g. with n=4, value=0b(digits d2 d1 d0), removing d1 yields digits d2 d0.
fn remove_digit(value: usize, pos: usize, n: usize) -> usize {
    let low = value % n.pow(pos as u32);
    let high = value / n.pow(pos as u32 + 1);
    high * n.pow(pos as u32) + low
}

/// The smallest `BCube(n, k)` with `n`-port switches whose server count is at least
/// `n_hosts`, increasing the number of levels.
pub fn bcube_with_at_least(n_hosts: usize, n: usize, link: LinkParams) -> Topology {
    let mut k = 0usize;
    while n.pow(k as u32 + 1) < n_hosts {
        k += 1;
    }
    bcube(n, k, link)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remove_digit_works() {
        // value 0x123 base 16 is not meaningful here; test base 4: digits of 27 = 1 2 3.
        // 27 = 1*16 + 2*4 + 3
        assert_eq!(remove_digit(27, 0, 4), 4 + 2); // remove d0 -> digits 1,2 = 6
        assert_eq!(remove_digit(27, 1, 4), 4 + 3); // remove d1 -> digits 1,3 = 7
        assert_eq!(remove_digit(27, 2, 4), 2 * 4 + 3); // remove d2 -> digits 2,3 = 11
    }

    #[test]
    fn bcube_4_1_counts() {
        // BCube(4,1): 16 servers, 2 levels of 4 switches, each server has 2 ports.
        let t = bcube(4, 1, LinkParams::default());
        assert_eq!(t.host_count(), 16);
        assert_eq!(t.net.switches().len(), 8);
        // 16 servers * 2 levels duplex links.
        assert_eq!(t.net.link_count(), 16 * 2 * 2);
        // Each host has exactly 2 outgoing links (dual-port servers).
        for &h in &t.hosts {
            assert_eq!(t.net.outgoing(h).len(), 2);
        }
    }

    #[test]
    fn one_digit_neighbours_are_two_hops() {
        let t = bcube(4, 1, LinkParams::default());
        // Servers 0 (digits 0,0) and 1 (digits 0,1) share a level-0 switch: 2 hops.
        let p = t.net.shortest_path(t.hosts[0], t.hosts[1]).unwrap();
        assert_eq!(p.hops(), 2);
        // Servers 0 (0,0) and 5 (1,1) differ in both digits: 4 hops via a relay server.
        let p = t.net.shortest_path(t.hosts[0], t.hosts[5]).unwrap();
        assert_eq!(p.hops(), 4);
    }

    #[test]
    fn bcube_2_3_matches_paper_figure_11() {
        // Figure 11 uses BCube(2,3): 16 servers with 4 ports each.
        let t = bcube(2, 3, LinkParams::default());
        assert_eq!(t.host_count(), 16);
        for &h in &t.hosts {
            assert_eq!(t.net.outgoing(h).len(), 4);
        }
    }

    #[test]
    fn sizing_helper() {
        assert_eq!(
            bcube_with_at_least(60, 4, LinkParams::default()).host_count(),
            64
        );
        assert_eq!(
            bcube_with_at_least(64, 4, LinkParams::default()).host_count(),
            64
        );
        assert_eq!(
            bcube_with_at_least(65, 4, LinkParams::default()).host_count(),
            256
        );
    }
}
