//! The [`SimBackend`] axis: which simulation engine executes a scenario.
//!
//! The paper evaluates PDQ with two simulators — the packet-level engine (Figures
//! 3–7 and 9–11) and the §5.5 flow-level model (Figures 8 and 12, the large-scale
//! runs) — and motivates the design with a third: the §2.1 fluid model behind the
//! Figure 1 comparison. A [`crate::Scenario`] names its engine with
//! `backend = packet|flow|fluid`; `packet` is the default, so every pre-existing
//! spec keeps its meaning (and its byte-exact serialization).

use std::fmt;
use std::str::FromStr;

/// Which simulation engine a scenario runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimBackend {
    /// The deterministic packet-level discrete-event simulator (`pdq-netsim`).
    #[default]
    Packet,
    /// The §5.5 flow-level simulator (`pdq-flowsim`): equilibrium rate allocations
    /// recomputed on a 1 ms time scale. Scales to thousands of servers, but only
    /// protocols with a flow-level model support it (see
    /// [`crate::ProtocolInstaller::flow_config`]).
    Flow,
    /// The §2.1 fluid model (Figure 1): an idealized unit-rate bottleneck where
    /// protocols reduce to fair sharing, SJF/EDF or D3's first-come-first-reserve.
    /// Only protocols with a fluid idealization support it (see
    /// [`crate::ProtocolInstaller::fluid_model`]).
    Fluid,
}

impl SimBackend {
    /// The spec token (`packet` / `flow` / `fluid`) written to and parsed from
    /// scenario specs.
    pub fn token(&self) -> &'static str {
        match self {
            SimBackend::Packet => "packet",
            SimBackend::Flow => "flow",
            SimBackend::Fluid => "fluid",
        }
    }

    /// Every backend, in spec-token order.
    pub fn all() -> [SimBackend; 3] {
        [SimBackend::Packet, SimBackend::Flow, SimBackend::Fluid]
    }
}

impl fmt::Display for SimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for SimBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "packet" => Ok(SimBackend::Packet),
            "flow" => Ok(SimBackend::Flow),
            "fluid" => Ok(SimBackend::Fluid),
            other => Err(format!(
                "unknown backend {other:?} (want packet, flow or fluid)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        for b in SimBackend::all() {
            assert_eq!(b.token().parse::<SimBackend>().unwrap(), b);
            assert_eq!(b.to_string(), b.token());
        }
        assert!("liquid".parse::<SimBackend>().is_err());
        assert_eq!(SimBackend::default(), SimBackend::Packet);
    }
}
