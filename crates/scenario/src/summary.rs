//! Typed run outcomes: the [`RunSummary`] a scenario run produces, on either
//! backend, plus the [`BackendResults`] holding the engine-specific records.

use std::fmt::Write as _;

use pdq_flowsim::{FlowLevelResults, FluidResults};
use pdq_netsim::{FlowOutcome, FlowSpec, SimResults, SimTime};

use crate::backend::SimBackend;
use crate::scenario::Scenario;

/// The engine-specific result records behind a [`RunSummary`]: full packet-level
/// [`SimResults`] (per-flow records, link counters, traces), flow-level
/// [`FlowLevelResults`] (per-flow completion records), fluid-model
/// [`FluidResults`] (per-flow §2.1 completion times), or the headline-only
/// [`CachedResults`] of a summary restored from the result cache.
#[derive(Clone, Debug)]
pub enum BackendResults {
    /// Results of a packet-level run. Boxed: `SimResults` is by far the largest
    /// record (flow/link/trace maps plus scheduler telemetry) and would otherwise
    /// dominate the size of every `RunSummary`.
    Packet(Box<SimResults>),
    /// Results of a flow-level run.
    Flow(FlowLevelResults),
    /// Results of a §2.1 fluid-model run.
    Fluid(FluidResults),
    /// A summary restored from a [`crate::cache::ResultCache`] record: the original
    /// engine's per-flow records are not persisted, only which backend ran and the
    /// run's determinism fingerprint.
    Cached(CachedResults),
}

/// What survives of a run's engine-specific results in a cache record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedResults {
    /// The backend the original run executed on.
    pub backend: SimBackend,
    /// The original run's determinism fingerprint ([`RunSummary::fingerprint`]).
    pub fingerprint: String,
}

impl BackendResults {
    /// The packet-level results, if this was a packet-level run.
    pub fn packet(&self) -> Option<&SimResults> {
        match self {
            BackendResults::Packet(r) => Some(r),
            _ => None,
        }
    }

    /// The flow-level results, if this was a flow-level run.
    pub fn flow(&self) -> Option<&FlowLevelResults> {
        match self {
            BackendResults::Flow(r) => Some(r),
            _ => None,
        }
    }

    /// The fluid-model results, if this was a fluid run.
    pub fn fluid(&self) -> Option<&FluidResults> {
        match self {
            BackendResults::Fluid(r) => Some(r),
            _ => None,
        }
    }

    /// The cache-restored results, if this summary came from a cache record.
    pub fn cached(&self) -> Option<&CachedResults> {
        match self {
            BackendResults::Cached(r) => Some(r),
            _ => None,
        }
    }

    /// Which backend produced these results (for a cached summary: the backend the
    /// original run executed on).
    pub fn backend(&self) -> SimBackend {
        match self {
            BackendResults::Packet(_) => SimBackend::Packet,
            BackendResults::Flow(_) => SimBackend::Flow,
            BackendResults::Fluid(_) => SimBackend::Fluid,
            BackendResults::Cached(r) => r.backend,
        }
    }
}

/// The typed outcome of one scenario run: headline statistics plus the full
/// [`BackendResults`] for callers that need traces or per-flow records.
///
/// Counts cover top-level flows only (M-PDQ subflows are accounted to their parent).
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Name of the scenario that produced this run.
    pub scenario: String,
    /// Protocol spec string the scenario ran with (registry name).
    pub protocol: String,
    /// Display label of the resolved installer.
    pub protocol_label: String,
    /// The backend the run executed on.
    pub backend: SimBackend,
    /// The run's seed.
    pub seed: u64,
    /// Total top-level flows injected.
    pub flows: usize,
    /// Flows that delivered all bytes.
    pub completed: usize,
    /// Flows given up on (PDQ Early Termination / D3 quenching).
    pub terminated: usize,
    /// Flows the router could not place (packet backend only).
    pub failed: usize,
    /// Flows still active when the run stopped.
    pub unfinished: usize,
    /// Deadline-constrained flows.
    pub deadline_flows: usize,
    /// Deadline-constrained flows that completed in time.
    pub deadlines_met: usize,
    /// Mean completion time over completed flows, seconds.
    pub mean_fct_secs: Option<f64>,
    /// 99th-percentile completion time, seconds.
    pub p99_fct_secs: Option<f64>,
    /// Worst completion time, seconds.
    pub max_fct_secs: Option<f64>,
    /// Sum of distinct payload bytes delivered across all flows. The flow-level
    /// model has no per-byte accounting, so flow runs count completed flows' sizes.
    pub goodput_bytes: u64,
    /// Simulated time at which the run stopped (flow backend: last completion).
    pub end_time: SimTime,
    /// Coflows in the workload (0 unless the workload tags flows with coflows;
    /// populated by [`RunSummary::attach_coflows`]).
    pub coflows: usize,
    /// Coflows whose every member flow completed.
    pub coflows_completed: usize,
    /// Coflows carrying a group deadline.
    pub coflow_deadlines: usize,
    /// Deadline-carrying coflows whose last member completed in time.
    pub coflow_deadlines_met: usize,
    /// Mean coflow completion time over completed coflows, seconds.
    pub mean_cct_secs: Option<f64>,
    /// 95th-percentile coflow completion time over completed coflows, seconds.
    pub p95_cct_secs: Option<f64>,
    /// The full engine-specific results.
    pub results: BackendResults,
}

impl RunSummary {
    /// Summarize packet-level `results` for `scenario`.
    pub fn new(scenario: &Scenario, protocol_label: String, results: SimResults) -> Self {
        let mut flows = 0;
        let mut completed = 0;
        let mut terminated = 0;
        let mut failed = 0;
        let mut unfinished = 0;
        let mut deadline_flows = 0;
        let mut deadlines_met = 0;
        let mut goodput_bytes = 0u64;
        for r in results.top_level_flows() {
            flows += 1;
            match r.outcome() {
                FlowOutcome::Completed => completed += 1,
                FlowOutcome::Terminated => terminated += 1,
                FlowOutcome::Failed => failed += 1,
                FlowOutcome::Active => unfinished += 1,
            }
            if r.spec.deadline.is_some() {
                deadline_flows += 1;
                if r.met_deadline() {
                    deadlines_met += 1;
                }
            }
            goodput_bytes += r.bytes_acked;
        }
        RunSummary {
            scenario: scenario.name.clone(),
            protocol: scenario.protocol.clone(),
            protocol_label,
            backend: SimBackend::Packet,
            seed: scenario.seed,
            flows,
            completed,
            terminated,
            failed,
            unfinished,
            deadline_flows,
            deadlines_met,
            mean_fct_secs: results.mean_fct_all_secs(),
            p99_fct_secs: results.fct_percentile_secs(99.0, |_| true),
            max_fct_secs: results.max_fct_secs(|_| true),
            goodput_bytes,
            end_time: results.end_time,
            coflows: 0,
            coflows_completed: 0,
            coflow_deadlines: 0,
            coflow_deadlines_met: 0,
            mean_cct_secs: None,
            p95_cct_secs: None,
            results: BackendResults::Packet(Box::new(results)),
        }
    }

    /// Summarize flow-level `results` for `scenario`.
    pub fn from_flow(
        scenario: &Scenario,
        protocol_label: String,
        results: FlowLevelResults,
    ) -> Self {
        let mut completed = 0;
        let mut terminated = 0;
        let mut unfinished = 0;
        let mut deadline_flows = 0;
        let mut deadlines_met = 0;
        let mut goodput_bytes = 0u64;
        let mut end_time = SimTime::ZERO;
        for r in results.flows.values() {
            match (r.completed_at, r.terminated) {
                (Some(done), _) => {
                    completed += 1;
                    goodput_bytes += r.size_bytes;
                    end_time = end_time.max(done);
                }
                (None, true) => terminated += 1,
                (None, false) => unfinished += 1,
            }
            if r.deadline.is_some() {
                deadline_flows += 1;
                if r.met_deadline() {
                    deadlines_met += 1;
                }
            }
        }
        RunSummary {
            scenario: scenario.name.clone(),
            protocol: scenario.protocol.clone(),
            protocol_label,
            backend: SimBackend::Flow,
            seed: scenario.seed,
            flows: results.flows.len(),
            completed,
            terminated,
            failed: 0,
            unfinished,
            deadline_flows,
            deadlines_met,
            mean_fct_secs: results.mean_fct_all_secs(),
            p99_fct_secs: results.fct_percentile_secs(99.0),
            max_fct_secs: results.max_fct_secs(),
            goodput_bytes,
            end_time,
            coflows: 0,
            coflows_completed: 0,
            coflow_deadlines: 0,
            coflow_deadlines_met: 0,
            mean_cct_secs: None,
            p95_cct_secs: None,
            results: BackendResults::Flow(results),
        }
    }

    /// Summarize fluid-model `results` for `scenario`.
    ///
    /// The fluid model's unit-rate bottleneck serves one size unit per second, so a
    /// flow's size doubles as the bytes delivered on completion, and completion
    /// times convert to [`SimTime`] directly as seconds.
    pub fn from_fluid(scenario: &Scenario, protocol_label: String, results: FluidResults) -> Self {
        let mut goodput_bytes = 0u64;
        for r in &results.flows {
            if r.completion.is_some() {
                goodput_bytes += r.flow.size as u64;
            }
        }
        RunSummary {
            scenario: scenario.name.clone(),
            protocol: scenario.protocol.clone(),
            protocol_label,
            backend: SimBackend::Fluid,
            seed: scenario.seed,
            flows: results.flows.len(),
            completed: results.completed(),
            terminated: 0,
            failed: 0,
            unfinished: results.flows.len() - results.completed(),
            deadline_flows: results.deadline_flows(),
            deadlines_met: results.deadlines_met(),
            mean_fct_secs: results.mean_fct_secs(),
            p99_fct_secs: results.fct_percentile_secs(99.0),
            max_fct_secs: results.max_fct_secs(),
            goodput_bytes,
            end_time: SimTime::from_secs_f64(results.end_time_secs()),
            coflows: 0,
            coflows_completed: 0,
            coflow_deadlines: 0,
            coflow_deadlines_met: 0,
            mean_cct_secs: None,
            p95_cct_secs: None,
            results: BackendResults::Fluid(results),
        }
    }

    /// The packet-level results. Panics for other backends — use it only where the
    /// caller controls the backend (figure code reading traces or link counters).
    pub fn packet(&self) -> &SimResults {
        self.results
            .packet()
            .expect("RunSummary::packet() on a non-packet run")
    }

    /// The flow-level results. Panics for other backends.
    pub fn flow(&self) -> &FlowLevelResults {
        self.results
            .flow()
            .expect("RunSummary::flow() on a non-flow-level run")
    }

    /// The fluid-model results. Panics for other backends.
    pub fn fluid(&self) -> &FluidResults {
        self.results
            .fluid()
            .expect("RunSummary::fluid() on a non-fluid run")
    }

    /// Compute coflow-level metrics (CCT, coflow deadline hits) by joining the
    /// workload's [`pdq_netsim::CoflowTag`]s with this run's per-flow completions.
    ///
    /// `specs` is the materialized flow set the run executed; untagged flows are
    /// ignored, and a workload with no tagged flows leaves the summary unchanged
    /// (so non-coflow runs — and their fingerprints — are untouched). A coflow
    /// counts as completed only when *every* member delivered all bytes; its CCT is
    /// the last member's completion minus the group's earliest member arrival
    /// (fluid runs start all flows at time zero, so the fluid CCT is simply the
    /// last member's completion time). Cached summaries keep their stored metrics.
    pub fn attach_coflows(&mut self, specs: &[FlowSpec]) {
        use std::collections::BTreeMap;

        struct Group {
            arrival: SimTime,
            deadline: Option<SimTime>,
            members: Vec<u64>,
        }
        let mut groups: BTreeMap<u64, Group> = BTreeMap::new();
        for s in specs {
            if let Some(tag) = s.coflow {
                let g = groups.entry(tag.id.value()).or_insert(Group {
                    arrival: s.arrival,
                    deadline: tag.deadline,
                    members: Vec::new(),
                });
                g.arrival = g.arrival.min(s.arrival);
                g.members.push(s.id.value());
            }
        }
        if groups.is_empty() {
            return;
        }
        // Per-flow completion times in nanoseconds, by flow id.
        let (done, fluid): (std::collections::HashMap<u64, u64>, bool) = match &self.results {
            BackendResults::Cached(_) => return,
            BackendResults::Packet(r) => (
                r.top_level_flows()
                    .filter_map(|f| f.completed_at.map(|t| (f.spec.id.value(), t.as_nanos())))
                    .collect(),
                false,
            ),
            BackendResults::Flow(r) => (
                r.flows
                    .values()
                    .filter_map(|f| f.completed_at.map(|t| (f.id.value(), t.as_nanos())))
                    .collect(),
                false,
            ),
            BackendResults::Fluid(r) => (
                r.flows
                    .iter()
                    .filter_map(|f| {
                        f.completion
                            .map(|c| (f.id, SimTime::from_secs_f64(c).as_nanos()))
                    })
                    .collect(),
                true,
            ),
        };
        let mut ccts_ns: Vec<u64> = Vec::new();
        for g in groups.values() {
            self.coflows += 1;
            if g.deadline.is_some() {
                self.coflow_deadlines += 1;
            }
            let mut last = 0u64;
            let mut all_done = true;
            for id in &g.members {
                match done.get(id) {
                    Some(&t) => last = last.max(t),
                    None => all_done = false,
                }
            }
            if !all_done {
                continue;
            }
            self.coflows_completed += 1;
            let start = if fluid { 0 } else { g.arrival.as_nanos() };
            ccts_ns.push(last.saturating_sub(start));
            if let Some(d) = g.deadline {
                if last <= d.as_nanos() {
                    self.coflow_deadlines_met += 1;
                }
            }
        }
        if ccts_ns.is_empty() {
            return;
        }
        ccts_ns.sort_unstable();
        let sum: u64 = ccts_ns.iter().sum();
        self.mean_cct_secs = Some(sum as f64 / ccts_ns.len() as f64 / 1e9);
        let idx = ((ccts_ns.len() as f64 * 0.95).ceil() as usize).clamp(1, ccts_ns.len()) - 1;
        self.p95_cct_secs = Some(ccts_ns[idx] as f64 / 1e9);
    }

    /// Fraction of deadline-carrying coflows whose last member completed in time;
    /// `None` when no coflow carried a deadline.
    pub fn coflow_deadline_miss_rate(&self) -> Option<f64> {
        if self.coflow_deadlines == 0 {
            None
        } else {
            Some(1.0 - self.coflow_deadlines_met as f64 / self.coflow_deadlines as f64)
        }
    }

    /// Application throughput (§5.1): fraction of deadline-constrained flows that met
    /// their deadline; `None` when no flow carried a deadline.
    pub fn application_throughput(&self) -> Option<f64> {
        if self.deadline_flows == 0 {
            None
        } else {
            Some(self.deadlines_met as f64 / self.deadline_flows as f64)
        }
    }

    /// Fraction of deadline-constrained flows that missed their deadline.
    pub fn deadline_miss_rate(&self) -> Option<f64> {
        self.application_throughput().map(|at| 1.0 - at)
    }

    /// A deterministic digest of the run: every top-level flow's outcome and timing,
    /// sorted by flow id, plus the end time. Two runs of the same scenario — on any
    /// thread count — must produce identical fingerprints; the sweep-determinism
    /// tests compare these. A summary restored from a cache record returns the
    /// original run's stored fingerprint, so cached and fresh results of the same
    /// scenario always agree.
    pub fn fingerprint(&self) -> String {
        let mut rows: Vec<(u64, String)> = match &self.results {
            BackendResults::Cached(r) => return r.fingerprint.clone(),
            BackendResults::Packet(results) => results
                .top_level_flows()
                .map(|r| {
                    let done = r.completed_at.map(|t| t.as_nanos()).unwrap_or(0);
                    let term = r.terminated_at.map(|t| t.as_nanos()).unwrap_or(0);
                    (
                        r.spec.id.value(),
                        format!(
                            "{}:{:?}:{}:{}:{}",
                            r.spec.id.value(),
                            r.outcome(),
                            done,
                            term,
                            r.bytes_acked
                        ),
                    )
                })
                .collect(),
            BackendResults::Flow(results) => results
                .flows
                .values()
                .map(|r| {
                    let outcome = match (r.completed_at, r.terminated) {
                        (Some(_), _) => "Completed",
                        (None, true) => "Terminated",
                        (None, false) => "Active",
                    };
                    let done = r.completed_at.map(|t| t.as_nanos()).unwrap_or(0);
                    let bytes = if r.completed_at.is_some() {
                        r.size_bytes
                    } else {
                        0
                    };
                    (
                        r.id.value(),
                        format!("{}:{}:{}:0:{}", r.id.value(), outcome, done, bytes),
                    )
                })
                .collect(),
            BackendResults::Fluid(results) => results
                .flows
                .iter()
                .map(|r| {
                    let outcome = if r.completion.is_some() {
                        "Completed"
                    } else {
                        "Active"
                    };
                    let done = r
                        .completion
                        .map(|c| SimTime::from_secs_f64(c).as_nanos())
                        .unwrap_or(0);
                    let bytes = if r.completion.is_some() {
                        r.flow.size as u64
                    } else {
                        0
                    };
                    (r.id, format!("{}:{}:{}:0:{}", r.id, outcome, done, bytes))
                })
                .collect(),
        };
        rows.sort();
        let mut out = format!("end={};", self.end_time.as_nanos());
        for (_, row) in rows {
            let _ = write!(out, "{row};");
        }
        // Coflow runs additionally pin the derived CCT metrics; non-coflow runs
        // keep the historical fingerprint bytes.
        if self.coflows > 0 {
            let opt = |v: Option<f64>| v.map(|v| v.to_string()).unwrap_or_else(|| "-".into());
            let _ = write!(
                out,
                "cct={}:{}:{}:{}:{}:{};",
                self.coflows,
                self.coflows_completed,
                self.coflow_deadlines,
                self.coflow_deadlines_met,
                opt(self.mean_cct_secs),
                opt(self.p95_cct_secs),
            );
        }
        out
    }

    /// Serialize the headline fields plus the determinism fingerprint as plain
    /// `key = value` lines — the persisted body of a cache record. The full
    /// engine-specific results are *not* serialized; [`RunSummary::from_record`]
    /// restores them as [`BackendResults::Cached`].
    ///
    /// `f64` metrics use Rust's shortest-round-trip `Display` form, so
    /// `to_record` → `from_record` reproduces every headline value bit-exactly
    /// (absent metrics serialize as `-`).
    pub fn to_record(&self) -> String {
        let opt = |v: Option<f64>| v.map(|v| v.to_string()).unwrap_or_else(|| "-".into());
        let mut out = String::from("# pdq run record v1\n");
        for (k, v) in [
            ("scenario", self.scenario.clone()),
            ("protocol", self.protocol.clone()),
            ("protocol_label", self.protocol_label.clone()),
            ("backend", self.backend.token().to_string()),
            ("seed", self.seed.to_string()),
            ("flows", self.flows.to_string()),
            ("completed", self.completed.to_string()),
            ("terminated", self.terminated.to_string()),
            ("failed", self.failed.to_string()),
            ("unfinished", self.unfinished.to_string()),
            ("deadline_flows", self.deadline_flows.to_string()),
            ("deadlines_met", self.deadlines_met.to_string()),
            ("mean_fct_secs", opt(self.mean_fct_secs)),
            ("p99_fct_secs", opt(self.p99_fct_secs)),
            ("max_fct_secs", opt(self.max_fct_secs)),
            ("goodput_bytes", self.goodput_bytes.to_string()),
            ("end_time_ns", self.end_time.as_nanos().to_string()),
        ] {
            let _ = writeln!(out, "{k} = {v}");
        }
        // Coflow metrics are written only when coflows are present, so non-coflow
        // records keep their historical bytes.
        if self.coflows > 0 {
            for (k, v) in [
                ("coflows", self.coflows.to_string()),
                ("coflows_completed", self.coflows_completed.to_string()),
                ("coflow_deadlines", self.coflow_deadlines.to_string()),
                (
                    "coflow_deadlines_met",
                    self.coflow_deadlines_met.to_string(),
                ),
                ("mean_cct_secs", opt(self.mean_cct_secs)),
                ("p95_cct_secs", opt(self.p95_cct_secs)),
            ] {
                let _ = writeln!(out, "{k} = {v}");
            }
        }
        let _ = writeln!(out, "fingerprint = {}", self.fingerprint());
        out
    }

    /// Parse the [`RunSummary::to_record`] format back into a summary whose
    /// `results` are [`BackendResults::Cached`]. Missing or malformed required keys
    /// error; unknown keys are ignored (cache records carry extra bookkeeping lines
    /// and future versions may add fields).
    pub fn from_record(text: &str) -> Result<RunSummary, String> {
        let mut pairs: Vec<(&str, &str)> = Vec::new();
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((k, v)) = line.split_once('=') {
                pairs.push((k.trim(), v.trim()));
            }
        }
        let get = |key: &str| -> Result<&str, String> {
            pairs
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("missing key {key}"))
        };
        fn num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, String> {
            v.parse().map_err(|_| format!("bad {key}: {v:?}"))
        }
        let opt = |key: &str| -> Result<Option<f64>, String> {
            match get(key)? {
                "-" => Ok(None),
                v => num(key, v).map(Some),
            }
        };
        // Coflow keys are optional: records from non-coflow runs (and older
        // records) simply omit them.
        let get_opt = |key: &str| pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
        let opt_count = |key: &str| -> Result<usize, String> {
            match get_opt(key) {
                Some(v) => num(key, v),
                None => Ok(0),
            }
        };
        let opt_secs = |key: &str| -> Result<Option<f64>, String> {
            match get_opt(key) {
                Some("-") | None => Ok(None),
                Some(v) => num(key, v).map(Some),
            }
        };
        let backend: SimBackend = get("backend")?.parse()?;
        Ok(RunSummary {
            scenario: get("scenario")?.to_string(),
            protocol: get("protocol")?.to_string(),
            protocol_label: get("protocol_label")?.to_string(),
            backend,
            seed: num("seed", get("seed")?)?,
            flows: num("flows", get("flows")?)?,
            completed: num("completed", get("completed")?)?,
            terminated: num("terminated", get("terminated")?)?,
            failed: num("failed", get("failed")?)?,
            unfinished: num("unfinished", get("unfinished")?)?,
            deadline_flows: num("deadline_flows", get("deadline_flows")?)?,
            deadlines_met: num("deadlines_met", get("deadlines_met")?)?,
            mean_fct_secs: opt("mean_fct_secs")?,
            p99_fct_secs: opt("p99_fct_secs")?,
            max_fct_secs: opt("max_fct_secs")?,
            goodput_bytes: num("goodput_bytes", get("goodput_bytes")?)?,
            end_time: SimTime::from_nanos(num("end_time_ns", get("end_time_ns")?)?),
            coflows: opt_count("coflows")?,
            coflows_completed: opt_count("coflows_completed")?,
            coflow_deadlines: opt_count("coflow_deadlines")?,
            coflow_deadlines_met: opt_count("coflow_deadlines_met")?,
            mean_cct_secs: opt_secs("mean_cct_secs")?,
            p95_cct_secs: opt_secs("p95_cct_secs")?,
            results: BackendResults::Cached(CachedResults {
                backend,
                fingerprint: get("fingerprint")?.to_string(),
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cached_summary() -> RunSummary {
        RunSummary {
            scenario: "cell/seed=3".into(),
            protocol: "pdq(full)".into(),
            protocol_label: "PDQ(Full)".into(),
            backend: SimBackend::Flow,
            seed: 3,
            flows: 10,
            completed: 8,
            terminated: 1,
            failed: 0,
            unfinished: 1,
            deadline_flows: 5,
            deadlines_met: 4,
            mean_fct_secs: Some(0.012_345_678_901_234_567),
            p99_fct_secs: Some(0.2),
            max_fct_secs: None,
            goodput_bytes: 123_456,
            end_time: SimTime::from_nanos(987_654_321),
            coflows: 0,
            coflows_completed: 0,
            coflow_deadlines: 0,
            coflow_deadlines_met: 0,
            mean_cct_secs: None,
            p95_cct_secs: None,
            results: BackendResults::Cached(CachedResults {
                backend: SimBackend::Flow,
                fingerprint: "end=987654321;1:Completed:5:0:100;".into(),
            }),
        }
    }

    #[test]
    fn record_round_trips_bit_exactly() {
        let summary = cached_summary();
        let back = RunSummary::from_record(&summary.to_record()).unwrap();
        assert_eq!(back.scenario, summary.scenario);
        assert_eq!(back.protocol, summary.protocol);
        assert_eq!(back.protocol_label, summary.protocol_label);
        assert_eq!(back.backend, summary.backend);
        assert_eq!(back.seed, summary.seed);
        assert_eq!(back.flows, summary.flows);
        assert_eq!(back.completed, summary.completed);
        assert_eq!(back.terminated, summary.terminated);
        assert_eq!(back.unfinished, summary.unfinished);
        assert_eq!(back.deadline_flows, summary.deadline_flows);
        assert_eq!(back.deadlines_met, summary.deadlines_met);
        // f64 Display is shortest-round-trip: bit-exact after parse.
        assert_eq!(back.mean_fct_secs, summary.mean_fct_secs);
        assert_eq!(back.p99_fct_secs, summary.p99_fct_secs);
        assert_eq!(back.max_fct_secs, None);
        assert_eq!(back.goodput_bytes, summary.goodput_bytes);
        assert_eq!(back.end_time, summary.end_time);
        assert_eq!(back.fingerprint(), summary.fingerprint());
        assert_eq!(back.results.backend(), SimBackend::Flow);
        assert!(back.results.cached().is_some());
        // Serialization is stable: a round-tripped record re-serializes identically.
        assert_eq!(back.to_record(), summary.to_record());
    }

    #[test]
    fn coflow_metrics_round_trip_and_default_to_zero_when_absent() {
        // Pre-coflow records carry no coflow keys and parse with zeroed metrics.
        let old = cached_summary().to_record();
        assert!(!old.contains("coflow"));
        let back = RunSummary::from_record(&old).unwrap();
        assert_eq!(back.coflows, 0);
        assert_eq!(back.mean_cct_secs, None);

        let mut s = cached_summary();
        s.coflows = 4;
        s.coflows_completed = 3;
        s.coflow_deadlines = 2;
        s.coflow_deadlines_met = 1;
        s.mean_cct_secs = Some(0.012_5);
        s.p95_cct_secs = None;
        let back = RunSummary::from_record(&s.to_record()).unwrap();
        assert_eq!(back.coflows, 4);
        assert_eq!(back.coflows_completed, 3);
        assert_eq!(back.coflow_deadlines, 2);
        assert_eq!(back.coflow_deadlines_met, 1);
        assert_eq!(back.mean_cct_secs, Some(0.012_5));
        assert_eq!(back.p95_cct_secs, None);
        assert_eq!(back.to_record(), s.to_record());
        assert_eq!(back.coflow_deadline_miss_rate(), Some(0.5));
    }

    #[test]
    fn from_record_rejects_missing_and_malformed_keys() {
        let record = cached_summary().to_record();
        let without = |key: &str| -> String {
            record
                .lines()
                .filter(|l| !l.starts_with(&format!("{key} =")))
                .map(|l| format!("{l}\n"))
                .collect()
        };
        for key in ["scenario", "backend", "flows", "fingerprint", "end_time_ns"] {
            let err = RunSummary::from_record(&without(key)).unwrap_err();
            assert!(err.contains(key), "{key}: {err}");
        }
        let bad = record.replace("flows = 10", "flows = ten");
        assert!(RunSummary::from_record(&bad).unwrap_err().contains("flows"));
        // Unknown keys are ignored (cache bookkeeping lines ride along).
        let extra = format!("{record}request_fingerprint = abc\n");
        assert!(RunSummary::from_record(&extra).is_ok());
    }
}
