//! Typed run outcomes: the [`RunSummary`] a scenario run produces.

use std::fmt::Write as _;

use pdq_netsim::{FlowOutcome, SimResults, SimTime};

use crate::scenario::Scenario;

/// The typed outcome of one scenario run: headline statistics plus the full
/// [`SimResults`] for callers that need traces or per-flow records.
///
/// Counts cover top-level flows only (M-PDQ subflows are accounted to their parent).
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Name of the scenario that produced this run.
    pub scenario: String,
    /// Protocol spec string the scenario ran with (registry name).
    pub protocol: String,
    /// Display label of the resolved installer.
    pub protocol_label: String,
    /// The run's seed.
    pub seed: u64,
    /// Total top-level flows injected.
    pub flows: usize,
    /// Flows that delivered all bytes.
    pub completed: usize,
    /// Flows given up on (PDQ Early Termination / D3 quenching).
    pub terminated: usize,
    /// Flows the router could not place.
    pub failed: usize,
    /// Flows still active when the run stopped.
    pub unfinished: usize,
    /// Deadline-constrained flows.
    pub deadline_flows: usize,
    /// Deadline-constrained flows that completed in time.
    pub deadlines_met: usize,
    /// Mean completion time over completed flows, seconds.
    pub mean_fct_secs: Option<f64>,
    /// 99th-percentile completion time, seconds.
    pub p99_fct_secs: Option<f64>,
    /// Worst completion time, seconds.
    pub max_fct_secs: Option<f64>,
    /// Sum of distinct payload bytes delivered across all flows.
    pub goodput_bytes: u64,
    /// Simulated time at which the run stopped.
    pub end_time: SimTime,
    /// The full simulation results (per-flow records, link counters, traces).
    pub results: SimResults,
}

impl RunSummary {
    /// Summarize `results` for `scenario`.
    pub fn new(scenario: &Scenario, protocol_label: String, results: SimResults) -> Self {
        let mut summary = RunSummary {
            scenario: scenario.name.clone(),
            protocol: scenario.protocol.clone(),
            protocol_label,
            seed: scenario.seed,
            flows: 0,
            completed: 0,
            terminated: 0,
            failed: 0,
            unfinished: 0,
            deadline_flows: 0,
            deadlines_met: 0,
            mean_fct_secs: results.mean_fct_all_secs(),
            p99_fct_secs: results.fct_percentile_secs(99.0, |_| true),
            max_fct_secs: results.max_fct_secs(|_| true),
            goodput_bytes: 0,
            end_time: results.end_time,
            results,
        };
        for r in summary.results.top_level_flows() {
            summary.flows += 1;
            match r.outcome() {
                FlowOutcome::Completed => summary.completed += 1,
                FlowOutcome::Terminated => summary.terminated += 1,
                FlowOutcome::Failed => summary.failed += 1,
                FlowOutcome::Active => summary.unfinished += 1,
            }
            if r.spec.deadline.is_some() {
                summary.deadline_flows += 1;
                if r.met_deadline() {
                    summary.deadlines_met += 1;
                }
            }
            summary.goodput_bytes += r.bytes_acked;
        }
        summary
    }

    /// Application throughput (§5.1): fraction of deadline-constrained flows that met
    /// their deadline; `None` when no flow carried a deadline.
    pub fn application_throughput(&self) -> Option<f64> {
        if self.deadline_flows == 0 {
            None
        } else {
            Some(self.deadlines_met as f64 / self.deadline_flows as f64)
        }
    }

    /// Fraction of deadline-constrained flows that missed their deadline.
    pub fn deadline_miss_rate(&self) -> Option<f64> {
        self.application_throughput().map(|at| 1.0 - at)
    }

    /// A deterministic digest of the run: every top-level flow's outcome and timing,
    /// sorted by flow id, plus the end time. Two runs of the same scenario — on any
    /// thread count — must produce identical fingerprints; the sweep-determinism
    /// tests compare these.
    pub fn fingerprint(&self) -> String {
        let mut rows: Vec<(u64, String)> = self
            .results
            .top_level_flows()
            .map(|r| {
                let done = r.completed_at.map(|t| t.as_nanos()).unwrap_or(0);
                let term = r.terminated_at.map(|t| t.as_nanos()).unwrap_or(0);
                (
                    r.spec.id.value(),
                    format!(
                        "{}:{:?}:{}:{}:{}",
                        r.spec.id.value(),
                        r.outcome(),
                        done,
                        term,
                        r.bytes_acked
                    ),
                )
            })
            .collect();
        rows.sort();
        let mut out = format!("end={};", self.end_time.as_nanos());
        for (_, row) in rows {
            let _ = write!(out, "{row};");
        }
        out
    }
}
