//! Declarative topology and workload specifications.
//!
//! [`TopologySpec`] and [`WorkloadSpec`] are plain-data descriptions that a
//! [`crate::Scenario`] serializes into its plain-text spec and materializes at run
//! time. They cover every setup the paper's figures use; workload generation
//! reproduces the experiment harness' historical RNG draw order exactly, so a spec
//! plus a seed pins down the flow set byte for byte.

use pdq_netsim::{CoflowId, CoflowTag, FlowSpec, LinkParams, NodeId, SimTime};
use pdq_topology::{
    bcube::{bcube, bcube_with_at_least},
    fattree::fat_tree_with_at_least,
    jellyfish::jellyfish_paper_config,
    single::{default_paper_tree, single_bottleneck, single_bottleneck_with_access_loss},
    wan::{wan, WanParams},
    Topology,
};
use pdq_workloads::{
    coflow_flows, coflow_set, pattern_flows, poisson_flows, query_aggregation_flows, CoflowConfig,
    DeadlineDist, Pattern, PoissonConfig, SizeDist, WorkloadConfig,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A buildable topology. All variants use default (paper) link parameters; the only
/// link-level variation the figures need — access-link loss — is part of
/// [`TopologySpec::SingleBottleneck`].
#[derive(Clone, Debug, PartialEq)]
pub enum TopologySpec {
    /// The paper's default 12-server single-rooted tree (Figure 2a).
    PaperTree,
    /// `senders` hosts behind one switch sending to a single receiver (Figure 2b),
    /// optionally with random loss on the shared access link (Figure 9).
    SingleBottleneck {
        /// Number of sending hosts.
        senders: usize,
        /// Loss rate injected on the switch↔receiver link, both directions.
        access_loss: f64,
    },
    /// Smallest three-level fat-tree with at least `hosts` hosts (Figure 8).
    FatTree {
        /// Minimum host count.
        hosts: usize,
    },
    /// `bcube(n, k)`: BCube with the given level count and switch port count
    /// (Figure 11 uses BCube(2,3)).
    BCube {
        /// BCube level parameter `n`.
        n: usize,
        /// Switch port count `k`.
        k: usize,
    },
    /// Smallest BCube with `n`-port switches and at least `hosts` hosts (Figure 8c).
    BCubeHosts {
        /// Minimum host count.
        hosts: usize,
        /// Switch port count.
        n: usize,
    },
    /// Jellyfish at the paper's 2:1 network:server port ratio with at least `hosts`
    /// hosts, wired with the given graph seed (Figure 8d).
    Jellyfish {
        /// Minimum host count.
        hosts: usize,
        /// Random-graph wiring seed.
        seed: u64,
    },
    /// Inter-datacenter WAN: `sites` site switches in a heterogeneous full
    /// long-haul mesh (10–100 ms RTTs, BDP-scaled queues, optional per-link
    /// loss), `hosts_per_site` hosts per site. See `pdq_topology::wan`.
    Wan {
        /// Number of datacenter sites.
        sites: usize,
        /// Hosts per site.
        hosts_per_site: usize,
        /// Round-trip propagation of the longest site pair, milliseconds.
        rtt_ms: f64,
        /// Line rate of the slowest long-haul pair, Gbit/s.
        gbps: f64,
        /// Random loss probability on every long-haul direction.
        loss_rate: f64,
    },
}

impl TopologySpec {
    /// Build the topology.
    pub fn build(&self) -> Topology {
        let link = LinkParams::default();
        match *self {
            TopologySpec::PaperTree => default_paper_tree(),
            TopologySpec::SingleBottleneck {
                senders,
                access_loss,
            } => {
                if access_loss > 0.0 {
                    single_bottleneck_with_access_loss(senders, link, access_loss)
                } else {
                    single_bottleneck(senders, link)
                }
            }
            TopologySpec::FatTree { hosts } => fat_tree_with_at_least(hosts, link),
            TopologySpec::BCube { n, k } => bcube(n, k, link),
            TopologySpec::BCubeHosts { hosts, n } => bcube_with_at_least(hosts, n, link),
            TopologySpec::Jellyfish { hosts, seed } => jellyfish_paper_config(hosts, seed, link),
            TopologySpec::Wan {
                sites,
                hosts_per_site,
                rtt_ms,
                gbps,
                loss_rate,
            } => wan(WanParams {
                sites,
                hosts_per_site,
                rtt_ms,
                gbps,
                loss_rate,
            }),
        }
    }

    /// One-token spec form, parseable back via [`TopologySpec::parse`].
    pub fn spec_token(&self) -> String {
        match *self {
            TopologySpec::PaperTree => "paper_tree".into(),
            TopologySpec::SingleBottleneck {
                senders,
                access_loss,
            } => {
                if access_loss > 0.0 {
                    format!("single_bottleneck:{senders}:loss={access_loss}")
                } else {
                    format!("single_bottleneck:{senders}")
                }
            }
            TopologySpec::FatTree { hosts } => format!("fat_tree:{hosts}"),
            TopologySpec::BCube { n, k } => format!("bcube:{n}:{k}"),
            TopologySpec::BCubeHosts { hosts, n } => format!("bcube_hosts:{hosts}:{n}"),
            TopologySpec::Jellyfish { hosts, seed } => format!("jellyfish:{hosts}:{seed}"),
            TopologySpec::Wan {
                sites,
                hosts_per_site,
                rtt_ms,
                gbps,
                loss_rate,
            } => {
                if loss_rate > 0.0 {
                    format!("wan:{sites}:{hosts_per_site}:{rtt_ms}:{gbps}:loss={loss_rate}")
                } else {
                    format!("wan:{sites}:{hosts_per_site}:{rtt_ms}:{gbps}")
                }
            }
        }
    }

    /// Parse the [`TopologySpec::spec_token`] form.
    pub fn parse(s: &str) -> Result<Self, String> {
        let bad = || format!("unrecognized topology: {s:?}");
        if s == "paper_tree" {
            return Ok(TopologySpec::PaperTree);
        }
        let mut parts = s.split(':');
        let kind = parts.next().ok_or_else(bad)?;
        let next_usize = |parts: &mut std::str::Split<'_, char>| -> Result<usize, String> {
            parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())
        };
        let spec = match kind {
            "single_bottleneck" => {
                let senders = next_usize(&mut parts)?;
                let access_loss = match parts.next() {
                    None => 0.0,
                    Some(arg) => arg
                        .strip_prefix("loss=")
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(bad)?,
                };
                TopologySpec::SingleBottleneck {
                    senders,
                    access_loss,
                }
            }
            "fat_tree" => TopologySpec::FatTree {
                hosts: next_usize(&mut parts)?,
            },
            "bcube" => TopologySpec::BCube {
                n: next_usize(&mut parts)?,
                k: next_usize(&mut parts)?,
            },
            "bcube_hosts" => TopologySpec::BCubeHosts {
                hosts: next_usize(&mut parts)?,
                n: next_usize(&mut parts)?,
            },
            "jellyfish" => {
                let hosts = next_usize(&mut parts)?;
                let seed = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                TopologySpec::Jellyfish { hosts, seed }
            }
            "wan" => {
                let sites = next_usize(&mut parts)?;
                let hosts_per_site = next_usize(&mut parts)?;
                let mut next_f64 = || -> Result<f64, String> {
                    parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())
                };
                let rtt_ms = next_f64()?;
                let gbps = next_f64()?;
                let loss_rate = match parts.next() {
                    None => 0.0,
                    Some(arg) => arg
                        .strip_prefix("loss=")
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(bad)?,
                };
                TopologySpec::Wan {
                    sites,
                    hosts_per_site,
                    rtt_ms,
                    gbps,
                    loss_rate,
                }
            }
            _ => return Err(bad()),
        };
        if parts.next().is_some() {
            return Err(bad());
        }
        Ok(spec)
    }
}

/// A generatable workload: everything a run needs to materialize its flow set from a
/// topology and a seed.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// Query aggregation (§5.2): `flows` flows, all towards the topology's last host.
    QueryAggregation {
        /// Number of flows.
        flows: usize,
        /// Flow-size distribution.
        sizes: SizeDist,
        /// Deadline distribution.
        deadlines: DeadlineDist,
    },
    /// A static pattern workload: every pattern pair carries `flows_per_pair` flows,
    /// all arriving at time zero (Figures 4 and 8).
    Pattern {
        /// Sending pattern.
        pattern: Pattern,
        /// Flow-size distribution.
        sizes: SizeDist,
        /// Deadline distribution.
        deadlines: DeadlineDist,
        /// Flows per (sender, receiver) pair.
        flows_per_pair: usize,
    },
    /// Poisson flow arrivals over a pattern; short flows get deadlines (Figure 5).
    Poisson {
        /// Aggregate arrival rate over the whole network, flows per second.
        rate_flows_per_sec: f64,
        /// Arrivals are generated over `[0, duration)`.
        duration: SimTime,
        /// Flow-size distribution.
        sizes: SizeDist,
        /// Deadlines applied to flows at or below the short-flow threshold.
        short_deadlines: DeadlineDist,
        /// Flows of at most this many bytes count as short / deadline-constrained.
        short_flow_threshold_bytes: u64,
        /// How (src, dst) pairs are drawn.
        pattern: Pattern,
    },
    /// Random-permutation traffic at a fractional load: only `load × hosts` senders
    /// transmit, one flow each (Figure 11).
    PermutationAtLoad {
        /// Fraction of hosts that send, in `(0, 1]`.
        load: f64,
        /// Flow-size distribution.
        sizes: SizeDist,
        /// Deadline distribution (deadlines are absolute; arrivals are at time zero).
        deadlines: DeadlineDist,
    },
    /// `flows` flows between random distinct host pairs with arrivals spread uniformly
    /// over `[0, spread]` — the engine-scale stress scenario.
    RandomPairs {
        /// Number of flows.
        flows: usize,
        /// Arrival spread.
        spread: SimTime,
        /// Flow-size distribution.
        sizes: SizeDist,
    },
    /// Coflow-structured aggregation traffic: `coflows` groups of `width` member
    /// flows each, every group converging on one reducer host, with Poisson group
    /// arrivals and optional per-coflow deadlines. Emitted flows carry a
    /// [`CoflowTag`], so coflow-aware schedulers and CCT metrics can recover
    /// membership.
    Coflow {
        /// Number of coflows.
        coflows: usize,
        /// Member flows per coflow (aggregation fan-in).
        width: usize,
        /// Coflow arrival rate (Poisson); `<= 0` starts every coflow at time zero.
        rate_coflows_per_sec: f64,
        /// Member flow-size distribution.
        sizes: SizeDist,
        /// Per-coflow deadline distribution (relative to the coflow's arrival).
        deadlines: DeadlineDist,
    },
    /// An explicit flow list (node ids refer to the built topology).
    Manual(Vec<FlowSpec>),
}

impl WorkloadSpec {
    /// Materialize the flow set on `topo`, deterministically in `seed`.
    ///
    /// Flow ids start at 1. Each variant reproduces the exact RNG draw order the
    /// corresponding figure historically used, so scenario runs are byte-identical to
    /// the pre-scenario harness.
    pub fn generate(&self, topo: &Topology, seed: u64) -> Vec<FlowSpec> {
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            WorkloadSpec::QueryAggregation {
                flows,
                sizes,
                deadlines,
            } => query_aggregation_flows(topo, *flows, sizes, deadlines, 1, &mut rng),
            WorkloadSpec::Pattern {
                pattern,
                sizes,
                deadlines,
                flows_per_pair,
            } => {
                let cfg = WorkloadConfig {
                    pattern: pattern.clone(),
                    sizes: sizes.clone(),
                    deadlines: deadlines.clone(),
                    flows_per_pair: *flows_per_pair,
                    ..Default::default()
                };
                pattern_flows(topo, &cfg, 1, &mut rng)
            }
            WorkloadSpec::Poisson {
                rate_flows_per_sec,
                duration,
                sizes,
                short_deadlines,
                short_flow_threshold_bytes,
                pattern,
            } => {
                let cfg = PoissonConfig {
                    rate_flows_per_sec: *rate_flows_per_sec,
                    duration: *duration,
                    sizes: sizes.clone(),
                    short_deadlines: short_deadlines.clone(),
                    short_flow_threshold_bytes: *short_flow_threshold_bytes,
                    pattern: pattern.clone(),
                };
                poisson_flows(topo, &cfg, 1, &mut rng)
            }
            WorkloadSpec::PermutationAtLoad {
                load,
                sizes,
                deadlines,
            } => {
                let pairs = Pattern::RandomPermutation.pairs(topo, &mut rng);
                let n_senders = ((topo.host_count() as f64) * load).round().max(1.0) as usize;
                pairs
                    .into_iter()
                    .take(n_senders)
                    .enumerate()
                    .map(|(i, (src, dst))| {
                        let mut spec =
                            FlowSpec::new(i as u64 + 1, src, dst, sizes.sample(&mut rng).max(1));
                        if let Some(d) = deadlines.sample(&mut rng) {
                            spec = spec.with_deadline(d);
                        }
                        spec
                    })
                    .collect()
            }
            WorkloadSpec::RandomPairs {
                flows,
                spread,
                sizes,
            } => {
                let hosts: &[NodeId] = &topo.hosts;
                let mut out = Vec::with_capacity(*flows);
                for i in 0..*flows {
                    let src = hosts[rng.gen_range(0..hosts.len())];
                    let mut dst = hosts[rng.gen_range(0..hosts.len())];
                    while dst == src {
                        dst = hosts[rng.gen_range(0..hosts.len())];
                    }
                    let at = SimTime::from_nanos(rng.gen_range(0..=spread.as_nanos()));
                    out.push(
                        FlowSpec::new(i as u64 + 1, src, dst, sizes.sample(&mut rng).max(1))
                            .with_arrival(at),
                    );
                }
                out
            }
            WorkloadSpec::Coflow {
                coflows,
                width,
                rate_coflows_per_sec,
                sizes,
                deadlines,
            } => {
                let cfg = CoflowConfig {
                    coflows: *coflows,
                    width: *width,
                    rate_coflows_per_sec: *rate_coflows_per_sec,
                    sizes: sizes.clone(),
                    deadlines: deadlines.clone(),
                };
                coflow_flows(&coflow_set(topo, &cfg, 1, 1, &mut rng))
            }
            WorkloadSpec::Manual(flows) => flows.clone(),
        }
    }

    /// The workload with its flow-size distribution replaced — the flow-size sweep
    /// axis. Errors for [`WorkloadSpec::Manual`], whose flows are explicit.
    pub fn with_sizes(&self, sizes: SizeDist) -> Result<WorkloadSpec, String> {
        let mut w = self.clone();
        match &mut w {
            WorkloadSpec::QueryAggregation { sizes: s, .. }
            | WorkloadSpec::Pattern { sizes: s, .. }
            | WorkloadSpec::Poisson { sizes: s, .. }
            | WorkloadSpec::PermutationAtLoad { sizes: s, .. }
            | WorkloadSpec::RandomPairs { sizes: s, .. }
            | WorkloadSpec::Coflow { sizes: s, .. } => *s = sizes,
            WorkloadSpec::Manual(_) => {
                return Err("a manual workload has no size distribution to sweep".into())
            }
        }
        Ok(w)
    }

    /// The workload with its deadline distribution replaced — the deadline sweep
    /// axis. For [`WorkloadSpec::Poisson`] this sets the short-flow deadlines;
    /// errors for workloads without a deadline knob (random pairs, manual).
    pub fn with_deadlines(&self, deadlines: DeadlineDist) -> Result<WorkloadSpec, String> {
        let mut w = self.clone();
        match &mut w {
            WorkloadSpec::QueryAggregation { deadlines: d, .. }
            | WorkloadSpec::Pattern { deadlines: d, .. }
            | WorkloadSpec::PermutationAtLoad { deadlines: d, .. }
            | WorkloadSpec::Coflow { deadlines: d, .. } => *d = deadlines,
            WorkloadSpec::Poisson {
                short_deadlines, ..
            } => *short_deadlines = deadlines,
            WorkloadSpec::RandomPairs { .. } => {
                return Err("a random-pairs workload carries no deadlines".into())
            }
            WorkloadSpec::Manual(_) => {
                return Err("a manual workload has no deadline distribution to sweep".into())
            }
        }
        Ok(w)
    }

    /// The workload with its load knob replaced — the load sweep axis. For
    /// [`WorkloadSpec::PermutationAtLoad`] the value is the sending-host fraction;
    /// for [`WorkloadSpec::Poisson`] it is the aggregate arrival rate in flows per
    /// second. Other workloads have no load parameter and error.
    pub fn with_load(&self, load: f64) -> Result<WorkloadSpec, String> {
        let mut w = self.clone();
        match &mut w {
            WorkloadSpec::PermutationAtLoad { load: l, .. } => *l = load,
            WorkloadSpec::Poisson {
                rate_flows_per_sec, ..
            } => *rate_flows_per_sec = load,
            WorkloadSpec::Coflow {
                rate_coflows_per_sec,
                ..
            } => *rate_coflows_per_sec = load,
            other => {
                return Err(format!(
                    "workload {:?} has no load parameter to sweep",
                    other.kind()
                ))
            }
        }
        Ok(w)
    }

    /// The workload kind token written as the `workload =` line of a scenario spec.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadSpec::QueryAggregation { .. } => "query_aggregation",
            WorkloadSpec::Pattern { .. } => "pattern",
            WorkloadSpec::Poisson { .. } => "poisson",
            WorkloadSpec::PermutationAtLoad { .. } => "permutation_at_load",
            WorkloadSpec::RandomPairs { .. } => "random_pairs",
            WorkloadSpec::Coflow { .. } => "coflow",
            WorkloadSpec::Manual(_) => "manual",
        }
    }

    /// Append this workload's `key = value` spec lines to `out` (keys are prefixed
    /// `workload.`; manual flows use repeated `flow` keys).
    pub(crate) fn write_keys(&self, out: &mut Vec<(String, String)>) {
        let mut push = |k: &str, v: String| out.push((k.to_string(), v));
        push("workload", self.kind().to_string());
        match self {
            WorkloadSpec::QueryAggregation {
                flows,
                sizes,
                deadlines,
            } => {
                push("workload.flows", flows.to_string());
                push("workload.sizes", sizes.to_string());
                push("workload.deadlines", deadlines.to_string());
            }
            WorkloadSpec::Pattern {
                pattern,
                sizes,
                deadlines,
                flows_per_pair,
            } => {
                push("workload.pattern", pattern.to_string());
                push("workload.sizes", sizes.to_string());
                push("workload.deadlines", deadlines.to_string());
                push("workload.flows_per_pair", flows_per_pair.to_string());
            }
            WorkloadSpec::Poisson {
                rate_flows_per_sec,
                duration,
                sizes,
                short_deadlines,
                short_flow_threshold_bytes,
                pattern,
            } => {
                push(
                    "workload.rate_flows_per_sec",
                    rate_flows_per_sec.to_string(),
                );
                push("workload.duration_ns", duration.as_nanos().to_string());
                push("workload.sizes", sizes.to_string());
                push("workload.short_deadlines", short_deadlines.to_string());
                push(
                    "workload.short_threshold_bytes",
                    short_flow_threshold_bytes.to_string(),
                );
                push("workload.pattern", pattern.to_string());
            }
            WorkloadSpec::PermutationAtLoad {
                load,
                sizes,
                deadlines,
            } => {
                push("workload.load", load.to_string());
                push("workload.sizes", sizes.to_string());
                push("workload.deadlines", deadlines.to_string());
            }
            WorkloadSpec::RandomPairs {
                flows,
                spread,
                sizes,
            } => {
                push("workload.flows", flows.to_string());
                push("workload.spread_ns", spread.as_nanos().to_string());
                push("workload.sizes", sizes.to_string());
            }
            WorkloadSpec::Coflow {
                coflows,
                width,
                rate_coflows_per_sec,
                sizes,
                deadlines,
            } => {
                push("workload.coflows", coflows.to_string());
                push("workload.width", width.to_string());
                push(
                    "workload.rate_coflows_per_sec",
                    rate_coflows_per_sec.to_string(),
                );
                push("workload.sizes", sizes.to_string());
                push("workload.deadlines", deadlines.to_string());
            }
            WorkloadSpec::Manual(flows) => {
                for f in flows {
                    let deadline = f
                        .deadline
                        .map(|d| d.as_nanos().to_string())
                        .unwrap_or_else(|| "-".to_string());
                    // The coflow tag is a 7th field written only when present, so
                    // untagged flow lines stay byte-identical to older specs.
                    let coflow = f
                        .coflow
                        .map(|t| {
                            let d = t
                                .deadline
                                .map(|d| d.as_nanos().to_string())
                                .unwrap_or_else(|| "-".to_string());
                            format!(" {}:{}:{d}", t.id.value(), t.bottleneck_bytes)
                        })
                        .unwrap_or_default();
                    push(
                        "flow",
                        format!(
                            "{} {} {} {} {} {deadline}{coflow}",
                            f.id.value(),
                            f.src.0,
                            f.dst.0,
                            f.size_bytes,
                            f.arrival.as_nanos()
                        ),
                    );
                }
            }
        }
    }

    /// Rebuild a workload from its spec keys: the `workload =` kind token, a lookup
    /// for `workload.<key>` values, and the repeated `flow` lines (manual workloads).
    pub(crate) fn from_keys(
        kind: &str,
        get: &dyn Fn(&str) -> Option<String>,
        flow_lines: &[String],
    ) -> Result<Self, String> {
        let require = |key: &str| get(key).ok_or_else(|| format!("missing key workload.{key}"));
        let parse_sizes = |v: String| v.parse::<SizeDist>();
        let parse_deadlines = |v: String| v.parse::<DeadlineDist>();
        match kind {
            "query_aggregation" => Ok(WorkloadSpec::QueryAggregation {
                flows: require("flows")?
                    .parse()
                    .map_err(|_| "bad workload.flows".to_string())?,
                sizes: parse_sizes(require("sizes")?)?,
                deadlines: parse_deadlines(require("deadlines")?)?,
            }),
            "pattern" => Ok(WorkloadSpec::Pattern {
                pattern: require("pattern")?.parse()?,
                sizes: parse_sizes(require("sizes")?)?,
                deadlines: parse_deadlines(require("deadlines")?)?,
                flows_per_pair: require("flows_per_pair")?
                    .parse()
                    .map_err(|_| "bad workload.flows_per_pair".to_string())?,
            }),
            "poisson" => Ok(WorkloadSpec::Poisson {
                rate_flows_per_sec: require("rate_flows_per_sec")?
                    .parse()
                    .map_err(|_| "bad workload.rate_flows_per_sec".to_string())?,
                duration: SimTime::from_nanos(
                    require("duration_ns")?
                        .parse()
                        .map_err(|_| "bad workload.duration_ns".to_string())?,
                ),
                sizes: parse_sizes(require("sizes")?)?,
                short_deadlines: parse_deadlines(require("short_deadlines")?)?,
                short_flow_threshold_bytes: require("short_threshold_bytes")?
                    .parse()
                    .map_err(|_| "bad workload.short_threshold_bytes".to_string())?,
                pattern: require("pattern")?.parse()?,
            }),
            "permutation_at_load" => Ok(WorkloadSpec::PermutationAtLoad {
                load: require("load")?
                    .parse()
                    .map_err(|_| "bad workload.load".to_string())?,
                sizes: parse_sizes(require("sizes")?)?,
                deadlines: parse_deadlines(require("deadlines")?)?,
            }),
            "random_pairs" => Ok(WorkloadSpec::RandomPairs {
                flows: require("flows")?
                    .parse()
                    .map_err(|_| "bad workload.flows".to_string())?,
                spread: SimTime::from_nanos(
                    require("spread_ns")?
                        .parse()
                        .map_err(|_| "bad workload.spread_ns".to_string())?,
                ),
                sizes: parse_sizes(require("sizes")?)?,
            }),
            "coflow" => Ok(WorkloadSpec::Coflow {
                coflows: require("coflows")?
                    .parse()
                    .map_err(|_| "bad workload.coflows".to_string())?,
                width: require("width")?
                    .parse()
                    .map_err(|_| "bad workload.width".to_string())?,
                rate_coflows_per_sec: require("rate_coflows_per_sec")?
                    .parse()
                    .map_err(|_| "bad workload.rate_coflows_per_sec".to_string())?,
                sizes: parse_sizes(require("sizes")?)?,
                deadlines: parse_deadlines(require("deadlines")?)?,
            }),
            "manual" => {
                let mut flows = Vec::with_capacity(flow_lines.len());
                for line in flow_lines {
                    flows.push(parse_flow_line(line)?);
                }
                Ok(WorkloadSpec::Manual(flows))
            }
            _ => Err(format!("unrecognized workload kind: {kind:?}")),
        }
    }
}

fn parse_flow_line(line: &str) -> Result<FlowSpec, String> {
    let bad = || {
        format!(
            "bad flow line: {line:?} (want: id src dst bytes arrival_ns deadline_ns|- \
             [coflow_id:bottleneck_bytes:deadline_ns|-])"
        )
    };
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() != 6 && fields.len() != 7 {
        return Err(bad());
    }
    let id: u64 = fields[0].parse().map_err(|_| bad())?;
    let src: u32 = fields[1].parse().map_err(|_| bad())?;
    let dst: u32 = fields[2].parse().map_err(|_| bad())?;
    let bytes: u64 = fields[3].parse().map_err(|_| bad())?;
    let arrival: u64 = fields[4].parse().map_err(|_| bad())?;
    let mut spec = FlowSpec::new(id, NodeId(src), NodeId(dst), bytes)
        .with_arrival(SimTime::from_nanos(arrival));
    if fields[5] != "-" {
        let deadline: u64 = fields[5].parse().map_err(|_| bad())?;
        spec = spec.with_deadline(SimTime::from_nanos(deadline));
    }
    if let Some(tag) = fields.get(6) {
        let parts: Vec<&str> = tag.split(':').collect();
        if parts.len() != 3 {
            return Err(bad());
        }
        let cid: u64 = parts[0].parse().map_err(|_| bad())?;
        let bottleneck: u64 = parts[1].parse().map_err(|_| bad())?;
        let deadline = if parts[2] == "-" {
            None
        } else {
            Some(SimTime::from_nanos(parts[2].parse().map_err(|_| bad())?))
        };
        spec = spec.with_coflow(CoflowTag {
            id: CoflowId(cid),
            bottleneck_bytes: bottleneck,
            deadline,
        });
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_tokens_round_trip() {
        let specs = vec![
            TopologySpec::PaperTree,
            TopologySpec::SingleBottleneck {
                senders: 12,
                access_loss: 0.0,
            },
            TopologySpec::SingleBottleneck {
                senders: 12,
                access_loss: 0.02,
            },
            TopologySpec::FatTree { hosts: 16 },
            TopologySpec::BCube { n: 2, k: 3 },
            TopologySpec::BCubeHosts { hosts: 16, n: 4 },
            TopologySpec::Jellyfish { hosts: 16, seed: 7 },
            TopologySpec::Wan {
                sites: 4,
                hosts_per_site: 4,
                rtt_ms: 60.0,
                gbps: 2.5,
                loss_rate: 0.0,
            },
            TopologySpec::Wan {
                sites: 3,
                hosts_per_site: 2,
                rtt_ms: 100.0,
                gbps: 1.0,
                loss_rate: 0.0001,
            },
        ];
        for s in specs {
            let token = s.spec_token();
            assert_eq!(TopologySpec::parse(&token).expect(&token), s, "{token}");
        }
        assert!(TopologySpec::parse("torus:4").is_err());
        assert!(TopologySpec::parse("fat_tree:16:extra").is_err());
    }

    #[test]
    fn topologies_build() {
        assert_eq!(TopologySpec::PaperTree.build().host_count(), 12);
        let lossy = TopologySpec::SingleBottleneck {
            senders: 3,
            access_loss: 0.02,
        }
        .build();
        let n = lossy.net.link_count();
        assert_eq!(lossy.net.links[n - 1].loss_rate, 0.02);
        assert_eq!(lossy.net.links[n - 2].loss_rate, 0.02);
        assert!(TopologySpec::FatTree { hosts: 16 }.build().host_count() >= 16);
        let wan = TopologySpec::Wan {
            sites: 2,
            hosts_per_site: 3,
            rtt_ms: 50.0,
            gbps: 1.0,
            loss_rate: 0.001,
        }
        .build();
        assert_eq!(wan.host_count(), 6);
        assert!(wan.net.links.iter().any(|l| l.loss_rate == 0.001));
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let topo = default_paper_tree();
        let w = WorkloadSpec::QueryAggregation {
            flows: 9,
            sizes: SizeDist::query(),
            deadlines: DeadlineDist::paper_default(),
        };
        assert_eq!(w.generate(&topo, 5), w.generate(&topo, 5));
        assert_ne!(w.generate(&topo, 5), w.generate(&topo, 6));
        // Ids start at 1, matching the historical harness.
        assert_eq!(w.generate(&topo, 5)[0].id.value(), 1);
    }

    #[test]
    fn flow_lines_round_trip() {
        let flows = vec![
            FlowSpec::new(1, NodeId(0), NodeId(5), 100_000),
            FlowSpec::new(2, NodeId(3), NodeId(5), 20_000)
                .with_arrival(SimTime::from_millis(10))
                .with_deadline(SimTime::from_millis(30)),
            FlowSpec::new(3, NodeId(4), NodeId(5), 50_000)
                .with_deadline(SimTime::from_millis(40))
                .with_coflow(CoflowTag {
                    id: CoflowId(9),
                    bottleneck_bytes: 60_000,
                    deadline: Some(SimTime::from_millis(40)),
                }),
        ];
        let w = WorkloadSpec::Manual(flows.clone());
        let mut keys = Vec::new();
        w.write_keys(&mut keys);
        let flow_lines: Vec<String> = keys
            .iter()
            .filter(|(k, _)| k == "flow")
            .map(|(_, v)| v.clone())
            .collect();
        assert_eq!(flow_lines.len(), 3);
        // Untagged lines keep the historical 6-field form byte for byte.
        assert_eq!(flow_lines[0], "1 0 5 100000 0 -");
        assert_eq!(flow_lines[2], "3 4 5 50000 0 40000000 9:60000:40000000");
        let back = WorkloadSpec::from_keys("manual", &|_| None, &flow_lines).unwrap();
        assert_eq!(back, w);
        assert!(parse_flow_line("1 2 3").is_err());
        assert!(parse_flow_line("1 0 5 100 0 - 9:60000").is_err());
    }

    #[test]
    fn coflow_workload_round_trips_and_generates_tagged_groups() {
        let w = WorkloadSpec::Coflow {
            coflows: 6,
            width: 3,
            rate_coflows_per_sec: 400.0,
            sizes: SizeDist::query(),
            deadlines: DeadlineDist::paper_default(),
        };
        let mut keys = Vec::new();
        w.write_keys(&mut keys);
        assert_eq!(keys[0], ("workload".to_string(), "coflow".to_string()));
        let lookup = |k: &str| {
            keys.iter()
                .find(|(key, _)| key == &format!("workload.{k}"))
                .map(|(_, v)| v.clone())
        };
        let back = WorkloadSpec::from_keys("coflow", &lookup, &[]).unwrap();
        assert_eq!(back, w);

        let topo = default_paper_tree();
        let flows = w.generate(&topo, 5);
        assert_eq!(flows.len(), 18);
        assert_eq!(flows[0].id.value(), 1, "flow ids start at 1");
        assert!(flows.iter().all(|f| f.coflow.is_some()));
        assert_eq!(
            flows[0].coflow.unwrap().id,
            CoflowId(1),
            "coflow ids start at 1"
        );
        assert_eq!(w.generate(&topo, 5), w.generate(&topo, 5));
        assert_ne!(w.generate(&topo, 5), w.generate(&topo, 6));

        // Sweep axes: load maps to the coflow arrival rate.
        let loaded = w.with_load(900.0).unwrap();
        match loaded {
            WorkloadSpec::Coflow {
                rate_coflows_per_sec,
                ..
            } => assert_eq!(rate_coflows_per_sec, 900.0),
            other => panic!("unexpected workload {other:?}"),
        }
        assert!(w.with_sizes(SizeDist::Fixed(1_000)).is_ok());
        assert!(w.with_deadlines(DeadlineDist::None).is_ok());
    }
}
