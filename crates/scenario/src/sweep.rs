//! The [`Sweep`] runner: fan a grid of scenarios across worker threads with
//! deterministic result ordering.
//!
//! Every scenario run is an independent single-threaded simulation, so a sweep
//! parallelizes perfectly: workers pull the next scenario index from a shared atomic
//! counter and write the summary into that scenario's slot. Results always come back
//! in scenario order, and each run's outcome is independent of the thread count —
//! `run(registry, 1)` and `run(registry, n)` return identical summaries.
//!
//! [`Sweep::run_cached`] layers the fingerprint-keyed [`ResultCache`] on top:
//! cached cells are returned without running, missing cells are computed (and,
//! under [`CachePolicy::ReadWrite`], stored as each one finishes — so an
//! interrupted sweep resumes from the missing cells only), and per-cell JSONL
//! records stream to a sink in completion order instead of buffering whole tables.

use std::fmt;
use std::io::Write;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pdq_workloads::{DeadlineDist, SizeDist};

use crate::cache::{jsonl_record, CachePolicy, ResultCache};
use crate::protocol::ProtocolRegistry;
use crate::scenario::{Scenario, ScenarioError};
use crate::stats::ReplicatedSummary;
use crate::summary::RunSummary;

/// Errors building a sweep grid.
#[derive(Clone, Debug, PartialEq)]
pub enum GridError {
    /// An axis was set to an empty list — the product would silently be empty.
    EmptyAxis(&'static str),
    /// An axis was set twice — the second call would silently overwrite the first.
    DuplicateAxis(&'static str),
    /// An axis does not apply to the base scenario's workload kind.
    Axis {
        /// The axis that failed to apply.
        axis: &'static str,
        /// Why (from the workload helper).
        message: String,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::EmptyAxis(axis) => write!(
                f,
                "grid axis {axis:?} is empty — an empty axis would silently yield an \
                 empty sweep; drop the axis or give it at least one value"
            ),
            GridError::DuplicateAxis(axis) => write!(
                f,
                "grid axis {axis:?} was set twice — the second value list would \
                 silently replace the first; give each axis once"
            ),
            GridError::Axis { axis, message } => {
                write!(f, "grid axis {axis:?} does not apply: {message}")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// Builder for an N-axis scenario grid: the cartesian product of any subset of
/// protocol × seed × load × flow-size × deadline applied to a base scenario.
///
/// Axes expand in that fixed canonical order (protocol-major, deadline-minor)
/// regardless of the call order; unset axes keep the base scenario's value. Every
/// produced scenario round-trips through the plain-text spec format, so any grid
/// cell can be re-run from a file. Each cell is named
/// `base[/protocol][/seed=N][/load=X][/size=S][/deadline=D]`, with a suffix per set
/// axis.
///
/// ```
/// use pdq_scenario::{GridBuilder, Scenario};
/// use pdq_workloads::SizeDist;
///
/// let sweep = GridBuilder::new(Scenario::new("fig"))
///     .protocols(&["pdq(full)", "tcp"])
///     .seeds(&[1, 2, 3])
///     .sizes(vec![SizeDist::Fixed(20_000), SizeDist::query()])
///     .build()
///     .unwrap();
/// assert_eq!(sweep.len(), 2 * 3 * 2);
/// assert!(GridBuilder::new(Scenario::new("fig")).seeds(&[]).build().is_err());
/// ```
#[derive(Clone, Debug)]
pub struct GridBuilder {
    base: Scenario,
    protocols: Option<Vec<String>>,
    seeds: Option<Vec<u64>>,
    loads: Option<Vec<f64>>,
    sizes: Option<Vec<SizeDist>>,
    deadlines: Option<Vec<DeadlineDist>>,
    /// First axis that was set twice, reported by [`GridBuilder::build`] — setting
    /// an axis twice used to silently overwrite the first value list.
    duplicate: Option<&'static str>,
}

impl GridBuilder {
    /// A grid over `base`: with no axes set, [`GridBuilder::build`] yields just
    /// `base` itself.
    pub fn new(base: Scenario) -> Self {
        GridBuilder {
            base,
            protocols: None,
            seeds: None,
            loads: None,
            sizes: None,
            deadlines: None,
            duplicate: None,
        }
    }

    fn set<T>(
        &mut self,
        axis: &'static str,
        slot: fn(&mut Self) -> &mut Option<Vec<T>>,
        v: Vec<T>,
    ) {
        if slot(self).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(axis);
        }
        *slot(self) = Some(v);
    }

    /// Sweep the protocol spec string. Calling this a second time is an error
    /// reported by [`GridBuilder::build`], as are the other axis setters.
    pub fn protocols(mut self, protocols: &[&str]) -> Self {
        let v = protocols.iter().map(|p| p.to_string()).collect();
        self.set("protocols", |b| &mut b.protocols, v);
        self
    }

    /// Sweep the seed.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.set("seeds", |b| &mut b.seeds, seeds.to_vec());
        self
    }

    /// Sweep the workload's load knob (see [`crate::WorkloadSpec::with_load`]).
    pub fn loads(mut self, loads: &[f64]) -> Self {
        self.set("loads", |b| &mut b.loads, loads.to_vec());
        self
    }

    /// Sweep the flow-size distribution (see [`crate::WorkloadSpec::with_sizes`]).
    pub fn sizes(mut self, sizes: Vec<SizeDist>) -> Self {
        self.set("sizes", |b| &mut b.sizes, sizes);
        self
    }

    /// Sweep the deadline distribution (see [`crate::WorkloadSpec::with_deadlines`]).
    pub fn deadlines(mut self, deadlines: Vec<DeadlineDist>) -> Self {
        self.set("deadlines", |b| &mut b.deadlines, deadlines);
        self
    }

    /// Expand the cartesian product. Errors on any empty axis (an empty axis would
    /// silently produce an empty sweep — the historical `Sweep::grid` footgun), on
    /// any axis set twice (the second list used to silently win), and on axes the
    /// base workload cannot express.
    pub fn build(&self) -> Result<Sweep, GridError> {
        if let Some(axis) = self.duplicate {
            return Err(GridError::DuplicateAxis(axis));
        }
        fn check<T>(axis: &'static str, values: &Option<Vec<T>>) -> Result<(), GridError> {
            match values {
                Some(v) if v.is_empty() => Err(GridError::EmptyAxis(axis)),
                _ => Ok(()),
            }
        }
        check("protocols", &self.protocols)?;
        check("seeds", &self.seeds)?;
        check("loads", &self.loads)?;
        check("sizes", &self.sizes)?;
        check("deadlines", &self.deadlines)?;

        let mut cells: Vec<(Scenario, String)> = vec![(self.base.clone(), self.base.name.clone())];
        // Expand one axis over every cell produced so far; earlier axes are major.
        fn expand<T: Clone>(
            cells: Vec<(Scenario, String)>,
            values: &Option<Vec<T>>,
            apply: impl Fn(&Scenario, &str, &T) -> Result<(Scenario, String), GridError>,
        ) -> Result<Vec<(Scenario, String)>, GridError> {
            let Some(values) = values else {
                return Ok(cells);
            };
            let mut out = Vec::with_capacity(cells.len() * values.len());
            for (scenario, name) in &cells {
                for v in values {
                    out.push(apply(scenario, name, v)?);
                }
            }
            Ok(out)
        }

        cells = expand(cells, &self.protocols, |s, name, p: &String| {
            Ok((s.clone().protocol(p.clone()), format!("{name}/{p}")))
        })?;
        cells = expand(cells, &self.seeds, |s, name, &seed| {
            Ok((s.clone().seed(seed), format!("{name}/seed={seed}")))
        })?;
        cells = expand(cells, &self.loads, |s, name, &load| {
            let workload = s
                .workload
                .with_load(load)
                .map_err(|message| GridError::Axis {
                    axis: "loads",
                    message,
                })?;
            Ok((s.clone().workload(workload), format!("{name}/load={load}")))
        })?;
        cells = expand(cells, &self.sizes, |s, name, sizes: &SizeDist| {
            let workload =
                s.workload
                    .with_sizes(sizes.clone())
                    .map_err(|message| GridError::Axis {
                        axis: "sizes",
                        message,
                    })?;
            Ok((s.clone().workload(workload), format!("{name}/size={sizes}")))
        })?;
        cells = expand(
            cells,
            &self.deadlines,
            |s, name, deadlines: &DeadlineDist| {
                let workload = s
                    .workload
                    .with_deadlines(deadlines.clone())
                    .map_err(|message| GridError::Axis {
                        axis: "deadlines",
                        message,
                    })?;
                Ok((
                    s.clone().workload(workload),
                    format!("{name}/deadline={deadlines}"),
                ))
            },
        )?;

        Ok(Sweep {
            scenarios: cells
                .into_iter()
                .map(|(scenario, name)| scenario.name(name))
                .collect(),
        })
    }
}

/// An ordered grid of scenarios to run, typically built with [`GridBuilder`].
#[derive(Clone, Debug, Default)]
pub struct Sweep {
    /// The scenarios, in result order.
    pub scenarios: Vec<Scenario>,
}

impl Sweep {
    /// A sweep over an explicit scenario list.
    pub fn new(scenarios: Vec<Scenario>) -> Self {
        Sweep { scenarios }
    }

    /// The protocol × seed product of a base scenario: one scenario per combination,
    /// named `base/protocol/seed=N`, in protocol-major order. Shorthand for a
    /// two-axis [`GridBuilder`]; panics on an empty axis (use [`GridBuilder::build`]
    /// to handle that as a `Result`).
    pub fn grid(base: &Scenario, protocols: &[&str], seeds: &[u64]) -> Self {
        GridBuilder::new(base.clone())
            .protocols(protocols)
            .seeds(seeds)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of scenarios in the sweep.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when the sweep holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Run every scenario on up to `threads` worker threads and return the summaries
    /// in scenario order. The thread count never changes any result, only the
    /// wall-clock time; on error (e.g. an unresolvable protocol), dispatch of
    /// further cells stops — so large failing grids exit fast — and the error of
    /// the earliest failing scenario is returned.
    pub fn run(
        &self,
        registry: &ProtocolRegistry,
        threads: usize,
    ) -> Result<Vec<RunSummary>, ScenarioError> {
        self.run_cached(registry, threads, None, CachePolicy::Bypass, None)
            .map(|outcome| outcome.summaries)
    }

    /// [`Sweep::run`] against a persistent [`ResultCache`], streaming per-cell
    /// JSONL records to `sink` as each cell finishes.
    ///
    /// When `policy` reads, every cell is first looked up by request fingerprint
    /// and cached cells are returned without running; when it writes, each newly
    /// computed cell is stored the moment it completes — before the sweep
    /// finishes — so a killed sweep re-run restarts from the missing cells only.
    /// The merged summaries come back in scenario order either way, with the
    /// thread-count-independence guarantee of [`Sweep::run`] intact (cached and
    /// fresh summaries of the same scenario report identical headline metrics and
    /// determinism fingerprints).
    ///
    /// `sink` receives one [`jsonl_record`] line per cell in *completion* order
    /// (cache hits first, then executed cells as they finish; each line carries
    /// the cell's sweep index for re-sorting) rather than buffering the whole
    /// table. Error semantics match [`Sweep::run`]: the earliest failing
    /// scenario's error is returned and later cells stop dispatching — but cells
    /// already stored stay stored, which is exactly what makes an interrupted
    /// sweep resumable.
    pub fn run_cached(
        &self,
        registry: &ProtocolRegistry,
        threads: usize,
        cache: Option<&ResultCache>,
        policy: CachePolicy,
        sink: Option<&mut (dyn Write + Send)>,
    ) -> Result<SweepOutcome, ScenarioError> {
        let n = self.scenarios.len();
        let read_cache = cache.filter(|_| policy.reads());
        let write_cache = cache.filter(|_| policy.writes());
        let sink = sink.map(Mutex::new);
        let emit = |index: usize, summary: &RunSummary, cached: bool| {
            let Some(sink) = &sink else { return Ok(()) };
            let line = jsonl_record(index, &self.scenarios[index], summary, cached);
            writeln!(sink.lock().expect("jsonl sink poisoned"), "{line}")
                .map_err(|e| ScenarioError::Io(format!("jsonl sink: {e}")))
        };

        // Phase 1: consult the cache, streaming hits; collect the missing cells.
        let mut slots: Vec<Option<RunSummary>> = Vec::with_capacity(n);
        let mut missing: Vec<usize> = Vec::new();
        for (i, scenario) in self.scenarios.iter().enumerate() {
            let hit = read_cache.and_then(|c| c.lookup(scenario));
            match &hit {
                Some(summary) => emit(i, summary, true)?,
                None => missing.push(i),
            }
            slots.push(hit);
        }
        let cache_hits = n - missing.len();

        // Phase 2: run the missing cells. `stop_before` holds the smallest failing
        // position seen so far: after the first error no later cell is dispatched
        // (large failing grids exit fast), while earlier in-flight cells still
        // complete. Positions are claimed in order, so every cell before the
        // earliest failure runs to completion and the reported error is the
        // earliest failing scenario's on every thread count.
        let m = missing.len();
        let threads = threads.clamp(1, m.max(1));
        let outcomes: Vec<Mutex<Option<Result<RunSummary, ScenarioError>>>> =
            (0..m).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let stop_before = AtomicUsize::new(usize::MAX);
        let worker = || loop {
            let p = next.fetch_add(1, Ordering::Relaxed);
            if p >= m || p >= stop_before.load(Ordering::Relaxed) {
                break;
            }
            let index = missing[p];
            let scenario = &self.scenarios[index];
            let outcome = scenario.run(registry).and_then(|summary| {
                if let Some(c) = write_cache {
                    c.store(scenario, &summary).map_err(|e| {
                        ScenarioError::Io(format!(
                            "cache store for {:?} in {}: {e}",
                            scenario.name,
                            c.dir().display()
                        ))
                    })?;
                }
                emit(index, &summary, false)?;
                Ok(summary)
            });
            if outcome.is_err() {
                stop_before.fetch_min(p, Ordering::Relaxed);
            }
            *outcomes[p].lock().expect("sweep slot poisoned") = Some(outcome);
        };
        if threads <= 1 {
            worker();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(worker);
                }
            });
        }

        // Merge in scenario order. Claimed positions form a prefix, so the first
        // error in position order is the earliest failing scenario; an unclaimed
        // (None) slot can only follow it.
        let mut executed = 0;
        for (p, outcome) in outcomes.into_iter().enumerate() {
            match outcome.into_inner().expect("sweep slot poisoned") {
                Some(Ok(summary)) => {
                    executed += 1;
                    slots[missing[p]] = Some(summary);
                }
                Some(Err(e)) => return Err(e),
                None => break,
            }
        }
        Ok(SweepOutcome {
            summaries: slots
                .into_iter()
                .map(|s| s.expect("every sweep slot is filled on success"))
                .collect(),
            cache_hits,
            executed,
        })
    }

    /// [`Sweep::run`] with one worker per available CPU core.
    pub fn run_parallel(
        &self,
        registry: &ProtocolRegistry,
    ) -> Result<Vec<RunSummary>, ScenarioError> {
        self.run(registry, default_threads())
    }

    /// Run every scenario `replicates` times under consecutive seeds and return one
    /// [`ReplicatedSummary`] per cell, in scenario order, with mean/stddev/95%-CI
    /// statistics across the seeds. The replicate runs are flattened into one
    /// work queue, so they parallelize across `threads` exactly like [`Sweep::run`]
    /// and results stay thread-count independent.
    ///
    /// Replicate `r` of a cell with base seed `s` runs seed `s.wrapping_add(r)`:
    /// the wrap is deliberate and documented, so a base seed near `u64::MAX`
    /// continues into 0, 1, … instead of panicking in debug builds (the historical
    /// `s + r` did exactly that, and silently wrapped in release). The replicate
    /// seeds stay pairwise distinct for any sane replicate count.
    pub fn run_replicated(
        &self,
        registry: &ProtocolRegistry,
        threads: usize,
        replicates: NonZeroUsize,
    ) -> Result<Vec<ReplicatedSummary>, ScenarioError> {
        self.run_replicated_cached(
            registry,
            threads,
            replicates,
            None,
            CachePolicy::Bypass,
            None,
        )
        .map(|outcome| outcome.cells)
    }

    /// [`Sweep::run_replicated`] against a persistent [`ResultCache`] with JSONL
    /// streaming — the replicate-expanded analogue of [`Sweep::run_cached`]. Each
    /// replicate run is cached as its own cell (they differ only in seed, hence in
    /// request fingerprint), so re-running with a higher `--replicate` reuses the
    /// seeds already computed.
    pub fn run_replicated_cached(
        &self,
        registry: &ProtocolRegistry,
        threads: usize,
        replicates: NonZeroUsize,
        cache: Option<&ResultCache>,
        policy: CachePolicy,
        sink: Option<&mut (dyn Write + Send)>,
    ) -> Result<ReplicatedOutcome, ScenarioError> {
        let k = replicates.get();
        let expanded = Sweep::new(
            self.scenarios
                .iter()
                .flat_map(|s| (0..k as u64).map(|r| s.clone().seed(s.seed.wrapping_add(r))))
                .collect(),
        );
        let outcome = expanded.run_cached(registry, threads, cache, policy, sink)?;
        Ok(ReplicatedOutcome {
            cells: outcome
                .summaries
                .chunks(k)
                .map(|cell| ReplicatedSummary::new(cell.to_vec()))
                .collect(),
            cache_hits: outcome.cache_hits,
            executed: outcome.executed,
        })
    }
}

/// The outcome of a cache-aware sweep ([`Sweep::run_cached`]): the merged
/// summaries in scenario order, plus how many cells were served from the cache
/// and how many actually executed (`cache_hits + executed == sweep.len()`).
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// One summary per scenario, in scenario order — cached cells carry
    /// [`crate::BackendResults::Cached`], executed cells the full results.
    pub summaries: Vec<RunSummary>,
    /// Cells returned from the cache without running.
    pub cache_hits: usize,
    /// Cells actually simulated this run.
    pub executed: usize,
}

/// The outcome of a cache-aware replicated sweep
/// ([`Sweep::run_replicated_cached`]); hit/executed counts are over the
/// replicate-expanded runs, so `cache_hits + executed == cells × replicates`.
#[derive(Clone, Debug)]
pub struct ReplicatedOutcome {
    /// One replicated summary per grid cell, in scenario order.
    pub cells: Vec<ReplicatedSummary>,
    /// Replicate runs returned from the cache without running.
    pub cache_hits: usize,
    /// Replicate runs actually simulated this run.
    pub executed: usize,
}

/// The default sweep width: the number of available CPU cores (1 if unknown).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

impl Scenario {
    /// Rename the scenario (used by [`Sweep::grid`] to tag grid points).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use proptest::{prop_assert, prop_assert_eq, proptest};

    #[test]
    fn empty_axes_are_descriptive_errors() {
        let base = Scenario::new("g");
        for (axis, builder) in [
            ("protocols", GridBuilder::new(base.clone()).protocols(&[])),
            ("seeds", GridBuilder::new(base.clone()).seeds(&[])),
            ("loads", GridBuilder::new(base.clone()).loads(&[])),
            ("sizes", GridBuilder::new(base.clone()).sizes(vec![])),
            (
                "deadlines",
                GridBuilder::new(base.clone()).deadlines(vec![]),
            ),
        ] {
            let err = builder.build().unwrap_err();
            assert_eq!(err, GridError::EmptyAxis(axis));
            assert!(err.to_string().contains(axis), "{err}");
        }
        // No axes at all: the grid is just the base scenario.
        let sweep = GridBuilder::new(base.clone()).build().unwrap();
        assert_eq!(sweep.len(), 1);
        assert_eq!(sweep.scenarios[0], base);
    }

    #[test]
    fn setting_an_axis_twice_is_an_error_not_a_silent_overwrite() {
        let base = Scenario::new("g");
        let err = GridBuilder::new(base.clone())
            .seeds(&[1, 2])
            .seeds(&[3])
            .build()
            .unwrap_err();
        assert_eq!(err, GridError::DuplicateAxis("seeds"));
        assert!(err.to_string().contains("set twice"), "{err}");
        // The first duplicated axis is the one reported, whatever follows it.
        let err = GridBuilder::new(base.clone())
            .protocols(&["tcp"])
            .protocols(&["rcp"])
            .seeds(&[])
            .build()
            .unwrap_err();
        assert_eq!(err, GridError::DuplicateAxis("protocols"));
        // Each axis once (even with the same values) stays fine.
        let sweep = GridBuilder::new(base)
            .seeds(&[1, 2])
            .protocols(&["tcp"])
            .build()
            .unwrap();
        assert_eq!(sweep.len(), 2);
    }

    #[test]
    fn inapplicable_axes_error_with_the_workload_kind() {
        // The default query-aggregation workload has no load knob.
        let err = GridBuilder::new(Scenario::new("g"))
            .loads(&[0.2, 0.4])
            .build()
            .unwrap_err();
        assert!(
            matches!(err, GridError::Axis { axis: "loads", .. }),
            "{err:?}"
        );
        // Manual workloads reject size and deadline sweeps.
        let manual = Scenario::new("m").workload(WorkloadSpec::Manual(vec![]));
        assert!(GridBuilder::new(manual.clone())
            .sizes(vec![SizeDist::Fixed(1)])
            .build()
            .is_err());
        assert!(GridBuilder::new(manual)
            .deadlines(vec![DeadlineDist::None])
            .build()
            .is_err());
    }

    proptest! {
        /// The grid is the full cartesian product in canonical axis order, whatever
        /// the axis lengths: |protocols| × |seeds| × |loads| × |sizes| cells, with
        /// protocol-major ordering and every cell's axis values round-tripping
        /// through the plain-text spec format.
        #[test]
        fn grid_product_count_and_ordering(np in 1usize..4, ns in 1usize..4, nl in 1usize..3, nz in 1usize..3) {
            let protocols: Vec<String> = (0..np).map(|i| format!("p{i}")).collect();
            let protocol_refs: Vec<&str> = protocols.iter().map(String::as_str).collect();
            let seeds: Vec<u64> = (1..=ns as u64).collect();
            let loads: Vec<f64> = (1..=nl).map(|i| i as f64 / 10.0).collect();
            let sizes: Vec<SizeDist> =
                (1..=nz).map(|i| SizeDist::Fixed(10_000 * i as u64)).collect();
            let base = Scenario::new("prop").workload(WorkloadSpec::PermutationAtLoad {
                load: 0.5,
                sizes: SizeDist::Fixed(1),
                deadlines: DeadlineDist::None,
            });
            let sweep = GridBuilder::new(base)
                .protocols(&protocol_refs)
                .seeds(&seeds)
                .loads(&loads)
                .sizes(sizes.clone())
                .build()
                .unwrap();
            prop_assert_eq!(sweep.len(), np * ns * nl * nz);
            for (i, s) in sweep.scenarios.iter().enumerate() {
                // Row-major decomposition of the cell index over the axis order.
                let (pi, rest) = (i / (ns * nl * nz), i % (ns * nl * nz));
                let (si, rest) = (rest / (nl * nz), rest % (nl * nz));
                let (li, zi) = (rest / nz, rest % nz);
                prop_assert_eq!(&s.protocol, &protocols[pi]);
                prop_assert_eq!(s.seed, seeds[si]);
                let WorkloadSpec::PermutationAtLoad { load, sizes: sz, .. } = &s.workload
                else { panic!("workload kind changed") };
                prop_assert!((load - loads[li]).abs() < 1e-12);
                prop_assert_eq!(sz, &sizes[zi]);
                prop_assert!(s.name.contains(&format!("/seed={}", seeds[si])));
                // Every cell round-trips through the spec format.
                let back = Scenario::from_spec(&s.to_spec()).unwrap();
                prop_assert_eq!(&back, s);
            }
        }
    }

    #[test]
    fn grid_is_protocol_major_and_named() {
        let base = Scenario::new("fig");
        let sweep = Sweep::grid(&base, &["tcp", "rcp"], &[1, 2]);
        assert_eq!(sweep.len(), 4);
        let names: Vec<&str> = sweep.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "fig/tcp/seed=1",
                "fig/tcp/seed=2",
                "fig/rcp/seed=1",
                "fig/rcp/seed=2"
            ]
        );
        assert_eq!(sweep.scenarios[3].protocol, "rcp");
        assert_eq!(sweep.scenarios[3].seed, 2);
    }

    #[test]
    fn empty_sweep_runs() {
        let reg = ProtocolRegistry::new();
        assert!(Sweep::default().run(&reg, 8).unwrap().is_empty());
    }

    #[test]
    fn unknown_protocol_surfaces_first_error() {
        let reg = ProtocolRegistry::new();
        let sweep = Sweep::grid(&Scenario::new("x"), &["nope"], &[1, 2]);
        let err = sweep.run(&reg, 2).unwrap_err();
        assert!(matches!(err, ScenarioError::Protocol(_)));
    }

    struct Idle;
    impl pdq_netsim::HostAgent for Idle {
        fn on_flow_arrival(&mut self, _: &pdq_netsim::FlowInfo, _: &mut pdq_netsim::Ctx) {}
        fn on_packet(&mut self, _: pdq_netsim::Packet, _: &mut pdq_netsim::Ctx) {}
        fn on_timer(
            &mut self,
            _: pdq_netsim::FlowId,
            _: pdq_netsim::TimerKind,
            _: u64,
            _: &mut pdq_netsim::Ctx,
        ) {
        }
    }

    struct Nop;
    impl crate::protocol::ProtocolInstaller for Nop {
        fn name(&self) -> String {
            "nop".into()
        }
        fn label(&self) -> String {
            "NOP".into()
        }
        fn install(&self, sim: &mut pdq_netsim::Simulator) {
            sim.install_agents(|_, _| Box::new(Idle));
        }
    }

    /// Like [`Nop`], but counts installs so tests can observe how many cells a
    /// sweep actually dispatched. Only the abort-on-first-error test uses it (the
    /// counter is process-global, so sharing it across tests would race).
    struct Counted;
    static COUNTED_INSTALLS: AtomicUsize = AtomicUsize::new(0);
    impl crate::protocol::ProtocolInstaller for Counted {
        fn name(&self) -> String {
            "counted".into()
        }
        fn label(&self) -> String {
            "COUNTED".into()
        }
        fn install(&self, sim: &mut pdq_netsim::Simulator) {
            COUNTED_INSTALLS.fetch_add(1, Ordering::Relaxed);
            sim.install_agents(|_, _| Box::new(Idle));
        }
    }

    fn nop_registry() -> ProtocolRegistry {
        let mut reg = ProtocolRegistry::new();
        reg.register_instance(std::sync::Arc::new(Nop));
        reg
    }

    #[test]
    fn replicated_cells_use_consecutive_seeds() {
        let reg = nop_registry();
        let sweep = Sweep::new(vec![
            Scenario::new("a").protocol("nop").seed(10),
            Scenario::new("b").protocol("nop").seed(20),
        ]);
        let k = NonZeroUsize::new(3).unwrap();
        let cells = sweep.run_replicated(&reg, 2, k).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].scenario, "a");
        assert_eq!(cells[0].seeds, vec![10, 11, 12]);
        assert_eq!(cells[1].seeds, vec![20, 21, 22]);
        for cell in &cells {
            assert_eq!(cell.runs.len(), 3);
            assert_eq!(cell.protocol_label, "NOP");
            // Flow counts are a real metric even for a no-op protocol.
            let stats = cell.stats_of(|r| Some(r.flows as f64)).unwrap();
            assert_eq!(stats.n, 3);
            assert!(stats.mean > 0.0);
        }
    }

    /// Regression: replicate seeds were computed as `s.seed + r`, which panics in
    /// debug builds (and silently wraps in release) when the base seed is near
    /// `u64::MAX`. The wrap is now explicit and the replicate seeds stay distinct.
    #[test]
    fn replicate_seeds_near_u64_max_wrap_without_panicking_or_duplicating() {
        let reg = nop_registry();
        let sweep = Sweep::new(vec![Scenario::new("max")
            .protocol("nop")
            .seed(u64::MAX - 1)]);
        let k = NonZeroUsize::new(4).unwrap();
        let cells = sweep.run_replicated(&reg, 2, k).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].seeds, vec![u64::MAX - 1, u64::MAX, 0, 1]);
        let mut unique = cells[0].seeds.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 4, "replicate seeds must stay distinct");
    }

    /// Regression: after one cell failed, the parallel runner kept dispatching
    /// every remaining scenario. Now dispatch stops at the first error, while the
    /// reported error is still the earliest failing scenario's on any thread count.
    #[test]
    fn parallel_sweep_stops_dispatching_after_the_first_error() {
        let mut reg = nop_registry();
        reg.register_instance(std::sync::Arc::new(Counted));
        // Cell 0 fails instantly (unknown protocol); 40 real cells follow. Without
        // the abort flag all 40 would simulate; with it, only the handful already
        // in flight when the failure lands do.
        let mut scenarios = vec![Scenario::new("bad-0").protocol("nope-early")];
        for i in 1..=40 {
            scenarios.push(Scenario::new(format!("ok-{i}")).protocol("counted").seed(i));
        }
        // A second, later failure must not win the error report.
        scenarios.insert(25, Scenario::new("bad-25").protocol("nope-late"));
        let sweep = Sweep::new(scenarios);
        let before = COUNTED_INSTALLS.load(Ordering::Relaxed);
        let err = sweep.run(&reg, 4).unwrap_err();
        let dispatched = COUNTED_INSTALLS.load(Ordering::Relaxed) - before;
        assert!(
            matches!(&err, ScenarioError::Protocol(e) if e.to_string().contains("nope-early")),
            "{err}"
        );
        assert!(
            dispatched < 20,
            "dispatch should stop after the first error; {dispatched} of 41 cells ran"
        );
        // Single-threaded agrees on the reported error.
        let serial = sweep.run(&reg, 1).unwrap_err();
        assert_eq!(serial, err);
    }

    fn temp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!(
            "pdq-sweep-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        ResultCache::open(dir).unwrap()
    }

    #[test]
    fn cached_rerun_executes_nothing_and_matches_the_first_run() {
        let reg = nop_registry();
        let sweep = Sweep::new(vec![
            Scenario::new("a").protocol("nop").seed(1),
            Scenario::new("b").protocol("nop").seed(2),
            Scenario::new("c").protocol("nop").seed(3),
        ]);
        let cache = temp_cache("rerun");
        let mut jsonl: Vec<u8> = Vec::new();
        let first = sweep
            .run_cached(
                &reg,
                2,
                Some(&cache),
                CachePolicy::ReadWrite,
                Some(&mut jsonl),
            )
            .unwrap();
        assert_eq!((first.cache_hits, first.executed), (0, 3));
        let mut jsonl2: Vec<u8> = Vec::new();
        let second = sweep
            .run_cached(
                &reg,
                2,
                Some(&cache),
                CachePolicy::ReadWrite,
                Some(&mut jsonl2),
            )
            .unwrap();
        assert_eq!((second.cache_hits, second.executed), (3, 0));
        for (a, b) in first.summaries.iter().zip(&second.summaries) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.flows, b.flows);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.mean_fct_secs, b.mean_fct_secs);
            assert_eq!(a.fingerprint(), b.fingerprint());
            assert!(b.results.cached().is_some());
        }
        // The second run streamed every cell as a cache hit.
        let lines = String::from_utf8(jsonl2).unwrap();
        assert_eq!(lines.lines().count(), 3);
        assert!(
            lines.lines().all(|l| l.ends_with("\"cached\":true}")),
            "{lines}"
        );
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn interrupted_sweep_resumes_from_missing_cells_only() {
        let reg = nop_registry();
        let full = Sweep::new(vec![
            Scenario::new("a").protocol("nop").seed(1),
            Scenario::new("b").protocol("nop").seed(2),
            Scenario::new("c").protocol("nop").seed(3),
            Scenario::new("d").protocol("nop").seed(4),
        ]);
        let cache = temp_cache("resume");
        // Simulate an interrupted run: only the first two cells got stored.
        let partial = Sweep::new(full.scenarios[..2].to_vec());
        partial
            .run_cached(&reg, 1, Some(&cache), CachePolicy::ReadWrite, None)
            .unwrap();
        // The re-run computes exactly the two missing cells...
        let resumed = full
            .run_cached(&reg, 2, Some(&cache), CachePolicy::ReadWrite, None)
            .unwrap();
        assert_eq!((resumed.cache_hits, resumed.executed), (2, 2));
        // ...and the merged table equals an uncached run of the whole sweep.
        let reference = full.run(&reg, 1).unwrap();
        for (a, b) in resumed.summaries.iter().zip(&reference) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn read_only_and_bypass_policies_never_write() {
        let reg = nop_registry();
        let sweep = Sweep::new(vec![Scenario::new("a").protocol("nop").seed(1)]);
        let cache = temp_cache("policy");
        for policy in [CachePolicy::ReadOnly, CachePolicy::Bypass] {
            let outcome = sweep
                .run_cached(&reg, 1, Some(&cache), policy, None)
                .unwrap();
            assert_eq!((outcome.cache_hits, outcome.executed), (0, 1), "{policy:?}");
            assert_eq!(cache.stats().unwrap().records, 0, "{policy:?}");
        }
        // ReadWrite stores; a later Bypass run still ignores the record.
        sweep
            .run_cached(&reg, 1, Some(&cache), CachePolicy::ReadWrite, None)
            .unwrap();
        assert_eq!(cache.stats().unwrap().records, 1);
        let bypass = sweep
            .run_cached(&reg, 1, Some(&cache), CachePolicy::Bypass, None)
            .unwrap();
        assert_eq!((bypass.cache_hits, bypass.executed), (0, 1));
        std::fs::remove_dir_all(cache.dir()).ok();
    }
}
