//! The [`Sweep`] runner: fan a grid of scenarios across worker threads with
//! deterministic result ordering.
//!
//! Every scenario run is an independent single-threaded simulation, so a sweep
//! parallelizes perfectly: workers pull the next scenario index from a shared atomic
//! counter and write the summary into that scenario's slot. Results always come back
//! in scenario order, and each run's outcome is independent of the thread count —
//! `run(registry, 1)` and `run(registry, n)` return identical summaries.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::protocol::ProtocolRegistry;
use crate::scenario::{Scenario, ScenarioError};
use crate::summary::RunSummary;

/// An ordered grid of scenarios to run, typically built with [`Sweep::grid`].
#[derive(Clone, Debug, Default)]
pub struct Sweep {
    /// The scenarios, in result order.
    pub scenarios: Vec<Scenario>,
}

impl Sweep {
    /// A sweep over an explicit scenario list.
    pub fn new(scenarios: Vec<Scenario>) -> Self {
        Sweep { scenarios }
    }

    /// The protocol × seed product of a base scenario: one scenario per combination,
    /// named `base/protocol/seed=N`, in protocol-major order.
    pub fn grid(base: &Scenario, protocols: &[&str], seeds: &[u64]) -> Self {
        let mut scenarios = Vec::with_capacity(protocols.len() * seeds.len());
        for &protocol in protocols {
            for &seed in seeds {
                scenarios.push(
                    base.clone()
                        .protocol(protocol)
                        .seed(seed)
                        .name(format!("{}/{}/seed={}", base.name, protocol, seed)),
                );
            }
        }
        Sweep { scenarios }
    }

    /// Number of scenarios in the sweep.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when the sweep holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Run every scenario on up to `threads` worker threads and return the summaries
    /// in scenario order. The thread count never changes any result, only the
    /// wall-clock time; on error (e.g. an unresolvable protocol), the error of the
    /// earliest failing scenario is returned.
    pub fn run(
        &self,
        registry: &ProtocolRegistry,
        threads: usize,
    ) -> Result<Vec<RunSummary>, ScenarioError> {
        let n = self.scenarios.len();
        let threads = threads.clamp(1, n.max(1));
        if threads <= 1 {
            return self.scenarios.iter().map(|s| s.run(registry)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<RunSummary, ScenarioError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = self.scenarios[i].run(registry);
                    *slots[i].lock().expect("sweep slot poisoned") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("sweep slot poisoned")
                    .expect("every sweep slot is filled before the scope ends")
            })
            .collect()
    }

    /// [`Sweep::run`] with one worker per available CPU core.
    pub fn run_parallel(
        &self,
        registry: &ProtocolRegistry,
    ) -> Result<Vec<RunSummary>, ScenarioError> {
        self.run(registry, default_threads())
    }
}

/// The default sweep width: the number of available CPU cores (1 if unknown).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

impl Scenario {
    /// Rename the scenario (used by [`Sweep::grid`] to tag grid points).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_protocol_major_and_named() {
        let base = Scenario::new("fig");
        let sweep = Sweep::grid(&base, &["tcp", "rcp"], &[1, 2]);
        assert_eq!(sweep.len(), 4);
        let names: Vec<&str> = sweep.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "fig/tcp/seed=1",
                "fig/tcp/seed=2",
                "fig/rcp/seed=1",
                "fig/rcp/seed=2"
            ]
        );
        assert_eq!(sweep.scenarios[3].protocol, "rcp");
        assert_eq!(sweep.scenarios[3].seed, 2);
    }

    #[test]
    fn empty_sweep_runs() {
        let reg = ProtocolRegistry::new();
        assert!(Sweep::default().run(&reg, 8).unwrap().is_empty());
    }

    #[test]
    fn unknown_protocol_surfaces_first_error() {
        let reg = ProtocolRegistry::new();
        let sweep = Sweep::grid(&Scenario::new("x"), &["nope"], &[1, 2]);
        let err = sweep.run(&reg, 2).unwrap_err();
        assert!(matches!(err, ScenarioError::Protocol(_)));
    }
}
