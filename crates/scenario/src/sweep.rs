//! The [`Sweep`] runner: fan a grid of scenarios across worker threads with
//! deterministic result ordering.
//!
//! Every scenario run is an independent single-threaded simulation, so a sweep
//! parallelizes perfectly: workers pull the next scenario index from a shared atomic
//! counter and write the summary into that scenario's slot. Results always come back
//! in scenario order, and each run's outcome is independent of the thread count —
//! `run(registry, 1)` and `run(registry, n)` return identical summaries.

use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pdq_workloads::{DeadlineDist, SizeDist};

use crate::protocol::ProtocolRegistry;
use crate::scenario::{Scenario, ScenarioError};
use crate::stats::ReplicatedSummary;
use crate::summary::RunSummary;

/// Errors building a sweep grid.
#[derive(Clone, Debug, PartialEq)]
pub enum GridError {
    /// An axis was set to an empty list — the product would silently be empty.
    EmptyAxis(&'static str),
    /// An axis was set twice — the second call would silently overwrite the first.
    DuplicateAxis(&'static str),
    /// An axis does not apply to the base scenario's workload kind.
    Axis {
        /// The axis that failed to apply.
        axis: &'static str,
        /// Why (from the workload helper).
        message: String,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::EmptyAxis(axis) => write!(
                f,
                "grid axis {axis:?} is empty — an empty axis would silently yield an \
                 empty sweep; drop the axis or give it at least one value"
            ),
            GridError::DuplicateAxis(axis) => write!(
                f,
                "grid axis {axis:?} was set twice — the second value list would \
                 silently replace the first; give each axis once"
            ),
            GridError::Axis { axis, message } => {
                write!(f, "grid axis {axis:?} does not apply: {message}")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// Builder for an N-axis scenario grid: the cartesian product of any subset of
/// protocol × seed × load × flow-size × deadline applied to a base scenario.
///
/// Axes expand in that fixed canonical order (protocol-major, deadline-minor)
/// regardless of the call order; unset axes keep the base scenario's value. Every
/// produced scenario round-trips through the plain-text spec format, so any grid
/// cell can be re-run from a file. Each cell is named
/// `base[/protocol][/seed=N][/load=X][/size=S][/deadline=D]`, with a suffix per set
/// axis.
///
/// ```
/// use pdq_scenario::{GridBuilder, Scenario};
/// use pdq_workloads::SizeDist;
///
/// let sweep = GridBuilder::new(Scenario::new("fig"))
///     .protocols(&["pdq(full)", "tcp"])
///     .seeds(&[1, 2, 3])
///     .sizes(vec![SizeDist::Fixed(20_000), SizeDist::query()])
///     .build()
///     .unwrap();
/// assert_eq!(sweep.len(), 2 * 3 * 2);
/// assert!(GridBuilder::new(Scenario::new("fig")).seeds(&[]).build().is_err());
/// ```
#[derive(Clone, Debug)]
pub struct GridBuilder {
    base: Scenario,
    protocols: Option<Vec<String>>,
    seeds: Option<Vec<u64>>,
    loads: Option<Vec<f64>>,
    sizes: Option<Vec<SizeDist>>,
    deadlines: Option<Vec<DeadlineDist>>,
    /// First axis that was set twice, reported by [`GridBuilder::build`] — setting
    /// an axis twice used to silently overwrite the first value list.
    duplicate: Option<&'static str>,
}

impl GridBuilder {
    /// A grid over `base`: with no axes set, [`GridBuilder::build`] yields just
    /// `base` itself.
    pub fn new(base: Scenario) -> Self {
        GridBuilder {
            base,
            protocols: None,
            seeds: None,
            loads: None,
            sizes: None,
            deadlines: None,
            duplicate: None,
        }
    }

    fn set<T>(
        &mut self,
        axis: &'static str,
        slot: fn(&mut Self) -> &mut Option<Vec<T>>,
        v: Vec<T>,
    ) {
        if slot(self).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(axis);
        }
        *slot(self) = Some(v);
    }

    /// Sweep the protocol spec string. Calling this a second time is an error
    /// reported by [`GridBuilder::build`], as are the other axis setters.
    pub fn protocols(mut self, protocols: &[&str]) -> Self {
        let v = protocols.iter().map(|p| p.to_string()).collect();
        self.set("protocols", |b| &mut b.protocols, v);
        self
    }

    /// Sweep the seed.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.set("seeds", |b| &mut b.seeds, seeds.to_vec());
        self
    }

    /// Sweep the workload's load knob (see [`crate::WorkloadSpec::with_load`]).
    pub fn loads(mut self, loads: &[f64]) -> Self {
        self.set("loads", |b| &mut b.loads, loads.to_vec());
        self
    }

    /// Sweep the flow-size distribution (see [`crate::WorkloadSpec::with_sizes`]).
    pub fn sizes(mut self, sizes: Vec<SizeDist>) -> Self {
        self.set("sizes", |b| &mut b.sizes, sizes);
        self
    }

    /// Sweep the deadline distribution (see [`crate::WorkloadSpec::with_deadlines`]).
    pub fn deadlines(mut self, deadlines: Vec<DeadlineDist>) -> Self {
        self.set("deadlines", |b| &mut b.deadlines, deadlines);
        self
    }

    /// Expand the cartesian product. Errors on any empty axis (an empty axis would
    /// silently produce an empty sweep — the historical `Sweep::grid` footgun), on
    /// any axis set twice (the second list used to silently win), and on axes the
    /// base workload cannot express.
    pub fn build(&self) -> Result<Sweep, GridError> {
        if let Some(axis) = self.duplicate {
            return Err(GridError::DuplicateAxis(axis));
        }
        fn check<T>(axis: &'static str, values: &Option<Vec<T>>) -> Result<(), GridError> {
            match values {
                Some(v) if v.is_empty() => Err(GridError::EmptyAxis(axis)),
                _ => Ok(()),
            }
        }
        check("protocols", &self.protocols)?;
        check("seeds", &self.seeds)?;
        check("loads", &self.loads)?;
        check("sizes", &self.sizes)?;
        check("deadlines", &self.deadlines)?;

        let mut cells: Vec<(Scenario, String)> = vec![(self.base.clone(), self.base.name.clone())];
        // Expand one axis over every cell produced so far; earlier axes are major.
        fn expand<T: Clone>(
            cells: Vec<(Scenario, String)>,
            values: &Option<Vec<T>>,
            apply: impl Fn(&Scenario, &str, &T) -> Result<(Scenario, String), GridError>,
        ) -> Result<Vec<(Scenario, String)>, GridError> {
            let Some(values) = values else {
                return Ok(cells);
            };
            let mut out = Vec::with_capacity(cells.len() * values.len());
            for (scenario, name) in &cells {
                for v in values {
                    out.push(apply(scenario, name, v)?);
                }
            }
            Ok(out)
        }

        cells = expand(cells, &self.protocols, |s, name, p: &String| {
            Ok((s.clone().protocol(p.clone()), format!("{name}/{p}")))
        })?;
        cells = expand(cells, &self.seeds, |s, name, &seed| {
            Ok((s.clone().seed(seed), format!("{name}/seed={seed}")))
        })?;
        cells = expand(cells, &self.loads, |s, name, &load| {
            let workload = s
                .workload
                .with_load(load)
                .map_err(|message| GridError::Axis {
                    axis: "loads",
                    message,
                })?;
            Ok((s.clone().workload(workload), format!("{name}/load={load}")))
        })?;
        cells = expand(cells, &self.sizes, |s, name, sizes: &SizeDist| {
            let workload =
                s.workload
                    .with_sizes(sizes.clone())
                    .map_err(|message| GridError::Axis {
                        axis: "sizes",
                        message,
                    })?;
            Ok((s.clone().workload(workload), format!("{name}/size={sizes}")))
        })?;
        cells = expand(
            cells,
            &self.deadlines,
            |s, name, deadlines: &DeadlineDist| {
                let workload = s
                    .workload
                    .with_deadlines(deadlines.clone())
                    .map_err(|message| GridError::Axis {
                        axis: "deadlines",
                        message,
                    })?;
                Ok((
                    s.clone().workload(workload),
                    format!("{name}/deadline={deadlines}"),
                ))
            },
        )?;

        Ok(Sweep {
            scenarios: cells
                .into_iter()
                .map(|(scenario, name)| scenario.name(name))
                .collect(),
        })
    }
}

/// An ordered grid of scenarios to run, typically built with [`GridBuilder`].
#[derive(Clone, Debug, Default)]
pub struct Sweep {
    /// The scenarios, in result order.
    pub scenarios: Vec<Scenario>,
}

impl Sweep {
    /// A sweep over an explicit scenario list.
    pub fn new(scenarios: Vec<Scenario>) -> Self {
        Sweep { scenarios }
    }

    /// The protocol × seed product of a base scenario: one scenario per combination,
    /// named `base/protocol/seed=N`, in protocol-major order. Shorthand for a
    /// two-axis [`GridBuilder`]; panics on an empty axis (use [`GridBuilder::build`]
    /// to handle that as a `Result`).
    pub fn grid(base: &Scenario, protocols: &[&str], seeds: &[u64]) -> Self {
        GridBuilder::new(base.clone())
            .protocols(protocols)
            .seeds(seeds)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of scenarios in the sweep.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when the sweep holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Run every scenario on up to `threads` worker threads and return the summaries
    /// in scenario order. The thread count never changes any result, only the
    /// wall-clock time; on error (e.g. an unresolvable protocol), the error of the
    /// earliest failing scenario is returned.
    pub fn run(
        &self,
        registry: &ProtocolRegistry,
        threads: usize,
    ) -> Result<Vec<RunSummary>, ScenarioError> {
        let n = self.scenarios.len();
        let threads = threads.clamp(1, n.max(1));
        if threads <= 1 {
            return self.scenarios.iter().map(|s| s.run(registry)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<RunSummary, ScenarioError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = self.scenarios[i].run(registry);
                    *slots[i].lock().expect("sweep slot poisoned") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("sweep slot poisoned")
                    .expect("every sweep slot is filled before the scope ends")
            })
            .collect()
    }

    /// [`Sweep::run`] with one worker per available CPU core.
    pub fn run_parallel(
        &self,
        registry: &ProtocolRegistry,
    ) -> Result<Vec<RunSummary>, ScenarioError> {
        self.run(registry, default_threads())
    }

    /// Run every scenario `replicates` times under consecutive seeds (replicate `r`
    /// of a cell with base seed `s` runs seed `s + r`) and return one
    /// [`ReplicatedSummary`] per cell, in scenario order, with mean/stddev/95%-CI
    /// statistics across the seeds. The replicate runs are flattened into one
    /// work queue, so they parallelize across `threads` exactly like [`Sweep::run`]
    /// and results stay thread-count independent.
    pub fn run_replicated(
        &self,
        registry: &ProtocolRegistry,
        threads: usize,
        replicates: NonZeroUsize,
    ) -> Result<Vec<ReplicatedSummary>, ScenarioError> {
        let k = replicates.get();
        let expanded = Sweep::new(
            self.scenarios
                .iter()
                .flat_map(|s| (0..k as u64).map(|r| s.clone().seed(s.seed + r)))
                .collect(),
        );
        let runs = expanded.run(registry, threads)?;
        Ok(runs
            .chunks(k)
            .map(|cell| ReplicatedSummary::new(cell.to_vec()))
            .collect())
    }
}

/// The default sweep width: the number of available CPU cores (1 if unknown).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

impl Scenario {
    /// Rename the scenario (used by [`Sweep::grid`] to tag grid points).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use proptest::{prop_assert, prop_assert_eq, proptest};

    #[test]
    fn empty_axes_are_descriptive_errors() {
        let base = Scenario::new("g");
        for (axis, builder) in [
            ("protocols", GridBuilder::new(base.clone()).protocols(&[])),
            ("seeds", GridBuilder::new(base.clone()).seeds(&[])),
            ("loads", GridBuilder::new(base.clone()).loads(&[])),
            ("sizes", GridBuilder::new(base.clone()).sizes(vec![])),
            (
                "deadlines",
                GridBuilder::new(base.clone()).deadlines(vec![]),
            ),
        ] {
            let err = builder.build().unwrap_err();
            assert_eq!(err, GridError::EmptyAxis(axis));
            assert!(err.to_string().contains(axis), "{err}");
        }
        // No axes at all: the grid is just the base scenario.
        let sweep = GridBuilder::new(base.clone()).build().unwrap();
        assert_eq!(sweep.len(), 1);
        assert_eq!(sweep.scenarios[0], base);
    }

    #[test]
    fn setting_an_axis_twice_is_an_error_not_a_silent_overwrite() {
        let base = Scenario::new("g");
        let err = GridBuilder::new(base.clone())
            .seeds(&[1, 2])
            .seeds(&[3])
            .build()
            .unwrap_err();
        assert_eq!(err, GridError::DuplicateAxis("seeds"));
        assert!(err.to_string().contains("set twice"), "{err}");
        // The first duplicated axis is the one reported, whatever follows it.
        let err = GridBuilder::new(base.clone())
            .protocols(&["tcp"])
            .protocols(&["rcp"])
            .seeds(&[])
            .build()
            .unwrap_err();
        assert_eq!(err, GridError::DuplicateAxis("protocols"));
        // Each axis once (even with the same values) stays fine.
        let sweep = GridBuilder::new(base)
            .seeds(&[1, 2])
            .protocols(&["tcp"])
            .build()
            .unwrap();
        assert_eq!(sweep.len(), 2);
    }

    #[test]
    fn inapplicable_axes_error_with_the_workload_kind() {
        // The default query-aggregation workload has no load knob.
        let err = GridBuilder::new(Scenario::new("g"))
            .loads(&[0.2, 0.4])
            .build()
            .unwrap_err();
        assert!(
            matches!(err, GridError::Axis { axis: "loads", .. }),
            "{err:?}"
        );
        // Manual workloads reject size and deadline sweeps.
        let manual = Scenario::new("m").workload(WorkloadSpec::Manual(vec![]));
        assert!(GridBuilder::new(manual.clone())
            .sizes(vec![SizeDist::Fixed(1)])
            .build()
            .is_err());
        assert!(GridBuilder::new(manual)
            .deadlines(vec![DeadlineDist::None])
            .build()
            .is_err());
    }

    proptest! {
        /// The grid is the full cartesian product in canonical axis order, whatever
        /// the axis lengths: |protocols| × |seeds| × |loads| × |sizes| cells, with
        /// protocol-major ordering and every cell's axis values round-tripping
        /// through the plain-text spec format.
        #[test]
        fn grid_product_count_and_ordering(np in 1usize..4, ns in 1usize..4, nl in 1usize..3, nz in 1usize..3) {
            let protocols: Vec<String> = (0..np).map(|i| format!("p{i}")).collect();
            let protocol_refs: Vec<&str> = protocols.iter().map(String::as_str).collect();
            let seeds: Vec<u64> = (1..=ns as u64).collect();
            let loads: Vec<f64> = (1..=nl).map(|i| i as f64 / 10.0).collect();
            let sizes: Vec<SizeDist> =
                (1..=nz).map(|i| SizeDist::Fixed(10_000 * i as u64)).collect();
            let base = Scenario::new("prop").workload(WorkloadSpec::PermutationAtLoad {
                load: 0.5,
                sizes: SizeDist::Fixed(1),
                deadlines: DeadlineDist::None,
            });
            let sweep = GridBuilder::new(base)
                .protocols(&protocol_refs)
                .seeds(&seeds)
                .loads(&loads)
                .sizes(sizes.clone())
                .build()
                .unwrap();
            prop_assert_eq!(sweep.len(), np * ns * nl * nz);
            for (i, s) in sweep.scenarios.iter().enumerate() {
                // Row-major decomposition of the cell index over the axis order.
                let (pi, rest) = (i / (ns * nl * nz), i % (ns * nl * nz));
                let (si, rest) = (rest / (nl * nz), rest % (nl * nz));
                let (li, zi) = (rest / nz, rest % nz);
                prop_assert_eq!(&s.protocol, &protocols[pi]);
                prop_assert_eq!(s.seed, seeds[si]);
                let WorkloadSpec::PermutationAtLoad { load, sizes: sz, .. } = &s.workload
                else { panic!("workload kind changed") };
                prop_assert!((load - loads[li]).abs() < 1e-12);
                prop_assert_eq!(sz, &sizes[zi]);
                prop_assert!(s.name.contains(&format!("/seed={}", seeds[si])));
                // Every cell round-trips through the spec format.
                let back = Scenario::from_spec(&s.to_spec()).unwrap();
                prop_assert_eq!(&back, s);
            }
        }
    }

    #[test]
    fn grid_is_protocol_major_and_named() {
        let base = Scenario::new("fig");
        let sweep = Sweep::grid(&base, &["tcp", "rcp"], &[1, 2]);
        assert_eq!(sweep.len(), 4);
        let names: Vec<&str> = sweep.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "fig/tcp/seed=1",
                "fig/tcp/seed=2",
                "fig/rcp/seed=1",
                "fig/rcp/seed=2"
            ]
        );
        assert_eq!(sweep.scenarios[3].protocol, "rcp");
        assert_eq!(sweep.scenarios[3].seed, 2);
    }

    #[test]
    fn empty_sweep_runs() {
        let reg = ProtocolRegistry::new();
        assert!(Sweep::default().run(&reg, 8).unwrap().is_empty());
    }

    #[test]
    fn unknown_protocol_surfaces_first_error() {
        let reg = ProtocolRegistry::new();
        let sweep = Sweep::grid(&Scenario::new("x"), &["nope"], &[1, 2]);
        let err = sweep.run(&reg, 2).unwrap_err();
        assert!(matches!(err, ScenarioError::Protocol(_)));
    }

    #[test]
    fn replicated_cells_use_consecutive_seeds() {
        struct Idle;
        impl pdq_netsim::HostAgent for Idle {
            fn on_flow_arrival(&mut self, _: &pdq_netsim::FlowInfo, _: &mut pdq_netsim::Ctx) {}
            fn on_packet(&mut self, _: pdq_netsim::Packet, _: &mut pdq_netsim::Ctx) {}
            fn on_timer(
                &mut self,
                _: pdq_netsim::FlowId,
                _: pdq_netsim::TimerKind,
                _: u64,
                _: &mut pdq_netsim::Ctx,
            ) {
            }
        }
        struct Nop;
        impl crate::protocol::ProtocolInstaller for Nop {
            fn name(&self) -> String {
                "nop".into()
            }
            fn label(&self) -> String {
                "NOP".into()
            }
            fn install(&self, sim: &mut pdq_netsim::Simulator) {
                sim.install_agents(|_, _| Box::new(Idle));
            }
        }
        let mut reg = ProtocolRegistry::new();
        reg.register_instance(std::sync::Arc::new(Nop));
        let sweep = Sweep::new(vec![
            Scenario::new("a").protocol("nop").seed(10),
            Scenario::new("b").protocol("nop").seed(20),
        ]);
        let k = NonZeroUsize::new(3).unwrap();
        let cells = sweep.run_replicated(&reg, 2, k).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].scenario, "a");
        assert_eq!(cells[0].seeds, vec![10, 11, 12]);
        assert_eq!(cells[1].seeds, vec![20, 21, 22]);
        for cell in &cells {
            assert_eq!(cell.runs.len(), 3);
            assert_eq!(cell.protocol_label, "NOP");
            // Flow counts are a real metric even for a no-op protocol.
            let stats = cell.stats_of(|r| Some(r.flows as f64)).unwrap();
            assert_eq!(stats.n, 3);
            assert!(stats.mean > 0.0);
        }
    }
}
