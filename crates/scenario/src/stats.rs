//! Multi-seed statistics: [`SummaryStats`] (mean / stddev / 95% confidence
//! interval) and the [`ReplicatedSummary`] a [`crate::Sweep::run_replicated`] call
//! produces for each grid cell.

use std::fmt;

use crate::summary::RunSummary;

/// Mean, sample standard deviation and normal-approximation 95% confidence
/// interval of a metric across replicated runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SummaryStats {
    /// Number of samples (seeds) the statistic aggregates.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for a single sample).
    pub stddev: f64,
    /// Half-width of the 95% confidence interval on the mean
    /// (`1.96 · stddev / √n`, the normal approximation; 0 for a single sample).
    pub ci95: f64,
}

impl SummaryStats {
    /// Aggregate `samples`; `None` when the slice is empty.
    pub fn from_samples(samples: &[f64]) -> Option<SummaryStats> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
            var.sqrt()
        };
        let ci95 = if n < 2 {
            0.0
        } else {
            1.96 * stddev / (n as f64).sqrt()
        };
        Some(SummaryStats {
            n,
            mean,
            stddev,
            ci95,
        })
    }

    /// The confidence interval as `(low, high)` bounds.
    pub fn ci_bounds(&self) -> (f64, f64) {
        (self.mean - self.ci95, self.mean + self.ci95)
    }
}

/// Displays as `mean ± ci95` (the conventional table form).
impl fmt::Display for SummaryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.ci95)
    }
}

/// One grid cell of a replicated sweep: the same scenario run under
/// `runs.len()` consecutive seeds, with statistics over any per-run metric.
#[derive(Clone, Debug)]
pub struct ReplicatedSummary {
    /// The cell's scenario name (shared by all replicates).
    pub scenario: String,
    /// Protocol spec string of the cell.
    pub protocol: String,
    /// Display label of the resolved installer.
    pub protocol_label: String,
    /// The seeds the replicates ran with, in run order.
    pub seeds: Vec<u64>,
    /// The individual runs, in seed order.
    pub runs: Vec<RunSummary>,
}

impl ReplicatedSummary {
    /// Group `runs` (the flattened replicate runs of one cell) into a summary.
    /// Panics on an empty slice — `run_replicated` always produces ≥ 1 run per cell.
    pub fn new(runs: Vec<RunSummary>) -> Self {
        let first = runs
            .first()
            .expect("a replicated cell has at least one run");
        ReplicatedSummary {
            scenario: first.scenario.clone(),
            protocol: first.protocol.clone(),
            protocol_label: first.protocol_label.clone(),
            seeds: runs.iter().map(|r| r.seed).collect(),
            runs,
        }
    }

    /// Statistics of an arbitrary per-run metric; runs where the metric is `None`
    /// are skipped, and `None` is returned when no run produced a value.
    pub fn stats_of<F>(&self, metric: F) -> Option<SummaryStats>
    where
        F: Fn(&RunSummary) -> Option<f64>,
    {
        let samples: Vec<f64> = self.runs.iter().filter_map(&metric).collect();
        SummaryStats::from_samples(&samples)
    }

    /// Mean-FCT statistics across seeds, in seconds.
    pub fn mean_fct_stats(&self) -> Option<SummaryStats> {
        self.stats_of(|r| r.mean_fct_secs)
    }

    /// Application-throughput statistics across seeds.
    pub fn application_throughput_stats(&self) -> Option<SummaryStats> {
        self.stats_of(|r| r.application_throughput())
    }

    /// Completed-flow-count statistics across seeds.
    pub fn completed_stats(&self) -> Option<SummaryStats> {
        self.stats_of(|r| Some(r.completed as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_samples() {
        assert!(SummaryStats::from_samples(&[]).is_none());
        let one = SummaryStats::from_samples(&[4.0]).unwrap();
        assert_eq!((one.n, one.mean, one.stddev, one.ci95), (1, 4.0, 0.0, 0.0));

        let s = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Sample variance of 1..4 is 5/3.
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((s.ci95 - 1.96 * s.stddev / 2.0).abs() < 1e-12);
        let (lo, hi) = s.ci_bounds();
        assert!(lo < s.mean && s.mean < hi);
        assert_eq!(s.to_string(), format!("{:.3} ± {:.3}", s.mean, s.ci95));
    }

    #[test]
    fn ci_narrows_with_more_samples_of_the_same_spread() {
        // Same alternating spread, more samples: the CI half-width must shrink
        // even though the stddev stays put.
        let few: Vec<f64> = (0..4).map(|i| if i % 2 == 0 { 1.0 } else { 3.0 }).collect();
        let many: Vec<f64> = (0..16)
            .map(|i| if i % 2 == 0 { 1.0 } else { 3.0 })
            .collect();
        let few = SummaryStats::from_samples(&few).unwrap();
        let many = SummaryStats::from_samples(&many).unwrap();
        assert!(many.ci95 < few.ci95, "{} vs {}", many.ci95, few.ci95);
    }
}
