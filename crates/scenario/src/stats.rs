//! Multi-seed statistics: [`SummaryStats`] (mean / stddev / 95% confidence
//! interval) and the [`ReplicatedSummary`] a [`crate::Sweep::run_replicated`] call
//! produces for each grid cell.

use std::fmt;

use crate::summary::RunSummary;

/// Mean, sample standard deviation and Student-t 95% confidence interval of a
/// metric across replicated runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SummaryStats {
    /// Number of samples (seeds) the statistic aggregates.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for a single sample).
    pub stddev: f64,
    /// Half-width of the 95% confidence interval on the mean
    /// (`t₀.₉₇₅,ₙ₋₁ · stddev / √n`; 0 for a single sample). Sweeps replicate over a
    /// handful of seeds, where the normal 1.96 would claim intervals roughly half
    /// as wide as the data supports — see [`t_critical_975`].
    pub ci95: f64,
}

/// Two-sided 95% (upper-tail 97.5%) Student-t critical values for 1–30 degrees of
/// freedom — the standard table, exact to the three decimals it is quoted at.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The 97.5th-percentile Student-t critical value for `df` degrees of freedom —
/// the multiplier for a two-sided 95% confidence interval on a mean estimated
/// from `df + 1` samples.
///
/// Degrees of freedom 1–30 come from the standard table; beyond that the
/// Cornish–Fisher expansion around the normal quantile is accurate to ~1e-4 and
/// decreases monotonically towards 1.96. `df = 0` (a single sample) has no
/// finite interval; this returns infinity so callers notice rather than getting
/// a silently-too-narrow bound (SummaryStats itself reports 0 width for n < 2,
/// as before).
pub fn t_critical_975(df: usize) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T_975[df - 1],
        _ => {
            let z = 1.959_963_985;
            let (z3, d) = (z * z * z, df as f64);
            let z5 = z3 * z * z;
            z + (z3 + z) / (4.0 * d) + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * d * d)
        }
    }
}

impl SummaryStats {
    /// Aggregate `samples`; `None` when the slice is empty.
    pub fn from_samples(samples: &[f64]) -> Option<SummaryStats> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
            var.sqrt()
        };
        let ci95 = if n < 2 {
            0.0
        } else {
            t_critical_975(n - 1) * stddev / (n as f64).sqrt()
        };
        Some(SummaryStats {
            n,
            mean,
            stddev,
            ci95,
        })
    }

    /// The confidence interval as `(low, high)` bounds.
    pub fn ci_bounds(&self) -> (f64, f64) {
        (self.mean - self.ci95, self.mean + self.ci95)
    }
}

/// Displays as `mean ± ci95` (the conventional table form).
impl fmt::Display for SummaryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.ci95)
    }
}

/// One grid cell of a replicated sweep: the same scenario run under
/// `runs.len()` consecutive seeds, with statistics over any per-run metric.
#[derive(Clone, Debug)]
pub struct ReplicatedSummary {
    /// The cell's scenario name (shared by all replicates).
    pub scenario: String,
    /// Protocol spec string of the cell.
    pub protocol: String,
    /// Display label of the resolved installer.
    pub protocol_label: String,
    /// The seeds the replicates ran with, in run order.
    pub seeds: Vec<u64>,
    /// The individual runs, in seed order.
    pub runs: Vec<RunSummary>,
}

impl ReplicatedSummary {
    /// Group `runs` (the flattened replicate runs of one cell) into a summary.
    /// Panics on an empty slice — `run_replicated` always produces ≥ 1 run per cell.
    pub fn new(runs: Vec<RunSummary>) -> Self {
        let first = runs
            .first()
            .expect("a replicated cell has at least one run");
        ReplicatedSummary {
            scenario: first.scenario.clone(),
            protocol: first.protocol.clone(),
            protocol_label: first.protocol_label.clone(),
            seeds: runs.iter().map(|r| r.seed).collect(),
            runs,
        }
    }

    /// Statistics of an arbitrary per-run metric; runs where the metric is `None`
    /// are skipped, and `None` is returned when no run produced a value.
    pub fn stats_of<F>(&self, metric: F) -> Option<SummaryStats>
    where
        F: Fn(&RunSummary) -> Option<f64>,
    {
        let samples: Vec<f64> = self.runs.iter().filter_map(&metric).collect();
        SummaryStats::from_samples(&samples)
    }

    /// Mean-FCT statistics across seeds, in seconds.
    pub fn mean_fct_stats(&self) -> Option<SummaryStats> {
        self.stats_of(|r| r.mean_fct_secs)
    }

    /// Application-throughput statistics across seeds.
    pub fn application_throughput_stats(&self) -> Option<SummaryStats> {
        self.stats_of(|r| r.application_throughput())
    }

    /// Completed-flow-count statistics across seeds.
    pub fn completed_stats(&self) -> Option<SummaryStats> {
        self.stats_of(|r| Some(r.completed as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_samples() {
        assert!(SummaryStats::from_samples(&[]).is_none());
        let one = SummaryStats::from_samples(&[4.0]).unwrap();
        assert_eq!((one.n, one.mean, one.stddev, one.ci95), (1, 4.0, 0.0, 0.0));

        let s = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Sample variance of 1..4 is 5/3; 4 samples → t with 3 degrees of freedom.
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((s.ci95 - 3.182 * s.stddev / 2.0).abs() < 1e-12);
        let (lo, hi) = s.ci_bounds();
        assert!(lo < s.mean && s.mean < hi);
        assert_eq!(s.to_string(), format!("{:.3} ± {:.3}", s.mean, s.ci95));
    }

    #[test]
    fn small_seed_counts_use_the_t_table_not_the_normal_1_96() {
        // Unit-stddev samples make the half-width exactly t / √n. These pin the
        // K=3 (df=2) and K=30 (df=29) interval widths to the textbook t values —
        // the normal 1.96 would understate the K=3 interval by more than 2×.
        let k3 = SummaryStats::from_samples(&[-1.0, 0.0, 1.0]).unwrap();
        assert!((k3.stddev - 1.0).abs() < 1e-12);
        assert!(
            (k3.ci95 - 4.303 / 3.0f64.sqrt()).abs() < 1e-12,
            "{}",
            k3.ci95
        );

        // 15 × {-1, 1}: mean 0, sample stddev √(30/29).
        let samples: Vec<f64> = (0..30)
            .map(|i| if i % 2 == 0 { -1.0 } else { 1.0 })
            .collect();
        let k30 = SummaryStats::from_samples(&samples).unwrap();
        let expect = 2.045 * (30.0f64 / 29.0).sqrt() / 30.0f64.sqrt();
        assert!((k30.ci95 - expect).abs() < 1e-12, "{}", k30.ci95);
    }

    #[test]
    fn t_critical_values_are_sane() {
        // Table endpoints and the single-sample sentinel.
        assert!(t_critical_975(0).is_infinite());
        assert_eq!(t_critical_975(1), 12.706);
        assert_eq!(t_critical_975(2), 4.303);
        assert_eq!(t_critical_975(30), 2.042);
        // Beyond the table: strictly decreasing towards the normal 1.96, with no
        // jump at the table/series boundary.
        let mut prev = t_critical_975(1);
        for df in 2..=200 {
            let t = t_critical_975(df);
            assert!(t < prev, "df={df}: {t} !< {prev}");
            assert!(t > 1.959, "df={df}: {t}");
            prev = t;
        }
        // The series hits the quoted table values where they overlap (df=120: 1.980).
        assert!((t_critical_975(120) - 1.980).abs() < 1e-3);
    }

    #[test]
    fn ci_narrows_with_more_samples_of_the_same_spread() {
        // Same alternating spread, more samples: the CI half-width must shrink
        // even though the stddev stays put — both the 1/√n factor and the t
        // critical value fall as the seed count grows.
        let widths: Vec<f64> = [4usize, 8, 16, 32]
            .iter()
            .map(|&n| {
                let samples: Vec<f64> =
                    (0..n).map(|i| if i % 2 == 0 { 1.0 } else { 3.0 }).collect();
                SummaryStats::from_samples(&samples).unwrap().ci95
            })
            .collect();
        for pair in widths.windows(2) {
            assert!(pair[1] < pair[0], "{widths:?}");
        }
    }
}
