//! The [`Scenario`] value: everything one simulation run needs, as plain data,
//! executable on either simulation backend (packet-level or flow-level).

use std::fmt;

use pdq_flowsim::{run_flow_level, run_fluid, FluidFlow};
use pdq_netsim::{FlowSpec, LinkId, SimConfig, SimResults, SimTime, Simulator, TraceConfig};
use pdq_topology::{EcmpRouter, Partition, Topology};

use crate::backend::SimBackend;
use crate::protocol::{ProtocolInstaller, ProtocolRegistry, RegistryError};
use crate::spec::{TopologySpec, WorkloadSpec};
use crate::summary::RunSummary;

/// Default simulated-time cap: the harness' historical `run_packet_level` limit.
pub const DEFAULT_STOP_AT: SimTime = SimTime::from_secs(20);

/// Errors building or running a scenario.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// The protocol spec string did not resolve through the registry.
    Protocol(RegistryError),
    /// A plain-text scenario spec failed to parse.
    Spec(String),
    /// The protocol resolved, but has no model for the requested backend.
    Backend {
        /// The protocol spec string that lacks the backend.
        protocol: String,
        /// The backend the scenario asked for.
        backend: SimBackend,
        /// Families in the registry that do advertise this backend, sorted.
        supported: Vec<String>,
    },
    /// An I/O failure persisting or streaming results (cache store, JSONL sink).
    /// The simulation itself succeeded; losing its record silently would defeat
    /// the resumable-sweep guarantee, so it surfaces loudly.
    Io(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Protocol(e) => write!(f, "{e}"),
            ScenarioError::Spec(msg) => write!(f, "bad scenario spec: {msg}"),
            ScenarioError::Backend {
                protocol,
                backend,
                supported,
            } => write!(
                f,
                "protocol {protocol:?} does not support the {backend} backend; \
                 families supporting {backend}: {}",
                if supported.is_empty() {
                    "(none)".to_string()
                } else {
                    supported.join(", ")
                }
            ),
            ScenarioError::Io(msg) => write!(f, "result I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<RegistryError> for ScenarioError {
    fn from(e: RegistryError) -> Self {
        ScenarioError::Protocol(e)
    }
}

/// A complete, self-contained description of one packet-level experiment run:
/// topology, workload, protocol, seed and stop time.
///
/// Scenarios are plain data — buildable with the fluent methods, serializable to a
/// plain-text spec ([`Scenario::to_spec`] / [`Scenario::from_spec`]) and executable
/// against any [`ProtocolRegistry`] ([`Scenario::run`]). The same scenario value
/// always produces the same [`RunSummary`].
///
/// ```
/// use std::sync::Arc;
/// use pdq_netsim::{Ctx, FlowId, FlowInfo, HostAgent, Packet, PacketKind, Simulator, TimerKind};
/// use pdq_scenario::{ProtocolInstaller, ProtocolRegistry, Scenario, TopologySpec, WorkloadSpec};
/// use pdq_workloads::{DeadlineDist, SizeDist};
///
/// // A toy protocol: blast the whole flow at once, complete on full receipt.
/// struct Blast;
/// impl HostAgent for Blast {
///     fn on_flow_arrival(&mut self, flow: &FlowInfo, ctx: &mut Ctx) {
///         let mut off = 0;
///         while off < flow.spec.size_bytes {
///             let pay = (flow.spec.size_bytes - off).min(1444) as u32;
///             ctx.send(Packet::data(flow.spec.id, flow.spec.src, flow.spec.dst, off, pay));
///             off += pay as u64;
///         }
///     }
///     fn on_packet(&mut self, packet: Packet, ctx: &mut Ctx) {
///         if packet.kind == PacketKind::Data {
///             let size = ctx.flow(packet.flow).unwrap().spec.size_bytes;
///             if packet.seq + packet.payload as u64 >= size {
///                 ctx.flow_completed(packet.flow);
///             }
///         }
///     }
///     fn on_timer(&mut self, _: FlowId, _: TimerKind, _: u64, _: &mut Ctx) {}
/// }
///
/// struct BlastInstaller;
/// impl ProtocolInstaller for BlastInstaller {
///     fn name(&self) -> String { "blast".into() }
///     fn label(&self) -> String { "Blast".into() }
///     fn install(&self, sim: &mut Simulator) {
///         sim.install_agents(|_, _| Box::new(Blast));
///     }
/// }
///
/// let mut registry = ProtocolRegistry::new();
/// registry.register_instance(Arc::new(BlastInstaller));
///
/// let scenario = Scenario::new("doc")
///     .topology(TopologySpec::SingleBottleneck { senders: 4, access_loss: 0.0 })
///     .workload(WorkloadSpec::QueryAggregation {
///         flows: 4,
///         sizes: SizeDist::Fixed(50_000),
///         deadlines: DeadlineDist::None,
///     })
///     .protocol("blast")
///     .seed(7);
/// let summary = scenario.run(&registry).unwrap();
/// assert_eq!(summary.completed, 4);
/// assert_eq!(Scenario::from_spec(&scenario.to_spec()).unwrap(), scenario);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario name (free-form; used in summaries and sweep output).
    pub name: String,
    /// Which simulation engine executes the run (default: packet-level).
    pub backend: SimBackend,
    /// The topology to build.
    pub topology: TopologySpec,
    /// The workload to generate on it.
    pub workload: WorkloadSpec,
    /// Protocol spec string resolved through the registry at run time.
    pub protocol: String,
    /// Seed for both workload generation and the simulation RNG.
    pub seed: u64,
    /// Hard cap on simulated time.
    pub stop_at: SimTime,
    /// Time-series sampling configuration (packet backend only).
    pub trace: TraceConfig,
    /// Shard count for the packet engine: 1 (default) runs the sequential engine,
    /// N ≥ 2 runs [`pdq_netsim::Simulator::run_sharded`] over a
    /// [`Partition::of_topology`] cut, 0 auto-detects the core count at run time.
    pub engine_threads: u32,
    /// RFC 9002-style sender pacing (spec key `pacing = on|off`, default off).
    /// Resolved through [`ProtocolInstaller::with_pacing`]; protocols without a
    /// paced variant fail loudly, and only the packet backend models pacing.
    pub pacing: bool,
    /// Override every link's queue capacity, in bytes (spec key
    /// `topology.queue_bytes`). `None` (the default) keeps each topology's own
    /// sizing — the 4 MB intra-DC default or the WAN builder's BDP scaling.
    pub queue_capacity: Option<u64>,
}

impl Scenario {
    /// A scenario with the harness defaults: the paper tree, a 10-flow
    /// deadline-constrained query aggregation, PDQ(Full), seed 1, 20 s cap, no traces.
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            backend: SimBackend::Packet,
            topology: TopologySpec::PaperTree,
            workload: WorkloadSpec::QueryAggregation {
                flows: 10,
                sizes: pdq_workloads::SizeDist::query(),
                deadlines: pdq_workloads::DeadlineDist::paper_default(),
            },
            protocol: "pdq(full)".into(),
            seed: 1,
            stop_at: DEFAULT_STOP_AT,
            trace: TraceConfig::default(),
            engine_threads: 1,
            pacing: false,
            queue_capacity: None,
        }
    }

    /// Set the simulation backend.
    pub fn backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Set the topology.
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// Set the workload.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Set the protocol spec string (e.g. `pdq(full)`, `mpdq(3)`, `tcp`).
    pub fn protocol(mut self, protocol: impl Into<String>) -> Self {
        self.protocol = protocol.into();
        self
    }

    /// Set the seed (drives both workload generation and the simulation RNG).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the simulated-time cap.
    pub fn stop_at(mut self, stop_at: SimTime) -> Self {
        self.stop_at = stop_at;
        self
    }

    /// Enable time-series tracing.
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Set the packet-engine shard count (1 = sequential, 0 = auto-detect cores).
    pub fn engine_threads(mut self, engine_threads: u32) -> Self {
        self.engine_threads = engine_threads;
        self
    }

    /// Enable or disable RFC 9002-style sender pacing.
    pub fn pacing(mut self, pacing: bool) -> Self {
        self.pacing = pacing;
        self
    }

    /// Override every link's queue capacity in bytes.
    pub fn queue_capacity(mut self, bytes: u64) -> Self {
        self.queue_capacity = Some(bytes);
        self
    }

    /// Execute the scenario on its backend: build the topology, generate the
    /// workload, resolve the protocol, run the simulation, and summarize.
    ///
    /// The packet backend installs the protocol's agents/controllers on the
    /// discrete-event engine; the flow backend lowers the scenario into a
    /// [`pdq_flowsim::FlowLevelConfig`] via [`ProtocolInstaller::flow_config`]; the
    /// fluid backend lowers it onto the §2.1 unit-rate bottleneck via
    /// [`ProtocolInstaller::fluid_model`] (see [`lower_to_fluid`]). Either lowering
    /// fails with [`ScenarioError::Backend`] for protocols without that model.
    pub fn run(&self, registry: &ProtocolRegistry) -> Result<RunSummary, ScenarioError> {
        let mut installer = registry.resolve(&self.protocol)?;
        if self.pacing {
            if self.backend != SimBackend::Packet {
                return Err(ScenarioError::Spec(format!(
                    "pacing = on requires the packet backend, not {}",
                    self.backend
                )));
            }
            installer = installer
                .with_pacing(pdq_netsim::PacerConfig::default())
                .ok_or_else(|| {
                    ScenarioError::Spec(format!(
                        "protocol {:?} has no paced variant (pacing = on)",
                        self.protocol
                    ))
                })?;
        }
        let mut topo = self.topology.build();
        if let Some(bytes) = self.queue_capacity {
            for link in &mut topo.net.links {
                link.queue_capacity_bytes = bytes;
            }
        }
        let flows = self.workload.generate(&topo, self.seed);
        let mut summary = match self.backend {
            SimBackend::Packet => {
                let results = execute_sharded(
                    &topo,
                    &flows,
                    &*installer,
                    self.seed,
                    self.trace.clone(),
                    self.stop_at,
                    self.engine_threads,
                );
                RunSummary::new(self, installer.label(), results)
            }
            SimBackend::Flow => {
                let mut cfg = installer
                    .flow_config()
                    .ok_or_else(|| ScenarioError::Backend {
                        protocol: self.protocol.clone(),
                        backend: SimBackend::Flow,
                        supported: registry.families_supporting(SimBackend::Flow),
                    })?;
                cfg.max_time = self.stop_at;
                let results = run_flow_level(&topo, &flows, &cfg, self.seed);
                RunSummary::from_flow(self, installer.label(), results)
            }
            SimBackend::Fluid => {
                let model = installer
                    .fluid_model()
                    .ok_or_else(|| ScenarioError::Backend {
                        protocol: self.protocol.clone(),
                        backend: SimBackend::Fluid,
                        supported: registry.families_supporting(SimBackend::Fluid),
                    })?;
                let results = run_fluid(model, &lower_to_fluid(&flows));
                RunSummary::from_fluid(self, installer.label(), results)
            }
        };
        summary.attach_coflows(&flows);
        Ok(summary)
    }

    /// Serialize to the plain-text spec format (`key = value` lines, `#` comments).
    /// The `backend` key is only written for non-default (flow/fluid) backends, so
    /// the serialization of every pre-backend spec is byte-identical to before.
    pub fn to_spec(&self) -> String {
        let mut pairs: Vec<(String, String)> = vec![
            ("scenario".into(), self.name.clone()),
            ("protocol".into(), self.protocol.clone()),
            ("seed".into(), self.seed.to_string()),
            ("stop_at_ns".into(), self.stop_at.as_nanos().to_string()),
            ("topology".into(), self.topology.spec_token()),
        ];
        if self.backend != SimBackend::default() {
            pairs.insert(2, ("backend".into(), self.backend.token().into()));
        }
        // Like `backend`, the `engine_threads` key is only written when it deviates
        // from the sequential default, keeping older specs byte-identical.
        if self.engine_threads != 1 {
            pairs.push(("engine_threads".into(), self.engine_threads.to_string()));
        }
        // Same rule for the pacing and queue-override axes: default-off scenarios
        // serialize exactly as they did before the keys existed.
        if self.pacing {
            pairs.push(("pacing".into(), "on".into()));
        }
        if let Some(bytes) = self.queue_capacity {
            pairs.push(("topology.queue_bytes".into(), bytes.to_string()));
        }
        self.workload.write_keys(&mut pairs);
        if self.trace != TraceConfig::default() {
            pairs.push((
                "trace.interval_ns".into(),
                self.trace.interval.as_nanos().to_string(),
            ));
            if !self.trace.links.is_empty() {
                let links: Vec<String> = self.trace.links.iter().map(|l| l.0.to_string()).collect();
                pairs.push(("trace.links".into(), links.join(",")));
            }
            if self.trace.flows {
                pairs.push(("trace.flows".into(), "true".into()));
            }
        }
        let mut out = String::from("# pdq scenario spec v1\n");
        for (k, v) in pairs {
            out.push_str(&k);
            out.push_str(" = ");
            out.push_str(&v);
            out.push('\n');
        }
        out
    }

    /// Parse the [`Scenario::to_spec`] format. Unknown keys are rejected so typos
    /// fail loudly rather than silently changing the run.
    pub fn from_spec(text: &str) -> Result<Self, ScenarioError> {
        let err = |msg: String| ScenarioError::Spec(msg);
        let mut pairs: Vec<(String, String)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| err(format!("line {}: expected key = value", lineno + 1)))?;
            pairs.push((k.trim().to_string(), v.trim().to_string()));
        }
        let get = |key: &str| -> Option<String> {
            pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
        };
        let require = |key: &str| -> Result<String, ScenarioError> {
            get(key).ok_or_else(|| err(format!("missing key {key}")))
        };

        let name = require("scenario")?;
        let protocol = require("protocol")?;
        let backend = match get("backend") {
            None => SimBackend::default(),
            Some(v) => v.parse().map_err(err)?,
        };
        let seed: u64 = require("seed")?
            .parse()
            .map_err(|_| err("bad seed".into()))?;
        let stop_at = SimTime::from_nanos(
            require("stop_at_ns")?
                .parse()
                .map_err(|_| err("bad stop_at_ns".into()))?,
        );
        let topology = TopologySpec::parse(&require("topology")?).map_err(err)?;
        let engine_threads: u32 = match get("engine_threads") {
            None => 1,
            Some(v) => v.parse().map_err(|_| err("bad engine_threads".into()))?,
        };
        let pacing = match get("pacing").as_deref() {
            None | Some("off") => false,
            Some("on") => true,
            Some(v) => return Err(err(format!("bad pacing {v:?} (want on or off)"))),
        };
        let queue_capacity = match get("topology.queue_bytes") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| err("bad topology.queue_bytes".into()))?,
            ),
        };
        let workload_kind = require("workload")?;
        let flow_lines: Vec<String> = pairs
            .iter()
            .filter(|(k, _)| k == "flow")
            .map(|(_, v)| v.clone())
            .collect();
        let workload_get = |key: &str| -> Option<String> { get(&format!("workload.{key}")) };
        let workload =
            WorkloadSpec::from_keys(&workload_kind, &workload_get, &flow_lines).map_err(err)?;

        let mut trace = TraceConfig::default();
        if let Some(interval) = get("trace.interval_ns") {
            trace.interval = SimTime::from_nanos(
                interval
                    .parse()
                    .map_err(|_| err("bad trace.interval_ns".into()))?,
            );
        }
        if let Some(links) = get("trace.links") {
            for part in links.split(',') {
                trace.links.push(LinkId(
                    part.trim()
                        .parse()
                        .map_err(|_| err("bad trace.links".into()))?,
                ));
            }
        }
        if let Some(flows) = get("trace.flows") {
            trace.flows = flows.parse().map_err(|_| err("bad trace.flows".into()))?;
        }

        // Reject unknown keys. The workload keys are validated against the keys the
        // parsed workload actually serializes, so a leftover `workload.*` line from a
        // different workload kind (or a stray `flow` line outside a manual workload)
        // fails loudly instead of silently changing the run.
        let mut workload_keys: Vec<(String, String)> = Vec::new();
        workload.write_keys(&mut workload_keys);
        for (k, _) in &pairs {
            let known = matches!(
                k.as_str(),
                "scenario"
                    | "protocol"
                    | "backend"
                    | "seed"
                    | "stop_at_ns"
                    | "topology"
                    | "engine_threads"
                    | "pacing"
                    | "topology.queue_bytes"
                    | "trace.interval_ns"
                    | "trace.links"
                    | "trace.flows"
            ) || workload_keys.iter().any(|(wk, _)| wk == k);
            if !known {
                let mut valid: Vec<&str> = vec![
                    "scenario",
                    "protocol",
                    "backend",
                    "seed",
                    "stop_at_ns",
                    "topology",
                    "engine_threads",
                    "pacing",
                    "topology.queue_bytes",
                    "trace.interval_ns",
                    "trace.links",
                    "trace.flows",
                ];
                valid.extend(workload_keys.iter().map(|(wk, _)| wk.as_str()));
                valid.sort_unstable();
                valid.dedup();
                return Err(err(format!(
                    "unknown key {k:?} (not used by workload {workload_kind:?}); \
                     valid keys: {}",
                    valid.join(", ")
                )));
            }
        }

        Ok(Scenario {
            name,
            backend,
            topology,
            workload,
            protocol,
            seed,
            stop_at,
            trace,
            engine_threads,
            pacing,
            queue_capacity,
        })
    }
}

/// Lower a generated flow list onto the §2.1 fluid model's single unit-rate
/// bottleneck: one size unit per byte, deadlines in seconds, in arrival order.
///
/// The fluid model assumes every flow is present from time zero, so arrival times
/// do not shift completions — they (tie-broken by flow id) only fix the order the
/// [`pdq_flowsim::FluidModel::D3`] reservation loop grants requests in, which is
/// exactly the degree of freedom the paper's Figure 1d explores. Topology is
/// ignored: whatever the scenario builds, the fluid model sees one shared link.
pub fn lower_to_fluid(flows: &[FlowSpec]) -> Vec<(u64, FluidFlow)> {
    let mut order: Vec<&FlowSpec> = flows.iter().collect();
    order.sort_by_key(|f| (f.arrival, f.id.value()));
    order
        .into_iter()
        .map(|f| {
            (
                f.id.value(),
                FluidFlow {
                    size: f.size_bytes as f64,
                    deadline: f.deadline.map(|d| d.as_secs_f64()),
                },
            )
        })
        .collect()
}

/// Run one packet-level simulation with the harness' canonical setup: ECMP routing,
/// the given installer, `stop_at` simulated-time cap.
///
/// This is the single execution path shared by [`Scenario::run`] and the lower-level
/// `run_packet_level` helper, so scenario runs and direct flow-list runs are
/// bit-for-bit identical.
pub fn execute(
    topo: &Topology,
    flows: &[FlowSpec],
    installer: &dyn ProtocolInstaller,
    seed: u64,
    trace: TraceConfig,
    stop_at: SimTime,
) -> SimResults {
    let config = SimConfig {
        seed,
        trace,
        max_sim_time: stop_at,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.net.clone(), config);
    sim.set_router(EcmpRouter::new());
    installer.install(&mut sim);
    sim.add_flows(flows.iter().cloned());
    sim.run()
}

/// [`execute`], generalized over the packet engine's shard count.
///
/// `engine_threads` of 1 is exactly the sequential [`execute`] path (bit-for-bit);
/// 0 resolves to the available core count; N ≥ 2 partitions the topology with
/// [`Partition::of_topology`] and runs the conservative-lookahead sharded engine
/// (see `pdq_netsim::shard` for the determinism model). A partition that collapses
/// to one effective shard (e.g. a single-rack topology) falls back to the
/// sequential path, so results stay byte-identical to `execute` in that case too.
pub fn execute_sharded(
    topo: &Topology,
    flows: &[FlowSpec],
    installer: &dyn ProtocolInstaller,
    seed: u64,
    trace: TraceConfig,
    stop_at: SimTime,
    engine_threads: u32,
) -> SimResults {
    let threads = if engine_threads == 0 {
        crate::sweep::default_threads() as u32
    } else {
        engine_threads
    };
    if threads <= 1 {
        return execute(topo, flows, installer, seed, trace, stop_at);
    }
    let partition = Partition::of_topology(topo, threads);
    if partition.shards() <= 1 {
        return execute(topo, flows, installer, seed, trace, stop_at);
    }
    let config = SimConfig {
        seed,
        trace,
        max_sim_time: stop_at,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo.net.clone(), config);
    sim.set_router(EcmpRouter::new());
    installer.install(&mut sim);
    sim.add_flows(flows.iter().cloned());
    let assignment = partition.to_assignment(&topo.net);
    sim.run_sharded(&assignment, |_| Box::new(EcmpRouter::new()))
}

/// Run a packet-level simulation of `flows` over `topo` under `installer`, with the
/// default 20 s simulated-time cap — the escape hatch for hand-built flow lists.
pub fn run_packet_level(
    topo: &Topology,
    flows: &[FlowSpec],
    installer: &dyn ProtocolInstaller,
    seed: u64,
    trace: TraceConfig,
) -> SimResults {
    execute(topo, flows, installer, seed, trace, DEFAULT_STOP_AT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_workloads::{DeadlineDist, Pattern, SizeDist};

    fn sample_scenarios() -> Vec<Scenario> {
        vec![
            Scenario::new("defaults"),
            Scenario::new("fig5-ish")
                .workload(WorkloadSpec::Poisson {
                    rate_flows_per_sec: 1500.0,
                    duration: SimTime::from_millis(80),
                    sizes: SizeDist::vl2_like(),
                    short_deadlines: DeadlineDist::paper_default(),
                    short_flow_threshold_bytes: 40_000,
                    pattern: Pattern::RandomPermutation,
                })
                .protocol("rcp")
                .seed(11),
            Scenario::new("fig9-ish")
                .topology(TopologySpec::SingleBottleneck {
                    senders: 12,
                    access_loss: 0.02,
                })
                .protocol("tcp"),
            Scenario::new("traced")
                .workload(WorkloadSpec::Manual(vec![FlowSpec::new(
                    1,
                    pdq_netsim::NodeId(1),
                    pdq_netsim::NodeId(3),
                    100_000,
                )]))
                .trace(TraceConfig {
                    interval: SimTime::from_millis(1),
                    links: vec![LinkId(2), LinkId(5)],
                    flows: true,
                }),
            Scenario::new("load")
                .topology(TopologySpec::BCube { n: 2, k: 3 })
                .workload(WorkloadSpec::PermutationAtLoad {
                    load: 0.25,
                    sizes: SizeDist::UniformMean(1_000_000),
                    deadlines: DeadlineDist::None,
                })
                .protocol("mpdq(3)")
                .seed(4)
                .stop_at(SimTime::from_secs(5)),
            Scenario::new("flow-level")
                .backend(SimBackend::Flow)
                .topology(TopologySpec::FatTree { hosts: 16 })
                .workload(WorkloadSpec::Pattern {
                    pattern: Pattern::RandomPermutation,
                    sizes: SizeDist::UniformMean(100_000),
                    deadlines: DeadlineDist::None,
                    flows_per_pair: 2,
                })
                .protocol("rcp")
                .seed(3)
                .stop_at(SimTime::from_secs(60)),
            Scenario::new("fluid")
                .backend(SimBackend::Fluid)
                .topology(TopologySpec::SingleBottleneck {
                    senders: 3,
                    access_loss: 0.0,
                })
                .workload(WorkloadSpec::Manual(vec![
                    FlowSpec::new(1, pdq_netsim::NodeId(1), pdq_netsim::NodeId(4), 1)
                        .with_deadline(SimTime::from_secs(1)),
                    FlowSpec::new(2, pdq_netsim::NodeId(2), pdq_netsim::NodeId(4), 2)
                        .with_deadline(SimTime::from_secs(4)),
                ]))
                .protocol("d3"),
            Scenario::new("coflow")
                .workload(WorkloadSpec::Coflow {
                    coflows: 5,
                    width: 4,
                    rate_coflows_per_sec: 800.0,
                    sizes: SizeDist::query(),
                    deadlines: DeadlineDist::paper_default(),
                })
                .protocol("cpdq")
                .seed(9),
            Scenario::new("sharded")
                .topology(TopologySpec::FatTree { hosts: 16 })
                .workload(WorkloadSpec::Pattern {
                    pattern: Pattern::RandomPermutation,
                    sizes: SizeDist::Fixed(20_000),
                    deadlines: DeadlineDist::None,
                    flows_per_pair: 1,
                })
                .protocol("tcp")
                .seed(5)
                .engine_threads(4),
            Scenario::new("wan-paced")
                .topology(TopologySpec::Wan {
                    sites: 4,
                    hosts_per_site: 2,
                    rtt_ms: 60.0,
                    gbps: 2.5,
                    loss_rate: 0.0001,
                })
                .workload(WorkloadSpec::RandomPairs {
                    flows: 40,
                    spread: SimTime::from_millis(50),
                    sizes: SizeDist::UniformMean(200_000),
                })
                .protocol("pdq(full)")
                .pacing(true)
                .queue_capacity(16 * 1024 * 1024)
                .seed(2),
        ]
    }

    #[test]
    fn spec_round_trips_exactly() {
        for s in sample_scenarios() {
            let text = s.to_spec();
            let back = Scenario::from_spec(&text).unwrap_or_else(|e| panic!("{text}\n{e}"));
            assert_eq!(back, s, "{text}");
            // Serialization is stable (canonical form).
            assert_eq!(back.to_spec(), text);
        }
    }

    #[test]
    fn packet_specs_never_write_a_backend_key() {
        // Byte-compatibility: the default backend serializes exactly as before the
        // backend axis existed, while flow/fluid scenarios carry an explicit key.
        assert!(!Scenario::new("a").to_spec().contains("backend"));
        let flow = Scenario::new("a").backend(SimBackend::Flow).to_spec();
        assert!(flow.contains("backend = flow"), "{flow}");
        let fluid = Scenario::new("a").backend(SimBackend::Fluid).to_spec();
        assert!(fluid.contains("backend = fluid"), "{fluid}");
        assert!(Scenario::from_spec("scenario = a\nbackend = liquid\n").is_err());
    }

    #[test]
    fn sequential_specs_never_write_an_engine_threads_key() {
        // Byte-compatibility: the default (sequential) engine serializes exactly as
        // before the shard axis existed; non-default counts carry an explicit key.
        assert!(!Scenario::new("a").to_spec().contains("engine_threads"));
        let sharded = Scenario::new("a").engine_threads(4).to_spec();
        assert!(sharded.contains("engine_threads = 4"), "{sharded}");
        // 0 (auto-detect at run time) is a deliberate, persistable setting.
        let auto = Scenario::new("a").engine_threads(0).to_spec();
        assert!(auto.contains("engine_threads = 0"), "{auto}");
        let mut bad = Scenario::new("a").to_spec();
        bad.push_str("engine_threads = lots\n");
        assert!(Scenario::from_spec(&bad).is_err());
    }

    #[test]
    fn default_specs_never_write_pacing_or_queue_keys() {
        // Byte-compatibility: pacing-off, default-queue scenarios serialize exactly
        // as before the WAN axes existed.
        let plain = Scenario::new("a").to_spec();
        assert!(!plain.contains("pacing"), "{plain}");
        assert!(!plain.contains("queue_bytes"), "{plain}");
        let paced = Scenario::new("a").pacing(true).queue_capacity(1 << 20);
        let text = paced.to_spec();
        assert!(text.contains("pacing = on"), "{text}");
        assert!(text.contains("topology.queue_bytes = 1048576"), "{text}");
        assert!(Scenario::from_spec("scenario = a\npacing = maybe\n").is_err());
        // `pacing = off` parses back to the default.
        let mut off = Scenario::new("a").to_spec();
        off.push_str("pacing = off\n");
        assert!(!Scenario::from_spec(&off).unwrap().pacing);
    }

    #[test]
    fn pacing_requires_a_paced_packet_protocol() {
        use pdq_netsim::Simulator;
        use std::sync::Arc;

        struct Unpaceable;
        impl ProtocolInstaller for Unpaceable {
            fn name(&self) -> String {
                "unpaceable".into()
            }
            fn label(&self) -> String {
                "Unpaceable".into()
            }
            fn install(&self, _sim: &mut Simulator) {}
        }
        let mut registry = ProtocolRegistry::new();
        registry.register_instance(Arc::new(Unpaceable));
        let err = Scenario::new("a")
            .protocol("unpaceable")
            .pacing(true)
            .run(&registry)
            .unwrap_err();
        assert!(err.to_string().contains("paced variant"), "{err}");
    }

    #[test]
    fn queue_capacity_override_reaches_the_engine() {
        use pdq_netsim::{
            Ctx, FlowId, FlowInfo, HostAgent, Packet, PacketKind, Simulator, TimerKind,
        };
        use std::sync::Arc;

        // Blast the whole flow at once: with the default 4 MB queues everything
        // arrives; squeezed to ~2 packets of queue, most of the burst tail-drops.
        struct Blast;
        impl HostAgent for Blast {
            fn on_flow_arrival(&mut self, flow: &FlowInfo, ctx: &mut Ctx) {
                let mut off = 0;
                while off < flow.spec.size_bytes {
                    let pay = (flow.spec.size_bytes - off).min(1444) as u32;
                    ctx.send(Packet::data(
                        flow.spec.id,
                        flow.spec.src,
                        flow.spec.dst,
                        off,
                        pay,
                    ));
                    off += pay as u64;
                }
            }
            fn on_packet(&mut self, packet: Packet, ctx: &mut Ctx) {
                if packet.kind == PacketKind::Data {
                    let size = ctx.flow(packet.flow).unwrap().spec.size_bytes;
                    if packet.seq + packet.payload as u64 >= size {
                        ctx.flow_completed(packet.flow);
                    }
                }
            }
            fn on_timer(&mut self, _: FlowId, _: TimerKind, _: u64, _: &mut Ctx) {}
        }
        struct BlastInstaller;
        impl ProtocolInstaller for BlastInstaller {
            fn name(&self) -> String {
                "blast".into()
            }
            fn label(&self) -> String {
                "Blast".into()
            }
            fn install(&self, sim: &mut Simulator) {
                sim.install_agents(|_, _| Box::new(Blast));
            }
        }
        let mut registry = ProtocolRegistry::new();
        registry.register_instance(Arc::new(BlastInstaller));
        let scenario = Scenario::new("q")
            .topology(TopologySpec::SingleBottleneck {
                senders: 1,
                access_loss: 0.0,
            })
            .workload(WorkloadSpec::Manual(vec![FlowSpec::new(
                1,
                pdq_netsim::NodeId(1),
                pdq_netsim::NodeId(2),
                100_000,
            )]))
            .protocol("blast");
        let roomy = scenario.clone().run(&registry).unwrap();
        assert_eq!(roomy.completed, 1);
        let squeezed = scenario.queue_capacity(3_000).run(&registry).unwrap();
        assert_eq!(
            squeezed.completed, 0,
            "tiny queues must tail-drop the burst"
        );
    }

    #[test]
    fn fluid_lowering_is_arrival_ordered_and_unit_consistent() {
        let flows = vec![
            FlowSpec::new(1, pdq_netsim::NodeId(1), pdq_netsim::NodeId(3), 300)
                .with_arrival(SimTime::from_nanos(5)),
            FlowSpec::new(2, pdq_netsim::NodeId(2), pdq_netsim::NodeId(3), 100)
                .with_deadline(SimTime::from_millis(1500)),
        ];
        let lowered = lower_to_fluid(&flows);
        // Flow 2 arrives at t=0, before flow 1's 5 ns — arrival order wins.
        assert_eq!(lowered[0].0, 2);
        assert_eq!(lowered[0].1.size, 100.0);
        assert_eq!(lowered[0].1.deadline, Some(1.5));
        assert_eq!(lowered[1].0, 1);
        assert_eq!(lowered[1].1.deadline, None);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(Scenario::from_spec("scenario x").is_err());
        assert!(Scenario::from_spec("scenario = a\n").is_err()); // missing keys
        let mut good = Scenario::new("a").to_spec();
        good.push_str("mystery = 1\n");
        let err = Scenario::from_spec(&good).unwrap_err();
        assert!(err.to_string().contains("mystery"), "{err}");
        // The rejection names the full valid key set, fixed and workload keys alike.
        let msg = err.to_string();
        assert!(msg.contains("valid keys:"), "{msg}");
        for key in [
            "topology",
            "engine_threads",
            "workload.sizes",
            "workload.flows",
        ] {
            assert!(msg.contains(key), "{key} missing from: {msg}");
        }
    }

    #[test]
    fn spec_rejects_keys_of_other_workload_kinds() {
        // A leftover key from a different workload kind must not be silently ignored.
        let mut spec = Scenario::new("a").to_spec(); // query_aggregation workload
        spec.push_str("workload.rate_flows_per_sec = 16000\n");
        let err = Scenario::from_spec(&spec).unwrap_err();
        assert!(err.to_string().contains("rate_flows_per_sec"), "{err}");

        // A stray flow line outside a manual workload is equally fatal.
        let mut spec = Scenario::new("a").to_spec();
        spec.push_str("flow = 1 0 1 1000 0 -\n");
        let err = Scenario::from_spec(&spec).unwrap_err();
        assert!(err.to_string().contains("flow"), "{err}");
    }
}
