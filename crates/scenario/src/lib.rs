//! # pdq-scenario
//!
//! The declarative experiment API of the PDQ reproduction: instead of hand-wiring
//! topology + workload + protocol in every figure module, a run is a first-class
//! [`Scenario`] value —
//!
//! ```text
//! Scenario::new("fig3a")
//!     .topology(TopologySpec::PaperTree)
//!     .workload(WorkloadSpec::QueryAggregation { .. })
//!     .protocol("pdq(full)")
//!     .seed(1)
//! ```
//!
//! — that serializes to a plain-text spec ([`Scenario::to_spec`]), parses back
//! ([`Scenario::from_spec`]) and executes to a typed [`RunSummary`].
//!
//! Protocols are open: anything implementing [`ProtocolInstaller`] can be registered
//! in a [`ProtocolRegistry`] under a spec name like `pdq(full)` or `mpdq(3)`; the
//! `pdq` and `pdq-baselines` crates register the paper's schemes
//! (`pdq::register_pdq`, `pdq_baselines::register_baselines`) and third parties
//! register their own without touching figure code.
//!
//! Scenarios execute on any of three [`SimBackend`]s: `packet` (the
//! discrete-event engine, the default), `flow` (the §5.5 flow-level model for
//! large-scale runs) or `fluid` (the §2.1 idealized single-bottleneck model behind
//! Figure 1). Protocols advertise which backends they support —
//! [`ProtocolInstaller::flow_config`] lowers a scheme to a
//! [`pdq_flowsim::FlowLevelConfig`] and [`ProtocolInstaller::fluid_model`] names
//! its [`pdq_flowsim::FluidModel`] idealization (fair sharing, SJF/EDF, or D3's
//! first-come-first-reserve); schemes without the model cleanly reject
//! `backend = flow` / `backend = fluid` scenarios.
//!
//! [`Sweep`] fans a scenario grid across worker threads with deterministic,
//! thread-count-independent results; [`GridBuilder`] expands the cartesian product
//! of protocol × seed × load × flow-size × deadline axes, and
//! [`Sweep::run_replicated`] re-runs every grid cell under consecutive seeds,
//! aggregating each metric into [`SummaryStats`] (mean / stddev / 95% CI).
//!
//! Sweeps are resumable and incremental: a [`ResultCache`] content-addresses every
//! run by its *request fingerprint* ([`request_fingerprint`], a pre-run hash of
//! the canonical spec — distinct from the post-run determinism
//! [`RunSummary::fingerprint`]) in a one-record-file-per-cell on-disk layout, and
//! [`Sweep::run_cached`] serves cached cells without running them, persists
//! missing cells the moment each finishes (atomic write-then-rename — a killed
//! process never leaves a torn record), and streams per-cell JSONL to a sink
//! instead of buffering whole tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod cache;
pub mod protocol;
pub mod scenario;
pub mod spec;
pub mod stats;
pub mod summary;
pub mod sweep;

pub use backend::SimBackend;
pub use cache::{
    canonical_request_spec, jsonl_record, request_fingerprint, CacheDirStats, CachePolicy,
    ResultCache,
};
pub use protocol::{
    InstallerFactory, InstallerHandle, ProtocolInstaller, ProtocolRegistry, RegistryError,
};
pub use scenario::{
    execute, execute_sharded, lower_to_fluid, run_packet_level, Scenario, ScenarioError,
    DEFAULT_STOP_AT,
};
pub use spec::{TopologySpec, WorkloadSpec};
pub use stats::{t_critical_975, ReplicatedSummary, SummaryStats};
pub use summary::{BackendResults, CachedResults, RunSummary};
pub use sweep::{default_threads, GridBuilder, GridError, ReplicatedOutcome, Sweep, SweepOutcome};
