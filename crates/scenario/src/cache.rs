//! Fingerprint-keyed persistent result cache: content-addressed on-disk
//! [`RunSummary`] records for resumable, incremental sweeps.
//!
//! Every scenario run is fully determined by its canonical spec text (topology,
//! workload, protocol, seed, backend, stop time — everything except the free-form
//! scenario *name*), so the cache keys records by a **request fingerprint**: a hash
//! of that canonical spec, computed *before* the run. This is distinct from the
//! post-run determinism fingerprint ([`RunSummary::fingerprint`]), which digests the
//! per-flow outcomes a run actually produced; a cache record stores both — the
//! request fingerprint as the address, the determinism fingerprint as part of the
//! preserved summary.
//!
//! The on-disk layout is one plain-text record file per cell under the cache
//! directory (`<fingerprint>.record`, hand-rolled `key = value` lines like the
//! scenario spec format — no serde). Writes go to a temporary file first and are
//! published with an atomic rename, so a process killed mid-store never leaves a
//! torn record — at worst a stale `.tmp-*` file that [`ResultCache::clear`]
//! sweeps up. Lookups verify the stored canonical spec against the request, so
//! even a fingerprint collision can never produce a false hit; torn, corrupt or
//! colliding records all read as misses and are simply recomputed.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::scenario::Scenario;
use crate::summary::RunSummary;

/// How a sweep interacts with a [`ResultCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CachePolicy {
    /// Return cached cells without running them, and store every newly computed
    /// cell — the resumable-sweep default.
    #[default]
    ReadWrite,
    /// Use cached cells but never write new records (e.g. a read-only shared cache).
    ReadOnly,
    /// Ignore the cache entirely: every cell runs, nothing is stored.
    Bypass,
}

impl CachePolicy {
    /// Whether this policy consults cached records.
    pub fn reads(self) -> bool {
        matches!(self, CachePolicy::ReadWrite | CachePolicy::ReadOnly)
    }

    /// Whether this policy stores newly computed records.
    pub fn writes(self) -> bool {
        matches!(self, CachePolicy::ReadWrite)
    }
}

/// The placeholder written in place of the scenario name when canonicalizing a
/// request: two cells that differ only in their sweep-assigned name are the same
/// simulation, and share one record.
const CANONICAL_NAME: &str = "-";

/// The canonical request spec of a scenario: its plain-text spec with the free-form
/// name normalized out. This is the exact text hashed by [`request_fingerprint`]
/// and stored in the record for collision detection.
pub fn canonical_request_spec(scenario: &Scenario) -> String {
    scenario.clone().name(CANONICAL_NAME).to_spec()
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The request fingerprint of a scenario: 32 hex digits addressing its cache
/// record. Hashed over the canonical request spec (so it covers topology, workload,
/// protocol, seed, scale/stop time and backend, but not the scenario name), and
/// computable before the run — unlike the post-run determinism fingerprint.
///
/// Two 64-bit FNV-1a passes over the same text (the second over the
/// first-pass-prefixed text) give a 128-bit key; the stored-spec comparison in
/// [`ResultCache::lookup`] makes even a full collision harmless.
pub fn request_fingerprint(scenario: &Scenario) -> String {
    let spec = canonical_request_spec(scenario);
    let lo = fnv1a64(spec.as_bytes(), FNV_OFFSET);
    let hi = fnv1a64(spec.as_bytes(), lo ^ FNV_OFFSET);
    format!("{hi:016x}{lo:016x}")
}

/// Aggregate statistics of a cache directory, from [`ResultCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheDirStats {
    /// Number of `.record` files.
    pub records: usize,
    /// Total size of the record files, bytes.
    pub bytes: u64,
    /// Records whose stored run executed on the packet backend.
    pub packet_records: usize,
    /// Records whose stored run executed on the flow backend.
    pub flow_records: usize,
    /// Records whose stored run executed on the fluid backend.
    pub fluid_records: usize,
}

/// A persistent, content-addressed store of [`RunSummary`] records, one plain-text
/// file per cached cell under a directory (conventionally `.pdq-cache/`).
///
/// Records preserve a run's headline statistics and determinism fingerprint, not
/// the engine-specific per-flow results; a summary restored from the cache carries
/// [`crate::BackendResults::Cached`] in place of the full records.
#[derive(Clone, Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) the cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The record file a scenario's result lives at (whether or not it exists yet).
    pub fn record_path(&self, scenario: &Scenario) -> PathBuf {
        self.dir
            .join(format!("{}.record", request_fingerprint(scenario)))
    }

    /// Look up the cached summary for `scenario`. Misses — no record, an unreadable
    /// or corrupt record, or a stored spec that does not match the request (a hash
    /// collision) — all return `None`; the caller recomputes and overwrites.
    ///
    /// The returned summary carries the *requesting* scenario's name: records are
    /// stored name-normalized so overlapping grids share cells whatever each sweep
    /// called them.
    pub fn lookup(&self, scenario: &Scenario) -> Option<RunSummary> {
        let text = fs::read_to_string(self.record_path(scenario)).ok()?;
        let (stored_spec, mut summary) = parse_record(&text).ok()?;
        if stored_spec != canonical_request_spec(scenario) {
            return None;
        }
        summary.scenario = scenario.name.clone();
        Some(summary)
    }

    /// Store `summary` as the record for `scenario`, atomically: the record is
    /// written to a temporary file in the same directory and published with a
    /// rename, so concurrent readers and a mid-write kill both see either the old
    /// state or the complete new record, never a torn one.
    pub fn store(&self, scenario: &Scenario, summary: &RunSummary) -> io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let fingerprint = request_fingerprint(scenario);
        let mut record = format!(
            "# pdq cache record v1\nrequest_fingerprint = {fingerprint}\nrequest_spec = {}\n",
            escape(&canonical_request_spec(scenario))
        );
        // Canonicalize the stored name too: the record's bytes are identical
        // whichever sweep cell produced it.
        let mut canonical = summary.clone();
        canonical.scenario = CANONICAL_NAME.to_string();
        record.push_str(&canonical.to_record());
        let tmp = self.dir.join(format!(
            "{fingerprint}.tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, &record)?;
        let path = self.dir.join(format!("{fingerprint}.record"));
        fs::rename(&tmp, &path).inspect_err(|_| {
            fs::remove_file(&tmp).ok();
        })
    }

    /// Record count and total size of the cache directory, with a per-backend
    /// breakdown of the records (read from each record's `backend =` line; torn or
    /// corrupt records count toward the totals but toward no backend).
    pub fn stats(&self) -> io::Result<CacheDirStats> {
        let mut stats = CacheDirStats::default();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "record") {
                stats.records += 1;
                stats.bytes += entry.metadata()?.len();
                let backend = fs::read_to_string(entry.path())
                    .ok()
                    .and_then(|text| {
                        text.lines()
                            .filter_map(|l| l.split_once('='))
                            .find(|(k, _)| k.trim() == "backend")
                            .map(|(_, v)| v.trim().to_string())
                    })
                    .unwrap_or_default();
                match backend.as_str() {
                    "packet" => stats.packet_records += 1,
                    "flow" => stats.flow_records += 1,
                    "fluid" => stats.fluid_records += 1,
                    _ => {}
                }
            }
        }
        Ok(stats)
    }

    /// Delete every record (and any stale temporary file from a killed writer);
    /// returns the number of records removed.
    pub fn clear(&self) -> io::Result<usize> {
        let mut removed = 0;
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let is_record = path.extension().is_some_and(|e| e == "record");
            let is_stale_tmp = name.contains(".tmp-");
            if is_record || is_stale_tmp {
                fs::remove_file(&path)?;
                if is_record {
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }
}

/// Escape a multi-line spec into a single record line (`\` → `\\`, newline → `\n`).
fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Invert [`escape`]. Errors on a dangling trailing backslash or unknown escape.
fn unescape(text: &str) -> Result<String, String> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            other => return Err(format!("bad escape \\{other:?} in cache record")),
        }
    }
    Ok(out)
}

/// Parse a record file into its stored canonical spec and summary.
fn parse_record(text: &str) -> Result<(String, RunSummary), String> {
    let spec_line = text
        .lines()
        .filter_map(|l| l.trim().split_once('='))
        .find(|(k, _)| k.trim() == "request_spec")
        .map(|(_, v)| v.trim().to_string())
        .ok_or_else(|| "missing key request_spec".to_string())?;
    let spec = unescape(&spec_line)?;
    let summary = RunSummary::from_record(text)?;
    Ok((spec, summary))
}

/// One sweep cell as a JSONL line: the headline summary fields plus the cell's
/// index in the sweep (lines stream in completion order, not scenario order — the
/// index lets a consumer re-sort), its request fingerprint, and whether it came
/// from the cache. Hand-rolled JSON; all values are finite numbers, booleans, or
/// escaped strings.
pub fn jsonl_record(
    index: usize,
    scenario: &Scenario,
    summary: &RunSummary,
    cached: bool,
) -> String {
    let s = |v: &str| {
        let mut out = String::with_capacity(v.len() + 2);
        out.push('"');
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    };
    let f = |v: Option<f64>| v.map(|v| v.to_string()).unwrap_or_else(|| "null".into());
    format!(
        "{{\"index\":{index},\"scenario\":{},\"protocol\":{},\"label\":{},\"backend\":{},\
         \"seed\":{},\"flows\":{},\"completed\":{},\"terminated\":{},\"failed\":{},\
         \"unfinished\":{},\"deadline_flows\":{},\"deadlines_met\":{},\"mean_fct_secs\":{},\
         \"p99_fct_secs\":{},\"max_fct_secs\":{},\"goodput_bytes\":{},\"end_time_ns\":{},\
         \"coflows\":{},\"coflows_completed\":{},\"coflow_deadlines\":{},\
         \"coflow_deadlines_met\":{},\"mean_cct_secs\":{},\"p95_cct_secs\":{},\
         \"request_fingerprint\":{},\"cached\":{cached}}}",
        s(&summary.scenario),
        s(&summary.protocol),
        s(&summary.protocol_label),
        s(summary.backend.token()),
        summary.seed,
        summary.flows,
        summary.completed,
        summary.terminated,
        summary.failed,
        summary.unfinished,
        summary.deadline_flows,
        summary.deadlines_met,
        f(summary.mean_fct_secs),
        f(summary.p99_fct_secs),
        f(summary.max_fct_secs),
        summary.goodput_bytes,
        summary.end_time.as_nanos(),
        summary.coflows,
        summary.coflows_completed,
        summary.coflow_deadlines,
        summary.coflow_deadlines_met,
        f(summary.mean_cct_secs),
        f(summary.p95_cct_secs),
        s(&request_fingerprint(scenario)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;

    fn temp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!(
            "pdq-cache-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        ResultCache::open(dir).unwrap()
    }

    #[test]
    fn fingerprint_ignores_the_name_but_nothing_else() {
        let a = Scenario::new("alpha");
        let b = Scenario::new("beta");
        assert_eq!(request_fingerprint(&a), request_fingerprint(&b));
        assert_eq!(request_fingerprint(&a).len(), 32);
        for different in [
            a.clone().seed(2),
            a.clone().protocol("tcp"),
            a.clone().backend(SimBackend::Flow),
            a.clone().stop_at(pdq_netsim::SimTime::from_secs(5)),
        ] {
            assert_ne!(
                request_fingerprint(&a),
                request_fingerprint(&different),
                "{different:?}"
            );
        }
    }

    #[test]
    fn escape_round_trips() {
        for text in ["", "plain", "a\nb", "back\\slash\\n", "\\", "trail\n"] {
            assert_eq!(unescape(&escape(text)).unwrap(), text, "{text:?}");
        }
        assert!(unescape("dangling\\").is_err());
        assert!(unescape("bad\\q").is_err());
    }

    #[test]
    fn corrupt_and_colliding_records_read_as_misses() {
        let cache = temp_cache("corrupt");
        let scenario = Scenario::new("s");
        // No record at all.
        assert!(cache.lookup(&scenario).is_none());
        // A torn/corrupt record is a miss, not an error.
        fs::write(cache.record_path(&scenario), "# pdq cache record v1\nreq").unwrap();
        assert!(cache.lookup(&scenario).is_none());
        // A record whose stored spec differs from the request (a collision, or a
        // record produced by an incompatible version) is a miss too.
        let other = Scenario::new("s").seed(99);
        let mut record = format!(
            "# pdq cache record v1\nrequest_fingerprint = {}\nrequest_spec = {}\n",
            request_fingerprint(&scenario),
            escape(&canonical_request_spec(&other))
        );
        record.push_str(
            "scenario = -\nprotocol = pdq(full)\nprotocol_label = PDQ(Full)\n\
             backend = packet\nseed = 1\nflows = 0\ncompleted = 0\nterminated = 0\n\
             failed = 0\nunfinished = 0\ndeadline_flows = 0\ndeadlines_met = 0\n\
             mean_fct_secs = -\np99_fct_secs = -\nmax_fct_secs = -\ngoodput_bytes = 0\n\
             end_time_ns = 0\nfingerprint = end=0;\n",
        );
        fs::write(cache.record_path(&scenario), &record).unwrap();
        assert!(cache.lookup(&scenario).is_none());
        fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn stats_break_records_down_by_backend() {
        let cache = temp_cache("backends");
        for (name, backend) in [
            ("a", "packet"),
            ("b", "packet"),
            ("c", "flow"),
            ("d", "fluid"),
        ] {
            fs::write(
                cache.dir().join(format!("{name}.record")),
                format!("# pdq cache record v1\nbackend = {backend}\n"),
            )
            .unwrap();
        }
        // A torn record counts toward the totals but toward no backend.
        fs::write(cache.dir().join("torn.record"), "whatever").unwrap();
        let stats = cache.stats().unwrap();
        assert_eq!(stats.records, 5);
        assert_eq!(stats.packet_records, 2);
        assert_eq!(stats.flow_records, 1);
        assert_eq!(stats.fluid_records, 1);
        fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn clear_sweeps_stale_tmp_files_and_reports_record_count() {
        let cache = temp_cache("clear");
        // Simulate a writer killed between write and rename.
        fs::write(cache.dir().join("deadbeef.tmp-1-0"), "torn").unwrap();
        fs::write(cache.dir().join("deadbeef.record"), "whatever").unwrap();
        assert_eq!(
            cache.stats().unwrap(),
            CacheDirStats {
                records: 1,
                bytes: 8,
                ..CacheDirStats::default()
            }
        );
        assert_eq!(cache.clear().unwrap(), 1);
        assert_eq!(cache.stats().unwrap(), CacheDirStats::default());
        assert!(!cache.dir().join("deadbeef.tmp-1-0").exists());
        fs::remove_dir_all(cache.dir()).ok();
    }
}
