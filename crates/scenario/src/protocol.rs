//! The open protocol surface: the [`ProtocolInstaller`] trait and the
//! [`ProtocolRegistry`] that resolves protocol spec strings like `pdq(full)` or
//! `mpdq(3)` into installers.
//!
//! The registry replaces the closed `Protocol` enum the experiment harness used to
//! hard-wire: a scheme is now anything that can set up a [`Simulator`] — the `pdq` and
//! `pdq-baselines` crates register the paper's schemes, and third-party crates (or
//! tests) register their own families without touching any figure code.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use pdq_flowsim::{FlowLevelConfig, FluidModel};
use pdq_netsim::{PacerConfig, Simulator};

use crate::backend::SimBackend;

/// Installs a transport scheme on a simulator: agents on hosts and (optionally)
/// controllers on switch egress links.
///
/// Implementations must be cheap to clone behind an [`Arc`] and thread-safe: the
/// [`crate::Sweep`] runner resolves and installs protocols from worker threads.
///
/// Every installer supports the packet-level backend ([`ProtocolInstaller::install`]).
/// Schemes that also have a §5.5 flow-level model additionally override
/// [`ProtocolInstaller::flow_config`], and schemes with a §2.1 fluid idealization
/// override [`ProtocolInstaller::fluid_model`]; both default to `None`, so
/// third-party installers cleanly reject `backend = flow` / `backend = fluid`
/// scenarios without extra code.
pub trait ProtocolInstaller: Send + Sync {
    /// Canonical spec name, e.g. `pdq(full)` — resolving this string through the
    /// registry the installer came from must yield an equivalent installer.
    fn name(&self) -> String;

    /// Display label used in tables and traces, e.g. `PDQ(Full)`.
    fn label(&self) -> String;

    /// Install the scheme's host agents and switch controllers on `sim`.
    fn install(&self, sim: &mut Simulator);

    /// The flow-level model this scheme lowers to, for `backend = flow` scenarios.
    /// `None` (the default) means the scheme has no flow-level model and a flow
    /// scenario fails with [`crate::ScenarioError::Backend`]. The returned config's
    /// `max_time` is overridden by the scenario's `stop_at`.
    fn flow_config(&self) -> Option<FlowLevelConfig> {
        None
    }

    /// The §2.1 fluid model this scheme idealizes to, for `backend = fluid`
    /// scenarios. `None` (the default) means the scheme has no fluid idealization
    /// and a fluid scenario fails with [`crate::ScenarioError::Backend`].
    fn fluid_model(&self) -> Option<FluidModel> {
        None
    }

    /// This installer with RFC 9002-style sender pacing enabled (`pacing = on`
    /// scenarios), or `None` (the default) when the scheme has no paced variant —
    /// the scenario then fails loudly instead of silently running unpaced.
    fn with_pacing(&self, config: PacerConfig) -> Option<InstallerHandle> {
        let _ = config;
        None
    }

    /// Whether this installer can execute on `backend`. Packet is always supported;
    /// flow support is derived from [`ProtocolInstaller::flow_config`] and fluid
    /// support from [`ProtocolInstaller::fluid_model`].
    fn supports(&self, backend: SimBackend) -> bool {
        match backend {
            SimBackend::Packet => true,
            SimBackend::Flow => self.flow_config().is_some(),
            SimBackend::Fluid => self.fluid_model().is_some(),
        }
    }
}

/// Installers display as their table label.
impl fmt::Display for dyn ProtocolInstaller + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A shared installer handle as stored in (and resolved from) the registry.
pub type InstallerHandle = Arc<dyn ProtocolInstaller>;

/// Factory turning the optional argument string of `family(args)` into an installer.
pub type InstallerFactory =
    Box<dyn Fn(Option<&str>) -> Result<InstallerHandle, String> + Send + Sync>;

struct Family {
    summary: String,
    backends: Vec<SimBackend>,
    factory: InstallerFactory,
}

/// Error returned when a protocol spec string cannot be resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// No family with this name is registered; `available` lists what is.
    UnknownProtocol {
        /// The family name that failed to resolve.
        name: String,
        /// Registered family names, sorted.
        available: Vec<String>,
    },
    /// The family exists but rejected the argument string.
    BadArguments {
        /// The family that rejected the arguments.
        family: String,
        /// The family's explanation.
        message: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownProtocol { name, available } => write!(
                f,
                "unknown protocol {name:?}; registered protocols: {}",
                available.join(", ")
            ),
            RegistryError::BadArguments { family, message } => {
                write!(f, "bad arguments for protocol family {family:?}: {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// An open registry of protocol families, keyed by family name.
///
/// A protocol spec string is `family` or `family(args)`; the family's factory decides
/// what the arguments mean. Register the paper's schemes with
/// `pdq::register_pdq` / `pdq_baselines::register_baselines`, or your own family with
/// [`ProtocolRegistry::register_family`].
#[derive(Default)]
pub struct ProtocolRegistry {
    families: BTreeMap<String, Family>,
}

impl ProtocolRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a packet-level-only protocol family. `summary` is a one-line
    /// description (shown by the CLI's `list` subcommand); `factory` receives the
    /// argument string of `name(args)` (or `None` for a bare `name`) and builds the
    /// installer. Re-registering a name replaces the previous family.
    pub fn register_family(
        &mut self,
        name: impl Into<String>,
        summary: impl Into<String>,
        factory: InstallerFactory,
    ) {
        self.register_family_with_backends(name, summary, &[SimBackend::Packet], factory);
    }

    /// [`ProtocolRegistry::register_family`] with an explicit set of supported
    /// backends. A family advertising [`SimBackend::Flow`] promises that at least
    /// some of its argument combinations produce installers with a
    /// [`ProtocolInstaller::flow_config`]; individual installers may still refuse
    /// (e.g. `pdq(full;random)` has no flow-level model even though `pdq` does).
    pub fn register_family_with_backends(
        &mut self,
        name: impl Into<String>,
        summary: impl Into<String>,
        backends: &[SimBackend],
        factory: InstallerFactory,
    ) {
        let mut backends = backends.to_vec();
        backends.sort();
        backends.dedup();
        self.families.insert(
            name.into(),
            Family {
                summary: summary.into(),
                backends,
                factory,
            },
        );
    }

    /// Register a single fixed installer under its own [`ProtocolInstaller::name`].
    /// The resulting family takes no arguments; its supported backends are derived
    /// from the installer ([`ProtocolInstaller::supports`]).
    pub fn register_instance(&mut self, installer: InstallerHandle) {
        let name = installer.name();
        let label = installer.label();
        let backends: Vec<SimBackend> = SimBackend::all()
            .into_iter()
            .filter(|&b| installer.supports(b))
            .collect();
        self.register_family_with_backends(
            name.clone(),
            label,
            &backends,
            Box::new(move |args| match args {
                None => Ok(installer.clone()),
                Some(a) => Err(format!("protocol takes no arguments, got ({a})")),
            }),
        );
    }

    /// Resolve a protocol spec string (`family` or `family(args)`) to an installer.
    pub fn resolve(&self, spec: &str) -> Result<InstallerHandle, RegistryError> {
        let spec = spec.trim();
        let (name, args) = match spec.split_once('(') {
            Some((name, rest)) => {
                let args = rest
                    .strip_suffix(')')
                    .ok_or_else(|| RegistryError::BadArguments {
                        family: name.to_string(),
                        message: format!("unbalanced parentheses in {spec:?}"),
                    })?;
                (name, Some(args))
            }
            None => (spec, None),
        };
        let family = self
            .families
            .get(name)
            .ok_or_else(|| RegistryError::UnknownProtocol {
                name: name.to_string(),
                available: self.families.keys().cloned().collect(),
            })?;
        (family.factory)(args).map_err(|message| RegistryError::BadArguments {
            family: name.to_string(),
            message,
        })
    }

    /// The display label a spec string resolves to.
    pub fn label(&self, spec: &str) -> Result<String, RegistryError> {
        self.resolve(spec).map(|i| i.label())
    }

    /// Registered families as `(name, summary)` pairs, sorted by name.
    pub fn families(&self) -> impl Iterator<Item = (&str, &str)> {
        self.families
            .iter()
            .map(|(n, f)| (n.as_str(), f.summary.as_str()))
    }

    /// Registered families as `(name, summary, supported backends)` triples, sorted
    /// by name.
    pub fn families_with_backends(&self) -> impl Iterator<Item = (&str, &str, &[SimBackend])> {
        self.families
            .iter()
            .map(|(n, f)| (n.as_str(), f.summary.as_str(), f.backends.as_slice()))
    }

    /// Names of the families advertising support for `backend`, sorted.
    pub fn families_supporting(&self, backend: SimBackend) -> Vec<String> {
        self.families
            .iter()
            .filter(|(_, f)| f.backends.contains(&backend))
            .map(|(n, _)| n.clone())
            .collect()
    }
}

impl fmt::Debug for ProtocolRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtocolRegistry")
            .field("families", &self.families.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop(String);
    impl ProtocolInstaller for Nop {
        fn name(&self) -> String {
            self.0.clone()
        }
        fn label(&self) -> String {
            self.0.to_uppercase()
        }
        fn install(&self, _sim: &mut Simulator) {}
    }

    #[test]
    fn instance_and_family_resolution() {
        let mut reg = ProtocolRegistry::new();
        reg.register_instance(Arc::new(Nop("tcp".into())));
        reg.register_family(
            "echo",
            "echoes its argument",
            Box::new(|args| {
                let a = args.ok_or("needs an argument")?;
                Ok(Arc::new(Nop(format!("echo({a})"))) as InstallerHandle)
            }),
        );

        assert_eq!(reg.resolve("tcp").unwrap().label(), "TCP");
        assert_eq!(reg.resolve("echo(x)").unwrap().name(), "echo(x)");
        assert!(matches!(
            reg.resolve("tcp(x)"),
            Err(RegistryError::BadArguments { .. })
        ));
        assert!(matches!(
            reg.resolve("echo"),
            Err(RegistryError::BadArguments { .. })
        ));
        let err = reg.resolve("udp").err().unwrap();
        match err {
            RegistryError::UnknownProtocol { name, available } => {
                assert_eq!(name, "udp");
                assert_eq!(available, vec!["echo".to_string(), "tcp".to_string()]);
            }
            other => panic!("wrong error: {other:?}"),
        }
        // Display goes through the label.
        let handle = reg.resolve("tcp").unwrap();
        assert_eq!(format!("{}", &*handle), "TCP");
    }

    struct Flowy;
    impl ProtocolInstaller for Flowy {
        fn name(&self) -> String {
            "flowy".into()
        }
        fn label(&self) -> String {
            "Flowy".into()
        }
        fn install(&self, _sim: &mut Simulator) {}
        fn flow_config(&self) -> Option<FlowLevelConfig> {
            Some(FlowLevelConfig::default())
        }
        fn fluid_model(&self) -> Option<FluidModel> {
            Some(FluidModel::FairSharing)
        }
    }

    #[test]
    fn backend_support_is_tracked_per_family() {
        let mut reg = ProtocolRegistry::new();
        // Plain instances and families default to packet-only.
        reg.register_instance(Arc::new(Nop("tcp".into())));
        reg.register_family(
            "echo",
            "echoes",
            Box::new(|_| Ok(Arc::new(Nop("echo".into())) as InstallerHandle)),
        );
        // An instance with a flow model derives flow support automatically.
        reg.register_instance(Arc::new(Flowy));
        // A family can advertise both backends explicitly.
        reg.register_family_with_backends(
            "both",
            "both backends",
            &[SimBackend::Flow, SimBackend::Packet, SimBackend::Flow],
            Box::new(|_| Ok(Arc::new(Flowy) as InstallerHandle)),
        );

        assert_eq!(
            reg.families_supporting(SimBackend::Flow),
            vec!["both".to_string(), "flowy".to_string()]
        );
        // register_instance derives fluid support from fluid_model() too.
        assert_eq!(
            reg.families_supporting(SimBackend::Fluid),
            vec!["flowy".to_string()]
        );
        assert_eq!(reg.families_supporting(SimBackend::Packet).len(), 4);
        let tcp = reg.resolve("tcp").unwrap();
        assert!(tcp.supports(SimBackend::Packet) && !tcp.supports(SimBackend::Flow));
        assert!(!tcp.supports(SimBackend::Fluid));
        assert!(reg.resolve("flowy").unwrap().supports(SimBackend::Flow));
        assert!(reg.resolve("flowy").unwrap().supports(SimBackend::Fluid));
        // Duplicates in the advertised list are collapsed and sorted.
        let both = reg
            .families_with_backends()
            .find(|(n, _, _)| *n == "both")
            .unwrap();
        assert_eq!(both.2, &[SimBackend::Packet, SimBackend::Flow]);
    }
}
