//! The discrete-event simulation engine.
//!
//! The engine owns the network, the per-host transport agents, the per-link switch
//! controllers and the event queue, and advances simulated time event by event:
//!
//! * flow arrivals are routed and handed to the source host's agent;
//! * packets are moved hop by hop across links, experiencing serialization,
//!   propagation, per-hop processing delay, FIFO tail-drop queueing and (optionally)
//!   random loss;
//! * switch egress links may run a [`LinkController`] that inspects and rewrites the
//!   scheduling header of forward packets and of the ACKs passing back through the
//!   owning switch (this is how PDQ, RCP and D3 are implemented);
//! * host agents receive delivered packets and timer callbacks and respond with
//!   actions (send, set timer, complete/terminate flow, spawn subflow).
//!
//! A [`Simulator::run`] executes on one thread and is fully deterministic for a fixed
//! seed. [`Simulator::run_sharded`](crate::shard) partitions the same state across N
//! cooperating [`EngineCore`]s synchronized by conservative lookahead — see the
//! `shard` module for the synchronization and determinism model.
//!
//! # Hot-path layout (id slabs, shared paths, pooled packets)
//!
//! All engine state is held in dense, id-indexed slabs rather than hash maps:
//!
//! * **agents** — `Vec<Option<Box<dyn HostAgent + Send>>>` indexed by [`NodeId`];
//! * **controllers** — `Vec<Option<Box<dyn LinkController + Send>>>` indexed by
//!   [`LinkId`];
//! * **flows** — a [`FlowTable`]: a `Vec<FlowState>` slab holding each flow's
//!   [`FlowInfo`], [`FlowRecord`], trace accumulator and timer generation, plus a
//!   `FlowId -> slot` index consulted only at the *per-packet* boundaries (agent
//!   actions). [`NodeId`]/[`LinkId`] are sequential by construction; [`FlowId`]s may be
//!   sparse (M-PDQ subflow ids, workload-chosen ids), which is exactly what the index
//!   absorbs.
//!
//! The *per-hop* path never hashes and never allocates: when a packet enters the
//! network the engine stamps the flow's slab slot into the packet, each hop resolves
//! the flow by direct `Vec` index, the forward path is shared through
//! `Arc<FlowPath>` (cloning a handle, never the node/link vectors), and packets in
//! flight between nodes are parked in a recycled pool so the event queue carries a
//! `u32` slot instead of a ~200-byte payload.
//!
//! # Timer cancellation
//!
//! Each flow carries a generation counter; timer events snapshot it when scheduled and
//! are silently dropped at pop time if the flow's generation has moved on. Only agents
//! bump the generation (via `Ctx::cancel_flow_timers`), and only for timers armed at
//! their own node: the engine deliberately does *not* cancel timers when a flow
//! finishes, because a finish detected at the receiver must not acausally suppress a
//! timer pending at the sender — under sharding that knowledge travels a lookahead
//! window later, and the sequential engine must behave identically. Agents instead
//! ignore late timers through status guards and token freshness.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::agent::{Action, Ctx, FlowInfo, FlowLookup, HostAgent};
use crate::controller::LinkController;
use crate::event::{EventKind, EventQueue, PacketSlot, TimerKind};
use crate::flow::{FlowPath, FlowRecord, FlowSpec};
use crate::ids::{FlowId, LinkId, NodeId};
use crate::metrics::{Sample, SimResults, TraceConfig, Traces};
use crate::network::{LossStream, Network, NodeKind, DEFAULT_PROCESSING_DELAY};
use crate::packet::{Packet, PacketKind, CONTROL_PACKET_BYTES, MTU_BYTES};
use crate::shard::{MsgBody, ShardMsg};
use crate::time::SimTime;

/// Chooses the forward path of each flow. Implemented by the topology crate
/// (shortest path, ECMP, BCube address routing); a plain closure also works.
pub trait Router {
    /// Compute the forward path for `spec` over `net`, or `None` if the pair is
    /// disconnected. An unroutable flow is recorded as [`crate::FlowOutcome::Failed`]
    /// instead of aborting the run.
    fn route(&mut self, net: &Network, spec: &FlowSpec, rng: &mut SmallRng) -> Option<FlowPath>;
}

impl<F> Router for F
where
    F: FnMut(&Network, &FlowSpec, &mut SmallRng) -> Option<FlowPath>,
{
    fn route(&mut self, net: &Network, spec: &FlowSpec, rng: &mut SmallRng) -> Option<FlowPath> {
        self(net, spec, rng)
    }
}

/// Routes every flow over the BFS shortest path (deterministic).
#[derive(Debug, Default, Clone, Copy)]
pub struct ShortestPathRouter;

impl Router for ShortestPathRouter {
    fn route(&mut self, net: &Network, spec: &FlowSpec, _rng: &mut SmallRng) -> Option<FlowPath> {
        net.shortest_path(spec.src, spec.dst)
    }
}

/// The RNG a multipath router draws from when routing `flow`, derived from the
/// run seed and the flow id alone. Routing is therefore a pure function of the
/// flow — independent of arrival interleaving and of which shard performs it —
/// so runtime-spawned flows (e.g. M-PDQ subflows) take the same path at every
/// `engine_threads`. Both the sequential arrival path and the sharded
/// pre-routing pass must use this derivation.
pub(crate) fn route_rng(seed: u64, flow: FlowId) -> SmallRng {
    SmallRng::seed_from_u64(crate::event::mix(seed, flow.value()))
}

/// Domain-separation salt for per-link loss streams ([`LossStream::PerLink`]): keeps
/// a link's loss stream independent of the per-flow routing streams and of the
/// per-shard engine streams derived from the same master seed.
const LINK_LOSS_SALT: u64 = 0x6C6F_7373_6C6E_6B73; // "losslnks"

/// The private loss stream of `link` ([`LossStream::PerLink`]): a pure function of
/// `(seed, link id)`, consumed in the order packets are handed to the link — an
/// order the deterministic engine reproduces at every shard count.
pub(crate) fn link_loss_rng(seed: u64, link: LinkId) -> SmallRng {
    SmallRng::seed_from_u64(crate::event::mix(
        seed ^ LINK_LOSS_SALT,
        link.index() as u64,
    ))
}

/// Content tie-break subkey for a packet's `PacketAtNode` event, derived from the
/// packet's simulation-visible identity (kind, byte offsets, direction) — never from
/// the engine-local pool slot. The owning flow id is carried separately in the event
/// as the primary key. Every engine computes the same key for the same packet
/// regardless of which shard forwarded it, which is what keeps the partitioned event
/// order identical to the sequential one.
pub(crate) fn packet_tie(p: &Packet) -> u64 {
    let kind_rank = match p.kind {
        PacketKind::Syn => 0u64,
        PacketKind::SynAck => 1,
        PacketKind::Data => 2,
        PacketKind::Ack => 3,
        PacketKind::Term => 4,
        PacketKind::TermAck => 5,
        PacketKind::Probe => 6,
    };
    crate::event::mix(
        p.seq ^ p.ack.rotate_left(17),
        (kind_rank << 1) | p.reverse as u64,
    )
}

/// Global simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed. Random loss draws on [`LossStream::Engine`] links come from an
    /// engine stream derived from it (per shard in a partitioned run); links marked
    /// [`LossStream::PerLink`] draw from a private `(seed, link id)` stream instead,
    /// which is shard-count invariant. ECMP routing draws from a per-flow RNG
    /// derived from `(seed, flow id)` so paths are shard-invariant.
    ///
    /// [`LossStream::Engine`]: crate::network::LossStream::Engine
    /// [`LossStream::PerLink`]: crate::network::LossStream::PerLink
    pub seed: u64,
    /// Hard stop: the run never advances past this simulated time.
    pub max_sim_time: SimTime,
    /// Per-hop processing delay charged when a packet is received by a node.
    pub processing_delay: SimTime,
    /// Stop as soon as every injected flow has completed or terminated.
    pub stop_when_flows_done: bool,
    /// Time-series sampling configuration.
    pub trace: TraceConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            max_sim_time: SimTime::from_secs(30),
            processing_delay: DEFAULT_PROCESSING_DELAY,
            stop_when_flows_done: true,
            trace: TraceConfig::default(),
        }
    }
}

/// Per-flow engine state, stored contiguously in the [`FlowTable`] slab.
pub(crate) struct FlowState {
    /// Routing/size information; `None` for flows the router could not place (their
    /// record is kept, marked failed, but they never touch an agent or a link).
    pub(crate) info: Option<FlowInfo>,
    /// Per-flow accounting (becomes `SimResults::flows` at the end of the run).
    pub(crate) record: FlowRecord,
    /// `raw_bytes_delivered` at the previous trace sample (goodput time series).
    pub(crate) bytes_at_last_sample: u64,
    /// Timer generation: pending timers of older generations are dropped unfired.
    pub(crate) timer_gen: u32,
    /// True on the shard that owns the flow's source host (always true in a
    /// single-shard run). Only the home replica counts towards `unfinished_flows`;
    /// other shards hold replicas for forwarding/delivery and report their local
    /// accounting through the deterministic result merge.
    pub(crate) home: bool,
}

/// Dense slab of per-flow state plus the sparse `FlowId -> slot` index.
///
/// Slots are assigned in arrival order and never reused within a run, so a slot is a
/// stable dense id for the flow. The hash index is consulted once per agent *action*
/// (send / timer / completion); per-hop code uses the slot stamped into the packet.
#[derive(Default)]
pub(crate) struct FlowTable {
    pub(crate) slots: Vec<FlowState>,
    pub(crate) index: HashMap<FlowId, u32>,
}

impl FlowTable {
    pub(crate) fn contains(&self, id: FlowId) -> bool {
        self.index.contains_key(&id)
    }

    pub(crate) fn slot_of(&self, id: FlowId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    pub(crate) fn insert(&mut self, id: FlowId, state: FlowState) -> u32 {
        let slot = self.slots.len() as u32;
        self.slots.push(state);
        self.index.insert(id, slot);
        slot
    }

    fn get(&self, slot: u32) -> Option<&FlowState> {
        self.slots.get(slot as usize)
    }

    fn get_mut(&mut self, slot: u32) -> Option<&mut FlowState> {
        self.slots.get_mut(slot as usize)
    }
}

impl FlowLookup for FlowTable {
    fn flow_info(&self, id: FlowId) -> Option<&FlowInfo> {
        let slot = self.slot_of(id)?;
        self.slots[slot as usize].info.as_ref()
    }
}

/// Recycled storage for packets in flight between nodes (popped from a link's queue,
/// waiting out propagation + processing). Slots are reused in LIFO order, so in steady
/// state parking and retrieving a packet performs no heap allocation.
#[derive(Default)]
pub(crate) struct PacketPool {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
}

impl PacketPool {
    pub(crate) fn park(&mut self, packet: Packet) -> PacketSlot {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = Some(packet);
            PacketSlot(i)
        } else {
            self.slots.push(Some(packet));
            PacketSlot((self.slots.len() - 1) as u32)
        }
    }

    fn take(&mut self, slot: PacketSlot) -> Option<Packet> {
        let p = self.slots.get_mut(slot.0 as usize)?.take();
        if p.is_some() {
            self.free.push(slot.0);
        }
        p
    }
}

/// All per-run mutable simulation state: the slabs (agents, controllers, flows), the
/// event queue, the RNG stream, the metrics accumulators and the live network queues.
///
/// A single-shard [`Simulator::run`] drives exactly one core; a sharded run gives each
/// shard its own core (with the agents/controllers/flows it owns) plus an `outbox` of
/// boundary messages exchanged at conservative-lookahead barriers.
pub(crate) struct EngineCore {
    pub(crate) config: SimConfig,
    pub(crate) network: Network,
    pub(crate) router: Box<dyn Router + Send>,
    /// Host agents, indexed by [`NodeId`]. `None` for nodes owned by other shards.
    pub(crate) agents: Vec<Option<Box<dyn HostAgent + Send>>>,
    /// Link controllers, indexed by [`LinkId`].
    pub(crate) controllers: Vec<Option<Box<dyn LinkController + Send>>>,
    pub(crate) events: EventQueue,
    pub(crate) now: SimTime,
    pub(crate) rng: SmallRng,
    pub(crate) flows: FlowTable,
    pub(crate) pool: PacketPool,
    pub(crate) unfinished_flows: usize,
    pub(crate) pending_arrivals: usize,
    pub(crate) traces: Traces,
    /// `bytes_transmitted` at the previous trace sample, indexed by [`LinkId`].
    pub(crate) link_bytes_at_last_sample: Vec<u64>,
    /// Time of the previous trace sample (guards rate computations against a
    /// zero-length sampling window).
    pub(crate) last_sample_at: SimTime,
    /// This core's shard id (0 in a single-shard run).
    pub(crate) shard: u32,
    /// Node → shard map shared by all cores; empty in a single-shard run, which
    /// short-circuits every ownership check to "local".
    pub(crate) shard_of: Arc<[u32]>,
    /// True when flows were routed up front by the sharded driver: arrival events
    /// then start pre-registered flows instead of routing on the fly.
    pub(crate) prerouted: bool,
    /// Set when this core consumed its Stop event or passed `max_sim_time`.
    pub(crate) stopped: bool,
    /// Outgoing boundary messages, one batch per destination shard.
    pub(crate) outbox: Vec<Vec<ShardMsg>>,
    /// Per-core sequence number stamped on outgoing messages (deterministic ingest
    /// ordering at the receiver).
    pub(crate) msg_seq: u64,
    /// Lazily-seeded private loss streams for [`LossStream::PerLink`] links,
    /// indexed by [`LinkId`]. `None` until the link's first loss draw.
    ///
    /// [`LossStream::PerLink`]: crate::network::LossStream::PerLink
    pub(crate) link_loss_rngs: Vec<Option<SmallRng>>,
}

impl EngineCore {
    pub(crate) fn new(network: Network, config: SimConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        let n_nodes = network.node_count();
        let n_links = network.link_count();
        // Calendar-queue bucket width: the minimum per-hop latency of this topology
        // (propagation + processing) — the same quantum the shard lookahead uses, so
        // one bucket holds roughly one hop's worth of events.
        let bucket = network
            .links
            .iter()
            .map(|l| l.prop_delay)
            .min()
            .unwrap_or(crate::network::DEFAULT_PROP_DELAY)
            .saturating_add(config.processing_delay);
        EngineCore {
            config,
            network,
            router: Box::new(ShortestPathRouter),
            agents: (0..n_nodes).map(|_| None).collect(),
            controllers: (0..n_links).map(|_| None).collect(),
            events: EventQueue::with_bucket_width(bucket),
            now: SimTime::ZERO,
            rng,
            flows: FlowTable::default(),
            pool: PacketPool::default(),
            unfinished_flows: 0,
            pending_arrivals: 0,
            traces: Traces::default(),
            link_bytes_at_last_sample: vec![0; n_links],
            last_sample_at: SimTime::ZERO,
            shard: 0,
            shard_of: Arc::from([] as [u32; 0]),
            prerouted: false,
            stopped: false,
            outbox: Vec::new(),
            msg_seq: 0,
            link_loss_rngs: (0..n_links).map(|_| None).collect(),
        }
    }

    /// A shard-owned core: per-shard RNG stream (`seed ⊕ shard`), shared node→shard
    /// map, pre-routed flow registration, and one outbox batch per peer shard.
    pub(crate) fn for_shard(
        shard: u32,
        shards: usize,
        shard_of: Arc<[u32]>,
        network: Network,
        config: SimConfig,
        router: Box<dyn Router + Send>,
    ) -> Self {
        let mut core = EngineCore::new(network, config);
        core.rng = SmallRng::seed_from_u64(core.config.seed ^ shard as u64);
        core.router = router;
        core.shard = shard;
        core.shard_of = shard_of;
        core.prerouted = true;
        core.outbox = (0..shards).map(|_| Vec::new()).collect();
        core
    }

    /// True if `node` is simulated by this core.
    #[inline]
    pub(crate) fn is_local(&self, node: NodeId) -> bool {
        self.shard_of.is_empty() || self.shard_of[node.index()] == self.shard
    }

    fn push_msg(&mut self, to_shard: u32, at: SimTime, body: MsgBody) {
        let seq = self.msg_seq;
        self.msg_seq += 1;
        self.outbox[to_shard as usize].push(ShardMsg {
            at,
            sent: self.now,
            src_shard: self.shard,
            seq,
            body,
        });
    }

    /// Inject a flow; its arrival event fires at `spec.arrival`.
    pub(crate) fn add_flow(&mut self, spec: FlowSpec) {
        assert!(
            !self.flows.contains(spec.id),
            "duplicate flow id {:?}",
            spec.id
        );
        self.pending_arrivals += 1;
        self.events
            .schedule(spec.arrival, EventKind::FlowArrival(Box::new(spec)));
    }

    /// Schedule the run's bootstrap events: controller init ticks, the first trace
    /// sample, and the hard Stop at `max_sim_time`.
    pub(crate) fn setup(&mut self) {
        {
            let Self {
                controllers,
                network,
                events,
                ..
            } = self;
            for (i, ctl) in controllers.iter_mut().enumerate() {
                if let Some(ctl) = ctl {
                    let l = LinkId(i as u32);
                    if let Some(t) = ctl.init(SimTime::ZERO, network.link(l)) {
                        events.schedule(t, EventKind::ControllerTick { link: l });
                    }
                }
            }
        }
        if self.config.trace.enabled() {
            self.events
                .schedule(self.config.trace.interval, EventKind::TraceSample);
        }
        self.events
            .schedule(self.config.max_sim_time, EventKind::Stop);
    }

    /// The single-shard event loop: run to completion (Stop event, time cap, queue
    /// exhaustion, or every flow finished).
    pub(crate) fn run_loop(&mut self) {
        while let Some(ev) = self.events.pop() {
            if ev.at > self.config.max_sim_time {
                break;
            }
            self.now = ev.at;
            self.events.set_now(ev.at);
            match ev.kind {
                EventKind::Stop => break,
                kind => self.dispatch(kind),
            }
            if self.config.stop_when_flows_done
                && self.unfinished_flows == 0
                && self.pending_arrivals == 0
            {
                break;
            }
        }
    }

    /// Process every pending event strictly before `window_end` (`None`: unbounded).
    ///
    /// This is the sharded counterpart of [`EngineCore::run_loop`]: the conservative
    /// lookahead guarantees no other shard can inject an event before `window_end`,
    /// so everything inside the window is safe to execute. The global
    /// all-flows-finished condition is checked by the driver between windows (a core
    /// cannot see other shards' counters mid-window), so a sharded run may process a
    /// bounded tail of events after the last flow finished; those events cannot
    /// change any flow's outcome.
    pub(crate) fn process_window(&mut self, window_end: Option<SimTime>) {
        if self.stopped {
            return;
        }
        // Batched drain: `pop_window` streams straight off the calendar queue's
        // sorted current run — one call per event instead of a peek-compare-pop
        // round-trip, with no re-peeking between events.
        loop {
            let ev = match window_end {
                Some(end) => self.events.pop_window(end),
                None => self.events.pop(),
            };
            let Some(ev) = ev else { break };
            if ev.at > self.config.max_sim_time {
                self.stopped = true;
                break;
            }
            self.now = ev.at;
            self.events.set_now(ev.at);
            match ev.kind {
                EventKind::Stop => {
                    self.stopped = true;
                    break;
                }
                kind => self.dispatch(kind),
            }
        }
    }

    /// Earliest pending event time in nanoseconds (`u64::MAX` if idle or stopped).
    pub(crate) fn next_event_nanos(&self) -> u64 {
        if self.stopped {
            return u64::MAX;
        }
        self.events
            .peek_time()
            .map(|t| t.as_nanos())
            .unwrap_or(u64::MAX)
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Stop => unreachable!("Stop is handled by the event loop"),
            EventKind::FlowArrival(spec) => self.handle_flow_arrival(*spec),
            EventKind::PacketAtNode { node, packet, .. } => {
                self.handle_packet_at_node(node, packet)
            }
            EventKind::TransmitDone { link } => self.handle_transmit_done(link),
            EventKind::Timer {
                node,
                flow,
                kind,
                token,
                gen,
            } => self.handle_timer(node, flow, kind, token, gen),
            EventKind::ControllerTick { link } => self.handle_controller_tick(link),
            EventKind::TraceSample => self.handle_trace_sample(),
        }
    }

    /// Tear the core down into its [`SimResults`] (single-shard runs; sharded runs
    /// merge core state field by field instead).
    pub(crate) fn into_results(self) -> SimResults {
        let link_stats = self
            .network
            .links
            .iter()
            .map(|l| (l.id, l.stats.clone()))
            .collect();
        let flows = self
            .flows
            .slots
            .into_iter()
            .map(|s| (s.record.spec.id, s.record))
            .collect();
        SimResults {
            flows,
            link_stats,
            traces: self.traces,
            queue: self.events.stats(),
            end_time: self.now,
        }
    }

    // ------------------------------------------------------------------ events

    fn handle_flow_arrival(&mut self, spec: FlowSpec) {
        self.pending_arrivals -= 1;
        if let Some(slot) = self.flows.slot_of(spec.id) {
            // Pre-registered by the sharded driver: the path (or routing failure)
            // was computed up front; just hand the flow to its agent.
            assert!(
                self.prerouted,
                "duplicate flow id {:?} arrived twice",
                spec.id
            );
            self.start_flow(slot, spec.src);
            return;
        }
        let path = {
            let Self {
                router, network, ..
            } = self;
            // Route on a per-flow RNG derived from (seed, flow id), not the engine
            // stream: the draw is then a pure function of the flow, so a subflow
            // spawned at run time picks the same ECMP path no matter which shard
            // routes it or how arrivals interleave. The sharded pre-routing pass
            // derives the identical RNG.
            let mut route_rng = route_rng(self.config.seed, spec.id);
            router.route(network, &spec, &mut route_rng)
        };
        let Some(path) = path else {
            // Disconnected src/dst pair: record the flow as failed instead of
            // aborting the whole run. It never reaches an agent.
            let mut record = FlowRecord::new(spec.clone());
            record.failed = true;
            self.flows.insert(
                spec.id,
                FlowState {
                    info: None,
                    record,
                    bytes_at_last_sample: 0,
                    timer_gen: 0,
                    home: true,
                },
            );
            return;
        };
        assert_eq!(
            path.src(),
            spec.src,
            "router returned a path with wrong source"
        );
        assert_eq!(
            path.dst(),
            spec.dst,
            "router returned a path with wrong destination"
        );

        let info = make_flow_info(&self.network, &self.config, spec.clone(), path);
        let slot = self.flows.insert(
            spec.id,
            FlowState {
                info: Some(info),
                record: FlowRecord::new(spec.clone()),
                bytes_at_last_sample: 0,
                timer_gen: 0,
                home: true,
            },
        );
        // A flow routed at arrival inside a sharded run (an agent-spawned subflow)
        // must be made visible to every shard its path touches before any of its
        // packets cross a boundary; registrations sort ahead of packets at ingest.
        self.broadcast_registration(slot);
        self.start_flow(slot, spec.src);
    }

    /// Count a routed flow as live and deliver it to its source agent.
    fn start_flow(&mut self, slot: u32, src: NodeId) {
        if self.flows.slots[slot as usize].info.is_none() {
            // Unroutable: already recorded as failed.
            return;
        }
        self.unfinished_flows += 1;
        let actions = {
            let Self { agents, flows, .. } = self;
            let agent = agents[src.index()]
                .as_mut()
                .unwrap_or_else(|| panic!("no agent installed on {src:?}"));
            let info = flows.slots[slot as usize]
                .info
                .as_ref()
                .expect("checked above");
            let mut ctx = Ctx::new(self.now, flows);
            agent.on_flow_arrival(info, &mut ctx);
            ctx.take_actions()
        };
        self.apply_actions(actions);
    }

    /// Send a registration for the flow in `slot` to every other shard on its path.
    fn broadcast_registration(&mut self, slot: u32) {
        if self.shard_of.is_empty() {
            return;
        }
        let Some(info) = self.flows.slots[slot as usize].info.clone() else {
            return;
        };
        let mut shards: Vec<u32> = info
            .path
            .nodes
            .iter()
            .map(|n| self.shard_of[n.index()])
            .filter(|&s| s != self.shard)
            .collect();
        shards.sort_unstable();
        shards.dedup();
        let now = self.now;
        for s in shards {
            self.push_msg(s, now, MsgBody::Register(Box::new(info.clone())));
        }
    }

    fn handle_packet_at_node(&mut self, node: NodeId, slot: PacketSlot) {
        let Some(packet) = self.pool.take(slot) else {
            // Pool slot already consumed (should not happen); silently discard.
            return;
        };
        let Some(info) = self
            .flows
            .get(packet.flow_slot)
            .and_then(|s| s.info.as_ref())
        else {
            // Flow record was dropped (should not happen); silently discard.
            return;
        };
        let delivered = if packet.reverse {
            node == info.spec.src
        } else {
            node == info.spec.dst
        };
        if delivered {
            self.deliver_packet(node, packet);
        } else {
            self.forward_packet(node, packet);
        }
    }

    /// Deliver a packet to the host agent at `node`.
    fn deliver_packet(&mut self, node: NodeId, packet: Packet) {
        if !packet.reverse && packet.kind == PacketKind::Data {
            if let Some(state) = self.flows.get_mut(packet.flow_slot) {
                state.record.raw_bytes_delivered += packet.payload as u64;
            }
        }
        let actions = {
            let Self { agents, flows, .. } = self;
            let Some(agent) = agents[node.index()].as_mut() else {
                return;
            };
            let mut ctx = Ctx::new(self.now, flows);
            agent.on_packet(packet, &mut ctx);
            ctx.take_actions()
        };
        self.apply_actions(actions);
    }

    /// Push a packet onto its next link from `node`, running the link controller and
    /// applying loss / tail-drop.
    ///
    /// This is the hottest function in the simulator; it performs no heap allocation
    /// and no hash lookup (the flow is resolved through the slot stamped into the
    /// packet, and the path through a shared `Arc`).
    fn forward_packet(&mut self, node: NodeId, mut packet: Packet) {
        let flow_slot = packet.flow_slot;
        let Some(info) = self.flows.get(flow_slot).and_then(|s| s.info.as_ref()) else {
            return;
        };
        // Cheap handle clone (refcount bump) so the path outlives the mutable borrows
        // of the network below; the node/link vectors are never copied.
        let path = Arc::clone(&info.path);
        let nlinks = path.links.len();
        let hop = packet.hop;
        let (next_link, controller_link) = if !packet.reverse {
            if hop >= nlinks {
                // Mis-routed packet; drop defensively.
                return;
            }
            let link = path.links[hop];
            debug_assert_eq!(self.network.link(link).src, node, "forward hop mismatch");
            (link, Some(link))
        } else {
            if hop >= nlinks {
                return;
            }
            let forward = path.links[nlinks - 1 - hop];
            let link = self.network.reverse(forward);
            debug_assert_eq!(self.network.link(link).src, node, "reverse hop mismatch");
            // The switch owning forward link `path.links[nlinks - hop]` is `node`
            // (for hop >= 1); hop == 0 means we are at the destination host.
            let ctl = if hop >= 1 {
                Some(path.links[nlinks - hop])
            } else {
                None
            };
            (link, ctl)
        };

        // Run the link controller (switch scheduling logic).
        if let Some(cl) = controller_link {
            let Self {
                controllers,
                network,
                ..
            } = self;
            if let Some(ctl) = controllers[cl.index()].as_mut() {
                let link_ref = network.link(cl);
                if packet.reverse {
                    ctl.on_reverse(&mut packet, self.now, link_ref);
                } else {
                    ctl.on_forward(&mut packet, self.now, link_ref);
                }
            }
        }

        // Random loss injection. `Engine` links share this core's stream;
        // `PerLink` links (WAN long-hauls) each consume their own `(seed, link)`
        // stream so the draw sequence is invariant under the shard count.
        let loss = self.network.link(next_link).loss_rate;
        if loss > 0.0 {
            let drop = match self.network.link(next_link).loss_stream {
                LossStream::Engine => self.rng.gen::<f64>() < loss,
                LossStream::PerLink => {
                    let seed = self.config.seed;
                    self.link_loss_rngs[next_link.index()]
                        .get_or_insert_with(|| link_loss_rng(seed, next_link))
                        .gen::<f64>()
                        < loss
                }
            };
            if drop {
                let l = self.network.link_mut(next_link);
                l.stats.random_drops += 1;
                if let Some(state) = self.flows.get_mut(flow_slot) {
                    state.record.drops += 1;
                }
                return;
            }
        }

        // Tail-drop FIFO enqueue.
        let now = self.now;
        let wire = packet.wire_size as u64;
        let link = self.network.link_mut(next_link);
        if link.queue_bytes + wire > link.queue_capacity_bytes {
            link.stats.tail_drops += 1;
            if let Some(state) = self.flows.get_mut(flow_slot) {
                state.record.drops += 1;
            }
            return;
        }
        link.queue.push_back(packet);
        link.queue_bytes += wire;
        link.stats.max_queue_bytes = link.stats.max_queue_bytes.max(link.queue_bytes);
        if !link.busy {
            link.busy = true;
            // The queue was empty before this push, so the front is the packet we
            // just enqueued.
            let tx =
                link.transmission_time(link.queue.front().expect("just pushed").wire_size as u64);
            self.events
                .schedule(now + tx, EventKind::TransmitDone { link: next_link });
        }
    }

    fn handle_transmit_done(&mut self, link_id: LinkId) {
        let now = self.now;
        let (packet, next_tx) = {
            let link = self.network.link_mut(link_id);
            // Invariant: a TransmitDone is scheduled exactly when a packet starts
            // serializing, so the queue must be non-empty here. A mis-sequenced
            // controller action (or a future engine bug) must degrade, not crash:
            // flag it in debug builds, recover by idling the link otherwise.
            let Some(mut packet) = link.queue.pop_front() else {
                debug_assert!(false, "TransmitDone on {link_id:?} with an empty queue");
                link.busy = false;
                return;
            };
            link.queue_bytes -= packet.wire_size as u64;
            let tx_time = link.transmission_time(packet.wire_size as u64);
            link.stats.bytes_transmitted += packet.wire_size as u64;
            link.stats.packets_transmitted += 1;
            link.stats.busy_time += tx_time;
            packet.hop += 1;
            let next_tx = if let Some(front) = link.queue.front() {
                Some(link.transmission_time(front.wire_size as u64))
            } else {
                link.busy = false;
                None
            };
            (packet, next_tx)
        };
        if let Some(tx) = next_tx {
            self.events
                .schedule(now + tx, EventKind::TransmitDone { link: link_id });
        }
        let link = self.network.link(link_id);
        let arrive_at = now + link.prop_delay + self.config.processing_delay;
        let dst = link.dst;
        if self.is_local(dst) {
            let flow = packet.flow;
            let tie = packet_tie(&packet);
            let slot = self.pool.park(packet);
            self.events.schedule(
                arrive_at,
                EventKind::PacketAtNode {
                    node: dst,
                    packet: slot,
                    flow,
                    tie,
                },
            );
        } else {
            // Boundary crossing: the conservative lookahead window is sized so that
            // `arrive_at` is at or past the receiver's next barrier.
            let to = self.shard_of[dst.index()];
            self.push_msg(
                to,
                arrive_at,
                MsgBody::Packet {
                    node: dst,
                    packet: Box::new(packet),
                },
            );
        }
    }

    fn handle_timer(&mut self, node: NodeId, flow: FlowId, kind: TimerKind, token: u64, gen: u32) {
        // Lazy cancellation: a timer from an older generation is dropped unfired.
        match self.flows.slot_of(flow) {
            Some(slot) => {
                if self.flows.slots[slot as usize].timer_gen != gen {
                    return;
                }
            }
            None => return,
        }
        let actions = {
            let Self { agents, flows, .. } = self;
            let Some(agent) = agents[node.index()].as_mut() else {
                return;
            };
            let mut ctx = Ctx::new(self.now, flows);
            agent.on_timer(flow, kind, token, &mut ctx);
            ctx.take_actions()
        };
        self.apply_actions(actions);
    }

    fn handle_controller_tick(&mut self, link_id: LinkId) {
        let next = {
            let Self {
                controllers,
                network,
                ..
            } = self;
            let Some(ctl) = controllers[link_id.index()].as_mut() else {
                return;
            };
            ctl.on_tick(self.now, network.link(link_id))
        };
        if let Some(t) = next {
            assert!(t > self.now, "controller tick must advance time");
            self.events
                .schedule(t, EventKind::ControllerTick { link: link_id });
        }
    }

    fn handle_trace_sample(&mut self) {
        let interval = self.config.trace.interval;
        let sharded = !self.shard_of.is_empty();
        // Rates are computed over the *actual* elapsed window, and guarded against a
        // zero-length one (a sample at t=0 or a zero-period TraceConfig would
        // otherwise divide by zero and poison the results with NaN).
        let elapsed_s = self.now.saturating_sub(self.last_sample_at).as_secs_f64();
        for i in 0..self.config.trace.links.len() {
            let l = self.config.trace.links[i];
            // Each link is sampled by the shard that owns its source node.
            if !self.is_local(self.network.link(l).src) {
                continue;
            }
            let link = self.network.link(l);
            let prev = self.link_bytes_at_last_sample[l.index()];
            let delta = link.stats.bytes_transmitted - prev;
            self.link_bytes_at_last_sample[l.index()] = link.stats.bytes_transmitted;
            let util = if elapsed_s > 0.0 {
                (delta as f64 * 8.0) / (link.rate_bps * elapsed_s)
            } else {
                0.0
            };
            self.traces
                .link_utilization
                .entry(l)
                .or_default()
                .push(Sample {
                    at: self.now,
                    value: util,
                });
            self.traces
                .link_queue_bytes
                .entry(l)
                .or_default()
                .push(Sample {
                    at: self.now,
                    value: link.queue_bytes as f64,
                });
        }
        if self.config.trace.flows {
            let shard = self.shard;
            let Self {
                flows,
                traces,
                shard_of,
                ..
            } = self;
            for state in &mut flows.slots {
                let rec = &state.record;
                // Goodput accumulates where the data is delivered: the shard owning
                // the flow's destination samples it (every shard in a 1-shard run).
                if sharded && shard_of[rec.spec.dst.index()] != shard {
                    continue;
                }
                let delta = rec.raw_bytes_delivered - state.bytes_at_last_sample;
                state.bytes_at_last_sample = rec.raw_bytes_delivered;
                let rate = if elapsed_s > 0.0 {
                    delta as f64 * 8.0 / elapsed_s
                } else {
                    0.0
                };
                traces
                    .flow_goodput
                    .entry(rec.spec.id)
                    .or_default()
                    .push(Sample {
                        at: self.now,
                        value: rate,
                    });
            }
        }
        // Pending-event depth of this core's queue (per shard in a partitioned run) —
        // the calendar scheduler's working-set size over time.
        self.traces.event_queue_depth.push(Sample {
            at: self.now,
            value: self.events.len() as f64,
        });
        self.last_sample_at = self.now;
        if interval > SimTime::ZERO {
            self.events
                .schedule(self.now + interval, EventKind::TraceSample);
        }
    }

    // ------------------------------------------------------------------ actions

    pub(crate) fn apply_actions(&mut self, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send(mut packet) => {
                    // The packet leaves the host that generated it: the flow source for
                    // forward packets, the flow destination for reverse packets. This
                    // is the one place a packet's flow id is hashed; every hop after
                    // this uses the dense slot stamped here.
                    packet.hop = 0;
                    let Some(slot) = self.flows.slot_of(packet.flow) else {
                        continue;
                    };
                    let Some(info) = self.flows.slots[slot as usize].info.as_ref() else {
                        continue;
                    };
                    packet.flow_slot = slot;
                    let origin = if packet.reverse {
                        info.spec.dst
                    } else {
                        info.spec.src
                    };
                    if self.is_local(origin) {
                        self.forward_packet(origin, packet);
                    } else {
                        // An agent on this shard emitted a packet that enters the
                        // network on a host owned by another shard; hand it over
                        // for injection there (no current protocol does this).
                        let to = self.shard_of[origin.index()];
                        let at = self.now;
                        self.push_msg(
                            to,
                            at,
                            MsgBody::Packet {
                                node: origin,
                                packet: Box::new(packet),
                            },
                        );
                    }
                }
                Action::SetTimer {
                    flow,
                    kind,
                    at,
                    token,
                } => {
                    let Some(slot) = self.flows.slot_of(flow) else {
                        continue;
                    };
                    let state = &self.flows.slots[slot as usize];
                    let Some(info) = state.info.as_ref() else {
                        continue;
                    };
                    // Timers always fire on the host that owns the flow's sending side;
                    // receiver-side protocols use distinct flows or tokens.
                    let node = info.spec.src;
                    let at = at.max(self.now);
                    if self.is_local(node) {
                        self.events.schedule(
                            at,
                            EventKind::Timer {
                                node,
                                flow,
                                kind,
                                token,
                                gen: state.timer_gen,
                            },
                        );
                    } else {
                        let to = self.shard_of[node.index()];
                        self.push_msg(to, at, MsgBody::SetTimer { flow, kind, token });
                    }
                }
                Action::FlowCompleted(flow) => self.finish_flow(flow, true),
                Action::FlowTerminated(flow) => self.finish_flow(flow, false),
                Action::CancelTimers(flow) => {
                    if let Some(slot) = self.flows.slot_of(flow) {
                        let state = &mut self.flows.slots[slot as usize];
                        state.timer_gen = state.timer_gen.wrapping_add(1);
                    }
                }
                Action::SpawnFlow(spec) => {
                    let arrival = spec.arrival.max(self.now);
                    let spec = FlowSpec { arrival, ..spec };
                    self.add_flow(spec);
                }
            }
        }
    }

    /// Record a flow completion/termination (first action wins) and settle the
    /// liveness accounting: the home shard decrements its unfinished count directly,
    /// a replica notifies the home shard instead.
    fn finish_flow(&mut self, flow: FlowId, completed: bool) {
        let Some(slot) = self.flows.slot_of(flow) else {
            return;
        };
        let (home, src) = {
            let state = &mut self.flows.slots[slot as usize];
            let rec = &mut state.record;
            if rec.completed_at.is_some() || rec.terminated_at.is_some() {
                return;
            }
            if completed {
                rec.completed_at = Some(self.now);
                rec.bytes_acked = rec.spec.size_bytes;
            } else {
                rec.terminated_at = Some(self.now);
            }
            // Deliberately no timer cancellation here: a finish detected at one node
            // (usually the receiver) must not acausally reach timers armed at another
            // node. Agents suppress their own late timers via status guards and token
            // freshness, which keeps 1-shard and N-shard runs byte-identical.
            (state.home, rec.spec.src)
        };
        if home {
            self.unfinished_flows = self.unfinished_flows.saturating_sub(1);
        } else {
            let to = self.shard_of[src.index()];
            let at = self.now;
            self.push_msg(to, at, MsgBody::Finished { flow, completed });
        }
    }
}

/// Build the [`FlowInfo`] the engine derives from a routed path: the path bottleneck
/// and NIC rates plus the no-load RTT estimate (one MTU forward, one control packet
/// back, per hop). Shared by arrival-time routing and the sharded pre-routing pass.
pub(crate) fn make_flow_info(
    network: &Network,
    config: &SimConfig,
    spec: FlowSpec,
    path: FlowPath,
) -> FlowInfo {
    let bottleneck = path
        .links
        .iter()
        .map(|&l| network.link(l).rate_bps)
        .fold(f64::INFINITY, f64::min);
    let nic = network.link(path.links[0]).rate_bps;
    let mut base_rtt = SimTime::ZERO;
    for &l in &path.links {
        let link = network.link(l);
        base_rtt +=
            link.transmission_time(MTU_BYTES as u64) + link.prop_delay + config.processing_delay;
        let rev = network.link(link.reverse);
        base_rtt += rev.transmission_time(CONTROL_PACKET_BYTES as u64)
            + rev.prop_delay
            + config.processing_delay;
    }
    FlowInfo {
        spec,
        path: Arc::new(path),
        bottleneck_rate_bps: bottleneck,
        nic_rate_bps: nic,
        base_rtt,
    }
}

/// The discrete-event simulator: construction facade over an [`EngineCore`].
///
/// Install agents, controllers and flows, then either [`Simulator::run`] (one core,
/// one thread) or [`Simulator::run_sharded`](Simulator::run_sharded) (N cores under
/// conservative-lookahead synchronization; see the `shard` module).
pub struct Simulator {
    pub(crate) core: EngineCore,
}

impl Simulator {
    /// Create a simulator over `network` with the default shortest-path router.
    pub fn new(network: Network, config: SimConfig) -> Self {
        Simulator {
            core: EngineCore::new(network, config),
        }
    }

    /// Replace the router.
    pub fn set_router(&mut self, router: impl Router + Send + 'static) {
        self.core.router = Box::new(router);
    }

    /// Install the transport agent running on `host`.
    pub fn set_agent(&mut self, host: NodeId, agent: Box<dyn HostAgent + Send>) {
        assert_eq!(
            self.core.network.node(host).kind,
            NodeKind::Host,
            "agents can only be installed on hosts"
        );
        self.core.agents[host.index()] = Some(agent);
    }

    /// Install an agent on every host using a factory.
    pub fn install_agents<F>(&mut self, mut factory: F)
    where
        F: FnMut(&Network, NodeId) -> Box<dyn HostAgent + Send>,
    {
        for host in self.core.network.hosts() {
            let agent = factory(&self.core.network, host);
            self.core.agents[host.index()] = Some(agent);
        }
    }

    /// Install a controller on a specific link.
    pub fn set_controller(&mut self, link: LinkId, controller: Box<dyn LinkController + Send>) {
        self.core.controllers[link.index()] = Some(controller);
    }

    /// Install controllers on links selected by a factory (commonly: every link whose
    /// source node is a switch). Returning `None` leaves a link uncontrolled.
    pub fn install_controllers<F>(&mut self, mut factory: F)
    where
        F: FnMut(&Network, LinkId) -> Option<Box<dyn LinkController + Send>>,
    {
        for i in 0..self.core.controllers.len() {
            let l = LinkId(i as u32);
            if let Some(c) = factory(&self.core.network, l) {
                self.core.controllers[i] = Some(c);
            }
        }
    }

    /// Install a controller (from the factory) on every link whose source is a switch.
    pub fn install_switch_controllers<F>(&mut self, mut factory: F)
    where
        F: FnMut(&Network, LinkId) -> Box<dyn LinkController + Send>,
    {
        self.install_controllers(|net, l| {
            if net.node(net.link(l).src).kind == NodeKind::Switch {
                Some(factory(net, l))
            } else {
                None
            }
        });
    }

    /// Inject a flow; its arrival event fires at `spec.arrival`.
    pub fn add_flow(&mut self, spec: FlowSpec) {
        self.core.add_flow(spec);
    }

    /// Inject many flows.
    pub fn add_flows(&mut self, specs: impl IntoIterator<Item = FlowSpec>) {
        for s in specs {
            self.add_flow(s);
        }
    }

    /// Current simulated time (mostly useful from tests).
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Mutable access to the configuration (before calling [`Simulator::run`]).
    pub fn config_mut(&mut self) -> &mut SimConfig {
        &mut self.core.config
    }

    /// Read-only access to the network (topology + live queue state).
    pub fn network(&self) -> &Network {
        &self.core.network
    }

    /// Run the simulation to completion on a single core and return the results.
    pub fn run(self) -> SimResults {
        let mut core = self.core;
        core.setup();
        core.run_loop();
        core.into_results()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::flow::FlowOutcome;
    use crate::network::LinkParams;

    /// A minimal "blast" transport used to exercise the engine: the sender transmits the
    /// whole flow as a burst of MSS packets; the receiver ACKs each packet and declares
    /// completion when it has seen every byte (ignoring ordering; there is no loss in
    /// these tests unless injected).
    pub(crate) struct BlastAgent {
        received: HashMap<FlowId, u64>,
        sizes: HashMap<FlowId, u64>,
    }
    impl BlastAgent {
        pub(crate) fn new() -> Self {
            BlastAgent {
                received: HashMap::new(),
                sizes: HashMap::new(),
            }
        }
    }
    impl HostAgent for BlastAgent {
        fn on_flow_arrival(&mut self, flow: &FlowInfo, ctx: &mut Ctx) {
            let mut offset = 0u64;
            while offset < flow.spec.size_bytes {
                let payload =
                    (flow.spec.size_bytes - offset).min(crate::packet::MSS_BYTES as u64) as u32;
                let mut p =
                    Packet::data(flow.spec.id, flow.spec.src, flow.spec.dst, offset, payload);
                p.sent_at = ctx.now();
                ctx.send(p);
                offset += payload as u64;
            }
        }
        fn on_packet(&mut self, packet: Packet, ctx: &mut Ctx) {
            match packet.kind {
                PacketKind::Data => {
                    let size = ctx.flow(packet.flow).unwrap().spec.size_bytes;
                    let total = self.received.entry(packet.flow).or_insert(0);
                    *total += packet.payload as u64;
                    let total = *total;
                    self.sizes.insert(packet.flow, size);
                    let ack = packet.make_echo(PacketKind::Ack, total);
                    ctx.send(ack);
                    if total >= size {
                        ctx.flow_completed(packet.flow);
                    }
                }
                PacketKind::Ack => {}
                _ => {}
            }
        }
        fn on_timer(&mut self, _flow: FlowId, _kind: TimerKind, _token: u64, _ctx: &mut Ctx) {}
    }

    pub(crate) fn dumbbell() -> Network {
        // h0, h1 -- s0 -- s1 -- h2
        let mut net = Network::new();
        let h0 = net.add_host("h0");
        let h1 = net.add_host("h1");
        let s0 = net.add_switch("s0");
        let s1 = net.add_switch("s1");
        let h2 = net.add_host("h2");
        net.add_duplex_link(h0, s0, LinkParams::default());
        net.add_duplex_link(h1, s0, LinkParams::default());
        net.add_duplex_link(s0, s1, LinkParams::default());
        net.add_duplex_link(s1, h2, LinkParams::default());
        net
    }

    pub(crate) fn blast_sim(net: Network) -> Simulator {
        let mut sim = Simulator::new(net, SimConfig::default());
        sim.install_agents(|_, _| Box::new(BlastAgent::new()));
        sim
    }

    #[test]
    fn single_flow_completes_with_sane_fct() {
        let net = dumbbell();
        let hosts = net.hosts();
        let mut sim = blast_sim(net);
        // 100 KB from h0 to h2 over three 1 Gbps hops.
        sim.add_flow(FlowSpec::new(1, hosts[0], hosts[2], 100_000));
        let res = sim.run();
        let rec = res.flow(FlowId(1)).unwrap();
        assert_eq!(rec.outcome(), crate::flow::FlowOutcome::Completed);
        let fct = rec.fct().unwrap().as_secs_f64();
        // Serialization of 100 KB at 1 Gbps is 0.8 ms; with per-hop overheads the FCT
        // must be close to but above that, and far below 10 ms.
        assert!(fct > 0.0008, "fct = {fct}");
        assert!(fct < 0.005, "fct = {fct}");
        assert_eq!(rec.raw_bytes_delivered, 100_000);
        assert_eq!(res.total_tail_drops(), 0);
    }

    #[test]
    fn two_senders_share_bottleneck_and_both_finish() {
        let net = dumbbell();
        let hosts = net.hosts();
        let mut sim = blast_sim(net);
        sim.add_flow(FlowSpec::new(1, hosts[0], hosts[2], 200_000));
        sim.add_flow(FlowSpec::new(2, hosts[1], hosts[2], 200_000));
        let res = sim.run();
        assert_eq!(res.completed_count(), 2);
        // Both flows cross the shared s0->s1 and s1->h2 links; total bytes transmitted
        // on the shared bottleneck must cover both flows (plus headers).
        let shared: u64 = res
            .link_stats
            .iter()
            .map(|(_, s)| s.bytes_transmitted)
            .max()
            .unwrap();
        assert!(shared >= 400_000);
    }

    #[test]
    fn overload_burst_causes_tail_drops_with_tiny_buffers() {
        // Shrink queues so that a synchronized burst overflows them.
        let mut net = Network::new();
        let h0 = net.add_host("h0");
        let h1 = net.add_host("h1");
        let s0 = net.add_switch("s0");
        let h2 = net.add_host("h2");
        let small = LinkParams {
            queue_capacity_bytes: 20_000,
            ..Default::default()
        };
        net.add_duplex_link(h0, s0, small);
        net.add_duplex_link(h1, s0, small);
        net.add_duplex_link(s0, h2, small);
        let hosts = net.hosts();
        let mut sim = blast_sim(net);
        sim.core.config = SimConfig {
            stop_when_flows_done: false,
            max_sim_time: SimTime::from_millis(50),
            ..SimConfig::default()
        };
        sim.add_flow(FlowSpec::new(1, hosts[0], hosts[2], 500_000));
        sim.add_flow(FlowSpec::new(2, hosts[1], hosts[2], 500_000));
        let res = sim.run();
        assert!(
            res.total_tail_drops() > 0,
            "expected tail drops on a 20 KB queue"
        );
    }

    #[test]
    fn random_loss_drops_packets() {
        let mut net = Network::new();
        let h0 = net.add_host("h0");
        let s0 = net.add_switch("s0");
        let h1 = net.add_host("h1");
        net.add_duplex_link(h0, s0, LinkParams::default());
        let lossy = LinkParams {
            loss_rate: 0.5,
            ..Default::default()
        };
        net.add_duplex_link(s0, h1, lossy);
        let hosts = net.hosts();
        let mut sim = blast_sim(net);
        sim.core.config.stop_when_flows_done = false;
        sim.core.config.max_sim_time = SimTime::from_millis(20);
        sim.add_flow(FlowSpec::new(1, hosts[0], hosts[1], 150_000));
        let res = sim.run();
        let drops: u64 = res.link_stats.iter().map(|(_, s)| s.random_drops).sum();
        assert!(drops > 10, "expected many random drops, got {drops}");
        let rec = res.flow(FlowId(1)).unwrap();
        assert!(rec.raw_bytes_delivered < 150_000);
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = |seed: u64| {
            let net = dumbbell();
            let hosts = net.hosts();
            let mut sim = blast_sim(net);
            sim.core.config.seed = seed;
            sim.add_flow(FlowSpec::new(1, hosts[0], hosts[2], 80_000));
            sim.add_flow(FlowSpec::new(2, hosts[1], hosts[2], 120_000));
            let res = sim.run();
            (
                res.flow(FlowId(1)).unwrap().fct(),
                res.flow(FlowId(2)).unwrap().fct(),
            )
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn trace_sampling_records_utilization() {
        let net = dumbbell();
        let hosts = net.hosts();
        // The bottleneck link is s1 -> h2, which is the 7th link (index 6).
        let bottleneck = LinkId(6);
        let mut sim = blast_sim(net);
        sim.core.config.trace = TraceConfig {
            interval: SimTime::from_micros(200),
            links: vec![bottleneck],
            flows: true,
        };
        sim.core.config.stop_when_flows_done = false;
        sim.core.config.max_sim_time = SimTime::from_millis(3);
        sim.add_flow(FlowSpec::new(1, hosts[0], hosts[2], 200_000));
        let res = sim.run();
        let util = res.traces.link_utilization.get(&bottleneck).unwrap();
        assert!(!util.is_empty());
        assert!(
            util.iter().any(|s| s.value > 0.5),
            "bottleneck should be busy"
        );
        // Utilization is measured as bytes completed per interval, so a packet whose
        // serialization straddles an interval boundary can push a sample slightly above
        // 1.0 (by at most one MTU per interval).
        let slack = (MTU_BYTES as f64 * 8.0) / (1e9 * 200e-6);
        assert!(util.iter().all(|s| s.value <= 1.0 + slack));
        assert!(res.traces.flow_goodput.contains_key(&FlowId(1)));
    }

    /// Regression (zero-length sampling window): a trace sample forced at t=0 must not
    /// divide by zero — every recorded value stays finite.
    #[test]
    fn trace_sample_at_time_zero_produces_finite_values() {
        let net = dumbbell();
        let hosts = net.hosts();
        let bottleneck = LinkId(6);
        let mut sim = blast_sim(net);
        sim.core.config.trace = TraceConfig {
            interval: SimTime::from_micros(200),
            links: vec![bottleneck],
            flows: true,
        };
        sim.core.config.stop_when_flows_done = false;
        sim.core.config.max_sim_time = SimTime::from_millis(1);
        // Force a first sample at t=0 (elapsed window of zero length).
        sim.core
            .events
            .schedule(SimTime::ZERO, EventKind::TraceSample);
        sim.add_flow(FlowSpec::new(1, hosts[0], hosts[2], 100_000));
        let res = sim.run();
        for samples in res
            .traces
            .link_utilization
            .values()
            .chain(res.traces.link_queue_bytes.values())
            .chain(res.traces.flow_goodput.values())
        {
            assert!(
                samples.iter().all(|s| s.value.is_finite()),
                "non-finite trace sample"
            );
        }
    }

    /// Regression (zero-period TraceConfig): a zero interval disables tracing rather
    /// than dividing by zero or looping forever at one instant.
    #[test]
    fn zero_interval_trace_config_is_disabled() {
        let net = dumbbell();
        let hosts = net.hosts();
        let mut sim = blast_sim(net);
        sim.core.config.trace = TraceConfig {
            interval: SimTime::ZERO,
            links: vec![LinkId(6)],
            flows: true,
        };
        sim.add_flow(FlowSpec::new(1, hosts[0], hosts[2], 50_000));
        let res = sim.run();
        assert_eq!(res.completed_count(), 1);
        assert!(res.traces.link_utilization.is_empty());
        assert!(res.traces.flow_goodput.is_empty());
    }

    /// Regression (disconnected routing): a flow between partitioned components is
    /// recorded as Failed; the rest of the run is unaffected.
    #[test]
    fn unroutable_flow_is_recorded_as_failed_not_a_panic() {
        // Two disconnected islands: h0 -- s0 -- h1   and   h2 -- s1 -- h3.
        let mut net = Network::new();
        let h0 = net.add_host("h0");
        let s0 = net.add_switch("s0");
        let h1 = net.add_host("h1");
        let h2 = net.add_host("h2");
        let s1 = net.add_switch("s1");
        let h3 = net.add_host("h3");
        net.add_duplex_link(h0, s0, LinkParams::default());
        net.add_duplex_link(s0, h1, LinkParams::default());
        net.add_duplex_link(h2, s1, LinkParams::default());
        net.add_duplex_link(s1, h3, LinkParams::default());
        let mut sim = blast_sim(net);
        sim.add_flow(FlowSpec::new(1, h0, h1, 50_000)); // routable
        sim.add_flow(FlowSpec::new(2, h0, h3, 50_000)); // crosses the partition
        let res = sim.run();
        assert_eq!(
            res.flow(FlowId(1)).unwrap().outcome(),
            FlowOutcome::Completed
        );
        let failed = res.flow(FlowId(2)).unwrap();
        assert_eq!(failed.outcome(), FlowOutcome::Failed);
        assert!(failed.fct().is_none());
        assert!(!failed.met_deadline());
        assert_eq!(failed.raw_bytes_delivered, 0);
    }

    /// Regression (mis-sequenced TransmitDone): in release builds a spurious
    /// TransmitDone on an idle link is absorbed (link idled, no crash); in debug
    /// builds the checked invariant fires.
    #[cfg(not(debug_assertions))]
    #[test]
    fn spurious_transmit_done_is_absorbed_in_release() {
        let net = dumbbell();
        let hosts = net.hosts();
        let mut sim = blast_sim(net);
        sim.core.events.schedule(
            SimTime::from_micros(1),
            EventKind::TransmitDone { link: LinkId(0) },
        );
        sim.add_flow(FlowSpec::new(1, hosts[0], hosts[2], 50_000));
        let res = sim.run();
        assert_eq!(res.completed_count(), 1);
    }

    /// Debug counterpart: the invariant is checked.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "TransmitDone")]
    fn spurious_transmit_done_panics_in_debug() {
        let net = dumbbell();
        let hosts = net.hosts();
        let mut sim = blast_sim(net);
        sim.core.events.schedule(
            SimTime::from_micros(1),
            EventKind::TransmitDone { link: LinkId(0) },
        );
        sim.add_flow(FlowSpec::new(1, hosts[0], hosts[2], 50_000));
        let _ = sim.run();
    }

    #[test]
    #[should_panic]
    fn duplicate_flow_ids_rejected() {
        let net = dumbbell();
        let hosts = net.hosts();
        let mut sim = blast_sim(net);
        sim.add_flow(FlowSpec::new(1, hosts[0], hosts[2], 1000));
        sim.add_flow(FlowSpec::new(1, hosts[1], hosts[2], 1000));
        // Arrival handling (same id twice) panics via the flow-table insert guard.
        let _ = sim.run();
    }

    /// An agent that schedules timers out of insertion order (two instants, two
    /// timers each) and records the order in which the engine delivers them.
    struct TimerProbe {
        fired: std::sync::Arc<std::sync::Mutex<Vec<(SimTime, u64)>>>,
    }
    impl HostAgent for TimerProbe {
        fn on_flow_arrival(&mut self, flow: &FlowInfo, ctx: &mut Ctx) {
            let f = flow.spec.id;
            let k = TimerKind::Custom(0);
            ctx.set_timer_after(f, k, SimTime::from_micros(2), 10);
            ctx.set_timer_after(f, k, SimTime::from_micros(1), 20);
            ctx.set_timer_after(f, k, SimTime::from_micros(2), 11);
            ctx.set_timer_after(f, k, SimTime::from_micros(1), 21);
        }
        fn on_packet(&mut self, _packet: Packet, _ctx: &mut Ctx) {}
        fn on_timer(&mut self, _flow: FlowId, _kind: TimerKind, token: u64, ctx: &mut Ctx) {
            self.fired.lock().unwrap().push((ctx.now(), token));
        }
    }

    /// Engine-level event ordering: timers fire strictly in time order, FIFO within
    /// the same instant (the scheduling order, not the token values), and the clock
    /// observed by agents never moves backwards.
    #[test]
    fn engine_delivers_timers_in_time_then_fifo_order() {
        let fired = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let net = dumbbell();
        let hosts = net.hosts();
        let mut sim = Simulator::new(
            net,
            SimConfig {
                max_sim_time: SimTime::from_millis(1),
                stop_when_flows_done: false,
                ..SimConfig::default()
            },
        );
        let probe_log = fired.clone();
        sim.install_agents(move |_, _| {
            Box::new(TimerProbe {
                fired: probe_log.clone(),
            })
        });
        sim.add_flow(FlowSpec::new(1, hosts[0], hosts[2], 1000));
        let _ = sim.run();
        let fired = fired.lock().unwrap();
        let tokens: Vec<u64> = fired.iter().map(|&(_, tok)| tok).collect();
        assert_eq!(
            tokens,
            vec![20, 21, 10, 11],
            "timers must fire in time order, FIFO within one instant"
        );
        for pair in fired.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "agent-visible time went backwards");
        }
    }

    /// An agent exercising the cancellation contract: it arms three timers, cancels
    /// them, arms one more (new generation), and completes the flow on that firing.
    /// A further timer armed for after the completion must still fire — a finish
    /// deliberately does not cancel timers (see the contract on
    /// `Ctx::cancel_flow_timers`), so agents can observe it and ignore it themselves.
    struct CancelProbe {
        fired: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
    }
    impl HostAgent for CancelProbe {
        fn on_flow_arrival(&mut self, flow: &FlowInfo, ctx: &mut Ctx) {
            let f = flow.spec.id;
            let k = TimerKind::Custom(0);
            ctx.set_timer_after(f, k, SimTime::from_micros(1), 1);
            ctx.set_timer_after(f, k, SimTime::from_micros(2), 2);
            ctx.set_timer_after(f, k, SimTime::from_micros(3), 3);
            ctx.cancel_flow_timers(f);
            // Re-armed after the cancellation: belongs to the new generation.
            ctx.set_timer_after(f, k, SimTime::from_micros(5), 4);
            // Armed for after the completion: fires anyway, and the agent is expected
            // to recognise it as late (real senders guard on their own status).
            ctx.set_timer_after(f, k, SimTime::from_micros(100), 5);
        }
        fn on_packet(&mut self, _packet: Packet, _ctx: &mut Ctx) {}
        fn on_timer(&mut self, flow: FlowId, _kind: TimerKind, token: u64, ctx: &mut Ctx) {
            self.fired.lock().unwrap().push(token);
            if token == 4 {
                ctx.flow_completed(flow);
            }
        }
    }

    #[test]
    fn timer_cancellation_is_agent_driven_not_finish_driven() {
        let fired = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let net = dumbbell();
        let hosts = net.hosts();
        let mut sim = Simulator::new(
            net,
            SimConfig {
                max_sim_time: SimTime::from_millis(1),
                stop_when_flows_done: false,
                ..SimConfig::default()
            },
        );
        let log = fired.clone();
        sim.install_agents(move |_, _| Box::new(CancelProbe { fired: log.clone() }));
        sim.add_flow(FlowSpec::new(1, hosts[0], hosts[2], 1000));
        let res = sim.run();
        assert_eq!(
            *fired.lock().unwrap(),
            vec![4, 5],
            "cancelled timers (1,2,3) must not fire; the post-completion timer (5) \
             must (finishes never cancel timers — that would be acausal under sharding)"
        );
        assert_eq!(res.completed_count(), 1);
    }
}
