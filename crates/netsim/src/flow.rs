//! Flow descriptions, paths and per-flow accounting.

use crate::ids::{CoflowId, FlowId, LinkId, NodeId};
use crate::time::SimTime;

/// Coflow membership stamped onto a [`FlowSpec`] at workload-generation time.
///
/// The tag carries everything a coflow-aware scheduler needs *statically*: the group
/// identity, the size of the group's largest member (its bottleneck), and the group's
/// collective deadline. Because it is immutable data on the spec — not shared mutable
/// state — schedulers that read it stay deterministic under the partitioned engine at
/// every shard count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoflowTag {
    /// The coflow this flow belongs to.
    pub id: CoflowId,
    /// Size in bytes of the coflow's largest member — the group bottleneck a
    /// coflow-aware scheduler derives criticality from.
    pub bottleneck_bytes: u64,
    /// The coflow's collective deadline (absolute), if any.
    pub deadline: Option<SimTime>,
}

/// A flow to be transferred from `src` to `dst`.
///
/// The experiment driver creates `FlowSpec`s (from a workload generator) and injects
/// them into the simulator as flow-arrival events; the source host's transport agent
/// is then responsible for delivering `size_bytes` bytes to the destination.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowSpec {
    /// Unique flow identifier.
    pub id: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Application bytes to transfer.
    pub size_bytes: u64,
    /// Optional absolute deadline by which the transfer should complete.
    pub deadline: Option<SimTime>,
    /// Time at which the flow arrives at the sender.
    pub arrival: SimTime,
    /// For M-PDQ subflows: the parent flow this subflow belongs to.
    pub parent: Option<FlowId>,
    /// Coflow membership, if this flow is part of a group with collective
    /// completion semantics.
    pub coflow: Option<CoflowTag>,
}

impl FlowSpec {
    /// Convenience constructor for a flow with no deadline arriving at time zero.
    pub fn new(id: u64, src: NodeId, dst: NodeId, size_bytes: u64) -> Self {
        FlowSpec {
            id: FlowId(id),
            src,
            dst,
            size_bytes,
            deadline: None,
            arrival: SimTime::ZERO,
            parent: None,
            coflow: None,
        }
    }

    /// Set the deadline (absolute time) and return the modified spec.
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the arrival time and return the modified spec.
    pub fn with_arrival(mut self, arrival: SimTime) -> Self {
        self.arrival = arrival;
        self
    }

    /// Tag this flow as a member of a coflow and return the modified spec.
    pub fn with_coflow(mut self, tag: CoflowTag) -> Self {
        self.coflow = Some(tag);
        self
    }
}

/// The forward path taken by a flow: a sequence of nodes and the unidirectional links
/// connecting them. `nodes.len() == links.len() + 1`, `nodes[0]` is the source host and
/// `nodes[last]` the destination host. ACKs traverse the reverse links in reverse order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowPath {
    /// Visited nodes, source first.
    pub nodes: Vec<NodeId>,
    /// Forward-direction links, `links[i]` connects `nodes[i] -> nodes[i+1]`.
    pub links: Vec<LinkId>,
}

impl FlowPath {
    /// Create a path, checking the node/link count invariant.
    pub fn new(nodes: Vec<NodeId>, links: Vec<LinkId>) -> Self {
        assert_eq!(
            nodes.len(),
            links.len() + 1,
            "a path over k links visits k+1 nodes"
        );
        assert!(!links.is_empty(), "a path must traverse at least one link");
        FlowPath { nodes, links }
    }

    /// Number of links traversed.
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// Source host.
    pub fn src(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination host.
    pub fn dst(&self) -> NodeId {
        *self.nodes.last().unwrap()
    }
}

/// What ultimately happened to a flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowOutcome {
    /// Still active when the simulation ended.
    Active,
    /// All bytes delivered.
    Completed,
    /// Gave up (PDQ Early Termination or D3 quenching).
    Terminated,
    /// Never started: the router found no path from source to destination. The flow is
    /// recorded (so results stay complete) but no agent ever saw it.
    Failed,
}

/// Per-flow accounting kept by the simulator.
#[derive(Clone, Debug)]
pub struct FlowRecord {
    /// The flow's specification.
    pub spec: FlowSpec,
    /// Bytes of *distinct* payload delivered to the destination agent so far
    /// (retransmitted duplicates are not counted twice by well-behaved receivers;
    /// the engine itself counts raw deliveries in `raw_bytes_delivered`).
    pub bytes_acked: u64,
    /// Raw payload bytes handed to the destination host (including duplicates).
    pub raw_bytes_delivered: u64,
    /// Data packets dropped on any queue for this flow.
    pub drops: u64,
    /// When the flow finished, if it did.
    pub completed_at: Option<SimTime>,
    /// When the flow was terminated early, if it was.
    pub terminated_at: Option<SimTime>,
    /// True if the flow could not be routed (disconnected source/destination pair).
    pub failed: bool,
}

impl FlowRecord {
    /// Create a new record for a flow that has just arrived.
    pub fn new(spec: FlowSpec) -> Self {
        FlowRecord {
            spec,
            bytes_acked: 0,
            raw_bytes_delivered: 0,
            drops: 0,
            completed_at: None,
            terminated_at: None,
            failed: false,
        }
    }

    /// Current outcome of the flow.
    pub fn outcome(&self) -> FlowOutcome {
        if self.failed {
            FlowOutcome::Failed
        } else if self.completed_at.is_some() {
            FlowOutcome::Completed
        } else if self.terminated_at.is_some() {
            FlowOutcome::Terminated
        } else {
            FlowOutcome::Active
        }
    }

    /// Flow completion time, if the flow completed.
    pub fn fct(&self) -> Option<SimTime> {
        self.completed_at
            .map(|t| t.saturating_sub(self.spec.arrival))
    }

    /// True if the flow completed before its deadline. Flows without deadlines count as
    /// meeting the deadline when they complete (matching the paper's Application
    /// Throughput metric, which is only applied to deadline-constrained flows anyway).
    pub fn met_deadline(&self) -> bool {
        match (self.completed_at, self.spec.deadline) {
            (Some(done), Some(dl)) => done <= dl,
            (Some(_), None) => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FlowSpec {
        FlowSpec::new(1, NodeId(0), NodeId(1), 10_000)
            .with_deadline(SimTime::from_millis(20))
            .with_arrival(SimTime::from_millis(1))
    }

    #[test]
    fn spec_builders() {
        let s = spec();
        assert_eq!(s.size_bytes, 10_000);
        assert_eq!(s.deadline, Some(SimTime::from_millis(20)));
        assert_eq!(s.arrival, SimTime::from_millis(1));
        assert!(s.parent.is_none());
    }

    #[test]
    fn path_invariants() {
        let p = FlowPath::new(
            vec![NodeId(0), NodeId(5), NodeId(1)],
            vec![LinkId(0), LinkId(1)],
        );
        assert_eq!(p.hops(), 2);
        assert_eq!(p.src(), NodeId(0));
        assert_eq!(p.dst(), NodeId(1));
    }

    #[test]
    #[should_panic]
    fn path_mismatched_lengths_panics() {
        let _ = FlowPath::new(vec![NodeId(0), NodeId(1)], vec![LinkId(0), LinkId(1)]);
    }

    #[test]
    fn record_outcomes() {
        let mut r = FlowRecord::new(spec());
        assert_eq!(r.outcome(), FlowOutcome::Active);
        assert_eq!(r.fct(), None);
        assert!(!r.met_deadline());

        r.completed_at = Some(SimTime::from_millis(11));
        assert_eq!(r.outcome(), FlowOutcome::Completed);
        assert_eq!(r.fct(), Some(SimTime::from_millis(10)));
        assert!(r.met_deadline());

        let mut late = FlowRecord::new(spec());
        late.completed_at = Some(SimTime::from_millis(30));
        assert!(!late.met_deadline());

        let mut term = FlowRecord::new(spec());
        term.terminated_at = Some(SimTime::from_millis(5));
        assert_eq!(term.outcome(), FlowOutcome::Terminated);
        assert!(!term.met_deadline());
    }
}
