//! Partitioned simulation: N cooperating [`EngineCore`]s under conservative-lookahead
//! synchronization.
//!
//! # Model
//!
//! A [`ShardAssignment`] maps every node to exactly one shard. Each shard owns an
//! [`EngineCore`] holding the agents, link queues, flow replicas and event queue of its
//! nodes (a link belongs to the shard of its *source* node, so each directed queue has
//! exactly one writer). Shards advance in lock-step windows:
//!
//! 1. every shard publishes the time of its earliest pending event;
//! 2. all shards compute the same global minimum `T` and process every local event in
//!    `[T, T + L)`, where the lookahead `L` is the minimum cross-shard link latency
//!    (propagation + per-hop processing). A packet crossing a shard boundary at time
//!    `t ≥ T` arrives at `t + prop + processing ≥ T + L`, i.e. strictly after the
//!    window — so no shard can ever receive an event for a time it has already passed;
//! 3. boundary messages (packets, flow registrations, completion notices) are
//!    exchanged, ingested in a deterministic order, and the next window begins.
//!
//! # Determinism
//!
//! * Every flow — injected before the run or spawned by an agent at run time — is
//!   routed on a private RNG derived from `(seed, flow id)` (see
//!   `engine::route_rng`), so its path is a pure function of the flow and identical
//!   at every shard count. Pre-registered flows are routed up front in arrival
//!   order; runtime-spawned ones at arrival, on whichever shard hosts the source.
//! * Random loss on [`LossStream::Engine`] links (the default) draws from each
//!   core's own stream (`seed ⊕ shard id`): N-shard runs are self-deterministic,
//!   but lossy runs are shard-count-*invariant* only when every lossy link is
//!   marked [`LossStream::PerLink`] — those links consume a private `(seed, link
//!   id)` stream in packet-crossing order, which the content-derived event order
//!   reproduces at every shard count. The WAN topologies mark their lossy
//!   long-haul links this way.
//!
//! [`LossStream::Engine`]: crate::network::LossStream::Engine
//! [`LossStream::PerLink`]: crate::network::LossStream::PerLink
//! * Boundary messages are ingested sorted by `(message class, time, source shard,
//!   sequence)`, and results are merged in shard order, so an N-shard run is
//!   bit-reproducible for a fixed seed and shard count.
//!
//! A single-shard run never enters this module's driver and is byte-identical to the
//! sequential engine. When stopping because every flow finished, shards may process a
//! bounded tail of in-flight events from the window containing the final finish (the
//! global condition is only observable at the next barrier); this can nudge link byte
//! counters and trace samples by up to one lookahead window but never changes a flow
//! record or the end time. See the repository README ("Partitioned engine &
//! determinism model") for when N-shard results are fingerprint-identical to 1-shard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use crate::agent::FlowInfo;
use crate::engine::{make_flow_info, EngineCore, FlowState, Router, Simulator};
use crate::event::EventKind;
use crate::flow::{FlowRecord, FlowSpec};
use crate::ids::{FlowId, LinkId, NodeId};
use crate::metrics::SimResults;
use crate::packet::Packet;
use crate::time::SimTime;

/// A node → shard map plus the conservative lookahead it guarantees.
///
/// Build one with [`ShardAssignment::new`] (typically via the topology crate's
/// `Partition`, which knows how to cut fat-trees along pods, BCube along sub-cubes and
/// arbitrary graphs by BFS bisection) and pass it to [`Simulator::run_sharded`].
#[derive(Clone, Debug)]
pub struct ShardAssignment {
    shard_of: Arc<[u32]>,
    shards: u32,
    lookahead: SimTime,
}

impl ShardAssignment {
    /// Create an assignment.
    ///
    /// `shard_of[i]` is the shard owning node `i`; `lookahead` must be a lower bound
    /// on the *propagation* delay of every link whose endpoints live on different
    /// shards (the engine adds its per-hop processing delay on top). Use
    /// [`SimTime::MAX`] when no link crosses a shard boundary.
    ///
    /// # Panics
    /// If any entry names a shard `>= shards`, or `shards` is zero.
    pub fn new(shard_of: Vec<u32>, shards: u32, lookahead: SimTime) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            shard_of.iter().all(|&s| s < shards),
            "node assigned to a shard >= shard count"
        );
        ShardAssignment {
            shard_of: shard_of.into(),
            shards,
            lookahead,
        }
    }

    /// The trivial assignment: every node on shard 0 (sequential execution).
    pub fn single(n_nodes: usize) -> Self {
        ShardAssignment {
            shard_of: vec![0; n_nodes].into(),
            shards: 1,
            lookahead: SimTime::MAX,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of nodes covered by the assignment.
    pub fn node_count(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> u32 {
        self.shard_of[node.index()]
    }

    /// The guaranteed minimum cross-shard propagation delay.
    pub fn lookahead(&self) -> SimTime {
        self.lookahead
    }
}

/// A boundary-crossing message exchanged between shards at window barriers.
pub(crate) struct ShardMsg {
    /// Simulated time the message takes effect (event time for packets/timers,
    /// notification time for registrations/finishes).
    pub(crate) at: SimTime,
    /// Simulated time on the sending shard when the message was created. Ingested
    /// events carry this as their creation stamp so the receiving queue orders them
    /// exactly as a single global queue would have.
    pub(crate) sent: SimTime,
    /// Sending shard (ingest tie-break).
    pub(crate) src_shard: u32,
    /// Sender-assigned sequence number (ingest tie-break, preserves the sender's
    /// creation order).
    pub(crate) seq: u64,
    /// Payload.
    pub(crate) body: MsgBody,
}

/// What a [`ShardMsg`] carries.
pub(crate) enum MsgBody {
    /// Make a flow (routed at run time on another shard) visible to this shard before
    /// any of its packets arrive.
    Register(Box<FlowInfo>),
    /// A replica of the flow finished on another shard; the home shard settles the
    /// liveness accounting and records the finish.
    Finished {
        /// The finished flow.
        flow: FlowId,
        /// True for completion, false for early termination.
        completed: bool,
    },
    /// An agent on another shard armed a timer for a flow homed here.
    SetTimer {
        /// The flow the timer belongs to.
        flow: FlowId,
        /// Timer class.
        kind: crate::event::TimerKind,
        /// Agent-chosen token.
        token: u64,
    },
    /// A packet that crossed the shard boundary, to be delivered at `node` at `at`.
    Packet {
        /// The node the packet arrives at.
        node: NodeId,
        /// The packet itself (its `flow_slot` is re-stamped by the receiver).
        packet: Box<Packet>,
    },
}

impl MsgBody {
    /// Ingest-order class: registrations must precede any use of the flow; finishes
    /// and timers touch records before packets are scheduled.
    fn rank(&self) -> u8 {
        match self {
            MsgBody::Register(_) => 0,
            MsgBody::Finished { .. } => 1,
            MsgBody::SetTimer { .. } => 2,
            MsgBody::Packet { .. } => 3,
        }
    }
}

/// Record a finish on `rec` if it beats the existing one: earlier wins, and at equal
/// times completion beats termination. Used both when a `Finished` message reaches the
/// home shard and when replica records are merged into the final results.
fn apply_finish(rec: &mut FlowRecord, completed: bool, at: SimTime) {
    let existing = match (rec.completed_at, rec.terminated_at) {
        (Some(t), _) => Some((t, true)),
        (None, Some(t)) => Some((t, false)),
        (None, None) => None,
    };
    let better = match existing {
        None => true,
        Some((t, was_completed)) => at < t || (at == t && completed && !was_completed),
    };
    if better {
        if completed {
            rec.completed_at = Some(at);
            rec.terminated_at = None;
            rec.bytes_acked = rec.spec.size_bytes;
        } else {
            rec.terminated_at = Some(at);
            rec.completed_at = None;
            rec.bytes_acked = 0;
        }
    }
}

impl EngineCore {
    /// Apply a barrier's worth of boundary messages, in the canonical order.
    pub(crate) fn ingest(&mut self, mut msgs: Vec<ShardMsg>) {
        msgs.sort_by_key(|m| (m.body.rank(), m.at, m.src_shard, m.seq));
        for msg in msgs {
            match msg.body {
                MsgBody::Register(info) => {
                    if self.flows.contains(info.spec.id) {
                        continue;
                    }
                    let record = FlowRecord::new(info.spec.clone());
                    self.flows.insert(
                        info.spec.id,
                        FlowState {
                            info: Some(*info),
                            record,
                            bytes_at_last_sample: 0,
                            timer_gen: 0,
                            home: false,
                        },
                    );
                }
                MsgBody::Finished { flow, completed } => {
                    let Some(slot) = self.flows.slot_of(flow) else {
                        continue;
                    };
                    let state = &mut self.flows.slots[slot as usize];
                    let was_live =
                        state.record.completed_at.is_none() && state.record.terminated_at.is_none();
                    apply_finish(&mut state.record, completed, msg.at);
                    if was_live && state.home {
                        self.unfinished_flows = self.unfinished_flows.saturating_sub(1);
                    }
                }
                MsgBody::SetTimer { flow, kind, token } => {
                    let Some(slot) = self.flows.slot_of(flow) else {
                        continue;
                    };
                    let state = &self.flows.slots[slot as usize];
                    let Some(info) = state.info.as_ref() else {
                        continue;
                    };
                    let node = info.spec.src;
                    let gen = state.timer_gen;
                    // A remotely-armed timer may name a time this shard has already
                    // passed; clamp so the clock never runs backwards (no shipped
                    // protocol arms cross-shard timers — see the README).
                    let at = msg.at.max(self.now);
                    self.events.schedule_created(
                        at,
                        msg.sent,
                        EventKind::Timer {
                            node,
                            flow,
                            kind,
                            token,
                            gen,
                        },
                    );
                }
                MsgBody::Packet { node, packet } => {
                    let mut packet = *packet;
                    let Some(slot) = self.flows.slot_of(packet.flow) else {
                        // Unknown flow: its registration was lost (cannot happen —
                        // registrations sort first). Drop rather than corrupt.
                        continue;
                    };
                    packet.flow_slot = slot;
                    let at = msg.at.max(self.now);
                    let flow = packet.flow;
                    let tie = crate::engine::packet_tie(&packet);
                    let parked = self.pool.park(packet);
                    self.events.schedule_created(
                        at,
                        msg.sent,
                        EventKind::PacketAtNode {
                            node,
                            packet: parked,
                            flow,
                            tie,
                        },
                    );
                }
            }
        }
    }
}

impl Simulator {
    /// Run the simulation partitioned across `assignment.shards()` cores, one OS
    /// thread per shard, synchronized by conservative lookahead.
    ///
    /// `make_router` builds each shard's router (only consulted for flows spawned by
    /// agents at run time; flows injected before the run are pre-routed on the
    /// sequential RNG stream so their paths match a 1-shard run exactly).
    ///
    /// With a single-shard assignment this is exactly [`Simulator::run`].
    ///
    /// # Panics
    /// If the assignment does not cover the network's nodes, or the effective
    /// lookahead (cross-shard propagation + processing delay) is zero.
    pub fn run_sharded<F>(mut self, assignment: &ShardAssignment, mut make_router: F) -> SimResults
    where
        F: FnMut(u32) -> Box<dyn Router + Send>,
    {
        let shards = assignment.shards() as usize;
        if shards <= 1 {
            return self.run();
        }
        assert_eq!(
            assignment.node_count(),
            self.core.network.node_count(),
            "shard assignment does not cover the network"
        );
        let lookahead = assignment
            .lookahead()
            .saturating_add(self.core.config.processing_delay);
        assert!(
            lookahead > SimTime::ZERO,
            "conservative lookahead must be positive (zero-latency shard boundary)"
        );

        // Drain the pre-scheduled flow arrivals in (time, insertion) order — the exact
        // order the sequential engine would route them in.
        let mut specs: Vec<FlowSpec> = Vec::new();
        while let Some(ev) = self.core.events.pop() {
            match ev.kind {
                EventKind::FlowArrival(spec) => specs.push(*spec),
                other => panic!("run_sharded: unexpected pre-run event {other:?}"),
            }
        }

        // Pre-route every injected flow on its own (seed, flow id)-derived RNG — the
        // same derivation the sequential engine uses at arrival time — so paths are a
        // pure function of the flow and byte-identical to a 1-shard run.
        let mut router = self.core.router;
        let network = self.core.network;
        let config = self.core.config;
        let routed: Vec<(FlowSpec, Option<FlowInfo>)> = specs
            .into_iter()
            .map(|spec| {
                let mut route_rng = crate::engine::route_rng(config.seed, spec.id);
                let info = router.route(&network, &spec, &mut route_rng).map(|path| {
                    assert_eq!(
                        path.src(),
                        spec.src,
                        "router returned a path with wrong source"
                    );
                    assert_eq!(
                        path.dst(),
                        spec.dst,
                        "router returned a path with wrong destination"
                    );
                    make_flow_info(&network, &config, spec.clone(), path)
                });
                (spec, info)
            })
            .collect();

        let shard_of = assignment.shard_of.clone();
        let mut cores: Vec<EngineCore> = (0..shards)
            .map(|s| {
                EngineCore::for_shard(
                    s as u32,
                    shards,
                    shard_of.clone(),
                    network.clone(),
                    config.clone(),
                    make_router(s as u32),
                )
            })
            .collect();

        // Hand every agent and controller to the shard owning its node / link source.
        for (idx, slot) in self.core.agents.into_iter().enumerate() {
            if let Some(agent) = slot {
                cores[shard_of[idx] as usize].agents[idx] = Some(agent);
            }
        }
        for (idx, slot) in self.core.controllers.into_iter().enumerate() {
            if let Some(ctl) = slot {
                let src = network.link(LinkId(idx as u32)).src;
                cores[shard_of[src.index()] as usize].controllers[idx] = Some(ctl);
            }
        }

        // Register every pre-routed flow on each shard its path touches (the source
        // shard is its home and schedules the arrival event), in global arrival order
        // so per-core slot numbering is deterministic.
        for (spec, info) in routed {
            let home = shard_of[spec.src.index()] as usize;
            match info {
                None => {
                    let mut record = FlowRecord::new(spec.clone());
                    record.failed = true;
                    cores[home].flows.insert(
                        spec.id,
                        FlowState {
                            info: None,
                            record,
                            bytes_at_last_sample: 0,
                            timer_gen: 0,
                            home: true,
                        },
                    );
                }
                Some(info) => {
                    let mut touched: Vec<u32> = info
                        .path
                        .nodes
                        .iter()
                        .map(|n| shard_of[n.index()])
                        .collect();
                    touched.sort_unstable();
                    touched.dedup();
                    for s in touched {
                        cores[s as usize].flows.insert(
                            spec.id,
                            FlowState {
                                info: Some(info.clone()),
                                record: FlowRecord::new(spec.clone()),
                                bytes_at_last_sample: 0,
                                timer_gen: 0,
                                home: s as usize == home,
                            },
                        );
                    }
                }
            }
            let hc = &mut cores[home];
            hc.pending_arrivals += 1;
            hc.events
                .schedule(spec.arrival, EventKind::FlowArrival(Box::new(spec)));
        }

        for core in &mut cores {
            core.setup();
        }
        let flows_done = run_barrier_loop(&mut cores, lookahead);
        merge_results(cores, flows_done)
    }
}

/// Drive the cores to completion: lock-step conservative-lookahead windows with two
/// barriers per round (publish/decide, then exchange/ingest). Every worker computes
/// the same break decision from the same published snapshot, so all threads leave the
/// loop together. Returns true if the run ended because every flow finished.
fn run_barrier_loop(cores: &mut [EngineCore], lookahead: SimTime) -> bool {
    let n = cores.len();
    let next_times: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    let unfinished: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let pending: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let mailboxes: Vec<Mutex<Vec<ShardMsg>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = Barrier::new(n);
    let flows_done = AtomicBool::new(false);
    let look_ns = lookahead.as_nanos();

    std::thread::scope(|scope| {
        for (i, core) in cores.iter_mut().enumerate() {
            let next_times = &next_times;
            let unfinished = &unfinished;
            let pending = &pending;
            let mailboxes = &mailboxes;
            let barrier = &barrier;
            let flows_done = &flows_done;
            scope.spawn(move || {
                loop {
                    // Publish this core's horizon and liveness counters.
                    next_times[i].store(core.next_event_nanos(), Ordering::SeqCst);
                    unfinished[i].store(core.unfinished_flows as u64, Ordering::SeqCst);
                    pending[i].store(core.pending_arrivals as u64, Ordering::SeqCst);
                    barrier.wait();

                    // Identical decision on every worker from the published snapshot.
                    let t_min = next_times
                        .iter()
                        .map(|a| a.load(Ordering::SeqCst))
                        .min()
                        .expect("at least one shard");
                    let all_done = core.config.stop_when_flows_done
                        && unfinished
                            .iter()
                            .map(|a| a.load(Ordering::SeqCst))
                            .sum::<u64>()
                            == 0
                        && pending
                            .iter()
                            .map(|a| a.load(Ordering::SeqCst))
                            .sum::<u64>()
                            == 0;
                    if all_done {
                        if i == 0 {
                            flows_done.store(true, Ordering::SeqCst);
                        }
                        break;
                    }
                    if t_min == u64::MAX {
                        break;
                    }

                    // Safe window: no shard can inject an event below t_min + L.
                    let window_end = SimTime::from_nanos(t_min.saturating_add(look_ns));
                    core.process_window(Some(window_end));

                    // Exchange boundary messages.
                    for (to, mailbox) in mailboxes.iter().enumerate() {
                        let batch = std::mem::take(&mut core.outbox[to]);
                        if !batch.is_empty() {
                            mailbox.lock().expect("mailbox poisoned").extend(batch);
                        }
                    }
                    barrier.wait();
                    let msgs = std::mem::take(&mut *mailboxes[i].lock().expect("mailbox poisoned"));
                    core.ingest(msgs);
                }
            });
        }
    });
    flows_done.load(Ordering::SeqCst)
}

/// Fold N cores' state into one [`SimResults`], deterministically.
///
/// * link counters come from the shard owning each link's source (its only writer);
/// * flow records are merged home-record-then-replicas with earliest-finish-wins,
///   summed drops and max delivered bytes (delivery happens on one shard only);
/// * traces are a disjoint union (each series is sampled by exactly one shard);
/// * the end time mirrors the sequential engine: the instant the last flow settled
///   when the run stopped because all flows finished, the latest core clock otherwise.
fn merge_results(cores: Vec<EngineCore>, flows_done: bool) -> SimResults {
    let shard_of = cores[0].shard_of.clone();

    let link_stats: Vec<_> = cores[0]
        .network
        .links
        .iter()
        .map(|l| {
            let owner = shard_of[l.src.index()] as usize;
            (l.id, cores[owner].network.link(l.id).stats.clone())
        })
        .collect();

    let mut flows: HashMap<FlowId, FlowRecord> = HashMap::new();
    let mut max_now = SimTime::ZERO;
    let mut traces = crate::metrics::Traces::default();
    let mut queue = crate::event::QueueStats::default();
    for core in &cores {
        max_now = max_now.max(core.now);
        let s = core.events.stats();
        queue.pushes += s.pushes;
        queue.pops += s.pops;
        // Per-shard peaks need not be simultaneous; the sum is an upper bound.
        queue.peak_pending += s.peak_pending;
        queue.overflow_migrations += s.overflow_migrations;
        queue.buckets_sorted += s.buckets_sorted;
        for state in &core.flows.slots {
            let rec = &state.record;
            match flows.get_mut(&rec.spec.id) {
                None => {
                    flows.insert(rec.spec.id, rec.clone());
                }
                Some(merged) => {
                    merged.drops += rec.drops;
                    merged.raw_bytes_delivered =
                        merged.raw_bytes_delivered.max(rec.raw_bytes_delivered);
                    merged.failed |= rec.failed;
                    if let Some(t) = rec.completed_at {
                        apply_finish(merged, true, t);
                    } else if let Some(t) = rec.terminated_at {
                        apply_finish(merged, false, t);
                    }
                }
            }
        }
        for (k, v) in &core.traces.link_utilization {
            traces
                .link_utilization
                .entry(*k)
                .or_default()
                .extend(v.iter().copied());
        }
        for (k, v) in &core.traces.link_queue_bytes {
            traces
                .link_queue_bytes
                .entry(*k)
                .or_default()
                .extend(v.iter().copied());
        }
        for (k, v) in &core.traces.flow_goodput {
            traces
                .flow_goodput
                .entry(*k)
                .or_default()
                .extend(v.iter().copied());
        }
        traces
            .event_queue_depth
            .extend(core.traces.event_queue_depth.iter().copied());
    }
    for series in traces
        .link_utilization
        .values_mut()
        .chain(traces.link_queue_bytes.values_mut())
        .chain(traces.flow_goodput.values_mut())
        .chain(std::iter::once(&mut traces.event_queue_depth))
    {
        // Stable sort: same-instant samples keep shard order (cores are iterated in
        // shard order above), so the merged series is deterministic.
        series.sort_by_key(|s| s.at);
    }

    // Sequential runs that stop because every flow finished end at the instant of the
    // final settling event: the last finish, or the arrival of an unroutable flow if
    // that zeroed the pending count afterwards.
    let end_time = if flows_done {
        let mut end = SimTime::ZERO;
        for r in flows.values() {
            if let Some(t) = r.completed_at {
                end = end.max(t);
            }
            if let Some(t) = r.terminated_at {
                end = end.max(t);
            }
            if r.failed {
                end = end.max(r.spec.arrival);
            }
        }
        if end == SimTime::ZERO {
            max_now
        } else {
            end
        }
    } else {
        max_now
    };

    SimResults {
        flows,
        link_stats,
        traces,
        queue,
        end_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests::{blast_sim, dumbbell, BlastAgent};
    use crate::engine::SimConfig;
    use crate::network::{LinkParams, Network};
    use crate::packet::{PacketKind, MTU_BYTES};

    /// Split the dumbbell (h0,h1 – s0 – s1 – h2) down the middle: the senders' side on
    /// shard 0, the receiver's side on shard 1. The s0–s1 links cross the boundary.
    fn dumbbell_assignment() -> ShardAssignment {
        // Nodes: h0=0, h1=1, s0=2, s1=3, h2=4.
        ShardAssignment::new(vec![0, 0, 0, 1, 1], 2, crate::network::DEFAULT_PROP_DELAY)
    }

    fn run_split(mut sim: Simulator) -> SimResults {
        sim.core.config.seed = 7;
        let assignment = dumbbell_assignment();
        sim.run_sharded(&assignment, |_| Box::new(crate::engine::ShortestPathRouter))
    }

    fn run_seq(mut sim: Simulator) -> SimResults {
        sim.core.config.seed = 7;
        sim.run()
    }

    fn two_flow_sim() -> Simulator {
        let net = dumbbell();
        let hosts = net.hosts();
        let mut sim = blast_sim(net);
        sim.add_flow(FlowSpec::new(1, hosts[0], hosts[2], 200_000));
        sim.add_flow(
            FlowSpec::new(2, hosts[1], hosts[2], 150_000).with_arrival(SimTime::from_micros(50)),
        );
        sim
    }

    #[test]
    fn sharded_matches_sequential_flow_records() {
        let seq = run_seq(two_flow_sim());
        let par = run_split(two_flow_sim());
        assert_eq!(seq.flows.len(), par.flows.len());
        for (id, s) in &seq.flows {
            let p = par.flow(*id).unwrap();
            assert_eq!(s.outcome(), p.outcome(), "outcome mismatch for {id:?}");
            assert_eq!(s.completed_at, p.completed_at, "fct mismatch for {id:?}");
            assert_eq!(s.bytes_acked, p.bytes_acked);
            assert_eq!(s.raw_bytes_delivered, p.raw_bytes_delivered);
            assert_eq!(s.drops, p.drops);
        }
        assert_eq!(seq.end_time, par.end_time);
    }

    #[test]
    fn sharded_link_stats_match_up_to_the_stop_tail() {
        let seq = run_seq(two_flow_sim());
        let par = run_split(two_flow_sim());
        // The sequential engine halts at the exact event that settles the last flow;
        // a shard only learns that at the next barrier, so it may serialize a few
        // more in-flight packets from the window containing the finish (bounded by
        // one lookahead window). Counters are therefore >= sequential, and close.
        for ((id_s, s), (id_p, p)) in seq.link_stats.iter().zip(par.link_stats.iter()) {
            assert_eq!(id_s, id_p);
            assert!(
                p.bytes_transmitted >= s.bytes_transmitted,
                "sharded processed fewer events than sequential on {id_s:?}"
            );
            assert!(
                p.bytes_transmitted - s.bytes_transmitted <= 10 * MTU_BYTES as u64,
                "stop tail on {id_s:?} exceeds one lookahead window: {} vs {}",
                p.bytes_transmitted,
                s.bytes_transmitted
            );
            assert_eq!(s.tail_drops, p.tail_drops);
        }
    }

    #[test]
    fn single_shard_assignment_is_the_sequential_path() {
        let seq = run_seq(two_flow_sim());
        let mut sim = two_flow_sim();
        sim.core.config.seed = 7;
        let one = ShardAssignment::single(5);
        let par = sim.run_sharded(&one, |_| Box::new(crate::engine::ShortestPathRouter));
        assert_eq!(seq.end_time, par.end_time);
        for (id, s) in &seq.flows {
            assert_eq!(s.completed_at, par.flow(*id).unwrap().completed_at);
        }
    }

    #[test]
    fn sharded_run_is_self_deterministic() {
        let a = run_split(two_flow_sim());
        let b = run_split(two_flow_sim());
        assert_eq!(a.end_time, b.end_time);
        for (id, ra) in &a.flows {
            assert_eq!(ra.completed_at, b.flow(*id).unwrap().completed_at);
        }
    }

    #[test]
    fn unroutable_flow_on_a_shard_is_recorded_failed() {
        // Disconnected islands split across shards.
        let mut net = Network::new();
        let h0 = net.add_host("h0");
        let s0 = net.add_switch("s0");
        let h1 = net.add_host("h1");
        let h2 = net.add_host("h2");
        let s1 = net.add_switch("s1");
        let h3 = net.add_host("h3");
        net.add_duplex_link(h0, s0, LinkParams::default());
        net.add_duplex_link(s0, h1, LinkParams::default());
        net.add_duplex_link(h2, s1, LinkParams::default());
        net.add_duplex_link(s1, h3, LinkParams::default());
        let mut sim = blast_sim(net);
        sim.add_flow(FlowSpec::new(1, h0, h1, 50_000));
        sim.add_flow(FlowSpec::new(2, h0, h3, 50_000));
        let assignment = ShardAssignment::new(vec![0, 0, 0, 1, 1, 1], 2, SimTime::MAX);
        let res = sim.run_sharded(&assignment, |_| Box::new(crate::engine::ShortestPathRouter));
        assert_eq!(
            res.flow(FlowId(1)).unwrap().outcome(),
            crate::flow::FlowOutcome::Completed
        );
        assert_eq!(
            res.flow(FlowId(2)).unwrap().outcome(),
            crate::flow::FlowOutcome::Failed
        );
    }

    #[test]
    fn cross_shard_traces_merge_disjointly() {
        let mut sim = two_flow_sim();
        // Trace the cross-boundary link s0->s1 (owned by shard 0) and the receiver
        // access link s1->h2 (owned by shard 1), plus per-flow goodput (sampled at the
        // destination shard).
        sim.core.config.trace = crate::metrics::TraceConfig {
            interval: SimTime::from_micros(200),
            links: vec![LinkId(4), LinkId(6)],
            flows: true,
        };
        sim.core.config.stop_when_flows_done = false;
        sim.core.config.max_sim_time = SimTime::from_millis(3);
        let res = run_split(sim);
        assert!(!res.traces.link_utilization[&LinkId(4)].is_empty());
        assert!(!res.traces.link_utilization[&LinkId(6)].is_empty());
        assert!(res.traces.flow_goodput.contains_key(&FlowId(1)));
        for series in res.traces.link_utilization.values() {
            for pair in series.windows(2) {
                assert!(pair[0].at < pair[1].at, "duplicate or unsorted samples");
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn mismatched_assignment_panics() {
        let sim = blast_sim(dumbbell());
        let bad = ShardAssignment::new(vec![0, 1], 2, SimTime::MAX);
        let _ = sim.run_sharded(&bad, |_| Box::new(crate::engine::ShortestPathRouter));
    }

    #[test]
    fn apply_finish_prefers_earliest_then_completion() {
        let spec = FlowSpec::new(1, NodeId(0), NodeId(1), 1000);
        let mut rec = FlowRecord::new(spec);
        apply_finish(&mut rec, false, SimTime::from_micros(10));
        assert!(rec.terminated_at.is_some());
        // A later completion does not displace an earlier termination...
        apply_finish(&mut rec, true, SimTime::from_micros(20));
        assert_eq!(rec.terminated_at, Some(SimTime::from_micros(10)));
        assert!(rec.completed_at.is_none());
        // ...an earlier completion does...
        apply_finish(&mut rec, true, SimTime::from_micros(5));
        assert_eq!(rec.completed_at, Some(SimTime::from_micros(5)));
        assert!(rec.terminated_at.is_none());
        assert_eq!(rec.bytes_acked, 1000);
        // ...and at equal times completion beats termination.
        apply_finish(&mut rec, false, SimTime::from_micros(5));
        assert_eq!(rec.completed_at, Some(SimTime::from_micros(5)));
    }

    /// A sender-side agent that spawns a second flow mid-run (like M-PDQ subflows):
    /// run-time routing and cross-shard registration must both work.
    struct Spawner {
        inner: BlastAgent,
        spawned: bool,
    }
    impl crate::agent::HostAgent for Spawner {
        fn on_flow_arrival(&mut self, flow: &FlowInfo, ctx: &mut crate::agent::Ctx) {
            self.inner.on_flow_arrival(flow, ctx);
        }
        fn on_packet(&mut self, packet: Packet, ctx: &mut crate::agent::Ctx) {
            if packet.kind == PacketKind::Ack && !self.spawned {
                self.spawned = true;
                let parent = ctx.flow(packet.flow).unwrap().spec.clone();
                let mut sub = FlowSpec::new(900, parent.src, parent.dst, 40_000);
                sub.parent = Some(parent.id);
                ctx.spawn_flow(sub);
            }
            self.inner.on_packet(packet, ctx);
        }
        fn on_timer(
            &mut self,
            flow: FlowId,
            kind: crate::event::TimerKind,
            token: u64,
            ctx: &mut crate::agent::Ctx,
        ) {
            self.inner.on_timer(flow, kind, token, ctx);
        }
    }

    #[test]
    fn run_time_spawned_flows_cross_shards() {
        let net = dumbbell();
        let hosts = net.hosts();
        let mut sim = Simulator::new(net, SimConfig::default());
        sim.install_agents(|_, _| {
            Box::new(Spawner {
                inner: BlastAgent::new(),
                spawned: false,
            })
        });
        sim.add_flow(FlowSpec::new(1, hosts[0], hosts[2], 60_000));
        let res = run_split(sim);
        assert_eq!(
            res.flow(FlowId(1)).unwrap().outcome(),
            crate::flow::FlowOutcome::Completed
        );
        let sub = res.flow(FlowId(900)).unwrap();
        assert_eq!(sub.outcome(), crate::flow::FlowOutcome::Completed);
        assert_eq!(sub.raw_bytes_delivered, 40_000);
    }
}
