//! # pdq-netsim
//!
//! A deterministic, discrete-event, packet-level data-center network simulator.
//!
//! This crate is the substrate on which the reproduction of *Finishing Flows Quickly
//! with Preemptive Scheduling* (PDQ, SIGCOMM 2012) is built. The paper evaluates PDQ
//! against TCP, RCP and D3 on a custom event-driven packet-level simulator; this crate
//! provides that simulator:
//!
//! * **Topology** — hosts and switches connected by full-duplex links, each direction
//!   with its own FIFO tail-drop queue bounded in bytes ([`network::Network`]).
//! * **Link model** — serialization at the line rate, propagation delay, per-hop
//!   processing delay, byte-bounded tail-drop queues and optional random loss
//!   (defaults match the paper's setup: 1 Gbps, 4 MB buffers, 11/0.1/25 µs
//!   transmission/propagation/processing per hop).
//! * **Transport agents** — per-host protocol endpoints implementing the
//!   [`HostAgent`] trait (PDQ, TCP, RCP, D3 senders/receivers live in the `pdq` and
//!   `pdq-baselines` crates).
//! * **Switch controllers** — per-egress-link scheduling logic implementing
//!   [`LinkController`]; this is where PDQ's flow controller / rate controller and the
//!   RCP / D3 rate allocators plug in.
//! * **Metrics** — per-flow completion times, deadline hits, drop counts, link
//!   utilization and queue-occupancy time series ([`metrics::SimResults`]).
//!
//! The simulator is fully deterministic for a fixed seed, which keeps experiments
//! reproducible. A run executes on one thread by default; [`Simulator::run_sharded`]
//! partitions the network across N cores synchronized by conservative lookahead
//! (see the [`shard`] module for the determinism model).
//!
//! ## Quick example
//!
//! ```
//! use pdq_netsim::{Network, LinkParams, Simulator, SimConfig, FlowSpec};
//! use pdq_netsim::{HostAgent, FlowInfo, Ctx, Packet, PacketKind, FlowId, TimerKind};
//!
//! // A toy protocol that blasts the whole flow at once and ACKs on receipt.
//! struct Blast;
//! impl HostAgent for Blast {
//!     fn on_flow_arrival(&mut self, flow: &FlowInfo, ctx: &mut Ctx) {
//!         let mut off = 0;
//!         while off < flow.spec.size_bytes {
//!             let pay = (flow.spec.size_bytes - off).min(1444) as u32;
//!             ctx.send(Packet::data(flow.spec.id, flow.spec.src, flow.spec.dst, off, pay));
//!             off += pay as u64;
//!         }
//!     }
//!     fn on_packet(&mut self, packet: Packet, ctx: &mut Ctx) {
//!         if packet.kind == PacketKind::Data {
//!             let size = ctx.flow(packet.flow).unwrap().spec.size_bytes;
//!             if packet.seq + packet.payload as u64 >= size {
//!                 ctx.flow_completed(packet.flow);
//!             }
//!         }
//!     }
//!     fn on_timer(&mut self, _: FlowId, _: TimerKind, _: u64, _: &mut Ctx) {}
//! }
//!
//! let mut net = Network::new();
//! let a = net.add_host("a");
//! let s = net.add_switch("s");
//! let b = net.add_host("b");
//! net.add_duplex_link(a, s, LinkParams::default());
//! net.add_duplex_link(s, b, LinkParams::default());
//!
//! let mut sim = Simulator::new(net, SimConfig::default());
//! sim.install_agents(|_, _| Box::new(Blast));
//! sim.add_flow(FlowSpec::new(1, a, b, 100_000));
//! let results = sim.run();
//! assert_eq!(results.completed_count(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod controller;
pub mod engine;
pub mod event;
pub mod flow;
pub mod ids;
pub mod metrics;
pub mod network;
pub mod pacer;
pub mod packet;
pub mod shard;
pub mod time;

pub use agent::{Action, Ctx, FlowInfo, HostAgent};
pub use controller::{LinkController, NullController};
pub use engine::{Router, ShortestPathRouter, SimConfig, Simulator};
pub use event::{EventKind, EventQueue, QueueStats, TimerKind};
pub use flow::{CoflowTag, FlowOutcome, FlowPath, FlowRecord, FlowSpec};
pub use ids::{CoflowId, FlowId, LinkId, NodeId};
pub use metrics::{Sample, SimResults, TraceConfig, Traces};
pub use network::{
    Link, LinkParams, LinkStats, LossStream, Network, Node, NodeKind, DEFAULT_LINK_RATE_BPS,
    DEFAULT_PROCESSING_DELAY, DEFAULT_PROP_DELAY, DEFAULT_QUEUE_CAPACITY_BYTES,
};
pub use pacer::{Pacer, PacerConfig};
pub use packet::{
    Packet, PacketKind, SchedulingHeader, BASE_HEADER_BYTES, CONTROL_PACKET_BYTES, MSS_BYTES,
    MTU_BYTES, SCHED_HEADER_BYTES,
};
pub use shard::ShardAssignment;
pub use time::SimTime;
