//! Host-side transport agents.
//!
//! Each host in the simulation runs one [`HostAgent`], which implements both the sender
//! and receiver sides of a transport protocol (PDQ, TCP, RCP, D3, ...). The engine
//! drives the agent through three callbacks — flow arrival, packet delivery and timer
//! expiry — and the agent responds by pushing [`Action`]s into the provided [`Ctx`].
//! This callback/action split keeps protocol logic free of borrow entanglement with the
//! engine and makes protocols unit-testable without a network.

use std::collections::HashMap;
use std::sync::Arc;

use crate::event::TimerKind;
use crate::flow::{FlowPath, FlowSpec};
use crate::ids::FlowId;
use crate::packet::Packet;
use crate::time::SimTime;

/// Everything an agent may want to know about a flow when it starts (and later via
/// [`Ctx::flow`]).
///
/// The path is behind an [`Arc`]: the engine and every agent share one immutable
/// `FlowPath` per flow, so handing a `FlowInfo` around (and forwarding a packet along
/// its path) never deep-copies the node/link vectors. Agents must treat the path as
/// read-only; re-routing a flow means injecting a new flow (e.g. an M-PDQ subflow).
#[derive(Clone, Debug)]
pub struct FlowInfo {
    /// The flow specification (size, deadline, endpoints, arrival time).
    pub spec: FlowSpec,
    /// The forward path assigned by the router (shared, immutable).
    pub path: Arc<FlowPath>,
    /// The minimum link rate along the forward path, i.e. the highest rate at which the
    /// flow could possibly be served (`R^max` in the paper, before receiver limits).
    pub bottleneck_rate_bps: f64,
    /// The rate of the sender's access link (NIC rate).
    pub nic_rate_bps: f64,
    /// A static estimate of the round-trip time along the path (transmission of a
    /// full-size packet + propagation + processing, both directions, empty queues).
    /// Protocols use it to seed their RTT estimators before real samples exist.
    pub base_rtt: SimTime,
}

/// Actions an agent can request from the engine.
#[derive(Clone, Debug)]
pub enum Action {
    /// Hand a packet to the NIC. The engine forwards it along the flow's path.
    Send(Packet),
    /// Ask for [`HostAgent::on_timer`] to be invoked at absolute time `at`.
    SetTimer {
        /// The flow the timer belongs to.
        flow: FlowId,
        /// Timer class.
        kind: TimerKind,
        /// Absolute expiry time.
        at: SimTime,
        /// Opaque token echoed back to the agent (used to detect stale timers).
        token: u64,
    },
    /// Declare a flow complete (all application bytes delivered). Recorded by the engine.
    FlowCompleted(FlowId),
    /// Declare a flow terminated without completing (Early Termination / quenching).
    FlowTerminated(FlowId),
    /// Inject a brand-new flow (used by M-PDQ to create subflows). The engine routes it
    /// and delivers `on_flow_arrival` to its source host at the given arrival time.
    SpawnFlow(FlowSpec),
    /// Cancel every timer currently pending for the flow (see the timer-cancellation
    /// contract on [`Ctx::cancel_flow_timers`]).
    CancelTimers(FlowId),
}

/// Read-only lookup of per-flow routing/size information.
///
/// The engine implements this on its dense flow slab; protocol unit tests implement it
/// for free via the blanket impl on `HashMap<FlowId, FlowInfo>`, so a test can hand
/// [`Ctx::new`] a plain map.
pub trait FlowLookup {
    /// The routing/size information of a flow, if the flow is known.
    fn flow_info(&self, id: FlowId) -> Option<&FlowInfo>;
}

impl FlowLookup for HashMap<FlowId, FlowInfo> {
    fn flow_info(&self, id: FlowId) -> Option<&FlowInfo> {
        self.get(&id)
    }
}

/// The callback context handed to agents. Collects actions and exposes read-only flow
/// information; the engine applies the queued actions after the callback returns.
pub struct Ctx<'a> {
    now: SimTime,
    flows: &'a dyn FlowLookup,
    actions: Vec<Action>,
}

impl<'a> Ctx<'a> {
    /// Create a context (used by the engine and by protocol unit tests).
    pub fn new(now: SimTime, flows: &'a dyn FlowLookup) -> Self {
        Ctx {
            now,
            flows,
            actions: Vec::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Look up the routing/size information of a flow known to the engine.
    pub fn flow(&self, id: FlowId) -> Option<&FlowInfo> {
        self.flows.flow_info(id)
    }

    /// Queue a packet for transmission. The engine stamps nothing: the agent is
    /// responsible for setting `sent_at` and the scheduling header before sending.
    pub fn send(&mut self, packet: Packet) {
        self.actions.push(Action::Send(packet));
    }

    /// Set (or re-arm) a timer at an absolute time.
    pub fn set_timer_at(&mut self, flow: FlowId, kind: TimerKind, at: SimTime, token: u64) {
        self.actions.push(Action::SetTimer {
            flow,
            kind,
            at,
            token,
        });
    }

    /// Set a timer `delay` after the current time.
    pub fn set_timer_after(&mut self, flow: FlowId, kind: TimerKind, delay: SimTime, token: u64) {
        let at = self.now + delay;
        self.set_timer_at(flow, kind, at, token);
    }

    /// Mark a flow as completed.
    pub fn flow_completed(&mut self, flow: FlowId) {
        self.actions.push(Action::FlowCompleted(flow));
    }

    /// Mark a flow as terminated early.
    pub fn flow_terminated(&mut self, flow: FlowId) {
        self.actions.push(Action::FlowTerminated(flow));
    }

    /// Inject a new flow (e.g. an M-PDQ subflow).
    pub fn spawn_flow(&mut self, spec: FlowSpec) {
        self.actions.push(Action::SpawnFlow(spec));
    }

    /// Cancel every timer currently pending for `flow`.
    ///
    /// **Timer-cancellation contract.** Each flow carries a generation counter in the
    /// engine. A timer snapshots the generation when it is scheduled; when it fires,
    /// the engine silently drops it if the generation has moved on. Only this action
    /// bumps the generation — a flow finishing does *not*: a completion is usually
    /// detected at the receiver, and letting it cancel the sender's pending timers
    /// would be an acausal cross-node effect the partitioned engine cannot reproduce
    /// (the finish reaches the sender's shard a lookahead window later). Agents must
    /// therefore ignore late timers themselves — every shipped sender guards on its
    /// own status and a per-timer freshness token. Cancel timers only from the node
    /// that armed them, for the same reason. Timers set *after* a cancellation (even
    /// in the same callback) belong to the new generation and fire normally.
    pub fn cancel_flow_timers(&mut self, flow: FlowId) {
        self.actions.push(Action::CancelTimers(flow));
    }

    /// Drain the queued actions (used by the engine; also handy in protocol tests).
    pub fn take_actions(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.actions)
    }

    /// Peek at the queued actions without draining them.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }
}

/// A per-host transport endpoint (sender + receiver state machines).
pub trait HostAgent {
    /// A flow whose source is this host has arrived and should start being served.
    fn on_flow_arrival(&mut self, flow: &FlowInfo, ctx: &mut Ctx);

    /// A packet addressed to this host has been delivered: forward-direction packets at
    /// the flow destination, reverse-direction packets (ACKs) at the flow source.
    fn on_packet(&mut self, packet: Packet, ctx: &mut Ctx);

    /// A previously-set timer fired.
    fn on_timer(&mut self, flow: FlowId, kind: TimerKind, token: u64, ctx: &mut Ctx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn ctx_collects_actions_in_order() {
        let flows: HashMap<FlowId, FlowInfo> = HashMap::new();
        let mut ctx = Ctx::new(SimTime::from_millis(1), &flows);
        assert_eq!(ctx.now(), SimTime::from_millis(1));
        ctx.flow_completed(FlowId(1));
        ctx.set_timer_after(FlowId(1), TimerKind::Rto, SimTime::from_millis(2), 7);
        let acts = ctx.take_actions();
        assert_eq!(acts.len(), 2);
        match &acts[1] {
            Action::SetTimer { at, token, .. } => {
                assert_eq!(*at, SimTime::from_millis(3));
                assert_eq!(*token, 7);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert!(ctx.take_actions().is_empty());
    }

    #[test]
    fn ctx_flow_lookup() {
        let mut flows = HashMap::new();
        let spec = FlowSpec::new(3, NodeId(0), NodeId(1), 1000);
        flows.insert(
            FlowId(3),
            FlowInfo {
                spec: spec.clone(),
                path: FlowPath::new(vec![NodeId(0), NodeId(1)], vec![crate::ids::LinkId(0)]).into(),
                bottleneck_rate_bps: 1e9,
                nic_rate_bps: 1e9,
                base_rtt: SimTime::from_micros(100),
            },
        );
        let ctx = Ctx::new(SimTime::ZERO, &flows);
        assert!(ctx.flow(FlowId(3)).is_some());
        assert_eq!(ctx.flow(FlowId(3)).unwrap().spec, spec);
        assert!(ctx.flow(FlowId(4)).is_none());
    }
}
