//! A reusable leaky-bucket sender pacer (RFC 9002 §7.7).
//!
//! Senders that transmit a whole congestion window back-to-back stress shallow
//! buffers far beyond their average rate — at WAN BDPs a single burst can be tens
//! of megabytes. RFC 9002 §7.7 prescribes the standard remedy: spread packets over
//! time at `rate = N · congestion_window / smoothed_rtt` with a small utilization
//! headroom `N` (we default to 1.25, the value QUIC implementations commonly use),
//! realized as a token bucket whose capacity caps the residual burst.
//!
//! [`Pacer`] is that token bucket, expressed in the simulator's own terms:
//!
//! * **Tokens are bytes.** A packet may leave when the bucket holds at least its
//!   wire size; sending consumes that many tokens.
//! * **Refill is continuous.** Tokens accrue at the configured rate between the
//!   integer-nanosecond instants the sender touches the bucket, capped at
//!   [`PacerConfig::burst_bytes`] (the maximum back-to-back burst, default 10
//!   MTUs — QUIC's initial-burst allowance).
//! * **No internal clock.** The sender drives the pacer with the existing timer
//!   machinery: when [`Pacer::try_send`] refuses, [`Pacer::next_ready`] names the
//!   instant the deficit clears and the sender arms a [`crate::TimerKind::Pacing`]
//!   timer for it (with the usual token freshness guard).
//!
//! Window-based senders (TCP) call [`Pacer::set_window`] whenever `cwnd` or the
//! smoothed RTT moves; rate-based senders (PDQ, RCP, D3) call
//! [`Pacer::set_rate_bps`] with their granted rate. Both may change mid-flight:
//! accrued tokens are settled at the old rate first, so a rate change never
//! retroactively re-prices elapsed time.
//!
//! The pacer is pure integer/float arithmetic over [`SimTime`] instants — no
//! randomness, no wall clock — so paced runs stay bit-reproducible and
//! shard-count invariant. ACK-only packets should not be paced (RFC 9002 §7.7);
//! the protocol crates only pace data.

use crate::packet::MTU_BYTES;
use crate::time::SimTime;

/// Tuning knobs for a [`Pacer`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PacerConfig {
    /// Utilization headroom `N` in `rate = N · cwnd / srtt` (RFC 9002 §7.7:
    /// "slightly higher than one", commonly 1.25). Also applied as headroom by
    /// rate-based senders via [`Pacer::set_window`] only — [`Pacer::set_rate_bps`]
    /// takes the rate verbatim, since a granted rate is already a ceiling.
    pub gain: f64,
    /// Token-bucket capacity: the largest back-to-back burst, in bytes.
    /// Values below one MTU are raised to one MTU so a full-sized packet can
    /// always eventually pass.
    pub burst_bytes: u64,
}

impl Default for PacerConfig {
    fn default() -> Self {
        PacerConfig {
            gain: 1.25,
            burst_bytes: 10 * MTU_BYTES as u64,
        }
    }
}

/// A leaky-bucket pacer: tokens are bytes, refilled continuously at the
/// configured rate, capped at the burst allowance. See the module docs.
#[derive(Clone, Debug)]
pub struct Pacer {
    gain: f64,
    burst_bytes: f64,
    /// Current pacing rate in bits/s; `None` until the sender provides one
    /// (unpaced: every send allowed, as RFC 9002 allows for the initial burst).
    rate_bps: Option<f64>,
    tokens_bytes: f64,
    last_refill: SimTime,
}

impl Pacer {
    /// A pacer starting with a full bucket and no rate (unpaced until the first
    /// [`Pacer::set_rate_bps`] / [`Pacer::set_window`]).
    pub fn new(config: PacerConfig) -> Self {
        assert!(config.gain > 0.0, "pacing gain must be positive");
        let burst = config.burst_bytes.max(MTU_BYTES as u64) as f64;
        Pacer {
            gain: config.gain,
            burst_bytes: burst,
            rate_bps: None,
            tokens_bytes: burst,
            last_refill: SimTime::ZERO,
        }
    }

    /// The current pacing rate in bits/s, if one has been set.
    pub fn rate_bps(&self) -> Option<f64> {
        self.rate_bps
    }

    /// Set the pacing rate directly (rate-based senders: PDQ grant, RCP/D3
    /// allocation). Tokens accrued since the last touch are settled at the old
    /// rate first. Non-positive rates are treated as "no rate" (sends pass).
    pub fn set_rate_bps(&mut self, now: SimTime, rate_bps: f64) {
        self.refill(now);
        self.rate_bps = (rate_bps > 0.0).then_some(rate_bps);
    }

    /// Derive the rate from a congestion window and smoothed RTT:
    /// `rate = gain · cwnd / srtt` (RFC 9002 §7.7). A zero RTT (no sample yet)
    /// leaves the pacer unpaced.
    pub fn set_window(&mut self, now: SimTime, cwnd_bytes: u64, srtt: SimTime) {
        let srtt_s = srtt.as_secs_f64();
        let rate = if srtt_s > 0.0 {
            self.gain * cwnd_bytes as f64 * 8.0 / srtt_s
        } else {
            0.0
        };
        self.set_rate_bps(now, rate);
    }

    /// Try to send `bytes` wire bytes at `now`: returns true (and consumes the
    /// tokens) when the bucket allows it, false when the sender must wait until
    /// [`Pacer::next_ready`].
    pub fn try_send(&mut self, now: SimTime, bytes: u64) -> bool {
        self.refill(now);
        if self.rate_bps.is_none() {
            return true;
        }
        // Requests above the burst cap are priced at the cap so they can pass at
        // all; the deficit still throttles the long-run rate.
        let need = (bytes as f64).min(self.burst_bytes);
        if self.tokens_bytes >= need {
            self.tokens_bytes -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// The earliest instant a send of `bytes` wire bytes can pass, assuming the
    /// rate does not change in between. Returns `now` when it would pass already.
    pub fn next_ready(&self, now: SimTime, bytes: u64) -> SimTime {
        let Some(rate) = self.rate_bps else {
            return now;
        };
        let need = (bytes as f64).min(self.burst_bytes);
        let deficit = need - self.tokens_bytes;
        if deficit <= 0.0 {
            return now;
        }
        // ceil: never name an instant at which the deficit is still open.
        let wait_ns = (deficit * 8.0e9 / rate).ceil().max(1.0) as u64;
        now.saturating_add(SimTime::from_nanos(wait_ns))
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.last_refill {
            return;
        }
        if let Some(rate) = self.rate_bps {
            let dt_ns = (now - self.last_refill).as_nanos();
            self.tokens_bytes =
                (self.tokens_bytes + dt_ns as f64 * rate / 8.0e9).min(self.burst_bytes);
        } else {
            // Unpaced time refills the burst allowance in full.
            self.tokens_bytes = self.burst_bytes;
        }
        self.last_refill = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pacer_at(rate_bps: f64) -> Pacer {
        let mut p = Pacer::new(PacerConfig::default());
        p.set_rate_bps(SimTime::ZERO, rate_bps);
        p
    }

    #[test]
    fn unpaced_until_a_rate_is_set() {
        let mut p = Pacer::new(PacerConfig::default());
        for i in 0..100 {
            assert!(p.try_send(SimTime::from_nanos(i), MTU_BYTES as u64));
        }
        assert_eq!(p.next_ready(SimTime::ZERO, MTU_BYTES as u64), SimTime::ZERO);
    }

    #[test]
    fn tokens_accrue_at_the_configured_rate() {
        // 1 Gbps: one 1500 B packet each 12 µs.
        let mut p = pacer_at(1e9);
        // Drain the initial burst allowance (10 MTUs).
        for _ in 0..10 {
            assert!(p.try_send(SimTime::ZERO, MTU_BYTES as u64));
        }
        assert!(!p.try_send(SimTime::ZERO, MTU_BYTES as u64));
        let ready = p.next_ready(SimTime::ZERO, MTU_BYTES as u64);
        assert_eq!(ready, SimTime::from_nanos(12_000));
        // One nanosecond early the bucket is still short...
        assert!(!p.try_send(ready - SimTime::from_nanos(1), MTU_BYTES as u64));
        // ...at the named instant it passes.
        assert!(p.try_send(ready, MTU_BYTES as u64));
    }

    #[test]
    fn burst_cap_bounds_idle_accrual() {
        let mut p = pacer_at(1e9);
        // A long idle period must not bank unbounded credit: exactly the burst
        // allowance (10 MTUs) passes back-to-back, not more.
        let now = SimTime::from_secs(5);
        let mut sent = 0;
        while p.try_send(now, MTU_BYTES as u64) {
            sent += 1;
            assert!(sent <= 10, "burst cap exceeded");
        }
        assert_eq!(sent, 10);
    }

    #[test]
    fn rate_change_mid_flight_settles_old_tokens_first() {
        let mut p = pacer_at(1e9);
        for _ in 0..10 {
            assert!(p.try_send(SimTime::ZERO, MTU_BYTES as u64));
        }
        // 6 µs at 1 Gbps banks 750 B; then the rate drops 10x. The banked 750 B
        // must survive the change, so the remaining 750 B deficit at 100 Mbps
        // clears after another 60 µs, not 120 µs.
        let t = SimTime::from_nanos(6_000);
        p.set_rate_bps(t, 1e8);
        assert_eq!(
            p.next_ready(t, MTU_BYTES as u64),
            t + SimTime::from_nanos(60_000)
        );
    }

    #[test]
    fn set_window_matches_rfc9002() {
        let mut p = Pacer::new(PacerConfig {
            gain: 1.25,
            burst_bytes: 2 * MTU_BYTES as u64,
        });
        // cwnd 125 000 B over a 10 ms srtt = 100 Mbps; ×1.25 gain = 125 Mbps.
        p.set_window(SimTime::ZERO, 125_000, SimTime::from_millis(10));
        let rate = p.rate_bps().unwrap();
        assert!((rate - 1.25e8).abs() < 1e-3, "rate {rate}");
        // Zero srtt (no sample yet) leaves the pacer unpaced.
        p.set_window(SimTime::ZERO, 125_000, SimTime::ZERO);
        assert!(p.rate_bps().is_none());
    }

    #[test]
    fn oversized_requests_pass_at_the_burst_cap() {
        let mut p = Pacer::new(PacerConfig {
            gain: 1.0,
            burst_bytes: MTU_BYTES as u64,
        });
        p.set_rate_bps(SimTime::ZERO, 1e9);
        // A jumbo request larger than the bucket is priced at the cap: it passes
        // once the bucket is full, and its true size still drains the bucket.
        assert!(p.try_send(SimTime::ZERO, 3 * MTU_BYTES as u64));
        let ready = p.next_ready(SimTime::ZERO, MTU_BYTES as u64);
        // 3 MTUs consumed from a 1-MTU bucket: 3 MTUs of deficit to clear.
        assert_eq!(ready, SimTime::from_nanos(3 * 12_000));
    }
}
