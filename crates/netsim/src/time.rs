//! Simulation time.
//!
//! All simulator time is kept in **integer nanoseconds** so that event ordering is exact
//! and runs are bit-for-bit reproducible for a fixed seed. Rates are expressed in bits
//! per second as `f64` and converted to durations at the last moment.
//!
//! [`SimTime::MAX`] doubles as a "never" sentinel (shard lookahead when no link
//! crosses a boundary, timers that are effectively unarmed), so every arithmetic
//! operator **saturates**: `MAX + x == MAX` instead of a debug panic / release
//! wrap-around, and `a - b` clamps at [`SimTime::ZERO`]. Scheduling paths (timer
//! arming, event insertion, WAN-scale RTOs) can therefore add offsets to sentinel
//! or far-future times without overflow.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since the start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Construct from a floating point number of seconds (rounded to nanoseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "negative time");
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// This time expressed as floating point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// This time expressed as floating point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// This time expressed as floating point microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Multiply a duration-like time by a floating point factor (rounded).
    pub fn mul_f64(self, k: f64) -> SimTime {
        assert!(k >= 0.0, "negative factor");
        SimTime((self.0 as f64 * k).round() as u64)
    }

    /// The duration needed to serialize `bytes` bytes onto a link of `rate_bps` bits/s.
    ///
    /// The nanosecond count is computed in a **single** rounding step
    /// (`bytes · 8·10⁹ / rate`). Converting through intermediate f64 seconds
    /// (`bytes · 8 / rate`, then `· 10⁹`) rounds twice and drifts by whole
    /// nanoseconds for large transfers on slow long-haul links — enough to shift
    /// event order at WAN scale.
    pub fn transmission_time(bytes: u64, rate_bps: f64) -> SimTime {
        assert!(rate_bps > 0.0, "link rate must be positive");
        SimTime((bytes as f64 * 8.0e9 / rate_bps).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        self.saturating_add(rhs)
    }
}
impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = self.saturating_add(rhs);
    }
}
impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}
impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = self.saturating_sub(rhs);
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert!((SimTime::from_secs_f64(0.5).as_secs_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!((a + b).as_nanos(), 14_000);
        assert_eq!((a - b).as_nanos(), 6_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_nanos(), 14_000);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn transmission_time_1500b_at_1gbps() {
        // 1500 bytes at 1 Gbps = 12 microseconds.
        let t = SimTime::transmission_time(1500, 1e9);
        assert_eq!(t.as_nanos(), 12_000);
    }

    #[test]
    fn transmission_time_rounds_once_at_wan_scale() {
        // A whole-gigabyte transfer on a slow long-haul link: the nanosecond count
        // must equal the single-rounding closed form, not the value that survives a
        // detour through f64 seconds.
        for (bytes, rate) in [
            (1_000_000_000u64, 1.5e6),
            (1u64 << 40, 2.4e9),
            (123_456_789u64, 7.0e9),
            (1_000_000_000_000u64, 9.6e8),
        ] {
            let expect = (bytes as f64 * 8.0e9 / rate).round() as u64;
            assert_eq!(
                SimTime::transmission_time(bytes, rate).as_nanos(),
                expect,
                "{bytes} B at {rate} bps"
            );
        }
        // At the paper's 1 Gbps default, byte counts map to exact nanoseconds —
        // the intra-DC figures must not move.
        assert_eq!(SimTime::transmission_time(300, 1e9).as_nanos(), 2_400);
        assert_eq!(SimTime::transmission_time(40, 1e9).as_nanos(), 320);
    }

    #[test]
    fn arithmetic_saturates_at_the_sentinel() {
        // MAX doubles as "never": arming a timer relative to it must stay "never"
        // instead of overflowing (panic in debug, wrap in release).
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::MAX + SimTime::MAX, SimTime::MAX);
        let mut t = SimTime::MAX;
        t += SimTime::from_millis(100); // a WAN-scale RTO on top of a sentinel
        assert_eq!(t, SimTime::MAX);
        // Subtraction clamps at zero rather than wrapping to the far future.
        assert_eq!(SimTime::ZERO - SimTime::from_nanos(1), SimTime::ZERO);
        let mut u = SimTime::from_micros(1);
        u -= SimTime::from_micros(2);
        assert_eq!(u, SimTime::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimTime::from_nanos(100).mul_f64(1.5).as_nanos(), 150);
        assert_eq!(SimTime::from_nanos(3).mul_f64(0.5).as_nanos(), 2); // 1.5 rounds to 2
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(format!("{}", SimTime::from_millis(2)), "2.000ms");
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
