//! The discrete-event queue.
//!
//! Events are ordered by time, with a monotonically increasing sequence number breaking
//! ties so that two events scheduled for the same instant fire in FIFO order. This makes
//! the simulator deterministic for a fixed seed and insertion order.
//!
//! # Why events are small
//!
//! The heap is the hottest data structure in the simulator: every packet hop pushes and
//! pops one [`Event`]. [`EventKind`] therefore never carries a large payload inline —
//! a flow arrival boxes its `FlowSpec` (one allocation per *flow*) and an in-flight
//! packet is parked in the engine's recycled packet pool and referenced by a
//! [`PacketSlot`] (no allocation per *hop* in steady state). This keeps
//! `size_of::<Event>()` at a few machine words, so sift-up/sift-down moves stay cheap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::flow::FlowSpec;
use crate::ids::{FlowId, LinkId, NodeId};
use crate::time::SimTime;

/// Timer classes used by transport agents. The meaning of each class is up to the
/// protocol; the engine merely delivers them back to the owning host.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Retransmission timeout (TCP-style).
    Rto,
    /// Rate-pacing timer: time to hand the next packet to the NIC.
    Pacing,
    /// PDQ probe timer for paused flows.
    Probe,
    /// M-PDQ subflow re-balancing timer.
    Rebalance,
    /// Protocol-defined timer class.
    Custom(u8),
}

/// A handle to an in-flight packet parked in the engine's packet pool while it waits
/// for its propagation/processing delay to elapse. Pool slots are recycled, so packet
/// hops allocate nothing in steady state; the slot is only meaningful to the engine
/// that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketSlot(pub u32);

/// What happens at an instant of simulated time.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// A new flow arrives at its source host. Boxed: a `FlowSpec` is ~10× the size of
    /// every other variant and would otherwise inflate the whole heap.
    FlowArrival(Box<FlowSpec>),
    /// A packet has finished propagation + processing and is now at `node`.
    PacketAtNode {
        /// Node the packet is at.
        node: NodeId,
        /// Where the packet is parked in the engine's packet pool.
        packet: PacketSlot,
    },
    /// The packet currently being serialized on `link` has been fully transmitted.
    TransmitDone {
        /// The transmitting link.
        link: LinkId,
    },
    /// A host timer fires.
    Timer {
        /// Host that set the timer.
        node: NodeId,
        /// Flow the timer belongs to.
        flow: FlowId,
        /// Timer class.
        kind: TimerKind,
        /// Opaque token chosen by the agent (used to ignore stale timers).
        token: u64,
        /// The flow's timer generation at scheduling time; the engine drops the event
        /// without a callback if the flow's generation has moved on (lazy
        /// cancellation — see `Ctx::cancel_flow_timers`).
        gen: u32,
    },
    /// A periodic link-controller tick (e.g. the PDQ / RCP rate controller update).
    ControllerTick {
        /// The link whose controller should tick.
        link: LinkId,
    },
    /// Periodic sampling of link utilization / queue sizes for traces.
    TraceSample,
    /// Hard stop of the simulation.
    Stop,
}

/// An event scheduled for a particular time.
#[derive(Clone, Debug)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// FIFO tie-break sequence number (assigned by the queue).
    pub seq: u64,
    /// What to do.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of events ordered by `(time, insertion sequence)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `kind` to fire at time `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), EventKind::Stop);
        q.schedule(SimTime::from_micros(10), EventKind::TraceSample);
        q.schedule(SimTime::from_micros(20), EventKind::Stop);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_nanos())
            .collect();
        assert_eq!(times, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for token in 1..=3 {
            q.schedule(
                t,
                EventKind::Timer {
                    node: NodeId(0),
                    flow: FlowId(token),
                    kind: TimerKind::Rto,
                    token,
                    gen: 0,
                },
            );
        }
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, vec![1, 2, 3]);
    }

    #[test]
    fn events_stay_small() {
        // The heap moves events by value on every push/pop; a regression that embeds a
        // Packet or FlowSpec inline would show up here.
        assert!(
            std::mem::size_of::<Event>() <= 64,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_micros(7), EventKind::Stop);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
    }
}
